
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coord/codec_test.cpp" "tests/CMakeFiles/coord_test.dir/coord/codec_test.cpp.o" "gcc" "tests/CMakeFiles/coord_test.dir/coord/codec_test.cpp.o.d"
  "/root/repo/tests/coord/node_test.cpp" "tests/CMakeFiles/coord_test.dir/coord/node_test.cpp.o" "gcc" "tests/CMakeFiles/coord_test.dir/coord/node_test.cpp.o.d"
  "/root/repo/tests/coord/raft_log_test.cpp" "tests/CMakeFiles/coord_test.dir/coord/raft_log_test.cpp.o" "gcc" "tests/CMakeFiles/coord_test.dir/coord/raft_log_test.cpp.o.d"
  "/root/repo/tests/coord/session_test.cpp" "tests/CMakeFiles/coord_test.dir/coord/session_test.cpp.o" "gcc" "tests/CMakeFiles/coord_test.dir/coord/session_test.cpp.o.d"
  "/root/repo/tests/coord/store_test.cpp" "tests/CMakeFiles/coord_test.dir/coord/store_test.cpp.o" "gcc" "tests/CMakeFiles/coord_test.dir/coord/store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/md_coord.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
