
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/batcher_test.cpp" "tests/CMakeFiles/core_test.dir/core/batcher_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/batcher_test.cpp.o.d"
  "/root/repo/tests/core/cache_test.cpp" "tests/CMakeFiles/core_test.dir/core/cache_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cache_test.cpp.o.d"
  "/root/repo/tests/core/conflation_test.cpp" "tests/CMakeFiles/core_test.dir/core/conflation_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/conflation_test.cpp.o.d"
  "/root/repo/tests/core/registry_test.cpp" "tests/CMakeFiles/core_test.dir/core/registry_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/registry_test.cpp.o.d"
  "/root/repo/tests/core/sequencer_test.cpp" "tests/CMakeFiles/core_test.dir/core/sequencer_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sequencer_test.cpp.o.d"
  "/root/repo/tests/core/server_test.cpp" "tests/CMakeFiles/core_test.dir/core/server_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/server_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/md_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/md_client.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/md_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/md_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
