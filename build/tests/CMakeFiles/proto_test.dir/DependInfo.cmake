
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/proto/codec_test.cpp" "tests/CMakeFiles/proto_test.dir/proto/codec_test.cpp.o" "gcc" "tests/CMakeFiles/proto_test.dir/proto/codec_test.cpp.o.d"
  "/root/repo/tests/proto/fuzz_test.cpp" "tests/CMakeFiles/proto_test.dir/proto/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/proto_test.dir/proto/fuzz_test.cpp.o.d"
  "/root/repo/tests/proto/http_stream_test.cpp" "tests/CMakeFiles/proto_test.dir/proto/http_stream_test.cpp.o" "gcc" "tests/CMakeFiles/proto_test.dir/proto/http_stream_test.cpp.o.d"
  "/root/repo/tests/proto/websocket_test.cpp" "tests/CMakeFiles/proto_test.dir/proto/websocket_test.cpp.o" "gcc" "tests/CMakeFiles/proto_test.dir/proto/websocket_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/md_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
