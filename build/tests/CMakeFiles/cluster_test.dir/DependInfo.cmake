
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/cluster_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_test.cpp.o.d"
  "/root/repo/tests/cluster/determinism_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/determinism_test.cpp.o.d"
  "/root/repo/tests/cluster/node_unit_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/node_unit_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/node_unit_test.cpp.o.d"
  "/root/repo/tests/cluster/protocol_edge_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/protocol_edge_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/protocol_edge_test.cpp.o.d"
  "/root/repo/tests/cluster/replication_degree_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/replication_degree_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/replication_degree_test.cpp.o.d"
  "/root/repo/tests/cluster/tcp_host_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/tcp_host_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/tcp_host_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/md_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/md_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/md_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/md_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/md_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/md_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
