# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/coord_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/bench_support_test[1]_include.cmake")
