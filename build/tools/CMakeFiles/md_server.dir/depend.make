# Empty dependencies file for md_server.
# This may be replaced when dependencies are built.
