file(REMOVE_RECURSE
  "CMakeFiles/md_server.dir/md_server.cpp.o"
  "CMakeFiles/md_server.dir/md_server.cpp.o.d"
  "md_server"
  "md_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
