file(REMOVE_RECURSE
  "CMakeFiles/md_benchsub.dir/md_benchsub.cpp.o"
  "CMakeFiles/md_benchsub.dir/md_benchsub.cpp.o.d"
  "md_benchsub"
  "md_benchsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_benchsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
