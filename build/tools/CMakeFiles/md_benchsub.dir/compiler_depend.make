# Empty compiler generated dependencies file for md_benchsub.
# This may be replaced when dependencies are built.
