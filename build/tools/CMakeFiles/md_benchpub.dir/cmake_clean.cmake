file(REMOVE_RECURSE
  "CMakeFiles/md_benchpub.dir/md_benchpub.cpp.o"
  "CMakeFiles/md_benchpub.dir/md_benchpub.cpp.o.d"
  "md_benchpub"
  "md_benchpub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_benchpub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
