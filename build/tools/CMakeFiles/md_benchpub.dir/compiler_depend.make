# Empty compiler generated dependencies file for md_benchpub.
# This may be replaced when dependencies are built.
