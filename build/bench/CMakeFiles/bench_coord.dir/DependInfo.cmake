
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_coord.cpp" "bench/CMakeFiles/bench_coord.dir/bench_coord.cpp.o" "gcc" "bench/CMakeFiles/bench_coord.dir/bench_coord.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/md_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/md_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
