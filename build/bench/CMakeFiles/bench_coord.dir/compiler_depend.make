# Empty compiler generated dependencies file for bench_coord.
# This may be replaced when dependencies are built.
