file(REMOVE_RECURSE
  "CMakeFiles/bench_coord.dir/bench_coord.cpp.o"
  "CMakeFiles/bench_coord.dir/bench_coord.cpp.o.d"
  "bench_coord"
  "bench_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
