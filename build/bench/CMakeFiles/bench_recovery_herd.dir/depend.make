# Empty dependencies file for bench_recovery_herd.
# This may be replaced when dependencies are built.
