file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_herd.dir/bench_recovery_herd.cpp.o"
  "CMakeFiles/bench_recovery_herd.dir/bench_recovery_herd.cpp.o.d"
  "bench_recovery_herd"
  "bench_recovery_herd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_herd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
