# Empty dependencies file for bench_table1_vertical.
# This may be replaced when dependencies are built.
