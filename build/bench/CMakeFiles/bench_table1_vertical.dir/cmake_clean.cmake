file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vertical.dir/bench_table1_vertical.cpp.o"
  "CMakeFiles/bench_table1_vertical.dir/bench_table1_vertical.cpp.o.d"
  "bench_table1_vertical"
  "bench_table1_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
