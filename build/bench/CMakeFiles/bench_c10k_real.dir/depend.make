# Empty dependencies file for bench_c10k_real.
# This may be replaced when dependencies are built.
