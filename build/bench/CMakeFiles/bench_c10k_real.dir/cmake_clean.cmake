file(REMOVE_RECURSE
  "CMakeFiles/bench_c10k_real.dir/bench_c10k_real.cpp.o"
  "CMakeFiles/bench_c10k_real.dir/bench_c10k_real.cpp.o.d"
  "bench_c10k_real"
  "bench_c10k_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c10k_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
