# Empty compiler generated dependencies file for bench_c10m.
# This may be replaced when dependencies are built.
