file(REMOVE_RECURSE
  "CMakeFiles/bench_c10m.dir/bench_c10m.cpp.o"
  "CMakeFiles/bench_c10m.dir/bench_c10m.cpp.o.d"
  "bench_c10m"
  "bench_c10m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c10m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
