file(REMOVE_RECURSE
  "CMakeFiles/md_cluster.dir/node.cpp.o"
  "CMakeFiles/md_cluster.dir/node.cpp.o.d"
  "CMakeFiles/md_cluster.dir/tcp_host.cpp.o"
  "CMakeFiles/md_cluster.dir/tcp_host.cpp.o.d"
  "libmd_cluster.a"
  "libmd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
