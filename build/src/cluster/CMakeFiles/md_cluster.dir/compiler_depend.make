# Empty compiler generated dependencies file for md_cluster.
# This may be replaced when dependencies are built.
