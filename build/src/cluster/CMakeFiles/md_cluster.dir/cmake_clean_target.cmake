file(REMOVE_RECURSE
  "libmd_cluster.a"
)
