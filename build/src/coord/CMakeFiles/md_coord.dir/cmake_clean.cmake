file(REMOVE_RECURSE
  "CMakeFiles/md_coord.dir/codec.cpp.o"
  "CMakeFiles/md_coord.dir/codec.cpp.o.d"
  "CMakeFiles/md_coord.dir/node.cpp.o"
  "CMakeFiles/md_coord.dir/node.cpp.o.d"
  "CMakeFiles/md_coord.dir/store.cpp.o"
  "CMakeFiles/md_coord.dir/store.cpp.o.d"
  "libmd_coord.a"
  "libmd_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
