file(REMOVE_RECURSE
  "libmd_coord.a"
)
