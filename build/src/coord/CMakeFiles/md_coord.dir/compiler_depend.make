# Empty compiler generated dependencies file for md_coord.
# This may be replaced when dependencies are built.
