file(REMOVE_RECURSE
  "libmd_core.a"
)
