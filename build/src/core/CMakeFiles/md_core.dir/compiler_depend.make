# Empty compiler generated dependencies file for md_core.
# This may be replaced when dependencies are built.
