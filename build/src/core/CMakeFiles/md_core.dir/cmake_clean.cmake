file(REMOVE_RECURSE
  "CMakeFiles/md_core.dir/cache.cpp.o"
  "CMakeFiles/md_core.dir/cache.cpp.o.d"
  "CMakeFiles/md_core.dir/registry.cpp.o"
  "CMakeFiles/md_core.dir/registry.cpp.o.d"
  "CMakeFiles/md_core.dir/server.cpp.o"
  "CMakeFiles/md_core.dir/server.cpp.o.d"
  "libmd_core.a"
  "libmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
