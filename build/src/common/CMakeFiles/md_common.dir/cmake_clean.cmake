file(REMOVE_RECURSE
  "CMakeFiles/md_common.dir/histogram.cpp.o"
  "CMakeFiles/md_common.dir/histogram.cpp.o.d"
  "CMakeFiles/md_common.dir/logging.cpp.o"
  "CMakeFiles/md_common.dir/logging.cpp.o.d"
  "CMakeFiles/md_common.dir/sha1.cpp.o"
  "CMakeFiles/md_common.dir/sha1.cpp.o.d"
  "CMakeFiles/md_common.dir/status.cpp.o"
  "CMakeFiles/md_common.dir/status.cpp.o.d"
  "CMakeFiles/md_common.dir/strutil.cpp.o"
  "CMakeFiles/md_common.dir/strutil.cpp.o.d"
  "libmd_common.a"
  "libmd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
