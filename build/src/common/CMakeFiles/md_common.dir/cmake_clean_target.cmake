file(REMOVE_RECURSE
  "libmd_common.a"
)
