# Empty compiler generated dependencies file for md_common.
# This may be replaced when dependencies are built.
