
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/epoll_loop.cpp" "src/transport/CMakeFiles/md_transport.dir/epoll_loop.cpp.o" "gcc" "src/transport/CMakeFiles/md_transport.dir/epoll_loop.cpp.o.d"
  "/root/repo/src/transport/inproc.cpp" "src/transport/CMakeFiles/md_transport.dir/inproc.cpp.o" "gcc" "src/transport/CMakeFiles/md_transport.dir/inproc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
