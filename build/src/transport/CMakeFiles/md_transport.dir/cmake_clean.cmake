file(REMOVE_RECURSE
  "CMakeFiles/md_transport.dir/epoll_loop.cpp.o"
  "CMakeFiles/md_transport.dir/epoll_loop.cpp.o.d"
  "CMakeFiles/md_transport.dir/inproc.cpp.o"
  "CMakeFiles/md_transport.dir/inproc.cpp.o.d"
  "libmd_transport.a"
  "libmd_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
