file(REMOVE_RECURSE
  "libmd_transport.a"
)
