# Empty compiler generated dependencies file for md_transport.
# This may be replaced when dependencies are built.
