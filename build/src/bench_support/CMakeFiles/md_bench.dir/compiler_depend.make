# Empty compiler generated dependencies file for md_bench.
# This may be replaced when dependencies are built.
