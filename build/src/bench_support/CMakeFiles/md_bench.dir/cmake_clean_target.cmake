file(REMOVE_RECURSE
  "libmd_bench.a"
)
