file(REMOVE_RECURSE
  "CMakeFiles/md_bench.dir/engine_model.cpp.o"
  "CMakeFiles/md_bench.dir/engine_model.cpp.o.d"
  "libmd_bench.a"
  "libmd_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
