file(REMOVE_RECURSE
  "CMakeFiles/md_client.dir/client.cpp.o"
  "CMakeFiles/md_client.dir/client.cpp.o.d"
  "libmd_client.a"
  "libmd_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
