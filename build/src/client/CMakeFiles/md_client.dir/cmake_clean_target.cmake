file(REMOVE_RECURSE
  "libmd_client.a"
)
