# Empty compiler generated dependencies file for md_client.
# This may be replaced when dependencies are built.
