file(REMOVE_RECURSE
  "CMakeFiles/md_proto.dir/codec.cpp.o"
  "CMakeFiles/md_proto.dir/codec.cpp.o.d"
  "CMakeFiles/md_proto.dir/http_stream.cpp.o"
  "CMakeFiles/md_proto.dir/http_stream.cpp.o.d"
  "CMakeFiles/md_proto.dir/websocket.cpp.o"
  "CMakeFiles/md_proto.dir/websocket.cpp.o.d"
  "libmd_proto.a"
  "libmd_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
