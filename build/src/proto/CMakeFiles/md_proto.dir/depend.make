# Empty dependencies file for md_proto.
# This may be replaced when dependencies are built.
