file(REMOVE_RECURSE
  "libmd_proto.a"
)
