# Empty dependencies file for iot_telemetry.
# This may be replaced when dependencies are built.
