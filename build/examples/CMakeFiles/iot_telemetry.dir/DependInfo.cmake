
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/iot_telemetry.cpp" "examples/CMakeFiles/iot_telemetry.dir/iot_telemetry.cpp.o" "gcc" "examples/CMakeFiles/iot_telemetry.dir/iot_telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/md_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/md_client.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/md_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/md_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/md_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
