// Durability ablation benchmark (DESIGN.md §13).
//
// Part A — append-path overhead, real disk (PosixEnv, a temp dir):
//   cache append ns/op with the WAL off, and with each fsync policy
//   (os / group / always). This is the price of "ack implies durable".
//
// Part B — recovery-path ablation, simulated 3-server cluster (MemEnv WAL):
//   kill -9 one server mid-stream and restart it,
//     (a) volatile cache: the restarted node reconstructs its ENTIRE cache
//         from peers (the pre-WAL §5.2.2 path), vs
//     (b) durable cache: the node replays its local WAL and asks peers only
//         for the delta past its per-topic (epoch, seq) cursors.
//   The headline is peer-backfill volume (messages actually inserted from
//   CacheSyncResp) — local WAL + delta backfill must beat full peer
//   reconstruction — plus the WAL replay record count and wall time.
//
// Environment overrides:
//   MD_BENCH_DUR_APPENDS   Part A appends per policy   (default 4000)
//   MD_BENCH_DUR_MSGS      Part B publications         (default 600)
//   MD_BENCH_DUR_OUT       JSON output path (default BENCH_durability.json)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_support/table.hpp"
#include "cluster/sim_cluster.hpp"
#include "core/cache.hpp"
#include "wal/log.hpp"

using namespace md;
using namespace md::bench;

namespace {

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Message BenchMessage(std::uint64_t seq) {
  Message m;
  m.topic = "bench/" + std::to_string(seq % 8);
  m.payload.assign(256, static_cast<std::uint8_t>(seq));
  m.epoch = 1;
  m.seq = seq / 8 + 1;
  m.pubId = {0xBE7C4, seq};
  m.publishTs = static_cast<std::int64_t>(seq);
  return m;
}

// --- Part A ----------------------------------------------------------------

struct AppendResult {
  std::string policy;  // "off" | "os" | "group" | "always"
  double nsPerOp = 0;
  std::uint64_t appends = 0;
};

AppendResult RunAppend(const std::string& policy, long appends,
                       const std::string& dir) {
  AppendResult r;
  r.policy = policy;
  r.appends = static_cast<std::uint64_t>(appends);

  core::CacheConfig ccfg;
  ccfg.topicGroups = 8;
  core::Cache cache(ccfg);
  std::unique_ptr<wal::Log> log;
  if (policy != "off") {
    wal::WalConfig wcfg;
    wcfg.dir = dir + "/" + policy;
    wcfg.fsync = *wal::ParseFsyncPolicy(policy);
    log = std::make_unique<wal::Log>(wal::PosixEnv::Instance(), wcfg);
    cache.AttachWal(log.get());
  }

  // Advance the logical clock 100 us per append: messages round-robin over
  // 8 topic groups, so each group sees 0.8 ms between its own appends —
  // under the 5 ms flushInterval, so kGroupCommit genuinely batches syncs
  // instead of degenerating into kAlways.
  const double t0 = NowSec();
  for (long i = 0; i < appends; ++i) {
    cache.Append(BenchMessage(static_cast<std::uint64_t>(i)),
                 static_cast<TimePoint>(i) * (kMillisecond / 10));
  }
  if (log) log->Close();
  const double elapsed = NowSec() - t0;
  r.nsPerOp = elapsed * 1e9 / static_cast<double>(appends);
  return r;
}

// --- Part B ----------------------------------------------------------------

struct RecoveryResult {
  std::uint64_t published = 0;      // messages in every cache pre-crash
  std::uint64_t walRecovered = 0;   // records replayed from the local WAL
  std::uint64_t peerBackfilled = 0; // messages inserted from CacheSyncResp
  double walReplayMs = 0;           // WAL replay portion of the restart
  double restartWallMs = 0;         // host wall time, restart -> converged
  std::uint64_t finalCached = 0;    // victim's cache after convergence
};

RecoveryResult RunRecovery(bool durable, long msgs) {
  RecoveryResult r;
  sim::Scheduler sched;
  cluster::SimCluster::Options o;
  o.servers = 3;
  o.seed = 42;
  o.durableCache = durable;
  o.nodeConfig.topicGroups = 8;
  o.nodeConfig.wal.fsync = wal::FsyncPolicy::kAlways;
  o.nodeConfig.wal.segmentBytes = 256 * 1024;
  o.nodeConfig.wal.retainSegments = 64;
  cluster::SimCluster cluster(sched, o);
  cluster.StartAll();
  sched.RunFor(2 * kSecond);  // membership + gossip settle

  // Publish through server 0's real client path (acks to the phantom
  // handle are dropped by the sim env; sequencing/broadcast is the same).
  cluster.node(0).OnClientConnect(1, "bench-pub");
  for (long i = 0; i < msgs; ++i) {
    PublishFrame pub;
    pub.topic = "bench/" + std::to_string(i % 8);
    pub.payload.assign(256, static_cast<std::uint8_t>(i));
    pub.pubId = {0xBE7C4, static_cast<std::uint64_t>(i + 1)};
    pub.wantAck = false;
    cluster.node(0).OnClientFrame(1, Frame(pub));
    sched.RunFor(2 * kMillisecond);
  }
  sched.RunFor(2 * kSecond);
  r.published = cluster.node(1).cache().TotalMessages();

  cluster.CrashServer(1);
  sched.RunFor(500 * kMillisecond);

  const double t0 = NowSec();
  cluster.RestartServer(1);   // WAL replay happens synchronously in here
  const double t1 = NowSec();
  sched.RunFor(5 * kSecond);  // peer sync + convergence
  const double t2 = NowSec();

  const auto& rec = cluster.node(1).lastWalRecovery();
  r.walRecovered = rec.records;
  r.walReplayMs = (t1 - t0) * 1e3;
  r.restartWallMs = (t2 - t0) * 1e3;
  r.peerBackfilled = cluster.node(1).stats().recoveredMessages;
  r.finalCached = cluster.node(1).cache().TotalMessages();
  return r;
}

void PrintRecovery(const char* label, const RecoveryResult& r) {
  std::printf(
      "%-8s | pre-crash cached %llu | wal replayed %llu (%.2f ms) | "
      "peer backfilled %llu | restart wall %.2f ms | final cached %llu\n",
      label, static_cast<unsigned long long>(r.published),
      static_cast<unsigned long long>(r.walRecovered), r.walReplayMs,
      static_cast<unsigned long long>(r.peerBackfilled), r.restartWallMs,
      static_cast<unsigned long long>(r.finalCached));
}

}  // namespace

int main() {
  const long appends = std::max(500L, EnvLong("MD_BENCH_DUR_APPENDS", 4000));
  const long msgs = std::max(100L, EnvLong("MD_BENCH_DUR_MSGS", 600));
  const char* outPath = std::getenv("MD_BENCH_DUR_OUT");
  if (outPath == nullptr) outPath = "BENCH_durability.json";

  // --- Part A: append overhead per fsync policy (real disk) ---------------
  char dirTemplate[] = "/tmp/md_bench_durXXXXXX";
  const char* dir = mkdtemp(dirTemplate);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  std::printf("=== Part A: cache append ns/op, %ld appends, 256 B payload "
              "(dir %s) ===\n", appends, dir);
  std::vector<AppendResult> appendResults;
  for (const char* policy : {"off", "os", "group", "always"}) {
    appendResults.push_back(RunAppend(policy, appends, dir));
    std::printf("  fsync=%-7s %10.0f ns/op\n", appendResults.back().policy.c_str(),
                appendResults.back().nsPerOp);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // --- Part B: recovery ablation ------------------------------------------
  std::printf("\n=== Part B: kill -9 + restart of one of 3 servers, %ld "
              "publications ===\n", msgs);
  const RecoveryResult fullRebuild = RunRecovery(/*durable=*/false, msgs);
  PrintRecovery("volatile", fullRebuild);
  const RecoveryResult walDelta = RunRecovery(/*durable=*/true, msgs);
  PrintRecovery("wal", walDelta);

  std::vector<ShapeCheck> checks;
  checks.push_back({"volatile: rebuilds everything from peers",
                    static_cast<double>(fullRebuild.published),
                    static_cast<double>(fullRebuild.peerBackfilled),
                    fullRebuild.peerBackfilled >= fullRebuild.published});
  checks.push_back({"wal: local replay recovers the bulk", 1.0,
                    static_cast<double>(walDelta.walRecovered),
                    walDelta.walRecovered >= 1});
  checks.push_back({"wal: delta backfill beats full reconstruction",
                    static_cast<double>(fullRebuild.peerBackfilled),
                    static_cast<double>(walDelta.peerBackfilled),
                    walDelta.peerBackfilled < fullRebuild.peerBackfilled});
  checks.push_back({"both: victim converges to the full stream",
                    static_cast<double>(fullRebuild.published),
                    static_cast<double>(walDelta.finalCached),
                    walDelta.finalCached >= fullRebuild.published &&
                        fullRebuild.finalCached >= fullRebuild.published});
  PrintShapeChecks(checks);

  std::FILE* f = std::fopen(outPath, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"durability\",\n"
               "  \"config\": {\"appends\": %ld, \"payload_bytes\": 256, "
               "\"recovery_publications\": %ld},\n"
               "  \"append_ns_per_op\": {",
               appends, msgs);
  for (std::size_t i = 0; i < appendResults.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.0f", i ? ", " : "",
                 appendResults[i].policy.c_str(), appendResults[i].nsPerOp);
  }
  std::fprintf(f, "},\n");
  const auto writeRecovery = [f](const char* key, const RecoveryResult& r,
                                 bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\"pre_crash_cached\": %llu, "
                 "\"wal_replayed\": %llu, \"wal_replay_ms\": %.3f, "
                 "\"peer_backfilled\": %llu, \"restart_wall_ms\": %.3f, "
                 "\"final_cached\": %llu}%s\n",
                 key, static_cast<unsigned long long>(r.published),
                 static_cast<unsigned long long>(r.walRecovered),
                 r.walReplayMs,
                 static_cast<unsigned long long>(r.peerBackfilled),
                 r.restartWallMs,
                 static_cast<unsigned long long>(r.finalCached),
                 comma ? "," : "");
  };
  writeRecovery("recovery_volatile", fullRebuild, true);
  writeRecovery("recovery_wal_delta", walDelta, false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", outPath);

  bool ok = true;
  for (const auto& c : checks) ok = ok && c.pass;
  return ok ? 0 : 1;
}
