// Ablation: topic-group sharding and thread counts (paper §4, §5.2.1).
//
// Two design claims are measured:
//   1. "Cache data structures for each group are locked independently" —
//      concurrent writers to a cache sharded into G groups contend less as
//      G grows. Measured with real Cache instances and real threads.
//   2. IoThread/Worker counts are "configurable up to the number of
//      available CPUs", which is "the foundation for allowing the I/O layer
//      to scale up vertically" — measured as delivered-latency/CPU of the
//      calibrated engine model at 500 K subscribers as the core count grows.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_support/engine_model.hpp"
#include "bench_support/table.hpp"
#include "core/cache.hpp"

using namespace md;
using namespace md::core;

namespace {

/// Wall time for kThreads writers appending to distinct topics through one
/// shared cache configured with `groups` topic groups.
double CacheContentionSeconds(std::uint32_t groups, int threads, int perThread) {
  CacheConfig cfg;
  cfg.topicGroups = groups;
  cfg.maxMessagesPerTopic = 64;
  Cache cache(cfg);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, t, perThread] {
      Message m;
      m.epoch = 1;
      // 8 distinct topics per thread spread across groups.
      for (int i = 0; i < perThread; ++i) {
        m.topic = "t" + std::to_string(t) + "-" + std::to_string(i % 8);
        m.seq = static_cast<std::uint64_t>(i / 8 + 1);
        m.payload.assign(64, static_cast<std::uint8_t>(i));
        cache.Append(m);
      }
    });
  }
  for (auto& w : workers) w.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Ablation: topic-group sharding & thread scaling (paper §4) ===\n\n");

  // --- 1. cache sharding under concurrent writers -----------------------------
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150'000;
  std::printf("Cache write contention: %d writer threads x %d appends\n", kThreads,
              kPerThread);
  std::printf("%-14s %12s %16s\n", "topic-groups", "seconds", "appends/sec");
  double secs1 = 0, secs100 = 0;
  for (const std::uint32_t groups : {1u, 4u, 16u, 100u}) {
    // Best of 3 to de-noise scheduling.
    double best = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, CacheContentionSeconds(groups, kThreads, kPerThread));
    }
    if (groups == 1) secs1 = best;
    if (groups == 100) secs100 = best;
    std::printf("%-14u %12.3f %16.0f\n", groups, best,
                kThreads * kPerThread / best);
  }

  // --- 2. thread-count (vertical) scaling of the engine -----------------------
  std::printf("\nEngine thread scaling at 500K subscribers (model, 60 s):\n");
  md::bench::PrintLatencyTableHeader("Threads");
  double mean1 = 0, mean16 = 0;
  for (const int cores : {1, 2, 4, 8, 16}) {
    md::bench::EngineModelConfig cfg;
    cfg.cores = cores;
    cfg.gcEnabled = false;  // isolate the threading effect
    md::bench::EngineModel model(cfg, 55);
    const auto r = model.Run(/*topics=*/50, /*subscribersPerTopic=*/10'000,
                             kSecond, /*warmup=*/10 * kSecond,
                             /*duration=*/60 * kSecond);
    if (cores == 1) mean1 = r.latency.meanMs;
    if (cores == 16) mean16 = r.latency.meanMs;
    md::bench::PrintLatencyRow({std::to_string(cores), r.latency,
                                r.cpuFraction * 100.0, r.gbpsOut, 50});
  }

  std::vector<md::bench::ShapeCheck> checks;
  checks.push_back({"sharded cache (100 groups) >= unsharded throughput", 0,
                    secs1 / secs100, secs100 <= secs1 * 1.10});
  checks.push_back({"more threads cut fan-out latency: mean(1)/mean(16) > 2",
                    0, mean1 / mean16, mean1 / mean16 > 2.0});
  md::bench::PrintShapeChecks(checks);
  return 0;
}
