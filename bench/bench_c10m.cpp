// C10M footprint bench (paper §6.1, [16]): 10 million concurrent clients on
// a single server, each the sole subscriber of its own topic. At that scale
// the binding constraint is BYTES PER SESSION, so this bench is honest about
// it: instead of only running the calibrated latency model, it allocates N
// REAL sessions — same `core::Session` struct, same slab allocator, same
// `SessionTable`, real subscriptions through the real
// `SubscriptionRegistry` — and reports measured RSS and slab-accounted
// bytes/session against a hard budget.
//
// Legs:
//   1. footprint   N real sessions + subscriptions; VmRSS delta and exact
//                  slab/registry/table accounting; budget gate.
//   2. churn       drop and re-admit 10% of the population; slab occupancy
//                  and chunk count must return to the pre-churn level
//                  (steady-state churn allocates nothing new).
//   3. latency     the calibrated fan-out model at 10M clients (unchanged:
//                  same engine constants as Table 1; the reference blog post
//                  reports 61 ms mean with the stock JVM).
//   4. smoke       a small real-socket population through the real engine,
//                  backend selected by --event-loop epoll|uring (or
//                  MD_BENCH_EVENT_LOOP), scraping md_core_bytes_per_session
//                  from the live registry.
//
// Environment overrides:
//   MD_BENCH_C10M_SESSIONS  footprint population   (default 1,000,000;
//                           scale up to 10M when the machine has the RAM)
//   MD_BENCH_C10M_BUDGET    engine bytes/session budget (default 1024)
//   MD_BENCH_C10M_SMOKE     smoke-leg client count (default 200; 0 skips)
//   MD_BENCH_SECONDS / MD_BENCH_WARMUP   model leg, simulated seconds
//   MD_BENCH_C10M_OUT       JSON output path (default BENCH_c10m.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "bench_support/engine_model.hpp"
#include "bench_support/table.hpp"
#include "client/client.hpp"
#include "common/histogram.hpp"
#include "common/slab.hpp"
#include "common/topic_intern.hpp"
#include "core/registry.hpp"
#include "core/server.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "transport/epoll_loop.hpp"

using namespace md;
using namespace md::bench;
using namespace std::chrono_literals;

namespace {

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

Duration EnvSeconds(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return (v ? std::atol(v) : fallback) * kSecond;
}

LoopKind PickEventLoop(int argc, char** argv) {
  const char* name = std::getenv("MD_BENCH_EVENT_LOOP");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--event-loop") == 0) name = argv[i + 1];
  }
  if (name == nullptr) return LoopKind::kEpoll;
  const auto kind = ParseLoopKind(name);
  if (!kind) {
    std::fprintf(stderr, "unknown event loop '%s' (want epoll|uring)\n", name);
    std::exit(2);
  }
  return *kind;
}

/// VmRSS in bytes from /proc/self/status (Linux-only, like the transport).
std::uint64_t ReadRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

std::string TopicName(long i) { return "c10m/topic-" + std::to_string(i); }

/// Engine-accounted footprint: slab bytes (sessions + registry FlatMap
/// arrays + SmallVector spill all draw from the arena, so one number covers
/// them without double counting) plus the two estimated non-slab tables.
/// Mirrors core::Server::RefreshBytesPerSession.
std::uint64_t EngineBytes(const core::SessionTable& table) {
  return SlabArena::Default().Stats().bytesInUse + table.MemoryBytes() +
         TopicTable::Default().MemoryBytes();
}

struct FootprintResult {
  long sessions = 0;
  std::uint64_t rssBefore = 0;
  std::uint64_t rssAfter = 0;
  std::uint64_t engineBytes = 0;
  SlabStats slab;
  core::RegistryFootprint registry;
  std::uint64_t sessionTableBytes = 0;
  std::uint64_t topicTableBytes = 0;
  double rssPerSession = 0;
  double bytesPerSession = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const LoopKind loopKind = PickEventLoop(argc, argv);
  const long sessions = std::max(1L, EnvLong("MD_BENCH_C10M_SESSIONS", 1'000'000));
  const long budget = EnvLong("MD_BENCH_C10M_BUDGET", 1024);
  const long smokeClients = EnvLong("MD_BENCH_C10M_SMOKE", 200);
  const Duration measure = EnvSeconds("MD_BENCH_SECONDS", 600);
  const Duration warmup = EnvSeconds("MD_BENCH_WARMUP", 120);
  const char* outPath = std::getenv("MD_BENCH_C10M_OUT");
  if (outPath == nullptr) outPath = "BENCH_c10m.json";

  std::printf(
      "=== C10M: millions of concurrent clients, single server ===\n"
      "Footprint: %ld REAL sessions (slab-allocated core::Session, real\n"
      "SubscriptionRegistry, each client sole subscriber of its own topic),\n"
      "budget %ld B/session. Latency: calibrated model at 10M clients.\n\n",
      sessions, budget);

  // ---- Leg 1: footprint -------------------------------------------------
  core::SessionTable table;
  core::SubscriptionRegistry registry;

  FootprintResult fp;
  fp.sessions = sessions;
  fp.rssBefore = ReadRssBytes();
  const SlabStats baseline = SlabArena::Default().Stats();
  const auto allocStart = std::chrono::steady_clock::now();
  for (long i = 0; i < sessions; ++i) {
    const core::ClientHandle handle = static_cast<core::ClientHandle>(i + 1);
    core::SessionPtr s = core::MakeSession();
    s->handle = handle;
    s->ioIndex = static_cast<std::size_t>(i) & 1u;
    s->workerIndex = static_cast<std::size_t>(i) & 1u;
    s->clientId = "c" + std::to_string(handle);  // SSO: no heap string
    table.Insert(s);  // the table's shared_ptr is the only long-lived ref
    registry.Subscribe(TopicName(i), handle);
    if ((i + 1) % 1'000'000 == 0) {
      std::printf("  ... %ldM sessions, slab %.1f MiB in use\n", (i + 1) / 1'000'000,
                  SlabArena::Default().Stats().bytesInUse / 1048576.0);
    }
  }
  const double allocSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - allocStart)
          .count();

  fp.rssAfter = ReadRssBytes();
  fp.slab = SlabArena::Default().Stats();
  fp.registry = registry.Footprint();
  fp.sessionTableBytes = table.MemoryBytes();
  fp.topicTableBytes = TopicTable::Default().MemoryBytes();
  fp.engineBytes = EngineBytes(table);
  fp.rssPerSession =
      static_cast<double>(fp.rssAfter - fp.rssBefore) / static_cast<double>(sessions);
  fp.bytesPerSession =
      static_cast<double>(fp.engineBytes) / static_cast<double>(sessions);

  std::printf(
      "allocated %ld sessions + subscriptions in %.1f s (%.0f/s)\n"
      "  RSS            %.1f MiB -> %.1f MiB  (%.0f B/session)\n"
      "  slab in use    %.1f MiB in %llu slots, %llu chunks (%.1f MiB reserved)\n"
      "  slab oversize  %llu allocations, %.1f MiB\n"
      "  registry       %zu topics, %zu clients, %.1f MiB (slab-backed)\n"
      "  session table  %.1f MiB   topic intern  %.1f MiB (%zu ids)\n"
      "  engine bytes/session: %.0f (budget %ld)\n\n",
      sessions, allocSecs, sessions / allocSecs,
      fp.rssBefore / 1048576.0, fp.rssAfter / 1048576.0, fp.rssPerSession,
      fp.slab.bytesInUse / 1048576.0,
      static_cast<unsigned long long>(fp.slab.slotsInUse),
      static_cast<unsigned long long>(fp.slab.chunks),
      fp.slab.bytesReserved / 1048576.0,
      static_cast<unsigned long long>(fp.slab.oversize),
      fp.slab.oversizeBytes / 1048576.0, fp.registry.topicEntries,
      fp.registry.clientEntries, fp.registry.bytes / 1048576.0,
      fp.sessionTableBytes / 1048576.0, fp.topicTableBytes / 1048576.0,
      TopicTable::Default().Size(), fp.bytesPerSession, budget);

  // ---- Leg 2: churn -----------------------------------------------------
  // Drop the last 10% and re-admit the same count under fresh handles
  // (re-subscribing to the dropped topics — ids are already interned). A
  // slab that actually recycles shows the same occupancy and chunk count;
  // a leak shows monotonic growth here long before it shows at 10M.
  const long churn = std::max(1L, sessions / 10);
  const SlabStats preChurn = SlabArena::Default().Stats();
  for (long i = sessions - churn; i < sessions; ++i) {
    const core::ClientHandle handle = static_cast<core::ClientHandle>(i + 1);
    registry.DropClient(handle);
    table.Erase(handle);  // last ref: Session returns to the slab freelist
  }
  const SlabStats dropped = SlabArena::Default().Stats();
  for (long i = sessions - churn; i < sessions; ++i) {
    const core::ClientHandle handle = static_cast<core::ClientHandle>(sessions + (i + 1));
    core::SessionPtr s = core::MakeSession();
    s->handle = handle;
    s->clientId = "c" + std::to_string(handle);
    table.Insert(s);
    registry.Subscribe(TopicName(i), handle);
  }
  const SlabStats postChurn = SlabArena::Default().Stats();
  const bool churnSlotsOk = postChurn.slotsInUse == preChurn.slotsInUse;
  const bool churnChunksOk = postChurn.chunks == preChurn.chunks;
  std::printf(
      "churn %ld sessions: slots %llu -> %llu -> %llu, chunks %llu -> %llu "
      "(%s)\n\n",
      churn, static_cast<unsigned long long>(preChurn.slotsInUse),
      static_cast<unsigned long long>(dropped.slotsInUse),
      static_cast<unsigned long long>(postChurn.slotsInUse),
      static_cast<unsigned long long>(preChurn.chunks),
      static_cast<unsigned long long>(postChurn.chunks),
      churnSlotsOk && churnChunksOk ? "recycled" : "LEAKED");

  // Release the footprint population before the model + smoke legs.
  for (long i = 0; i < sessions; ++i) {
    registry.DropClient(static_cast<core::ClientHandle>(i + 1));
  }
  table.Clear();

  // ---- Leg 3: calibrated latency model at 10M ---------------------------
  constexpr std::uint32_t kModelClients = 10'000'000;
  EngineModelConfig modelCfg;
  modelCfg.payloadBytes = 512;
  EngineModel model(modelCfg, /*seed=*/424242);
  const auto r = model.Run(/*topics=*/kModelClients,
                           /*subscribersPerTopic=*/1,
                           /*publishInterval=*/kMinute, warmup, measure,
                           /*latencySamplesPerFanout=*/16);
  PrintLatencyTableHeader("Clients");
  PrintLatencyRow({"10M", r.latency, r.cpuFraction * 100.0, r.gbpsOut,
                   static_cast<int>(kModelClients)});
  const double rate =
      static_cast<double>(r.deliveries) / ToSeconds(warmup + measure);

  // ---- Leg 4: real-engine smoke on the selected backend -----------------
  std::uint64_t smokeExpected = 0;
  std::atomic<std::uint64_t> smokeReceived{0};
  double liveBytesPerSession = 0;
  bool smokeRan = false;
  if (smokeClients > 0) {
    smokeRan = true;
    constexpr int kSmokeTopics = 10;
    constexpr long kSmokeBursts = 3;
    std::printf("\nsmoke: %ld live clients through the real %s engine\n",
                smokeClients, LoopKindName(loopKind));

    obs::MetricsRegistry metrics;
    core::ServerConfig serverCfg;
    serverCfg.ioThreads = 2;
    serverCfg.workers = 2;
    serverCfg.serverId = "c10m";
    serverCfg.eventLoop = loopKind;
    serverCfg.metrics = &metrics;
    core::Server server(serverCfg);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "smoke server start failed\n");
      return 1;
    }

    EpollLoop loop;  // client side always pumps on epoll
    std::thread loopThread([&loop] { loop.Run(); });
    std::atomic<long> connected{0};
    std::vector<std::unique_ptr<client::Client>> subs;
    Rng rng(7);
    for (long c = 0; c < smokeClients; ++c) {
      client::ClientConfig cfg;
      cfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
      cfg.clientId = "c10m-smoke-" + std::to_string(c);
      cfg.seed = rng.Next();
      cfg.autoReconnect = false;
      auto sub = std::make_unique<client::Client>(loop, cfg);
      auto* subPtr = sub.get();
      const std::string topic = TopicName(c % kSmokeTopics);
      loop.Post([&connected, &smokeReceived, subPtr, topic] {
        subPtr->SetConnectionListener([&connected](bool up) {
          if (up) connected.fetch_add(1);
        });
        subPtr->Subscribe(topic, [&smokeReceived](const Message&) {
          smokeReceived.fetch_add(1);
        });
        subPtr->Start();
      });
      subs.push_back(std::move(sub));
    }
    const auto connectStart = std::chrono::steady_clock::now();
    while (connected.load() < smokeClients &&
           std::chrono::steady_clock::now() - connectStart < 60s) {
      std::this_thread::sleep_for(5ms);
    }

    client::ClientConfig pubCfg;
    pubCfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
    pubCfg.clientId = "c10m-smoke-pub";
    pubCfg.seed = 2;
    client::Client pub(loop, pubCfg);
    loop.Post([&pub] { pub.Start(); });
    while (!pub.IsConnected()) std::this_thread::sleep_for(1ms);

    smokeExpected = static_cast<std::uint64_t>(connected.load()) *
                    static_cast<std::uint64_t>(kSmokeBursts);
    const auto publishStart = std::chrono::steady_clock::now();
    for (long b = 0; b < kSmokeBursts; ++b) {
      loop.Post([&pub] {
        for (int t = 0; t < kSmokeTopics; ++t) {
          pub.Publish(TopicName(t), Bytes(512, 0x42));
        }
      });
      std::this_thread::sleep_for(50ms);
    }
    while (smokeReceived.load() < smokeExpected &&
           std::chrono::steady_clock::now() - publishStart < 30s) {
      std::this_thread::sleep_for(5ms);
    }

    // The live gauge the /metrics endpoint exposes, refreshed by Stats().
    (void)server.Stats();
    liveBytesPerSession = metrics.Snapshot().Value("md_core_bytes_per_session",
                                                   "server=\"c10m\"");
    std::printf("smoke: delivered %llu/%llu on %s, live "
                "md_core_bytes_per_session %.0f\n",
                static_cast<unsigned long long>(smokeReceived.load()),
                static_cast<unsigned long long>(smokeExpected),
                LoopKindName(loopKind), liveBytesPerSession);

    for (auto& sub : subs) loop.Post([s = sub.get()] { s->Stop(); });
    loop.Post([&pub] { pub.Stop(); });
    std::this_thread::sleep_for(100ms);
    loop.Stop();
    loopThread.join();
    server.Stop();
  }

  // ---- Shape checks + JSON ----------------------------------------------
  std::vector<ShapeCheck> checks;
  checks.push_back({"bytes/session within budget", static_cast<double>(budget),
                    fp.bytesPerSession, fp.bytesPerSession <= budget});
  // Sessions and registry nodes must be slab-served; the only allocations
  // allowed above the largest class are the FlatMap backing arrays — a few
  // per registry shard, independent of the session count.
  const std::uint64_t oversizeGrowth = fp.slab.oversize - baseline.oversize;
  checks.push_back({"oversize allocations are O(1) tables, not O(N) sessions",
                    256, static_cast<double>(oversizeGrowth),
                    oversizeGrowth <= 256});
  checks.push_back({"churn performs no oversize (heap) allocations",
                    static_cast<double>(preChurn.oversize),
                    static_cast<double>(postChurn.oversize),
                    postChurn.oversize == preChurn.oversize});
  checks.push_back({"slab occupancy recycled across churn",
                    static_cast<double>(preChurn.slotsInUse),
                    static_cast<double>(postChurn.slotsInUse), churnSlotsOk});
  checks.push_back({"no new chunks during churn",
                    static_cast<double>(preChurn.chunks),
                    static_cast<double>(postChurn.chunks), churnChunksOk});
  checks.push_back({"~166,667 deliveries/s sustained (model)", 166'667, rate,
                    rate > 150'000 && rate < 180'000});
  checks.push_back({"outgoing traffic ~ 1 Gbps (model)", 0.95, r.gbpsOut,
                    r.gbpsOut > 0.7 && r.gbpsOut < 1.2});
  checks.push_back({"mean latency within web-acceptable range (< 100 ms)",
                    61.0, r.latency.meanMs, r.latency.meanMs < 100.0});
  if (smokeRan) {
    checks.push_back({"smoke: every notification delivered",
                      static_cast<double>(smokeExpected),
                      static_cast<double>(smokeReceived.load()),
                      smokeReceived.load() == smokeExpected});
  }
  PrintShapeChecks(checks);

  std::FILE* f = std::fopen(outPath, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"c10m\",\n"
      "  \"config\": {\"sessions\": %ld, \"budget_bytes_per_session\": %ld, "
      "\"event_loop\": \"%s\"},\n"
      "  \"footprint\": {\n"
      "    \"sessions\": %ld,\n"
      "    \"alloc_per_sec\": %.0f,\n"
      "    \"rss_before_bytes\": %llu,\n"
      "    \"rss_after_bytes\": %llu,\n"
      "    \"rss_bytes_per_session\": %.1f,\n"
      "    \"engine_bytes\": %llu,\n"
      "    \"engine_bytes_per_session\": %.1f,\n"
      "    \"slab_bytes_in_use\": %llu,\n"
      "    \"slab_bytes_reserved\": %llu,\n"
      "    \"slab_slots_in_use\": %llu,\n"
      "    \"slab_chunks\": %llu,\n"
      "    \"slab_oversize\": %llu,\n"
      "    \"registry_bytes\": %zu,\n"
      "    \"session_table_bytes\": %llu,\n"
      "    \"topic_table_bytes\": %llu,\n"
      "    \"budget_ok\": %s\n"
      "  },\n"
      "  \"churn\": {\"sessions\": %ld, \"slots_recycled\": %s, "
      "\"chunks_stable\": %s},\n"
      "  \"model_10m\": {\n"
      "    \"deliveries_per_sec\": %.0f,\n"
      "    \"gbps_out\": %.3f,\n"
      "    \"cpu_fraction\": %.3f,\n"
      "    \"mean_ms\": %.2f,\n"
      "    \"median_ms\": %.2f,\n"
      "    \"p99_ms\": %.2f\n"
      "  },\n",
      sessions, budget, LoopKindName(loopKind), fp.sessions,
      sessions / allocSecs, static_cast<unsigned long long>(fp.rssBefore),
      static_cast<unsigned long long>(fp.rssAfter), fp.rssPerSession,
      static_cast<unsigned long long>(fp.engineBytes), fp.bytesPerSession,
      static_cast<unsigned long long>(fp.slab.bytesInUse),
      static_cast<unsigned long long>(fp.slab.bytesReserved),
      static_cast<unsigned long long>(fp.slab.slotsInUse),
      static_cast<unsigned long long>(fp.slab.chunks),
      static_cast<unsigned long long>(fp.slab.oversize),
      fp.registry.bytes, static_cast<unsigned long long>(fp.sessionTableBytes),
      static_cast<unsigned long long>(fp.topicTableBytes),
      fp.bytesPerSession <= budget ? "true" : "false", churn,
      churnSlotsOk ? "true" : "false", churnChunksOk ? "true" : "false", rate,
      r.gbpsOut, r.cpuFraction, r.latency.meanMs, r.latency.medianMs,
      r.latency.p99Ms);
  if (smokeRan) {
    std::fprintf(f,
                 "  \"smoke\": {\"clients\": %ld, \"event_loop\": \"%s\", "
                 "\"expected\": %llu, \"delivered\": %llu, "
                 "\"live_bytes_per_session\": %.0f}\n}\n",
                 smokeClients, LoopKindName(loopKind),
                 static_cast<unsigned long long>(smokeExpected),
                 static_cast<unsigned long long>(smokeReceived.load()),
                 liveBytesPerSession);
  } else {
    std::fprintf(f, "  \"smoke\": \"skipped\"\n}\n");
  }
  std::fclose(f);
  std::printf("\nwrote %s\n", outPath);

  bool ok = fp.bytesPerSession <= budget && churnSlotsOk && churnChunksOk;
  if (smokeRan) ok = ok && smokeReceived.load() == smokeExpected;
  return ok ? 0 : 1;
}
