// Reproduces the C10M supplementary experiment (paper §6.1, [16]):
// 10 million concurrent clients on a single server, each the sole subscriber
// of its own topic, receiving one 512-byte message per minute — about
// 166,667 deliveries/s and ~0.95 Gbps of outgoing traffic.
//
// Runs the calibrated fan-out model (DESIGN.md §1). Same engine constants as
// Table 1; only the workload differs. The reference blog post reports a mean
// latency of 61 ms with the stock JVM in this scenario.
#include <cstdio>
#include <cstdlib>

#include "bench_support/engine_model.hpp"
#include "bench_support/table.hpp"

using namespace md;
using namespace md::bench;

namespace {

Duration EnvSeconds(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return (v ? std::atol(v) : fallback) * kSecond;
}

}  // namespace

int main() {
  const Duration measure = EnvSeconds("MD_BENCH_SECONDS", 600);
  const Duration warmup = EnvSeconds("MD_BENCH_WARMUP", 120);

  constexpr std::uint32_t kClients = 10'000'000;

  std::printf(
      "=== C10M: 10 M concurrent clients, single server (supplementary) ===\n"
      "Workload: each client alone on its own topic, 1 msg/min, 512 B;\n"
      "=> ~166,667 deliveries/s, ~0.95 Gbps. Warm-up %.0f s, measure %.0f s.\n\n",
      ToSeconds(warmup), ToSeconds(measure));

  EngineModelConfig cfg;
  cfg.payloadBytes = 512;
  // Higher per-message wire overhead share is amortized identically.
  EngineModel model(cfg, /*seed=*/424242);
  const auto r = model.Run(/*topics=*/kClients,
                           /*subscribersPerTopic=*/1,
                           /*publishInterval=*/kMinute, warmup, measure,
                           /*latencySamplesPerFanout=*/16);

  PrintLatencyTableHeader("Clients");
  PrintLatencyRow({"10M", r.latency, r.cpuFraction * 100.0, r.gbpsOut,
                   static_cast<int>(kClients)});

  const double rate =
      static_cast<double>(r.deliveries) / ToSeconds(warmup + measure);
  std::vector<ShapeCheck> checks;
  checks.push_back({"~166,667 deliveries/s sustained", 166'667, rate,
                    rate > 150'000 && rate < 180'000});
  checks.push_back({"outgoing traffic ~ 1 Gbps", 0.95, r.gbpsOut,
                    r.gbpsOut > 0.7 && r.gbpsOut < 1.2});
  checks.push_back({"mean latency within web-acceptable range (< 100 ms)",
                    61.0, r.latency.meanMs, r.latency.meanMs < 100.0});
  checks.push_back({"CPU well below saturation (headroom for C10M)", 0.0,
                    r.cpuFraction * 100.0, r.cpuFraction < 0.6});
  PrintShapeChecks(checks);
  return 0;
}
