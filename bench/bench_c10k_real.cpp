// Real-socket C10K demonstration (paper §1: "the ability to support 10,000
// concurrent clients on a single server was informally defined as the C10K
// problem in the late 1990s").
//
// Unlike the C1M/C10M benches — which must model the paper's 16-core/10 GbE
// testbed — this one is entirely real: it opens thousands of live loopback
// TCP connections to the real epoll engine (IoThreads + Workers), subscribes
// each to one of 10 topics, publishes a burst through the real protocol and
// measures actual end-to-end delivery latency on this machine.
//
// Client connections are plain sockets driven by a minimal inline pump (the
// full client library would be overkill at this count); the server side is
// exactly the production engine. MD_BENCH_CLIENTS overrides the population;
// `--event-loop epoll|uring` (or MD_BENCH_EVENT_LOOP) selects the server's
// backend via ServerConfig::eventLoop.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_support/table.hpp"
#include "client/client.hpp"
#include "transport/epoll_loop.hpp"
#include "common/histogram.hpp"
#include "core/server.hpp"
#include "obs/metrics.hpp"

using namespace md;
using namespace md::bench;
using namespace std::chrono_literals;

namespace {

constexpr int kTopics = 10;

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

// `--event-loop epoll|uring` beats MD_BENCH_EVENT_LOOP beats epoll. An
// unparseable name is a usage error, not a silent fallback.
LoopKind PickEventLoop(int argc, char** argv) {
  const char* name = std::getenv("MD_BENCH_EVENT_LOOP");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--event-loop") == 0) name = argv[i + 1];
  }
  if (name == nullptr) return LoopKind::kEpoll;
  const auto kind = ParseLoopKind(name);
  if (!kind) {
    std::fprintf(stderr, "unknown event loop '%s' (want epoll|uring)\n", name);
    std::exit(2);
  }
  return *kind;
}

}  // namespace

int main(int argc, char** argv) {
  const LoopKind loopKind = PickEventLoop(argc, argv);
  // Both connection ends live in this one process, so each client costs two
  // descriptors. Raise the soft fd limit to the hard limit and size the
  // population to fit (10,000 when the environment allows).
  rlimit limit{};
  getrlimit(RLIMIT_NOFILE, &limit);
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
    getrlimit(RLIMIT_NOFILE, &limit);
  }
  const long fdBudget = static_cast<long>(limit.rlim_cur) - 256;
  const long clients =
      std::min(EnvLong("MD_BENCH_CLIENTS", 10'000), fdBudget / 2);
  const long bursts = EnvLong("MD_BENCH_BURSTS", 5);

  std::printf(
      "=== C10K on real sockets: %ld live connections, single server ===\n"
      "Real %s engine (2 IoThreads, 2 Workers), %d topics, %ld publish "
      "bursts.\n\n",
      clients, LoopKindName(loopKind), kTopics, bursts);

  obs::MetricsRegistry registry;
  core::ServerConfig serverCfg;
  serverCfg.ioThreads = 2;
  serverCfg.workers = 2;
  serverCfg.serverId = "c10k";
  serverCfg.eventLoop = loopKind;
  serverCfg.metrics = &registry;
  core::Server server(serverCfg);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  // Subscribers across a couple of loop threads.
  constexpr int kLoops = 2;
  std::vector<std::unique_ptr<EpollLoop>> loops;
  std::vector<std::thread> loopThreads;
  for (int i = 0; i < kLoops; ++i) {
    loops.push_back(std::make_unique<EpollLoop>());
    loopThreads.emplace_back([loop = loops.back().get()] { loop->Run(); });
  }

  Histogram latency;
  std::mutex histMutex;
  std::atomic<std::uint64_t> received{0};
  std::atomic<long> connected{0};

  const auto connectStart = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<client::Client>> subs;
  subs.reserve(static_cast<std::size_t>(clients));
  Rng rng(1);
  for (long c = 0; c < clients; ++c) {
    client::ClientConfig cfg;
    cfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
    cfg.clientId = "c10k-" + std::to_string(c);
    cfg.seed = rng.Next();
    cfg.autoReconnect = false;
    auto* loop = loops[static_cast<std::size_t>(c % kLoops)].get();
    auto sub = std::make_unique<client::Client>(*loop, cfg);
    auto* subPtr = sub.get();
    const std::string topic = "c10k/topic-" + std::to_string(c % kTopics);
    loop->Post([&, subPtr, topic] {
      subPtr->SetConnectionListener([&](bool up) {
        if (up) connected.fetch_add(1);
      });
      subPtr->Subscribe(topic, [&](const Message& m) {
        received.fetch_add(1);
        const Duration lat = RealClock::Instance().Now() - m.publishTs;
        std::lock_guard lock(histMutex);
        latency.Record(lat);
      });
      subPtr->Start();
    });
    subs.push_back(std::move(sub));
    // Pace connection setup mildly (the paper throttles re-subscription
    // rates at the OS level for the same reason).
    if (c % 500 == 499) std::this_thread::sleep_for(10ms);
  }

  while (connected.load() < clients) {
    std::this_thread::sleep_for(10ms);
    if (std::chrono::steady_clock::now() - connectStart > 120s) break;
  }
  const double connectSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - connectStart)
          .count();
  std::printf("connected %ld/%ld clients in %.1f s (%.0f conns/s)\n",
              connected.load(), clients, connectSecs,
              connected.load() / connectSecs);

  // Publisher bursts: one message per topic per burst => every client gets
  // one message per burst.
  EpollLoop pubLoop;
  std::thread pubThread([&pubLoop] { pubLoop.Run(); });
  client::ClientConfig pubCfg;
  pubCfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
  pubCfg.clientId = "c10k-pub";
  pubCfg.seed = 2;
  client::Client pub(pubLoop, pubCfg);
  pubLoop.Post([&] { pub.Start(); });
  while (!pub.IsConnected()) std::this_thread::sleep_for(1ms);

  const std::uint64_t expected =
      static_cast<std::uint64_t>(connected.load()) * static_cast<std::uint64_t>(bursts);
  const auto publishStart = std::chrono::steady_clock::now();
  for (long b = 0; b < bursts; ++b) {
    pubLoop.Post([&] {
      for (int t = 0; t < kTopics; ++t) {
        pub.Publish("c10k/topic-" + std::to_string(t), Bytes(140, 0x42));
      }
    });
    std::this_thread::sleep_for(1s);  // paper cadence: 1 msg/topic/s
  }
  while (received.load() < expected &&
         std::chrono::steady_clock::now() - publishStart <
             std::chrono::seconds(bursts + 30)) {
    std::this_thread::sleep_for(10ms);
  }

  const auto stats = server.Stats();
  std::lock_guard lock(histMutex);
  const auto summary = SummarizeNanos(latency);
  std::printf("\ndelivered %llu/%llu notifications\n",
              static_cast<unsigned long long>(received.load()),
              static_cast<unsigned long long>(expected));
  std::printf("e2e latency ms: median %.2f mean %.2f p95 %.2f p99 %.2f\n",
              summary.medianMs, summary.meanMs, summary.p95Ms, summary.p99Ms);

  // Server-side view from the metrics registry: the same Snapshot() the
  // /metrics endpoint renders, read in-process.
  const obs::MetricsSnapshot snap = registry.Snapshot();
  const std::string serverLabel = "server=\"c10k\"";
  const double srvDelivered = snap.Value("md_core_delivered_total", serverLabel);
  const double srvBytesOut = snap.Value("md_core_bytes_out_total", serverLabel);
  std::printf("server counters: delivered %.0f, bytes out %.0f, "
              "loop iterations %.0f\n",
              srvDelivered, srvBytesOut,
              snap.Total("md_transport_loop_iterations_total"));
  if (const auto* e2e =
          snap.Find("md_trace_end_to_end_ns", "domain=\"wall\"")) {
    std::printf("server-side publish->socket-write ms: median %.2f p99 %.2f "
                "(%llu traced)\n",
                e2e->summary.medianMs, e2e->summary.p99Ms,
                static_cast<unsigned long long>(e2e->count));
  }

  std::vector<ShapeCheck> checks;
  // Both socket ends share this process's fd budget; when the hard limit is
  // below ~20,256 the population is capped and the check reports the cap.
  checks.push_back({"C10K: all requested live connections served",
                    static_cast<double>(clients),
                    static_cast<double>(stats.connectionsActive),
                    connected.load() == clients});
  checks.push_back({"every notification delivered (no loss)",
                    static_cast<double>(expected),
                    static_cast<double>(received.load()),
                    received.load() == expected});
  checks.push_back({"real fan-out latency acceptable (p99 < 2000 ms)", 0,
                    summary.p99Ms, summary.p99Ms < 2000.0});
  // The registry's server-side delivery counter covers every client receipt.
  checks.push_back({"server delivered counter covers client receipts",
                    static_cast<double>(received.load()), srvDelivered,
                    srvDelivered >= static_cast<double>(received.load())});
  PrintShapeChecks(checks);

  // Teardown.
  for (std::size_t c = 0; c < subs.size(); ++c) {
    loops[c % kLoops]->Post([sub = subs[c].get()] { sub->Stop(); });
  }
  pubLoop.Post([&] { pub.Stop(); });
  std::this_thread::sleep_for(100ms);
  pubLoop.Stop();
  pubThread.join();
  for (auto& loop : loops) loop->Stop();
  for (auto& t : loopThreads) t.join();
  server.Stop();
  return 0;
}
