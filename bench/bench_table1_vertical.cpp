// Reproduces Table 1 and Figure 3 (paper §6.1): vertical scalability of one
// MigratoryData server from 100 K to 1 M concurrent subscribers.
//
// Workload (exactly the paper's): topics = subscribers / 10,000 (10..100),
// every client subscribes to one topic, every topic gets a 140-byte message
// once per second => deliveries/s == subscriber count. 3-minute warm-up,
// 10-minute measurement (override with MD_BENCH_SECONDS / MD_BENCH_WARMUP).
//
// The server runs as the calibrated fan-out model over the simulated 16-core
// CPU (see src/bench_support/engine_model.hpp and DESIGN.md §1 for the
// substitution rationale). Absolute milliseconds are approximate; the shape
// checks at the bottom encode what the experiment is meant to demonstrate.
#include <cstdio>
#include <cstdlib>

#include "bench_support/engine_model.hpp"
#include "bench_support/table.hpp"

namespace {

using namespace md;
using namespace md::bench;

struct PaperRow {
  int subsK;
  double median, mean, stddev, p90, p95, p99, cpu, gbps;
  int topics;
};

// Table 1 of the paper, verbatim.
constexpr PaperRow kPaper[] = {
    {100, 17, 16.78, 7.78, 25, 27, 30, 9.94, 0.17, 10},
    {200, 15, 14.17, 7.71, 21, 23, 28, 16.04, 0.36, 20},
    {300, 11, 11.10, 9.31, 15, 17, 46, 20.50, 0.55, 30},
    {400, 11, 11.31, 10.65, 15, 16, 71, 23.61, 0.70, 40},
    {500, 13, 14.73, 14.80, 23, 26, 82, 32.53, 0.92, 50},
    {600, 14, 19.92, 34.04, 25, 35, 209, 40.50, 1.08, 60},
    {700, 15, 19.05, 22.54, 26, 35, 138, 45.99, 1.21, 70},
    {800, 18, 24.50, 35.17, 32, 49, 201, 51.70, 1.40, 80},
    {900, 20, 47.64, 88.96, 118, 236, 475, 60.39, 1.54, 90},
    {1000, 27, 92.36, 141.07, 252, 361, 691, 69.10, 1.72, 100},
};

md::Duration EnvSeconds(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return (v ? std::atol(v) : fallback) * md::kSecond;
}

}  // namespace

int main() {
  const Duration measure = EnvSeconds("MD_BENCH_SECONDS", 600);
  const Duration warmup = EnvSeconds("MD_BENCH_WARMUP", 180);

  std::printf(
      "=== Table 1 / Figure 3: vertical scalability (C1M), single server ===\n"
      "Workload: subscribers/10,000 topics, 1 msg/topic/s, 140 B payloads;\n"
      "warm-up %.0f s, measurement %.0f s. Simulated 16-core server "
      "(DESIGN.md).\n\n",
      ToSeconds(warmup), ToSeconds(measure));

  std::printf("--- Paper (Table 1) ---\n");
  PrintLatencyTableHeader("Subs");
  for (const auto& p : kPaper) {
    LatencyRow row{std::to_string(p.subsK) + "K",
                   {p.median, p.mean, p.stddev, p.p90, p.p95, p.p99, 0},
                   p.cpu,
                   p.gbps,
                   p.topics};
    PrintLatencyRow(row);
  }

  std::printf("\n--- Measured (this reproduction) ---\n");
  PrintLatencyTableHeader("Subs");

  std::vector<EngineRunResult> results;
  for (const auto& p : kPaper) {
    EngineModel model(EngineModelConfig{}, /*seed=*/777 + p.subsK);
    const auto r = model.Run(/*topics=*/static_cast<std::uint32_t>(p.topics),
                             /*subscribersPerTopic=*/10'000,
                             /*publishInterval=*/kSecond, warmup, measure);
    results.push_back(r);
    LatencyRow row{std::to_string(p.subsK) + "K", r.latency,
                   r.cpuFraction * 100.0, r.gbpsOut, p.topics};
    PrintLatencyRow(row);
  }

  // Figure 3: mean latency + CPU series per 100 K step.
  std::printf("\nFIGURE3 series (x=subscribers, meanLatencyMs, cpuPercent):\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("FIGURE3 %7dK %8.2f %7.2f\n", kPaper[i].subsK,
                results[i].latency.meanMs, results[i].cpuFraction * 100.0);
  }

  // Shape checks: the claims §6.1 actually makes.
  const auto& first = results.front();
  const auto& last = results.back();
  std::vector<ShapeCheck> checks;
  checks.push_back({"CPU grows ~linearly: cpu(1M)/cpu(100K) in [4,9]",
                    69.10 / 9.94, last.cpuFraction / first.cpuFraction,
                    last.cpuFraction / first.cpuFraction > 4.0 &&
                        last.cpuFraction / first.cpuFraction < 9.0});
  bool meanUnder100 = true;
  for (const auto& r : results) meanUnder100 &= r.latency.meanMs < 100.0;
  checks.push_back({"mean latency stays < 100 ms at every scale", 92.36,
                    last.latency.meanMs, meanUnder100});
  const double deliveryRate =
      static_cast<double>(last.deliveries) / ToSeconds(warmup + measure);
  checks.push_back({"1 M concurrent subscribers served (C1M), msgs/s", 1'000'000,
                    deliveryRate, deliveryRate > 900'000});
  checks.push_back({"outgoing traffic at 1 M ~ 1.72 Gbps", 1.72, last.gbpsOut,
                    last.gbpsOut > 1.5 && last.gbpsOut < 2.0});
  checks.push_back({"tail inflates near saturation: p99(1M)/p99(300K) > 3",
                    691.0 / 46.0, last.latency.p99Ms / results[2].latency.p99Ms,
                    last.latency.p99Ms / results[2].latency.p99Ms > 3.0});
  checks.push_back({"mean >> median at 1M (GC + queueing skew): ratio > 1.5",
                    92.36 / 27.0, last.latency.meanMs / last.latency.medianMs,
                    last.latency.meanMs / last.latency.medianMs > 1.5});
  PrintShapeChecks(checks);
  return 0;
}
