// Reproduces the JVM garbage-collection ablation (paper §6.1, [17]):
// the C10M workload under (a) a stock JVM with stop-the-world collections
// and (b) a Zing-like C4 concurrent collector with no global pauses.
//
// Paper-reported numbers for the C10M scenario:
//   stock JVM:  mean 61 ms, P99 585 ms
//   Zing (C4):  mean 13.2 ms, P99 24.4 ms
//
// The reproduction injects the two pause models into the same engine run
// (DESIGN.md §1): the *mechanism* — long global pauses inflating mean and
// tail latency by an order of magnitude — is what the ablation demonstrates.
#include <cstdio>
#include <cstdlib>

#include "bench_support/engine_model.hpp"
#include "bench_support/table.hpp"

using namespace md;
using namespace md::bench;

namespace {

Duration EnvSeconds(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return (v ? std::atol(v) : fallback) * kSecond;
}

EngineRunResult RunC10M(bool concurrentCollector, Duration warmup, Duration measure) {
  EngineModelConfig cfg;
  cfg.payloadBytes = 512;
  // The C10M post used heavier heaps: longer, rarer stop-the-world pauses.
  cfg.gcMeanInterval = 6 * kSecond;
  cfg.gcPauseMean = 350 * kMillisecond;
  cfg.gcPauseStdDev = 200 * kMillisecond;
  cfg.gcReferenceRate = 166'667.0;
  EngineModel model(cfg, /*seed=*/9090);
  if (concurrentCollector) {
    // C4: no global pauses, only sub-millisecond per-operation smear.
    model.UseConcurrentCollector(800 * kMicrosecond);
  }
  return model.Run(/*topics=*/10'000'000, /*subscribersPerTopic=*/1,
                   /*publishInterval=*/kMinute, warmup, measure,
                   /*latencySamplesPerFanout=*/16);
}

}  // namespace

int main() {
  const Duration measure = EnvSeconds("MD_BENCH_SECONDS", 600);
  const Duration warmup = EnvSeconds("MD_BENCH_WARMUP", 120);

  std::printf(
      "=== GC ablation: stock JVM (stop-the-world) vs Zing/C4 (concurrent) ===\n"
      "C10M workload; paper: mean 61 -> 13.2 ms, P99 585 -> 24.4 ms.\n\n");

  const auto stw = RunC10M(/*concurrentCollector=*/false, warmup, measure);
  const auto c4 = RunC10M(/*concurrentCollector=*/true, warmup, measure);

  PrintLatencyTableHeader("JVM");
  PrintLatencyRow({"stock", stw.latency, stw.cpuFraction * 100.0, stw.gbpsOut, 0});
  PrintLatencyRow({"zing-c4", c4.latency, c4.cpuFraction * 100.0, c4.gbpsOut, 0});

  std::vector<ShapeCheck> checks;
  checks.push_back({"concurrent GC cuts mean latency: ratio stock/C4 > 2",
                    61.0 / 13.2, stw.latency.meanMs / c4.latency.meanMs,
                    stw.latency.meanMs / c4.latency.meanMs > 2.0});
  checks.push_back({"concurrent GC cuts P99: ratio stock/C4 > 5",
                    585.0 / 24.4, stw.latency.p99Ms / c4.latency.p99Ms,
                    stw.latency.p99Ms / c4.latency.p99Ms > 5.0});
  checks.push_back({"C4 tail is tight: P99 < 50 ms", 24.4, c4.latency.p99Ms,
                    c4.latency.p99Ms < 50.0});
  checks.push_back({"throughput unaffected by collector choice", 0.95,
                    c4.gbpsOut, std::abs(c4.gbpsOut - stw.gbpsOut) < 0.01});
  PrintShapeChecks(checks);
  return 0;
}
