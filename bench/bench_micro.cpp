// Micro-benchmarks (google-benchmark) for the hot-path components:
// wire codec, WebSocket framing, queues, cache, registry fan-out, histogram
// and hashing. These are the constants behind the engine model calibration.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "core/cache.hpp"
#include "core/registry.hpp"
#include "proto/codec.hpp"
#include "proto/websocket.hpp"

namespace {

using namespace md;

Message MakeMessage(std::size_t payloadSize) {
  Message m;
  m.topic = "sports/football/game-1234/scores";
  m.payload = Bytes(payloadSize, 0x5A);
  m.epoch = 3;
  m.seq = 123456;
  m.pubId = {0xABCDEF012345ULL, 42};
  m.publishTs = 1234567890;
  return m;
}

void BM_EncodeDeliver(benchmark::State& state) {
  const Frame frame{DeliverFrame{MakeMessage(static_cast<std::size_t>(state.range(0)))}};
  Bytes out;
  for (auto _ : state) {
    out.clear();
    EncodeFramed(frame, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_EncodeDeliver)->Arg(140)->Arg(512)->Arg(4096);

void BM_DecodeDeliver(benchmark::State& state) {
  Bytes wire;
  EncodeFrame(Frame{DeliverFrame{MakeMessage(static_cast<std::size_t>(state.range(0)))}},
              wire);
  for (auto _ : state) {
    auto decoded = DecodeFrame(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeDeliver)->Arg(140)->Arg(512)->Arg(4096);

void BM_WsEncodeFrame(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x42);
  Bytes out;
  for (auto _ : state) {
    out.clear();
    ws::EncodeWsFrame(ws::Opcode::kBinary, BytesView(payload), out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_WsEncodeFrame)->Arg(140)->Arg(65536);

void BM_WsDecodeMaskedFrame(benchmark::State& state) {
  Bytes wire;
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x42);
  ws::EncodeWsFrame(ws::Opcode::kBinary, BytesView(payload), wire, 0xA1B2C3D4);
  for (auto _ : state) {
    ByteQueue q;
    q.Append(BytesView(wire));
    auto r = ws::ExtractWsFrame(q, true);
    benchmark::DoNotOptimize(r.frame);
  }
}
BENCHMARK(BM_WsDecodeMaskedFrame)->Arg(140)->Arg(65536);

void BM_WsHandshakeAccept(benchmark::State& state) {
  for (auto _ : state) {
    auto accept = ws::ComputeAccept("dGhlIHNhbXBsZSBub25jZQ==");
    benchmark::DoNotOptimize(accept);
  }
}
BENCHMARK(BM_WsHandshakeAccept);

void BM_MpscQueuePushPop(benchmark::State& state) {
  MpscQueue<int> q(1 << 16);
  for (auto _ : state) {
    (void)q.TryPush(1);
    benchmark::DoNotOptimize(q.TryPop());
  }
}
BENCHMARK(BM_MpscQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<int> ring(1 << 12);
  for (auto _ : state) {
    ring.TryPush(1);
    benchmark::DoNotOptimize(ring.TryPop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_CacheAppend(benchmark::State& state) {
  core::CacheConfig cfg;
  cfg.topicGroups = static_cast<std::uint32_t>(state.range(0));
  core::Cache cache(cfg);
  Message m = MakeMessage(140);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    m.seq = ++seq;
    benchmark::DoNotOptimize(cache.Append(m));
  }
}
BENCHMARK(BM_CacheAppend)->Arg(1)->Arg(100);

void BM_CacheGetAfter(benchmark::State& state) {
  core::Cache cache;
  Message m = MakeMessage(140);
  for (std::uint64_t s = 1; s <= 1000; ++s) {
    m.seq = s;
    cache.Append(m);
  }
  for (auto _ : state) {
    auto msgs = cache.GetAfter(m.topic, {3, 990});
    benchmark::DoNotOptimize(msgs);
  }
}
BENCHMARK(BM_CacheGetAfter);

void BM_RegistryFanoutIterate(benchmark::State& state) {
  core::SubscriptionRegistry registry;
  const std::string topic = "hot";
  for (core::ClientHandle h = 1; h <= static_cast<core::ClientHandle>(state.range(0)); ++h) {
    registry.Subscribe(topic, h);
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    registry.ForEachSubscriber(topic, [&](core::ClientHandle h) { sum += h; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RegistryFanoutIterate)->Arg(1000)->Arg(10000);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(static_cast<std::int64_t>(rng.NextBelow(100'000'000)));
  }
  benchmark::DoNotOptimize(h.Count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 1'000'000; ++i) {
    h.Record(static_cast<std::int64_t>(rng.NextBelow(100'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Percentile(0.99));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_TopicGroupHash(benchmark::State& state) {
  const std::string topic = "sports/football/game-1234/scores";
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopicGroupOf(topic, 100));
  }
}
BENCHMARK(BM_TopicGroupHash);

void BM_Sha1Handshake(benchmark::State& state) {
  const std::string material =
      "dGhlIHNhbXBsZSBub25jZQ==258EAFA5-E914-47DA-95CA-C5AB0DC85B11";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(material));
  }
}
BENCHMARK(BM_Sha1Handshake);

void BM_VarintRoundTrip(benchmark::State& state) {
  Bytes buf;
  for (auto _ : state) {
    buf.clear();
    ByteWriter w(buf);
    w.WriteVarint(0xDEADBEEFCAFEULL);
    ByteReader r{BytesView(buf)};
    std::uint64_t v = 0;
    (void)r.ReadVarint(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_VarintRoundTrip);

}  // namespace

BENCHMARK_MAIN();
