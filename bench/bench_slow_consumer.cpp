// Slow-consumer backpressure benchmark: one stalled subscriber plus N healthy
// ones on the real epoll engine, with the watermark policy ENFORCED (small
// soft/hard marks, kDisconnect after a short grace) vs UNBOUNDED (the pre-fix
// behaviour: no hard mark, a grace period that never elapses), in one binary.
//
// The headline metrics are the peak send-queue depth any session ever pinned
// (max of the md_slow_consumer_queue_depth_bytes histogram — the hard
// watermark must bound it) and the healthy subscribers' end-to-end latency,
// which must not degrade because one peer stopped reading. The unbounded mode
// demonstrates the failure the policy exists to prevent: the stalled session
// buffers the whole flood in server memory and is never evicted.
//
// Environment overrides:
//   MD_BENCH_SLOWCONS_CLIENTS  healthy subscriber population (default 16)
//   MD_BENCH_SLOWCONS_MSGS     flood size in 16 KiB messages (default 900)
//   MD_BENCH_SLOWCONS_OUT      JSON output path (default BENCH_slow_consumer.json)
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_support/table.hpp"
#include "client/client.hpp"
#include "transport/epoll_loop.hpp"
#include "common/histogram.hpp"
#include "core/server.hpp"
#include "obs/metrics.hpp"

using namespace md;
using namespace md::bench;
using namespace std::chrono_literals;

namespace {

constexpr std::size_t kPayload = 16 * 1024;
constexpr std::size_t kHardMark = 512 * 1024;  // enforced-mode hard watermark

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

struct ModeResult {
  std::uint64_t expected = 0;   // healthy deliveries (probe + flood)
  std::uint64_t delivered = 0;  // healthy deliveries observed
  double elapsedSec = 0;
  double peakPendingBytes = 0;  // max(md_slow_consumer_queue_depth_bytes)
  double softOverflows = 0;
  double disconnects = 0;
  LatencySummary latency;  // healthy clients' publish -> receipt
};

bool RunMode(bool enforced, long clients, long msgs, ModeResult& out) {
  obs::MetricsRegistry registry;
  core::ServerConfig serverCfg;
  serverCfg.ioThreads = 2;
  serverCfg.workers = 2;
  serverCfg.serverId = enforced ? "sc-enforced" : "sc-unbounded";
  serverCfg.fanoutBatching = true;
  serverCfg.metrics = &registry;
  serverCfg.backpressure.softWatermark = 128 * 1024;
  serverCfg.backpressure.lowWatermark = 16 * 1024;
  serverCfg.backpressure.policy = core::OverflowPolicy::kDisconnect;
  if (enforced) {
    serverCfg.backpressure.hardWatermark = kHardMark;
    serverCfg.backpressure.evictGrace = 150 * kMillisecond;
  } else {
    // Pre-fix behaviour: the hard mark is never reached and the eviction
    // grace never elapses within the run, so the queue grows without bound.
    serverCfg.backpressure.hardWatermark = SIZE_MAX;
    serverCfg.backpressure.evictGrace = 3600 * kSecond;
  }
  core::Server server(serverCfg);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return false;
  }

  EpollLoop loop;
  std::thread loopThread([&loop] { loop.Run(); });

  Histogram latency;
  std::mutex histMutex;
  std::atomic<std::uint64_t> healthyReceived{0};
  std::atomic<std::uint64_t> stalledReceived{0};
  std::atomic<long> connected{0};
  const std::string topic = "slowcons/feed";

  auto makeConfig = [&](const std::string& id) {
    client::ClientConfig cfg;
    cfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
    cfg.clientId = id;
    cfg.seed = Fnv1a64(id);
    cfg.autoReconnect = false;  // an evicted victim stays evicted: one stall,
                                // one eviction, no reconnect churn in the data
    return cfg;
  };

  std::vector<std::unique_ptr<client::Client>> healthy;
  for (long c = 0; c < clients; ++c) {
    auto sub = std::make_unique<client::Client>(
        loop, makeConfig((enforced ? "sc-h-" : "sc-hu-") + std::to_string(c)));
    auto* subPtr = sub.get();
    loop.Post([&, subPtr] {
      subPtr->SetConnectionListener([&](bool up) {
        if (up) connected.fetch_add(1);
      });
      subPtr->Subscribe(topic, [&](const Message& m) {
        healthyReceived.fetch_add(1);
        const Duration lat = RealClock::Instance().Now() - m.publishTs;
        std::lock_guard lock(histMutex);
        latency.Record(lat);
      });
      subPtr->Start();
    });
    healthy.push_back(std::move(sub));
  }
  auto stalled = std::make_unique<client::Client>(
      loop, makeConfig(enforced ? "sc-stall" : "sc-stall-u"));
  loop.Post([&] {
    stalled->SetConnectionListener([&](bool up) {
      if (up) connected.fetch_add(1);
    });
    stalled->Subscribe(topic,
                       [&](const Message&) { stalledReceived.fetch_add(1); });
    stalled->Start();
  });

  const auto connectStart = std::chrono::steady_clock::now();
  while (connected.load() < clients + 1 &&
         std::chrono::steady_clock::now() - connectStart < 30s) {
    std::this_thread::sleep_for(2ms);
  }
  if (connected.load() < clients + 1) {
    std::fprintf(stderr, "only %ld/%ld subscribers connected\n",
                 connected.load(), clients + 1);
    return false;
  }

  EpollLoop pubLoop;
  std::thread pubThread([&pubLoop] { pubLoop.Run(); });
  client::Client pub(pubLoop, makeConfig(enforced ? "sc-pub" : "sc-pub-u"));
  pubLoop.Post([&] { pub.Start(); });
  while (!pub.IsConnected()) std::this_thread::sleep_for(1ms);

  // Paced publish in acked batches: healthy subscribers reading at loopback
  // speed keep up per batch (the grace must protect them in enforced mode),
  // while the stalled one accumulates the full volume against its marks.
  std::atomic<long> acked{0};
  auto publishBatch = [&](long base, long n) {
    pubLoop.Post([&, base, n] {
      for (long i = base; i < base + n; ++i) {
        Bytes payload(kPayload, static_cast<std::uint8_t>(i & 0xFF));
        pub.Publish(topic, std::move(payload), [&](Status s) {
          if (s.ok()) acked.fetch_add(1);
        });
      }
    });
    while (acked.load() < base + n) std::this_thread::sleep_for(1ms);
  };

  // Probe: confirm the stalled client's subscription is live, then stall it.
  publishBatch(0, 1);
  while (stalledReceived.load() < 1) std::this_thread::sleep_for(1ms);
  while (healthyReceived.load() < static_cast<std::uint64_t>(clients)) {
    std::this_thread::sleep_for(1ms);
  }
  std::atomic<bool> paused{false};
  loop.Post([&] {
    stalled->PauseReads(true);
    paused.store(true);
  });
  while (!paused.load()) std::this_thread::sleep_for(1ms);

  out.expected = static_cast<std::uint64_t>(clients) *
                 static_cast<std::uint64_t>(msgs + 1);
  const auto floodStart = std::chrono::steady_clock::now();
  constexpr long kBatch = 50;
  for (long base = 1; base <= msgs; base += kBatch) {
    publishBatch(base, std::min(kBatch, msgs - base + 1));
  }
  while (healthyReceived.load() < out.expected &&
         std::chrono::steady_clock::now() - floodStart < 120s) {
    std::this_thread::sleep_for(2ms);
  }
  out.elapsedSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - floodStart)
                       .count();

  const obs::MetricsSnapshot snap = registry.Snapshot();
  out.delivered = healthyReceived.load();
  out.softOverflows = snap.Total("md_slow_consumer_soft_overflows_total");
  out.disconnects = snap.Total("md_slow_consumer_disconnects_total");
  if (const auto* fam = snap.Family("md_slow_consumer_queue_depth_bytes")) {
    for (const auto& s : fam->samples) {
      if (s.count > 0) {
        out.peakPendingBytes =
            std::max(out.peakPendingBytes, static_cast<double>(s.max));
      }
    }
  }
  {
    std::lock_guard lock(histMutex);
    out.latency = SummarizeNanos(latency);
  }

  for (auto& sub : healthy) loop.Post([s = sub.get()] { s->Stop(); });
  loop.Post([s = stalled.get()] { s->Stop(); });
  pubLoop.Post([&] { pub.Stop(); });
  std::this_thread::sleep_for(100ms);
  pubLoop.Stop();
  pubThread.join();
  loop.Stop();
  loopThread.join();
  server.Stop();
  return true;
}

void PrintMode(const char* label, const ModeResult& r) {
  std::printf(
      "%-10s healthy %llu/%llu in %.2f s | peak pending %.0f B | "
      "soft overflows %.0f | evictions %.0f | e2e p50 %.2f ms p99 %.2f ms\n",
      label, static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.expected), r.elapsedSec,
      r.peakPendingBytes, r.softOverflows, r.disconnects, r.latency.medianMs,
      r.latency.p99Ms);
}

void WriteJsonMode(std::FILE* f, const char* key, const ModeResult& r,
                   bool trailingComma) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"healthy_expected\": %llu,\n"
               "    \"healthy_delivered\": %llu,\n"
               "    \"elapsed_sec\": %.4f,\n"
               "    \"peak_pending_bytes\": %.0f,\n"
               "    \"soft_overflows\": %.0f,\n"
               "    \"evictions\": %.0f,\n"
               "    \"e2e_p50_ms\": %.3f,\n"
               "    \"e2e_p99_ms\": %.3f\n"
               "  }%s\n",
               key, static_cast<unsigned long long>(r.expected),
               static_cast<unsigned long long>(r.delivered), r.elapsedSec,
               r.peakPendingBytes, r.softOverflows, r.disconnects,
               r.latency.medianMs, r.latency.p99Ms, trailingComma ? "," : "");
}

}  // namespace

int main() {
  const long clients = std::max(1L, EnvLong("MD_BENCH_SLOWCONS_CLIENTS", 16));
  const long msgs = std::max(100L, EnvLong("MD_BENCH_SLOWCONS_MSGS", 900));
  const char* outPath = std::getenv("MD_BENCH_SLOWCONS_OUT");
  if (outPath == nullptr) outPath = "BENCH_slow_consumer.json";

  std::printf(
      "=== Slow-consumer backpressure: 1 stalled + %ld healthy subscribers, "
      "%ld x %zu KiB flood ===\n"
      "Watermarks enforced (soft 128 KiB, hard 512 KiB, evict after 150 ms "
      "grace)\nvs unbounded (pre-fix: no hard mark, no eviction).\n\n",
      clients, msgs, kPayload / 1024);

  ModeResult enforced;
  ModeResult unbounded;
  if (!RunMode(/*enforced=*/true, clients, msgs, enforced)) return 1;
  PrintMode("enforced", enforced);
  if (!RunMode(/*enforced=*/false, clients, msgs, unbounded)) return 1;
  PrintMode("unbounded", unbounded);

  std::vector<ShapeCheck> checks;
  checks.push_back({"enforced: healthy subscribers lose nothing",
                    static_cast<double>(enforced.expected),
                    static_cast<double>(enforced.delivered),
                    enforced.delivered == enforced.expected});
  checks.push_back({"enforced: stalled session evicted", 1.0,
                    enforced.disconnects, enforced.disconnects >= 1.0});
  checks.push_back({"enforced: peak pending <= hard watermark",
                    static_cast<double>(kHardMark), enforced.peakPendingBytes,
                    enforced.peakPendingBytes <= static_cast<double>(kHardMark)});
  checks.push_back({"unbounded: healthy subscribers lose nothing",
                    static_cast<double>(unbounded.expected),
                    static_cast<double>(unbounded.delivered),
                    unbounded.delivered == unbounded.expected});
  // The failure mode the policy prevents: without the hard mark the stalled
  // session pins multiples of the enforced bound in server memory.
  checks.push_back({"unbounded: peak pending exceeds enforced hard mark",
                    static_cast<double>(kHardMark), unbounded.peakPendingBytes,
                    unbounded.peakPendingBytes > static_cast<double>(kHardMark)});
  checks.push_back({"unbounded: stalled session never evicted (the bug)", 0.0,
                    unbounded.disconnects, unbounded.disconnects == 0.0});
  PrintShapeChecks(checks);

  std::FILE* f = std::fopen(outPath, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"slow_consumer\",\n"
               "  \"config\": {\"healthy_clients\": %ld, \"messages\": %ld, "
               "\"payload_bytes\": %zu, \"hard_watermark\": %zu},\n",
               clients, msgs, kPayload, kHardMark);
  WriteJsonMode(f, "enforced", enforced, /*trailingComma=*/true);
  WriteJsonMode(f, "unbounded", unbounded, /*trailingComma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", outPath);

  bool ok = true;
  for (const auto& c : checks) ok = ok && c.pass;
  return ok ? 0 : 1;
}
