// Zero-contention fan-out benchmark: measures the publish->socket delivery
// path of the real network engine under a topics x subscribers sweep, as a
// four-row ablation of the egress data path:
//
//   legacy            per-subscriber closure posts, copying sends
//   batched           per-IoThread delivery batching, copying sends
//   batched_zerocopy  batching + refcounted shared wire buffers + writev
//   batched_zerocopy_uring  same data path on the io_uring backend
//                     (skipped with an explicit message when the running
//                     kernel lacks the required io_uring features)
//
// Headline metrics per row: cross-thread posts per publish (from
// md_transport_tasks_posted_total), syscalls per delivery (from
// md_transport_syscalls_total{op=send|sendmsg|recv}), copied bytes per
// delivery (md_transport_copy_bytes_total), throughput, and client-observed
// e2e latency. A fifth leg re-runs the default data path with the runtime
// verification monitor enabled to hold the <=5% overhead budget.
//
// Environment overrides:
//   MD_BENCH_FANOUT_CLIENTS  subscriber population        (default 400)
//   MD_BENCH_FANOUT_TOPICS   topic count                  (default 8)
//   MD_BENCH_FANOUT_BURSTS   publish bursts (1 msg/topic) (default 100)
//   MD_BENCH_FANOUT_OUT      JSON output path             (default BENCH_fanout.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_support/table.hpp"
#include "client/client.hpp"
#include "transport/epoll_loop.hpp"
#include "common/histogram.hpp"
#include "core/server.hpp"
#include "obs/metrics.hpp"

using namespace md;
using namespace md::bench;
using namespace std::chrono_literals;

namespace {

constexpr int kIoThreads = 2;

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::atol(v) : fallback;
}

struct ModeSpec {
  const char* key;    // JSON key / print label
  bool batched = true;
  bool zeroCopy = false;
  LoopKind loop = LoopKind::kEpoll;
  bool verify = false;
  int seed = 0;       // distinct client-id namespace per leg
};

struct ModeResult {
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;
  double serverDelivered = 0;   // md_core_delivered_total
  double elapsedSec = 0;
  double msgsPerSec = 0;
  double nsPerDelivery = 0;
  double postsPerPublish = 0;   // md_transport_tasks_posted_total delta / publishes
  double syscallsPerDelivery = 0;  // send+sendmsg+recv delta / deliveries
  double sendmsgShare = 0;         // sendmsg / (send+sendmsg) egress calls
  double copyBytesPerDelivery = 0; // md_transport_copy_bytes_total delta / deliveries
  double monitorEvents = 0;     // md_monitor_events_total (verify mode only)
  double monitorViolations = 0; // md_invariant_violations_total, all kinds
  LatencySummary latency;       // client-observed publish timestamp -> receipt
};

bool RunMode(const ModeSpec& mode, long clients, long topics, long bursts,
             ModeResult& out) {
  obs::MetricsRegistry registry;
  core::ServerConfig serverCfg;
  serverCfg.ioThreads = kIoThreads;
  serverCfg.workers = 2;
  serverCfg.serverId = "fanout";
  serverCfg.fanoutBatching = mode.batched;
  serverCfg.zeroCopyEgress = mode.zeroCopy;
  serverCfg.eventLoop = mode.loop;
  serverCfg.runtimeVerify = mode.verify;
  serverCfg.metrics = &registry;
  core::Server server(serverCfg);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return false;
  }

  constexpr int kLoops = 2;
  std::vector<std::unique_ptr<EpollLoop>> loops;
  std::vector<std::thread> loopThreads;
  for (int i = 0; i < kLoops; ++i) {
    loops.push_back(std::make_unique<EpollLoop>());
    loopThreads.emplace_back([loop = loops.back().get()] { loop->Run(); });
  }

  Histogram latency;
  std::mutex histMutex;
  std::atomic<std::uint64_t> received{0};
  std::atomic<long> connected{0};

  std::vector<std::unique_ptr<client::Client>> subs;
  subs.reserve(static_cast<std::size_t>(clients));
  Rng rng(static_cast<std::uint64_t>(mode.seed) + 1);
  for (long c = 0; c < clients; ++c) {
    client::ClientConfig cfg;
    cfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
    cfg.clientId =
        "fo-" + std::to_string(mode.seed) + "-" + std::to_string(c);
    cfg.seed = rng.Next();
    cfg.autoReconnect = false;
    auto* loop = loops[static_cast<std::size_t>(c % kLoops)].get();
    auto sub = std::make_unique<client::Client>(*loop, cfg);
    auto* subPtr = sub.get();
    const std::string topic = "fanout/topic-" + std::to_string(c % topics);
    loop->Post([&, subPtr, topic] {
      subPtr->SetConnectionListener([&](bool up) {
        if (up) connected.fetch_add(1);
      });
      subPtr->Subscribe(topic, [&](const Message& m) {
        received.fetch_add(1);
        const Duration lat = RealClock::Instance().Now() - m.publishTs;
        std::lock_guard lock(histMutex);
        latency.Record(lat);
      });
      subPtr->Start();
    });
    subs.push_back(std::move(sub));
    if (c % 500 == 499) std::this_thread::sleep_for(10ms);
  }
  const auto connectStart = std::chrono::steady_clock::now();
  while (connected.load() < clients &&
         std::chrono::steady_clock::now() - connectStart < 60s) {
    std::this_thread::sleep_for(5ms);
  }
  if (connected.load() < clients) {
    std::fprintf(stderr, "only %ld/%ld subscribers connected\n",
                 connected.load(), clients);
  }

  EpollLoop pubLoop;
  std::thread pubThread([&pubLoop] { pubLoop.Run(); });
  client::ClientConfig pubCfg;
  pubCfg.servers = {{"127.0.0.1", server.Port(), 1.0}};
  pubCfg.clientId = std::string("fo-pub-") + mode.key;
  pubCfg.seed = 99;
  client::Client pub(pubLoop, pubCfg);
  pubLoop.Post([&] { pub.Start(); });
  while (!pub.IsConnected()) std::this_thread::sleep_for(1ms);

  // Counter baselines: everything posted from here on is publish-path work
  // (fan-out closures plus one publisher ack per publish).
  const obs::MetricsSnapshot before = registry.Snapshot();
  const double postsBefore = before.Total("md_transport_tasks_posted_total");
  const double syscallsBefore = before.Total("md_transport_syscalls_total");
  const double sendBefore =
      before.Value("md_transport_syscalls_total", "op=\"send\"");
  const double sendmsgBefore =
      before.Value("md_transport_syscalls_total", "op=\"sendmsg\"");
  const double copyBefore = before.Total("md_transport_copy_bytes_total");

  const std::uint64_t publishes =
      static_cast<std::uint64_t>(bursts) * static_cast<std::uint64_t>(topics);
  out.expected = static_cast<std::uint64_t>(connected.load()) *
                 static_cast<std::uint64_t>(bursts);
  const auto publishStart = std::chrono::steady_clock::now();
  for (long b = 0; b < bursts; ++b) {
    pubLoop.Post([&, topics] {
      for (long t = 0; t < topics; ++t) {
        pub.Publish("fanout/topic-" + std::to_string(t), Bytes(64, 0x42));
      }
    });
    // Light pacing keeps the publisher's socket from backing up without
    // serializing the sweep the way the paper's 1 msg/topic/s cadence would.
    if (b % 10 == 9) std::this_thread::sleep_for(1ms);
  }
  while (received.load() < out.expected &&
         std::chrono::steady_clock::now() - publishStart < 120s) {
    std::this_thread::sleep_for(2ms);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    publishStart)
          .count();

  const obs::MetricsSnapshot after = registry.Snapshot();
  out.delivered = received.load();
  out.serverDelivered =
      after.Value("md_core_delivered_total", "server=\"fanout\"");
  out.elapsedSec = elapsed;
  out.msgsPerSec = out.delivered / elapsed;
  out.nsPerDelivery =
      out.delivered == 0 ? 0 : elapsed * 1e9 / static_cast<double>(out.delivered);
  out.postsPerPublish =
      (after.Total("md_transport_tasks_posted_total") - postsBefore) /
      static_cast<double>(publishes);
  const double deliveredD =
      out.delivered == 0 ? 1 : static_cast<double>(out.delivered);
  out.syscallsPerDelivery =
      (after.Total("md_transport_syscalls_total") - syscallsBefore) /
      deliveredD;
  const double sendCalls =
      after.Value("md_transport_syscalls_total", "op=\"send\"") - sendBefore;
  const double sendmsgCalls =
      after.Value("md_transport_syscalls_total", "op=\"sendmsg\"") -
      sendmsgBefore;
  out.sendmsgShare = (sendCalls + sendmsgCalls) > 0
                         ? sendmsgCalls / (sendCalls + sendmsgCalls)
                         : 0;
  out.copyBytesPerDelivery =
      (after.Total("md_transport_copy_bytes_total") - copyBefore) / deliveredD;
  out.monitorEvents = after.Value("md_monitor_events_total", "server=\"fanout\"");
  out.monitorViolations = after.Total("md_invariant_violations_total");
  {
    std::lock_guard lock(histMutex);
    out.latency = SummarizeNanos(latency);
  }

  for (std::size_t c = 0; c < subs.size(); ++c) {
    loops[c % kLoops]->Post([sub = subs[c].get()] { sub->Stop(); });
  }
  pubLoop.Post([&] { pub.Stop(); });
  std::this_thread::sleep_for(100ms);
  pubLoop.Stop();
  pubThread.join();
  for (auto& loop : loops) loop->Stop();
  for (auto& t : loopThreads) t.join();
  server.Stop();
  return true;
}

void PrintMode(const char* label, const ModeResult& r) {
  std::printf(
      "%-22s delivered %llu/%llu in %.2f s | %.0f msgs/s | %.0f ns/delivery | "
      "%.2f posts/publish | %.3f syscalls/delivery | %.1f copy B/delivery | "
      "e2e p50 %.2f ms p99 %.2f ms\n",
      label, static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.expected), r.elapsedSec, r.msgsPerSec,
      r.nsPerDelivery, r.postsPerPublish, r.syscallsPerDelivery,
      r.copyBytesPerDelivery, r.latency.medianMs, r.latency.p99Ms);
}

void WriteJsonMode(std::FILE* f, const char* key, const ModeResult& r,
                   bool trailingComma) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"expected\": %llu,\n"
               "    \"delivered\": %llu,\n"
               "    \"server_delivered_total\": %.0f,\n"
               "    \"elapsed_sec\": %.4f,\n"
               "    \"msgs_per_sec\": %.1f,\n"
               "    \"ns_per_delivery\": %.1f,\n"
               "    \"posts_per_publish\": %.3f,\n"
               "    \"syscalls_per_delivery\": %.4f,\n"
               "    \"sendmsg_share\": %.3f,\n"
               "    \"copy_bytes_per_delivery\": %.1f,\n"
               "    \"e2e_p50_ms\": %.3f,\n"
               "    \"e2e_p99_ms\": %.3f\n"
               "  }%s\n",
               key, static_cast<unsigned long long>(r.expected),
               static_cast<unsigned long long>(r.delivered),
               r.serverDelivered, r.elapsedSec, r.msgsPerSec, r.nsPerDelivery,
               r.postsPerPublish, r.syscallsPerDelivery,
               r.sendmsgShare, r.copyBytesPerDelivery, r.latency.medianMs,
               r.latency.p99Ms, trailingComma ? "," : "");
}

}  // namespace

int main() {
  rlimit limit{};
  getrlimit(RLIMIT_NOFILE, &limit);
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &limit);
    getrlimit(RLIMIT_NOFILE, &limit);
  }
  const long fdBudget = static_cast<long>(limit.rlim_cur) - 256;
  const long clients =
      std::min(EnvLong("MD_BENCH_FANOUT_CLIENTS", 400), fdBudget / 2);
  const long topics = std::max(1L, EnvLong("MD_BENCH_FANOUT_TOPICS", 8));
  const long bursts = std::max(1L, EnvLong("MD_BENCH_FANOUT_BURSTS", 100));
  const char* outPath = std::getenv("MD_BENCH_FANOUT_OUT");
  if (outPath == nullptr) outPath = "BENCH_fanout.json";

  std::string uringWhyNot;
  const bool uringOk = IoUringAvailable(&uringWhyNot);

  std::printf(
      "=== Fan-out egress ablation: %ld subscribers, %ld topics, %ld bursts "
      "===\n"
      "Real network engine (%d IoThreads, 2 Workers); legacy -> batched ->\n"
      "batched+zerocopy -> batched+zerocopy+io_uring%s.\n\n",
      clients, topics, bursts, kIoThreads,
      uringOk ? "" : " (io_uring leg will be skipped)");

  const ModeSpec kLegacy{"legacy", /*batched=*/false, /*zeroCopy=*/false,
                         LoopKind::kEpoll, /*verify=*/false, /*seed=*/1};
  const ModeSpec kBatched{"batched", true, false, LoopKind::kEpoll, false, 2};
  const ModeSpec kZeroCopy{"batched_zerocopy", true, true, LoopKind::kEpoll,
                           false, 3};
  const ModeSpec kUring{"batched_zerocopy_uring", true, true,
                        LoopKind::kIoUring, false, 4};
  const ModeSpec kVerify{"batched_zerocopy_verify", true, true,
                         LoopKind::kEpoll, /*verify=*/true, 5};

  ModeResult legacyRes, batchedRes, zeroCopyRes, uringRes, verifiedRes;
  if (!RunMode(kLegacy, clients, topics, bursts, legacyRes)) return 1;
  PrintMode(kLegacy.key, legacyRes);
  if (!RunMode(kBatched, clients, topics, bursts, batchedRes)) return 1;
  PrintMode(kBatched.key, batchedRes);
  if (!RunMode(kZeroCopy, clients, topics, bursts, zeroCopyRes)) return 1;
  PrintMode(kZeroCopy.key, zeroCopyRes);
  bool uringRan = false;
  if (uringOk) {
    if (!RunMode(kUring, clients, topics, bursts, uringRes)) return 1;
    PrintMode(kUring.key, uringRes);
    uringRan = true;
  } else {
    std::printf("%-22s skipped: %s\n", kUring.key, uringWhyNot.c_str());
  }
  // Monitor overhead leg: the default data path with the runtime verification
  // monitor riding every fan-out emission — the overhead budget is <= 5% on
  // the publish-path post count (DESIGN.md §11).
  if (!RunMode(kVerify, clients, topics, bursts, verifiedRes)) return 1;
  PrintMode(kVerify.key, verifiedRes);

  const double postReduction =
      batchedRes.postsPerPublish > 0
          ? legacyRes.postsPerPublish / batchedRes.postsPerPublish
          : 0;
  std::printf("\ncross-thread posts per publish: %.2f -> %.2f (%.1fx reduction)\n",
              legacyRes.postsPerPublish, batchedRes.postsPerPublish,
              postReduction);
  std::printf("copy bytes per delivery: %.1f (batched) -> %.1f (zerocopy)\n",
              batchedRes.copyBytesPerDelivery,
              zeroCopyRes.copyBytesPerDelivery);

  std::vector<ShapeCheck> checks;
  const ModeResult* rows[] = {&legacyRes, &batchedRes, &zeroCopyRes,
                              uringRan ? &uringRes : nullptr, &verifiedRes};
  const char* rowNames[] = {kLegacy.key, kBatched.key, kZeroCopy.key,
                            kUring.key, kVerify.key};
  for (int i = 0; i < 5; ++i) {
    if (rows[i] == nullptr) continue;
    checks.push_back({std::string(rowNames[i]) + ": every notification delivered",
                      static_cast<double>(rows[i]->expected),
                      static_cast<double>(rows[i]->delivered),
                      rows[i]->delivered == rows[i]->expected});
  }
  // The server-side delivered counter (metrics Snapshot) covers every client
  // receipt — the batched handoff loses nothing between worker and IoThread.
  checks.push_back({"server delivered counter covers client receipts",
                    static_cast<double>(zeroCopyRes.delivered),
                    zeroCopyRes.serverDelivered,
                    zeroCopyRes.serverDelivered >=
                        static_cast<double>(zeroCopyRes.delivered)});
  // Batched fan-out posts at most (ioThreads + ack + timer slack) closures
  // per publish; the legacy path posts one per live subscriber.
  checks.push_back({"batched posts/publish <= ioThreads + 2",
                    static_cast<double>(kIoThreads + 2),
                    batchedRes.postsPerPublish,
                    batchedRes.postsPerPublish <= kIoThreads + 2});
  const double subsPerTopic =
      static_cast<double>(clients) / static_cast<double>(topics);
  checks.push_back({"per-delivery post overhead reduced >= 5x",
                    5.0, postReduction,
                    // Only meaningful when the population can show it: with
                    // few subscribers per topic both paths post O(ioThreads).
                    postReduction >= 5.0 || subsPerTopic < 16});
  // The batched path must also win on client-observed latency, not just on
  // the post counter (the paper's end-to-end claim).
  checks.push_back({"batched e2e p50 <= legacy p50",
                    legacyRes.latency.medianMs, batchedRes.latency.medianMs,
                    batchedRes.latency.medianMs <= legacyRes.latency.medianMs});
  checks.push_back({"batched e2e p99 <= legacy p99",
                    legacyRes.latency.p99Ms, batchedRes.latency.p99Ms,
                    batchedRes.latency.p99Ms <= legacyRes.latency.p99Ms});
  // Zero-copy egress must eliminate (nearly all) per-delivery memcpy into
  // session buffers: the residual copies are frame headers coalesced into
  // pooled tails, a small constant per batch.
  checks.push_back({"zerocopy copy-bytes/delivery < 10% of batched",
                    batchedRes.copyBytesPerDelivery * 0.1,
                    zeroCopyRes.copyBytesPerDelivery,
                    zeroCopyRes.copyBytesPerDelivery <
                        batchedRes.copyBytesPerDelivery * 0.1 ||
                        batchedRes.copyBytesPerDelivery == 0});
  // Scatter-gather batching: the zero-copy path should issue well under one
  // egress syscall per delivery (one writev covers a whole fan-out batch).
  checks.push_back({"zerocopy syscalls/delivery < 1",
                    1.0, zeroCopyRes.syscallsPerDelivery,
                    zeroCopyRes.syscallsPerDelivery < 1.0});
  if (uringRan) {
    checks.push_back({"io_uring leg: every notification delivered",
                      static_cast<double>(uringRes.expected),
                      static_cast<double>(uringRes.delivered),
                      uringRes.delivered == uringRes.expected});
  }
  // Monitor overhead leg: observation must be complete, silent on clean
  // traffic, and must not add cross-thread posts to the publish path.
  const double postsOverheadPct =
      zeroCopyRes.postsPerPublish > 0
          ? (verifiedRes.postsPerPublish - zeroCopyRes.postsPerPublish) /
                zeroCopyRes.postsPerPublish * 100.0
          : 0;
  const double throughputDeltaPct =
      zeroCopyRes.msgsPerSec > 0
          ? (zeroCopyRes.msgsPerSec - verifiedRes.msgsPerSec) /
                zeroCopyRes.msgsPerSec * 100.0
          : 0;
  checks.push_back({"monitor observed every delivery",
                    static_cast<double>(verifiedRes.delivered),
                    verifiedRes.monitorEvents,
                    verifiedRes.monitorEvents >=
                        static_cast<double>(verifiedRes.delivered)});
  checks.push_back({"monitor flagged zero violations on clean traffic", 0,
                    verifiedRes.monitorViolations,
                    verifiedRes.monitorViolations == 0});
  checks.push_back({"monitor posts/publish overhead <= 5%", 5.0,
                    postsOverheadPct, postsOverheadPct <= 5.0});
  PrintShapeChecks(checks);
  std::printf("\nmonitor overhead: posts/publish %+.2f%%, throughput %+.2f%% "
              "(%.0f -> %.0f msgs/s), %.0f observations\n",
              postsOverheadPct, throughputDeltaPct, zeroCopyRes.msgsPerSec,
              verifiedRes.msgsPerSec, verifiedRes.monitorEvents);

  std::FILE* f = std::fopen(outPath, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", outPath);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fanout\",\n"
               "  \"config\": {\"clients\": %ld, \"topics\": %ld, "
               "\"bursts\": %ld, \"io_threads\": %d},\n",
               clients, topics, bursts, kIoThreads);
  WriteJsonMode(f, "legacy", legacyRes, /*trailingComma=*/true);
  WriteJsonMode(f, "batched", batchedRes, /*trailingComma=*/true);
  WriteJsonMode(f, "batched_zerocopy", zeroCopyRes, /*trailingComma=*/true);
  if (uringRan) {
    WriteJsonMode(f, "batched_zerocopy_uring", uringRes,
                  /*trailingComma=*/true);
  } else {
    std::fprintf(f, "  \"batched_zerocopy_uring\": \"skipped: %s\",\n",
                 uringWhyNot.c_str());
  }
  std::fprintf(f, "  \"posts_per_publish_reduction\": %.2f\n}\n", postReduction);
  std::fclose(f);
  std::printf("\nwrote %s\n", outPath);

  const char* overheadPath = std::getenv("MD_BENCH_MONITOR_OUT");
  if (overheadPath == nullptr) overheadPath = "BENCH_monitor_overhead.json";
  std::FILE* of = std::fopen(overheadPath, "w");
  if (of == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", overheadPath);
    return 1;
  }
  std::fprintf(of,
               "{\n"
               "  \"bench\": \"monitor_overhead\",\n"
               "  \"config\": {\"clients\": %ld, \"topics\": %ld, "
               "\"bursts\": %ld, \"io_threads\": %d},\n",
               clients, topics, bursts, kIoThreads);
  WriteJsonMode(of, "baseline_batched", zeroCopyRes, /*trailingComma=*/true);
  WriteJsonMode(of, "runtime_verify", verifiedRes, /*trailingComma=*/true);
  std::fprintf(of,
               "  \"monitor_events\": %.0f,\n"
               "  \"monitor_violations\": %.0f,\n"
               "  \"posts_per_publish_overhead_pct\": %.2f,\n"
               "  \"throughput_delta_pct\": %.2f\n}\n",
               verifiedRes.monitorEvents, verifiedRes.monitorViolations,
               postsOverheadPct, throughputDeltaPct);
  std::fclose(of);
  std::printf("wrote %s\n", overheadPath);

  bool lossFree = legacyRes.delivered == legacyRes.expected &&
                  batchedRes.delivered == batchedRes.expected &&
                  zeroCopyRes.delivered == zeroCopyRes.expected &&
                  verifiedRes.delivered == verifiedRes.expected &&
                  verifiedRes.monitorViolations == 0;
  if (uringRan) lossFree = lossFree && uringRes.delivered == uringRes.expected;
  return lossFree ? 0 : 1;
}
