// Reproduces Table 2 (paper §6.2): horizontal scaling of 300,000 clients
// receiving 300,000 messages/s across a 3-server cluster, before and after
// the fail-stop of one server at minute 13.
//
// Hybrid setup (DESIGN.md §1):
//   - The control plane is REAL: three ClusterNodes + a three-node MiniZK
//     cluster run the full §5 protocol over the simulated network —
//     coordinator election, forwards, replication broadcasts, acks, watches,
//     failover takeovers and cache reconstruction all execute as in the
//     tests. A real client-library publisher pushes 30 msgs/s (one per topic
//     per second), the paper's Benchpub configuration.
//   - The 300,000-subscriber population is MODELED: per-server calibrated
//     fan-out CPU models (the Table 1 engine constants) charge each server
//     for its local subscribers as messages become available for fan-out,
//     yielding per-delivery latencies and CPU. Running 300 k real socket
//     clients is what the paper's 4x16-core testbed existed for.
//
// Failover semantics are measured, not assumed: after the crash the modeled
// clients redistribute to the two live servers (fair split, as the paper
// observed: 150,357 / 149,643), and the zero-message-loss claim is checked
// against the surviving servers' real caches.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_support/engine_model.hpp"
#include "bench_support/table.hpp"
#include "client/client.hpp"
#include "cluster/sim_cluster.hpp"

using namespace md;
using namespace md::bench;

namespace {

Duration EnvSeconds(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return (v ? std::atol(v) : fallback) * kSecond;
}

constexpr int kTopics = 30;
constexpr int kClients = 300'000;
constexpr int kServers = 3;

std::string TopicName(int t) { return "sports/topic-" + std::to_string(t); }

/// Modeled subscriber population attached to one server.
struct ServerPopulation {
  sim::SimCpu cpu{16};
  std::unique_ptr<sim::StopTheWorldPauses> gc;
  std::map<std::string, std::uint32_t> subscribersPerTopic;
  Duration busyAtWindowStart = 0;

  [[nodiscard]] std::uint32_t TotalSubscribers() const {
    std::uint32_t total = 0;
    for (const auto& [t, n] : subscribersPerTopic) total += n;
    return total;
  }
};

}  // namespace

int main() {
  const Duration warmup = EnvSeconds("MD_BENCH_WARMUP", 180);
  const Duration beforeWindow = EnvSeconds("MD_BENCH_SECONDS", 600);
  const Duration afterWindow = EnvSeconds("MD_BENCH_AFTER_SECONDS", 600);
  const std::uint64_t seed = 20170417;

  std::printf(
      "=== Table 2: horizontal scaling + fault tolerance (3 servers) ===\n"
      "300,000 modeled clients over %d topics (1 msg/topic/s via a real\n"
      "client-library publisher through the real cluster protocol).\n"
      "Fail-stop of one server after the 'before' window; clients\n"
      "redistribute to the remaining two. Warm-up %.0f s, windows %.0f/%.0f s.\n\n",
      kTopics, ToSeconds(warmup), ToSeconds(beforeWindow), ToSeconds(afterWindow));

  sim::Scheduler sched;
  cluster::SimCluster::Options opts;
  opts.servers = kServers;
  opts.seed = seed;
  opts.clientLinkDelay = 200 * kMicrosecond;
  opts.nodeConfig.cache.maxMessagesPerTopic = 100'000;  // keep full history
  cluster::SimCluster cluster(sched, opts);
  cluster.StartAll();
  sched.RunFor(2 * kSecond);  // MiniZK leader election

  // --- modeled population -----------------------------------------------------
  Rng rng(seed);
  std::vector<ServerPopulation> population(kServers);
  for (auto& p : population) {
    sim::GcProfile gcProfile;
    gcProfile.meanInterval = 20 * kSecond;  // ~100k msgs/s per server
    gcProfile.pauseMean = 100 * kMillisecond;
    gcProfile.pauseStdDev = 70 * kMillisecond;
    p.gc = sim::GenerateStwSchedule(gcProfile,
                                    warmup + beforeWindow + afterWindow + kMinute,
                                    rng.Fork());
    p.cpu.SetPauseModel(p.gc.get());
  }
  // Each client subscribes to one random topic on a random server — the
  // paper measured 100,327 / 99,918 / 99,755 from random balancing.
  for (int c = 0; c < kClients; ++c) {
    const auto server = rng.NextBelow(kServers);
    population[server].subscribersPerTopic[TopicName(
        static_cast<int>(rng.NextBelow(kTopics)))]++;
  }
  std::printf("Client distribution: %u / %u / %u\n\n",
              population[0].TotalSubscribers(), population[1].TotalSubscribers(),
              population[2].TotalSubscribers());

  // Latency recording windows.
  Histogram beforeHist, afterHist;
  const TimePoint measureStart = sched.Now() + warmup;
  const TimePoint crashAt = measureStart + beforeWindow;
  const TimePoint afterStart = crashAt + 10 * kSecond;  // reconnection settles
  const TimePoint endAt = crashAt + afterWindow;
  bool crashed = false;

  constexpr Duration kPerDeliveryCost = 10'500;
  constexpr Duration kBaseLatency = 8 * kMillisecond;
  constexpr Duration kBaseJitter = 6 * kMillisecond;

  // Fan-out hook: charge the server's CPU model for its local subscribers
  // and sample delivery latencies.
  auto attachHook = [&](std::size_t serverIdx) {
    cluster.node(serverIdx).SetLocalDeliveryHook([&, serverIdx](const Message& msg) {
      ServerPopulation& pop = population[serverIdx];
      const auto it = pop.subscribersPerTopic.find(msg.topic);
      if (it == pop.subscribersPerTopic.end() || it->second == 0) return;
      const std::uint32_t subs = it->second;
      const TimePoint now = sched.Now();
      const std::uint64_t perWorker = (subs + 15) / 16;
      constexpr std::uint32_t kSamplesPerWorker = 4;
      for (int w = 0; w < 16; ++w) {
        const auto span = pop.cpu.ChargeSpan(
            now, static_cast<Duration>(perWorker) * kPerDeliveryCost);
        Histogram* hist = nullptr;
        if (now >= measureStart && now < crashAt) hist = &beforeHist;
        if (now >= afterStart && now < endAt) hist = &afterHist;
        if (hist == nullptr) continue;
        for (std::uint32_t s = 0; s < kSamplesPerWorker; ++s) {
          const double u = rng.NextDouble();
          const TimePoint deliveredAt =
              span.start + static_cast<Duration>(
                               u * static_cast<double>(span.done - span.start));
          Duration lat = (deliveredAt - msg.publishTs) + kBaseLatency +
                         static_cast<Duration>(rng.NextBelow(
                             static_cast<std::uint64_t>(kBaseJitter)));
          hist->RecordN(lat, std::max<std::uint64_t>(1, perWorker / kSamplesPerWorker));
        }
      }
    });
  };
  for (std::size_t i = 0; i < kServers; ++i) attachHook(i);

  // --- real publisher (Benchpub) ----------------------------------------------
  client::ClientConfig pubCfg;
  for (std::size_t i = 0; i < kServers; ++i) {
    pubCfg.servers.push_back({"server", cluster.ClientPort(i), 1.0});
  }
  pubCfg.clientId = "benchpub";
  pubCfg.seed = seed + 1;
  pubCfg.ackTimeout = 3 * kSecond;
  client::Client pub(cluster.clientLoop(), pubCfg);
  pub.Start();

  std::uint64_t publishedTotal = 0;
  std::uint64_t ackedTotal = 0;
  std::uint64_t publishedDuringFailover = 0;
  // One publication per topic per second, staggered across the second.
  std::function<void(int)> publishTopic = [&](int t) {
    if (sched.Now() >= endAt) return;
    const bool duringFailover =
        sched.Now() >= crashAt && sched.Now() < crashAt + 30 * kSecond;
    pub.Publish(TopicName(t), Bytes(140, static_cast<std::uint8_t>(t)),
                [&, duringFailover](Status s) {
                  if (s.ok()) {
                    ++ackedTotal;
                    if (duringFailover) ++publishedDuringFailover;
                  }
                });
    ++publishedTotal;
    sched.Schedule(kSecond, [&, t] { publishTopic(t); });
  };
  for (int t = 0; t < kTopics; ++t) {
    sched.Schedule(kSecond * t / kTopics, [&, t] { publishTopic(t); });
  }

  // --- failover event -----------------------------------------------------------
  sched.ScheduleAt(crashAt, [&] {
    crashed = true;
    std::printf("t=%.0fs: fail-stop of server-3\n", ToSeconds(sched.Now()));
    cluster.CrashServer(2);
    // Modeled clients of the dead server reconnect to the two live servers
    // (random pick from the client-side list; blacklist keeps them off the
    // dead one). Reconnections scatter naturally over a few seconds.
    auto moved = std::move(population[2].subscribersPerTopic);
    population[2].subscribersPerTopic.clear();
    Rng moveRng(seed + 7);
    for (auto& [topic, count] : moved) {
      for (std::uint32_t c = 0; c < count; ++c) {
        population[moveRng.NextBelow(2)].subscribersPerTopic[topic]++;
      }
    }
    std::printf("redistributed clients: %u / %u\n",
                population[0].TotalSubscribers(), population[1].TotalSubscribers());
  });

  // CPU accounting windows.
  double cpuBefore = 0, cpuAfter = 0;
  sched.ScheduleAt(measureStart, [&] {
    for (auto& p : population) p.busyAtWindowStart = p.cpu.BusyTime();
  });
  sched.ScheduleAt(crashAt, [&] {
    double sum = 0;
    for (auto& p : population) {
      sum += sim::SimCpu::Utilization(p.cpu.BusyTime() - p.busyAtWindowStart,
                                      beforeWindow, 16);
    }
    cpuBefore = sum / kServers + 0.031;  // + fixed background load
  });
  sched.ScheduleAt(afterStart, [&] {
    for (auto& p : population) p.busyAtWindowStart = p.cpu.BusyTime();
  });
  sched.ScheduleAt(endAt, [&] {
    double sum = 0;
    for (std::size_t i = 0; i < 2; ++i) {  // two live servers
      sum += sim::SimCpu::Utilization(
          population[i].cpu.BusyTime() - population[i].busyAtWindowStart,
          endAt - afterStart, 16);
    }
    cpuAfter = sum / 2 + 0.031;
  });

  sched.RunUntil(endAt + 5 * kSecond);

  // --- results ------------------------------------------------------------------
  std::printf("\n--- Paper (Table 2) ---\n");
  PrintLatencyTableHeader("Test");
  PrintLatencyRow({"Before", {11, 10.7, 6.04, 15, 16, 21, 0}, 9.24, 0, kTopics});
  PrintLatencyRow({"After", {11, 11.39, 12.06, 15, 17, 56, 0}, 12.83, 0, kTopics});

  std::printf("\n--- Measured (this reproduction) ---\n");
  PrintLatencyTableHeader("Test");
  const auto before = SummarizeNanos(beforeHist);
  const auto after = SummarizeNanos(afterHist);
  PrintLatencyRow({"Before", before, cpuBefore * 100.0, 0, kTopics});
  PrintLatencyRow({"After", after, cpuAfter * 100.0, 0, kTopics});

  // Zero-loss check against the REAL caches of the surviving servers: every
  // acknowledged publication must be present on both live servers.
  std::uint64_t cachedLive0 = 0, cachedLive1 = 0;
  for (int t = 0; t < kTopics; ++t) {
    cachedLive0 += cluster.node(0).cache().GetAfter(TopicName(t), {0, 0}).size();
    cachedLive1 += cluster.node(1).cache().GetAfter(TopicName(t), {0, 0}).size();
  }

  std::printf("\npublished=%llu acked=%llu during-failover=%llu "
              "cached(s1)=%llu cached(s2)=%llu\n",
              static_cast<unsigned long long>(publishedTotal),
              static_cast<unsigned long long>(ackedTotal),
              static_cast<unsigned long long>(publishedDuringFailover),
              static_cast<unsigned long long>(cachedLive0),
              static_cast<unsigned long long>(cachedLive1));

  std::vector<ShapeCheck> checks;
  checks.push_back({"3-server latency ~ single-server 300K row (median, ms)",
                    11, before.medianMs,
                    before.medianMs > 5 && before.medianMs < 30});
  checks.push_back({"median unchanged by failover (ratio after/before ~ 1)",
                    11.0 / 11.0, after.medianMs / before.medianMs,
                    after.medianMs / before.medianMs < 1.3});
  checks.push_back({"CPU rises ~50% load on survivors: after/before in [1.2,1.8]",
                    12.83 / 9.24, cpuAfter / cpuBefore,
                    cpuAfter / cpuBefore > 1.2 && cpuAfter / cpuBefore < 1.8});
  checks.push_back({"tail grows after failover: p99 after/before > 1",
                    56.0 / 21.0, after.p99Ms / before.p99Ms,
                    after.p99Ms > before.p99Ms});
  checks.push_back({"mean stays acceptable after failover (< 100 ms)", 11.39,
                    after.meanMs, after.meanMs < 100.0});
  const bool noLoss = cachedLive0 >= ackedTotal && cachedLive1 >= ackedTotal;
  checks.push_back({"zero message loss: all acked pubs cached on both survivors",
                    static_cast<double>(ackedTotal),
                    static_cast<double>(std::min(cachedLive0, cachedLive1)),
                    noLoss});
  checks.push_back({"service continuity: acks continue through failover",
                    1, static_cast<double>(publishedDuringFailover),
                    publishedDuringFailover > 0});
  PrintShapeChecks(checks);
  return 0;
}
