// Recovery latency and herd-effect study (paper §5.2.3 / §6.2).
//
// The paper claims (a) that after a server failure subscribers recover
// missed messages with an additional latency of "at most a few seconds"
// driven by the connection-monitoring frequency, and (b) that the massive
// reconnection of its clients to the surviving servers shows no harmful
// herd effect because "reconnections are naturally scattered in time",
// helped by random-wait / truncated-exponential-backoff policies.
//
// This bench crashes a server under 100,000 affected clients and measures,
// using the client library's exact reconnect-delay formula
// (client::Client::ComputeReconnectDelay):
//   - the distribution of time-to-recovery (failure detection + policy
//     delay + reconnect round trip + cache replay),
//   - the peak connection-arrival rate at the surviving servers per 100 ms
//     bucket (the herd metric), for each policy and for a naive
//     reconnect-immediately baseline.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_support/table.hpp"
#include "client/client.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"

using namespace md;
using namespace md::bench;

namespace {

constexpr int kAffectedClients = 100'000;
// Client-side connection monitoring interval (the paper: recovery latency
// "depends on the frequency of monitoring of the connection").
constexpr Duration kMonitorInterval = 1 * kSecond;
constexpr Duration kConnectRoundTrip = 50 * kMillisecond;  // TCP+resume replay

struct PolicyResult {
  std::string name;
  LatencySummary recovery;
  std::uint64_t peakPer100ms = 0;  // max reconnect arrivals in any 100ms bucket
};

// Surviving servers admit at most this many new connections per 100 ms
// bucket (the paper: "the rate of re-subscription can be limited by
// restricting the number of new socket connections per second at the
// operating system or at the network router level"). Arrivals beyond the
// limit are refused and the client retries under its policy with an
// incremented attempt count — this is where backoff earns its keep.
constexpr std::uint64_t kAdmitPer100ms = 3000;

PolicyResult RunPolicy(const std::string& name,
                       const client::ClientConfig& cfg, bool naive,
                       std::uint64_t seed) {
  Rng rng(seed);
  Histogram recovery;
  std::map<std::int64_t, std::uint64_t> offeredPer100ms;
  std::map<std::int64_t, std::uint64_t> admittedPer100ms;

  struct Attempt {
    Duration when;
    int attempt;
    Rng rng;
  };
  // Min-heap of pending connection attempts, ordered by time.
  const auto later = [](const Attempt& a, const Attempt& b) {
    return a.when > b.when;
  };
  std::vector<Attempt> heap;
  heap.reserve(kAffectedClients);
  for (int c = 0; c < kAffectedClients; ++c) {
    // Failure detection: next monitoring tick after the crash.
    const Duration detect = static_cast<Duration>(
        rng.NextBelow(static_cast<std::uint64_t>(kMonitorInterval)));
    Rng clientRng(rng.Next());
    const Duration wait =
        naive ? 0 : client::Client::ComputeReconnectDelay(cfg, 1, clientRng);
    heap.push_back({detect + wait, 1, clientRng});
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Attempt attempt = std::move(heap.back());
    heap.pop_back();

    const std::int64_t bucket = attempt.when / (100 * kMillisecond);
    offeredPer100ms[bucket]++;
    if (admittedPer100ms[bucket] < kAdmitPer100ms) {
      admittedPer100ms[bucket]++;
      recovery.Record(attempt.when + kConnectRoundTrip);
      continue;
    }
    // Refused: retry with the policy (immediate for the naive baseline —
    // which is exactly the destructive herd the policies exist to avoid; a
    // token 10 ms keeps the naive simulation finite).
    const Duration wait =
        naive ? 10 * kMillisecond
              : client::Client::ComputeReconnectDelay(cfg, ++attempt.attempt,
                                                      attempt.rng);
    attempt.when += wait;
    heap.push_back(std::move(attempt));
    std::push_heap(heap.begin(), heap.end(), later);
  }

  PolicyResult result;
  result.name = name;
  result.recovery = SummarizeNanos(recovery);
  for (const auto& [bucket, count] : offeredPer100ms) {
    result.peakPer100ms = std::max(result.peakPer100ms, count);
  }
  return result;
}

// Elastic scale-in (DESIGN.md §12): a graceful leave hands every subscriber
// partition to the surviving members. Clients are not *detecting* a failure
// — the leaving owner redirects each frozen session (HANDOFF, flushed before
// the close), so there is no monitoring-interval wait and the first attempt
// is directed and immediate; the redirect jitter is only the per-partition
// release spread. Admission-refused retries fall back to the reconnect
// policy exactly like a crash.
PolicyResult RunHandoff(const std::string& name,
                        const client::ClientConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  Histogram recovery;
  std::map<std::int64_t, std::uint64_t> offeredPer100ms;
  std::map<std::int64_t, std::uint64_t> admittedPer100ms;

  struct Attempt {
    Duration when;
    int attempt;
    Rng rng;
  };
  const auto later = [](const Attempt& a, const Attempt& b) {
    return a.when > b.when;
  };
  std::vector<Attempt> heap;
  heap.reserve(kAffectedClients);
  constexpr Duration kReleaseSpread = 50 * kMillisecond;  // Begin->Ack->flush
  for (int c = 0; c < kAffectedClients; ++c) {
    const Duration redirect = static_cast<Duration>(
        rng.NextBelow(static_cast<std::uint64_t>(kReleaseSpread)));
    heap.push_back({redirect, 1, Rng(rng.Next())});
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Attempt attempt = std::move(heap.back());
    heap.pop_back();

    const std::int64_t bucket = attempt.when / (100 * kMillisecond);
    offeredPer100ms[bucket]++;
    if (admittedPer100ms[bucket] < kAdmitPer100ms) {
      admittedPer100ms[bucket]++;
      recovery.Record(attempt.when + kConnectRoundTrip);
      continue;
    }
    attempt.when += client::Client::ComputeReconnectDelay(
        cfg, ++attempt.attempt, attempt.rng);
    heap.push_back(std::move(attempt));
    std::push_heap(heap.begin(), heap.end(), later);
  }

  PolicyResult result;
  result.name = name;
  result.recovery = SummarizeNanos(recovery);
  for (const auto& [bucket, count] : offeredPer100ms) {
    result.peakPer100ms = std::max(result.peakPer100ms, count);
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "=== Recovery latency & herd effect after a server crash ===\n"
      "%d clients of the failed server; monitoring interval %.0f ms;\n"
      "reconnect round trip + cache replay %.0f ms.\n\n",
      kAffectedClients, ToMillis(kMonitorInterval), ToMillis(kConnectRoundTrip));

  client::ClientConfig randomWait;
  randomWait.reconnectPolicy = client::ReconnectPolicy::kRandomWait;
  randomWait.randomWaitMax = 2 * kSecond;

  client::ClientConfig backoff;
  backoff.reconnectPolicy = client::ReconnectPolicy::kExponentialBackoff;
  backoff.backoffBase = 200 * kMillisecond;
  backoff.backoffMax = 2 * kSecond;

  const auto naive = RunPolicy("immediate (naive)", randomWait, true, 1);
  const auto random = RunPolicy("random-wait 2s", randomWait, false, 2);
  const auto expo = RunPolicy("trunc-exp-backoff", backoff, false, 3);
  const auto handoff = RunHandoff("handoff (elastic)", backoff, 4);

  std::printf("%-20s %10s %10s %10s %10s %16s\n", "Policy", "median",
              "mean", "p95", "p99", "peak-conn/100ms");
  for (const auto& r : {naive, random, expo, handoff}) {
    std::printf("%-20s %9.0fms %9.0fms %9.0fms %9.0fms %16s\n", r.name.c_str(),
                r.recovery.medianMs, r.recovery.meanMs, r.recovery.p95Ms,
                r.recovery.p99Ms, WithThousands(r.peakPer100ms).c_str());
  }

  std::vector<ShapeCheck> checks;
  // 100k clients through a 30k-conn/s admission limit need >= 3.3s to drain;
  // "a few seconds" (the paper's wording) = under ~6s end to end.
  checks.push_back({"recovery completes within 'a few seconds' (p99, ms)",
                    3000, random.recovery.p99Ms,
                    random.recovery.p99Ms < 6000 && expo.recovery.p99Ms < 6000});
  checks.push_back(
      {"random-wait flattens offered load: peak <= 60% of naive",
       static_cast<double>(naive.peakPer100ms),
       static_cast<double>(random.peakPer100ms),
       random.peakPer100ms * 10 < naive.peakPer100ms * 6});
  checks.push_back(
      {"backoff flattens offered load: peak <= 60% of naive",
       static_cast<double>(naive.peakPer100ms),
       static_cast<double>(expo.peakPer100ms),
       expo.peakPer100ms * 10 < naive.peakPer100ms * 6});
  checks.push_back({"policies stay responsive: median under ~2s (ms)", 2000,
                    random.recovery.medianMs,
                    random.recovery.medianMs < 2500 &&
                        expo.recovery.medianMs < 2500});
  // Elastic scale-in: the directed redirect removes the detection wait and
  // the first-attempt policy delay. With 100k sessions against a 3k/100ms
  // admission limit the drain itself (~3.3s) bounds every policy's median,
  // so the redirect cannot beat it — the claim is that a *planned* leave is
  // never slower than the best crash recovery, with the offered burst
  // bounded by the session count (one directed attempt each) rather than a
  // naive retry storm.
  checks.push_back({"hand-off re-attach <= best crash policy (median, ms)",
                    expo.recovery.medianMs, handoff.recovery.medianMs,
                    handoff.recovery.medianMs <= expo.recovery.medianMs * 1.05 &&
                        handoff.recovery.p99Ms <= expo.recovery.p99Ms * 1.05});
  checks.push_back(
      {"hand-off offered burst <= 20% of naive peak",
       static_cast<double>(naive.peakPer100ms),
       static_cast<double>(handoff.peakPer100ms),
       handoff.peakPer100ms * 5 < naive.peakPer100ms});
  checks.push_back({"hand-off drain completes within 'a few seconds' (p99, ms)",
                    6000, handoff.recovery.p99Ms,
                    handoff.recovery.p99Ms < 6000});
  PrintShapeChecks(checks);
  return 0;
}
