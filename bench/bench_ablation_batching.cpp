// Ablation: batching and conflation (paper §4).
//
// The paper claims both techniques "significantly improve the vertical
// scalability for use cases where clients have to be updated at a high
// frequency" by reducing the number of I/O operations. This bench drives the
// real Batcher/Conflator components with a high-frequency update stream and
// reports I/O operations, bytes and added latency per configuration.
#include <cstdio>

#include "bench_support/table.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "core/batcher.hpp"
#include "proto/codec.hpp"

using namespace md;
using namespace md::core;

namespace {

constexpr int kMessagesPerSecond = 1000;  // a hot market-data style topic
constexpr int kSeconds = 60;
constexpr std::size_t kPayload = 140;

Message MakeMsg(int topicIdx, std::uint64_t seq) {
  Message m;
  m.topic = "hot/" + std::to_string(topicIdx);
  m.payload = Bytes(kPayload, static_cast<std::uint8_t>(seq));
  m.epoch = 1;
  m.seq = seq;
  return m;
}

struct RunStats {
  std::uint64_t messagesIn = 0;
  std::uint64_t ioOps = 0;
  std::uint64_t bytesOut = 0;
  std::uint64_t messagesOut = 0;
  double meanAddedDelayMs = 0;
};

/// Unbatched baseline: one write per message.
RunStats RunUnbatched() {
  RunStats s;
  for (int sec = 0; sec < kSeconds; ++sec) {
    for (int i = 0; i < kMessagesPerSecond; ++i) {
      Bytes wire;
      EncodeFramed(Frame(DeliverFrame{MakeMsg(i % 10, static_cast<std::uint64_t>(i))}),
                   wire);
      ++s.messagesIn;
      ++s.messagesOut;
      ++s.ioOps;
      s.bytesOut += wire.size();
    }
  }
  return s;
}

RunStats RunBatched(Duration maxDelay, std::size_t maxBytes) {
  RunStats s;
  Histogram addedDelay;
  BatchConfig cfg;
  cfg.maxDelay = maxDelay;
  cfg.maxBytes = maxBytes;
  Batcher batcher(cfg, [&](BytesView flushed) { s.bytesOut += flushed.size(); });

  TimePoint lastEnqueue = 0;
  std::vector<TimePoint> pendingTimes;
  for (int sec = 0; sec < kSeconds; ++sec) {
    for (int i = 0; i < kMessagesPerSecond; ++i) {
      const TimePoint now =
          sec * kSecond + static_cast<TimePoint>(i) * kSecond / kMessagesPerSecond;
      // Drive time-based flushes as an event loop timer would.
      if (const auto deadline = batcher.Deadline(); deadline && now >= *deadline) {
        const std::uint64_t prevFlushes = batcher.FlushCount();
        batcher.OnTime(now);
        if (batcher.FlushCount() > prevFlushes) {
          for (const TimePoint t : pendingTimes) addedDelay.Record(*deadline - t);
          pendingTimes.clear();
        }
      }
      Bytes wire;
      EncodeFramed(Frame(DeliverFrame{MakeMsg(i % 10, static_cast<std::uint64_t>(i))}),
                   wire);
      ++s.messagesIn;
      ++s.messagesOut;
      const std::uint64_t prevFlushes = batcher.FlushCount();
      batcher.Enqueue(BytesView(wire), now);
      pendingTimes.push_back(now);
      if (batcher.FlushCount() > prevFlushes) {
        for (const TimePoint t : pendingTimes) addedDelay.Record(now - t);
        pendingTimes.clear();
      }
      lastEnqueue = now;
    }
  }
  batcher.Flush();
  for (const TimePoint t : pendingTimes) addedDelay.Record(lastEnqueue - t);
  s.ioOps = batcher.FlushCount();
  s.meanAddedDelayMs = addedDelay.Mean() / static_cast<double>(kMillisecond);
  return s;
}

RunStats RunConflated(Duration interval) {
  RunStats s;
  Bytes wire;
  ConflateConfig cfg;
  cfg.interval = interval;
  Conflator conflator(cfg, [&](const Message& m) {
    wire.clear();
    EncodeFramed(Frame(DeliverFrame{m}), wire);
    ++s.messagesOut;
    ++s.ioOps;
    s.bytesOut += wire.size();
  });
  for (int sec = 0; sec < kSeconds; ++sec) {
    for (int i = 0; i < kMessagesPerSecond; ++i) {
      const TimePoint now =
          sec * kSecond + static_cast<TimePoint>(i) * kSecond / kMessagesPerSecond;
      conflator.OnTime(now);
      ++s.messagesIn;
      conflator.Offer(MakeMsg(i % 10, static_cast<std::uint64_t>(i)), now);
    }
  }
  conflator.Flush();
  s.meanAddedDelayMs = ToMillis(interval) / 2.0;  // uniform within the window
  return s;
}

void PrintRow(const char* name, const RunStats& s) {
  std::printf("%-26s %10llu %10llu %12llu %10llu %12.2f\n", name,
              static_cast<unsigned long long>(s.messagesIn),
              static_cast<unsigned long long>(s.messagesOut),
              static_cast<unsigned long long>(s.ioOps),
              static_cast<unsigned long long>(s.bytesOut),
              s.meanAddedDelayMs);
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: batching & conflation (paper §4) ===\n"
      "Hot update stream: %d msgs/s for %d s, %zu B payloads, 10 topics.\n\n",
      kMessagesPerSecond, kSeconds, kPayload);
  std::printf("%-26s %10s %10s %12s %10s %12s\n", "Mode", "msgs-in", "msgs-out",
              "io-ops", "bytes-out", "added-ms");

  const RunStats unbatched = RunUnbatched();
  PrintRow("unbatched", unbatched);
  const RunStats batched10 = RunBatched(10 * kMillisecond, 64 * 1024);
  PrintRow("batched(10ms/64KB)", batched10);
  const RunStats batched50 = RunBatched(50 * kMillisecond, 64 * 1024);
  PrintRow("batched(50ms/64KB)", batched50);
  const RunStats conflated100 = RunConflated(100 * kMillisecond);
  PrintRow("conflated(100ms)", conflated100);
  const RunStats conflated1000 = RunConflated(1 * kSecond);
  PrintRow("conflated(1s)", conflated1000);

  const double reduction10 = static_cast<double>(unbatched.ioOps) /
                             static_cast<double>(batched10.ioOps);
  const double conflateReduction =
      static_cast<double>(conflated100.messagesIn) /
      static_cast<double>(conflated100.messagesOut);

  std::vector<md::bench::ShapeCheck> checks;
  checks.push_back({"batching reduces I/O ops by >= 5x at 10 ms budget", 0,
                    reduction10, reduction10 >= 5.0});
  checks.push_back({"batching adds bounded delay (<= budget)", 10.0,
                    batched10.meanAddedDelayMs,
                    batched10.meanAddedDelayMs <= 10.0});
  checks.push_back({"batching preserves every message", 0,
                    static_cast<double>(batched10.messagesOut),
                    batched10.messagesOut == unbatched.messagesOut});
  checks.push_back({"conflation compresses hot topics (>= 5x fewer messages)",
                    0, conflateReduction, conflateReduction >= 5.0});
  checks.push_back({"conflation also cuts bytes proportionally", 0,
                    static_cast<double>(unbatched.bytesOut) /
                        static_cast<double>(conflated100.bytesOut),
                    conflated100.bytesOut * 5 <= unbatched.bytesOut});
  md::bench::PrintShapeChecks(checks);
  return 0;
}
