// MiniZK (coordination service) characterisation bench.
//
// The paper's design leans on three properties of the coordination layer
// (§5.2.1): writes are linearized and "incur a significant delay" (hence the
// gossip-map cache in front of it), reads are local and cheap, and ephemeral
// entries + watches give failure detection within the session timeout. This
// bench measures all three on the simulated network, plus leader-election
// convergence — the constants behind the cluster's failover timeline.
#include <cstdio>

#include "bench_support/table.hpp"
#include "common/histogram.hpp"
#include "coord/sim_harness.hpp"

using namespace md;
using namespace md::bench;

namespace {

constexpr std::size_t kNodes = 3;

struct Fixture {
  sim::Scheduler sched;
  std::unique_ptr<sim::SimNetwork> net;
  std::unique_ptr<coord::SimCoordCluster> cluster;

  explicit Fixture(std::uint64_t seed) {
    net = std::make_unique<sim::SimNetwork>(sched, Rng(seed));
    std::vector<sim::HostId> hosts;
    for (std::size_t i = 0; i < kNodes; ++i) {
      hosts.push_back(net->AddHost("zk-" + std::to_string(i)));
    }
    cluster = std::make_unique<coord::SimCoordCluster>(sched, *net, hosts,
                                                       coord::CoordConfig{}, seed);
    cluster->StartAll();
  }

  std::optional<std::size_t> AwaitLeader(Duration budget = 10 * kSecond) {
    const TimePoint deadline = sched.Now() + budget;
    while (sched.Now() < deadline) {
      sched.RunFor(10 * kMillisecond);
      if (const auto leader = cluster->LeaderIndex()) return leader;
    }
    return std::nullopt;
  }
};

}  // namespace

int main() {
  std::printf("=== MiniZK characterisation (3 nodes, simulated network) ===\n\n");

  // --- election convergence ----------------------------------------------------
  Histogram electionTime;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Fixture f(seed);
    const TimePoint start = f.sched.Now();
    if (f.AwaitLeader()) electionTime.Record(f.sched.Now() - start);
  }
  const auto election = SummarizeNanos(electionTime);
  std::printf("initial leader election: median %.0f ms, p99 %.0f ms (n=%llu)\n",
              election.medianMs, election.p99Ms,
              static_cast<unsigned long long>(election.count));

  // --- write latency (linearized through the leader) ----------------------------
  Fixture f(99);
  const auto leaderIdx = f.AwaitLeader();
  Histogram writeOnLeader, writeOnFollower;
  if (leaderIdx) {
    const std::size_t follower = (*leaderIdx + 1) % kNodes;
    for (int i = 0; i < 300; ++i) {
      for (const bool onLeader : {true, false}) {
        const std::size_t node = onLeader ? *leaderIdx : follower;
        Histogram& hist = onLeader ? writeOnLeader : writeOnFollower;
        const TimePoint start = f.sched.Now();
        bool done = false;
        f.cluster->node(node).Put(
            "bench/key-" + std::to_string(i), "v",
            [&](Status s, std::uint64_t) {
              if (s.ok()) {
                hist.Record(f.sched.Now() - start);
              }
              done = true;
            });
        while (!done) f.sched.RunFor(kMillisecond);
      }
    }
  }
  const auto onLeader = SummarizeNanos(writeOnLeader);
  const auto onFollower = SummarizeNanos(writeOnFollower);
  std::printf("linearized write via leader:   median %.2f ms\n", onLeader.medianMs);
  std::printf("linearized write via follower: median %.2f ms (adds forward hop)\n",
              onFollower.medianMs);

  // --- local read cost -----------------------------------------------------------
  // Reads are served from the local replica: no network events at all.
  const TimePoint beforeReads = f.sched.Now();
  std::uint64_t found = 0;
  for (int i = 0; i < 300; ++i) {
    if (f.cluster->node(0).Read("bench/key-" + std::to_string(i))) ++found;
  }
  const bool readsAreLocal = f.sched.Now() == beforeReads;
  std::printf("local reads: %llu/300 hit, zero simulated time consumed: %s\n",
              static_cast<unsigned long long>(found), readsAreLocal ? "yes" : "no");

  // --- failure detection (ephemeral expiry via session timeout) -------------------
  Histogram detection;
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    Fixture g(seed);
    const auto leader = g.AwaitLeader();
    if (!leader) continue;
    // A non-leader node owns an ephemeral entry, then crashes.
    const std::size_t owner = (*leader + 1) % kNodes;
    bool created = false;
    g.cluster->node(owner).CreateEphemeral("eph/owner", "x",
                                           [&](Status s, std::uint64_t) {
                                             created = s.ok();
                                           });
    for (int i = 0; i < 100 && !created; ++i) g.sched.RunFor(10 * kMillisecond);
    if (!created) continue;

    bool observed = false;
    TimePoint observedAt = 0;
    const std::size_t watcher = (*leader + 2) % kNodes;
    g.cluster->node(watcher).Watch("eph/owner", [&](const coord::WatchEvent& e) {
      if (e.type == coord::WatchEventType::kDeleted && !observed) {
        observed = true;
        observedAt = g.sched.Now();
      }
    });
    const TimePoint crashAt = g.sched.Now();
    g.cluster->CrashNode(owner);
    for (int i = 0; i < 1000 && !observed; ++i) g.sched.RunFor(10 * kMillisecond);
    if (observed) detection.Record(observedAt - crashAt);
  }
  const auto detect = SummarizeNanos(detection);
  std::printf("ephemeral-expiry failure detection: median %.0f ms, p99 %.0f ms "
              "(session timeout 2000 ms)\n\n",
              detect.medianMs, detect.p99Ms);

  std::vector<ShapeCheck> checks;
  checks.push_back({"leader elected within 1 s (p99, ms)", 0, election.p99Ms,
                    election.count >= 45 && election.p99Ms < 1000});
  checks.push_back({"writes cost network round trips (>= 0.3 ms median)", 0,
                    onLeader.medianMs, onLeader.medianMs >= 0.3});
  checks.push_back({"follower writes add a forwarding hop", onLeader.medianMs,
                    onFollower.medianMs,
                    onFollower.medianMs > onLeader.medianMs});
  checks.push_back({"reads are local (justifies the gossip cache)", 0,
                    readsAreLocal ? 1.0 : 0.0, readsAreLocal && found == 300});
  checks.push_back({"failure detected within ~session timeout +50% (ms)", 2000,
                    detect.p99Ms, detect.count >= 15 && detect.p99Ms < 3000 &&
                                      detect.medianMs > 500});
  PrintShapeChecks(checks);
  return 0;
}
