// Calibrated single-server fan-out model for the scale experiments.
//
// The evaluation hardware (2× 8-core Xeon E5-2670, 10 GbE, 1M–10M real
// WebSocket clients across four machines) is not available here, so the
// vertical-scalability experiments (Table 1 / Figure 3, C10M, GC ablation)
// run against this mechanistic model instead (DESIGN.md §1):
//
//   - One SimCpu with 16 cores stands in for the server; the engine's
//     per-delivery CPU cost is charged for every notification. The cost
//     constant (~10.5 µs of core time per delivered message) is derived from
//     the paper's own measurements: Table 1 reports 69.1 % CPU of 16 cores
//     at 1 M deliveries/s, i.e. ≈ 11 core-µs per message, and the
//     100 K-subscriber row implies ≈ 3 % fixed background load.
//   - Each publication's fan-out to a topic's subscribers is split evenly
//     across the worker threads (as the real engine pins clients to
//     threads); a subscriber's delivery completes at a uniformly random
//     position within its thread's batch. Queueing delay, saturation knees
//     and tail blow-up all *emerge* from the CPU model.
//   - JVM stop-the-world GC pauses (the evaluation ran the stock JVM) are
//     injected with frequency proportional to the allocation rate (message
//     rate) — they drive the mean and P99 far above the median, exactly the
//     effect visible in Table 1's last rows.
//   - Client-side constants (network propagation, client stack, Benchsub
//     receive queueing) are lumped into a base latency with jitter.
//
// Everything here is deterministic under a seed.
#pragma once

#include <cstdint>
#include <memory>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "simnet/cpu.hpp"
#include "simnet/gc.hpp"
#include "simnet/scheduler.hpp"

namespace md::bench {

struct EngineModelConfig {
  int cores = 16;  // 2x 8-core Xeon E5-2670
  // Per-delivery engine cost (decode amortized, match, encode, socket
  // write) in core time; calibrated from Table 1 (see header comment).
  Duration perDeliveryCost = 10'500;  // ns
  // Per-publication cost (read, decode, sequence, cache append).
  Duration perPublicationCost = 20 * kMicrosecond;
  // Constant background work (timers, kernel, JVM service threads):
  // fraction of total machine capacity.
  double backgroundLoad = 0.031;
  // Base end-to-end constant outside the server (propagation + client
  // stack + Benchsub receive path) and its jitter.
  Duration baseLatency = 8 * kMillisecond;
  Duration baseJitter = 6 * kMillisecond;
  // Stock-JVM stop-the-world GC. Pause frequency scales with allocation
  // (message) rate; pause length with heap pressure. gcReferenceRate is the
  // msgs/s at which gcMeanInterval applies.
  bool gcEnabled = true;
  double gcReferenceRate = 1'000'000.0;
  Duration gcMeanInterval = 3 * kSecond;   // at the reference rate
  Duration gcPauseMean = 120 * kMillisecond;
  Duration gcPauseStdDev = 90 * kMillisecond;
  // Wire size per delivered message (payload + WebSocket/TCP/IP framing).
  std::size_t payloadBytes = 140;
  std::size_t perMessageOverheadBytes = 75;
};

struct EngineRunResult {
  LatencySummary latency;
  double cpuFraction = 0;   // of the whole machine
  double gbpsOut = 0;       // outgoing notification traffic
  std::uint64_t deliveries = 0;
  std::uint64_t publications = 0;
};

/// Runs the fan-out model for a workload of `topics` topics, each published
/// once per `publishInterval`, with `subscribersPerTopic` subscribers, for
/// `duration` after `warmup` (only post-warmup samples are recorded).
class EngineModel {
 public:
  EngineModel(EngineModelConfig cfg, std::uint64_t seed);

  /// `aggregateTicks`: when a "topic" has very few subscribers (C10M: one),
  /// publications are aggregated into ticks of this many per event to bound
  /// event counts; 1 = one event per publication.
  EngineRunResult Run(std::uint32_t topics, std::uint32_t subscribersPerTopic,
                      Duration publishInterval, Duration warmup, Duration duration,
                      std::uint32_t latencySamplesPerFanout = 64);

  /// Replace the GC model before Run (used by the ablation bench).
  void DisableGc() { cfg_.gcEnabled = false; }
  void UseConcurrentCollector(Duration jitterCeiling) {
    cfg_.gcEnabled = false;
    concurrentGc_ = std::make_unique<sim::ConcurrentCollector>(jitterCeiling);
  }

 private:
  EngineModelConfig cfg_;
  Rng rng_;
  std::unique_ptr<sim::ConcurrentCollector> concurrentGc_;
};

}  // namespace md::bench
