#include "bench_support/engine_model.hpp"

#include <algorithm>

namespace md::bench {

EngineModel::EngineModel(EngineModelConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

EngineRunResult EngineModel::Run(std::uint32_t topics,
                                 std::uint32_t subscribersPerTopic,
                                 Duration publishInterval, Duration warmup,
                                 Duration duration,
                                 std::uint32_t latencySamplesPerFanout) {
  const Duration total = warmup + duration;
  const double intervalSec = ToSeconds(publishInterval);
  const double pubRate = static_cast<double>(topics) / intervalSec;
  const double msgRate = pubRate * static_cast<double>(subscribersPerTopic);

  sim::SimCpu cpu(cfg_.cores);

  // GC pause schedule: pause frequency tracks the allocation (message) rate.
  std::unique_ptr<sim::StopTheWorldPauses> stwPauses;
  if (cfg_.gcEnabled && msgRate > 0) {
    sim::GcProfile profile;
    profile.meanInterval = static_cast<Duration>(
        static_cast<double>(cfg_.gcMeanInterval) * cfg_.gcReferenceRate / msgRate);
    profile.meanInterval = std::clamp<Duration>(profile.meanInterval,
                                                500 * kMillisecond, 5 * kMinute);
    profile.pauseMean = cfg_.gcPauseMean;
    profile.pauseStdDev = cfg_.gcPauseStdDev;
    stwPauses = sim::GenerateStwSchedule(profile, total, rng_.Fork());
    cpu.SetPauseModel(stwPauses.get());
  } else if (concurrentGc_) {
    cpu.SetPauseModel(concurrentGc_.get());
  }

  // Chunk several same-instant publications into one model step when the
  // per-topic fan-out is tiny (C10M: one subscriber per topic).
  const std::uint32_t chunk = std::max<std::uint32_t>(
      1, 2000 / std::max<std::uint32_t>(1, subscribersPerTopic));

  Histogram latency;
  Duration busyAtWarmup = 0;
  bool warmupSnapshotTaken = false;
  std::uint64_t deliveries = 0;
  std::uint64_t publications = 0;

  const int workers = cfg_.cores;
  const auto periods =
      static_cast<std::uint64_t>(static_cast<double>(total) /
                                 static_cast<double>(publishInterval));

  for (std::uint64_t k = 0; k < periods; ++k) {
    const TimePoint periodStart =
        static_cast<TimePoint>(k) * publishInterval;
    if (!warmupSnapshotTaken && periodStart >= warmup) {
      busyAtWarmup = cpu.BusyTime();
      warmupSnapshotTaken = true;
    }
    for (std::uint32_t t = 0; t < topics; t += chunk) {
      const auto inChunk = std::min(chunk, topics - t);
      // Publications are staggered uniformly across the interval.
      const TimePoint pubTime =
          periodStart + static_cast<TimePoint>(
                            static_cast<double>(t) / static_cast<double>(topics) *
                            static_cast<double>(publishInterval));
      const bool record = pubTime >= warmup;
      publications += inChunk;

      // One wave of work per chunk: ingest (read + decode + sequence +
      // cache append) and fan-out both split evenly across worker threads,
      // charged at publish time. Keeping items comparable in size to their
      // arrival spacing preserves work conservation in the core model.
      const std::uint64_t fanout =
          static_cast<std::uint64_t>(inChunk) * subscribersPerTopic;
      deliveries += fanout;
      const std::uint64_t perWorker = (fanout + workers - 1) / workers;
      const std::uint64_t pubsPerWorker =
          (inChunk + static_cast<std::uint32_t>(workers) - 1) /
          static_cast<std::uint32_t>(workers);
      const Duration batchCost =
          static_cast<Duration>(perWorker) * cfg_.perDeliveryCost +
          static_cast<Duration>(pubsPerWorker) * cfg_.perPublicationCost;

      const std::uint32_t samplesTotal =
          std::min<std::uint64_t>(latencySamplesPerFanout, fanout);
      const std::uint32_t samplesPerWorker =
          std::max<std::uint32_t>(1, samplesTotal / static_cast<std::uint32_t>(workers));

      for (int w = 0; w < workers; ++w) {
        const auto span = cpu.ChargeSpan(pubTime, batchCost);
        if (!record) continue;
        for (std::uint32_t s = 0; s < samplesPerWorker; ++s) {
          const double u = rng_.NextDouble();
          const TimePoint deliveredAt =
              span.start + static_cast<Duration>(
                               u * static_cast<double>(span.done - span.start));
          Duration lat = (deliveredAt - pubTime) + cfg_.baseLatency;
          if (cfg_.baseJitter > 0) {
            lat += static_cast<Duration>(
                rng_.NextBelow(static_cast<std::uint64_t>(cfg_.baseJitter)));
          }
          // Weight each sample by the number of deliveries it represents so
          // chunks with different sizes contribute proportionally.
          const std::uint64_t weight =
              std::max<std::uint64_t>(1, perWorker / samplesPerWorker);
          latency.RecordN(lat, weight);
        }
      }
    }
  }

  EngineRunResult result;
  result.latency = SummarizeNanos(latency);
  const Duration busyDelta = cpu.BusyTime() - busyAtWarmup;
  result.cpuFraction =
      sim::SimCpu::Utilization(busyDelta, duration, cfg_.cores) + cfg_.backgroundLoad;
  result.gbpsOut = msgRate *
                   static_cast<double>(cfg_.payloadBytes + cfg_.perMessageOverheadBytes) *
                   8.0 / 1e9;
  result.deliveries = deliveries;
  result.publications = publications;
  return result;
}

}  // namespace md::bench
