// Table formatting for the benchmark harness: prints rows shaped like the
// paper's tables plus paper-vs-measured comparisons with shape checks.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/strutil.hpp"

namespace md::bench {

/// One row of a Table-1-style latency table.
struct LatencyRow {
  std::string label;
  LatencySummary latency;
  double cpuPercent = 0;
  double gbps = 0;
  int topics = 0;
};

inline void PrintLatencyTableHeader(const char* labelName) {
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %7s %7s\n", labelName, "Median",
              "Mean", "StDev", "P90", "P95", "P99", "CPU", "Gbps", "Topics");
}

inline void PrintLatencyRow(const LatencyRow& row) {
  std::printf("%-8s %8.0f %8.2f %8.2f %8.0f %8.0f %8.0f %7.2f%% %7.2f %7d\n",
              row.label.c_str(), row.latency.medianMs, row.latency.meanMs,
              row.latency.stdDevMs, row.latency.p90Ms, row.latency.p95Ms,
              row.latency.p99Ms, row.cpuPercent, row.gbps, row.topics);
}

/// Prints "paper vs measured" and whether the shape constraint holds.
struct ShapeCheck {
  std::string name;
  double paper = 0;
  double measured = 0;
  bool pass = false;
};

inline void PrintShapeChecks(const std::vector<ShapeCheck>& checks) {
  std::printf("\nShape checks (paper -> measured):\n");
  int passed = 0;
  for (const auto& c : checks) {
    std::printf("  [%s] %-52s paper=%10.2f measured=%10.2f\n",
                c.pass ? "PASS" : "FAIL", c.name.c_str(), c.paper, c.measured);
    if (c.pass) ++passed;
  }
  std::printf("  %d/%zu shape checks passed\n", passed, checks.size());
}

}  // namespace md::bench
