#include "wal/mem_env.hpp"

#include <algorithm>
#include <vector>

namespace md::wal {
namespace {

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::mutex& mutex, bool& full,
                  std::shared_ptr<void> state, Bytes* data, std::size_t* synced)
      : mutex_(mutex), full_(full), hold_(std::move(state)), data_(data),
        synced_(synced) {}

  Status Append(BytesView data) override {
    std::lock_guard lock(mutex_);
    if (full_) return Err(ErrorCode::kCapacity, "disk full");
    data_->insert(data_->end(), data.begin(), data.end());
    return OkStatus();
  }

  Status Sync() override {
    std::lock_guard lock(mutex_);
    *synced_ = data_->size();
    return OkStatus();
  }

  Status Close() override { return OkStatus(); }

 private:
  std::mutex& mutex_;
  bool& full_;
  std::shared_ptr<void> hold_;  // keeps the FileState alive
  Bytes* data_;
  std::size_t* synced_;
};

}  // namespace

Status MemEnv::CreateDirs(const std::string&) { return OkStatus(); }

Status MemEnv::NewWritableFile(const std::string& path,
                               std::unique_ptr<WritableFile>* file) {
  std::lock_guard lock(mutex_);
  if (full_) return Err(ErrorCode::kCapacity, "disk full");
  auto& state = files_[path];
  if (!state) state = std::make_shared<FileState>();
  *file = std::make_unique<MemWritableFile>(mutex_, full_, state,
                                            &state->data, &state->synced);
  return OkStatus();
}

Status MemEnv::ReadFile(const std::string& path, Bytes* out) {
  std::lock_guard lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Err(ErrorCode::kNotFound, "no such file");
  *out = it->second->data;
  return OkStatus();
}

Status MemEnv::ListDir(const std::string& dir,
                       std::vector<std::string>* names) {
  names->clear();
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::lock_guard lock(mutex_);
  for (const auto& [path, state] : files_) {
    if (!path.starts_with(prefix)) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.empty() || rest.find('/') != std::string::npos) continue;
    names->push_back(rest);
  }
  return OkStatus();
}

Status MemEnv::RemoveFile(const std::string& path) {
  std::lock_guard lock(mutex_);
  files_.erase(path);
  return OkStatus();
}

void MemEnv::Crash(std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  Rng rng(seed ^ 0xC4A5ED0DDULL);
  for (auto& [path, state] : files_) {
    const std::size_t unsynced = state->data.size() - state->synced;
    if (unsynced == 0) continue;
    // Keep a random prefix of the unsynced tail: 0..unsynced bytes, biased
    // toward the extremes (all-lost and nearly-all-kept are the common real
    // shapes; a mid-record cut is the interesting torn case).
    const std::size_t kept =
        static_cast<std::size_t>(rng.NextBelow(unsynced + 1));
    state->data.resize(state->synced + kept);
    state->synced = state->data.size();
  }
}

bool MemEnv::FlipRandomBit(std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  Rng rng(seed ^ 0xB17F11BULL);
  std::vector<FileState*> candidates;
  for (auto& [path, state] : files_) {
    if (!state->data.empty()) candidates.push_back(state.get());
  }
  if (candidates.empty()) return false;
  FileState* victim = candidates[rng.NextBelow(candidates.size())];
  const std::size_t byte = rng.NextBelow(victim->data.size());
  victim->data[byte] ^= static_cast<std::uint8_t>(1U << rng.NextBelow(8));
  return true;
}

std::size_t MemEnv::TruncateRandomTail(std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  Rng rng(seed ^ 0x70511AE1ULL);
  std::vector<FileState*> candidates;
  for (auto& [path, state] : files_) {
    if (!state->data.empty()) candidates.push_back(state.get());
  }
  if (candidates.empty()) return 0;
  FileState* victim = candidates[rng.NextBelow(candidates.size())];
  const std::size_t cut = 1 + rng.NextBelow(victim->data.size());
  victim->data.resize(victim->data.size() - cut);
  victim->synced = std::min(victim->synced, victim->data.size());
  return cut;
}

void MemEnv::ZeroFillTail(const std::string& path, std::size_t n) {
  std::lock_guard lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) return;
  Bytes& data = it->second->data;
  const std::size_t fill = std::min(n, data.size());
  std::fill(data.end() - static_cast<std::ptrdiff_t>(fill), data.end(),
            std::uint8_t{0});
}

void MemEnv::SetFull(bool full) {
  std::lock_guard lock(mutex_);
  full_ = full;
}

std::size_t MemEnv::FileCount() const {
  std::lock_guard lock(mutex_);
  return files_.size();
}

std::size_t MemEnv::TotalBytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [path, state] : files_) total += state->data.size();
  return total;
}

}  // namespace md::wal
