#include "wal/env.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace md::wal {
namespace {

Status Errno(const char* op) {
  return Err(ErrorCode::kInternal,
             std::string(op) + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(BytesView data) override {
    const std::uint8_t* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write");
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return OkStatus();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync");
    return OkStatus();
  }

  Status Close() override {
    if (fd_ < 0) return OkStatus();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close");
    return OkStatus();
  }

 private:
  int fd_;
};

}  // namespace

PosixEnv& PosixEnv::Instance() {
  static PosixEnv env;
  return env;
}

Status PosixEnv::CreateDirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Err(ErrorCode::kInternal, "mkdir: " + ec.message());
  return OkStatus();
}

Status PosixEnv::NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open");
  *file = std::make_unique<PosixWritableFile>(fd);
  return OkStatus();
}

Status PosixEnv::ReadFile(const std::string& path, Bytes* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Err(ErrorCode::kNotFound, "no such file");
    return Errno("open");
  }
  out->clear();
  std::uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read");
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return OkStatus();
}

Status PosixEnv::ListDir(const std::string& dir,
                         std::vector<std::string>* names) {
  names->clear();
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return OkStatus();  // absent dir == empty listing
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      names->push_back(entry.path().filename().string());
    }
  }
  return OkStatus();
}

Status PosixEnv::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) return Errno("unlink");
  return OkStatus();
}

}  // namespace md::wal
