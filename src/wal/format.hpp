// On-disk format of the durable topic-cache write-ahead log.
//
// Each topic group owns an independent sequence of segment files named
// g<group>-<index>.wal. A segment starts with a fixed 16-byte header and is
// followed by length-prefixed, CRC32-framed records:
//
//   segment header   [magic u32 "MDWL"][version u32][group u32][reserved u32]
//   record           [len u32][crc32(payload) u32][payload: len bytes]
//
// All integers are little-endian (matching common/bytes.hpp). A record's
// payload encodes one cached Message. The framing is designed so a
// recovery scan can always classify damage without crashing:
//
//   - fewer than 8 bytes left            -> torn tail, truncate here
//   - len == 0                           -> zero-filled tail, truncate here
//   - len > kMaxRecordLen                -> garbage length, truncate here
//   - fewer than len bytes left          -> torn record, truncate here
//   - CRC mismatch with sane framing     -> bit-flipped record: skip exactly
//                                           this record and keep scanning
//
// The distinction matters: torn damage only ever appears at the tail a crash
// produced, while a bit flip can land mid-file; skipping one record instead
// of truncating preserves the rest of the history (the cluster sync path
// backfills the hole from peers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "proto/message.hpp"

namespace md::wal {

inline constexpr std::uint32_t kSegmentMagic = 0x4D44574CU;  // "LWDM" LE
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderLen = 16;
inline constexpr std::size_t kRecordFrameLen = 8;  // [len u32][crc u32]
/// Upper bound on a single record payload; anything larger in a length field
/// is treated as corruption, not an allocation request.
inline constexpr std::uint32_t kMaxRecordLen = 16U * 1024U * 1024U;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t Crc32(BytesView data) noexcept;

/// Segment file name for (group, index): "g<group>-<index>.wal".
[[nodiscard]] std::string SegmentFileName(std::uint32_t group,
                                          std::uint64_t index);

/// Parses a segment file name; nullopt if `name` is not one.
struct SegmentName {
  std::uint32_t group = 0;
  std::uint64_t index = 0;
};
[[nodiscard]] std::optional<SegmentName> ParseSegmentFileName(
    const std::string& name);

/// Appends the 16-byte segment header for `group` to `out`.
void EncodeSegmentHeader(std::uint32_t group, Bytes& out);

/// Validates a segment header prefix. kProtocol on short/bad magic/version;
/// the embedded group must match `expectGroup`.
[[nodiscard]] Status DecodeSegmentHeader(BytesView data,
                                         std::uint32_t expectGroup);

/// Appends one framed record ([len][crc][payload]) carrying `msg` to `out`.
void EncodeRecord(const Message& msg, Bytes& out);

/// Decodes a record payload back into a Message. Bounds-checked; never
/// throws, never reads past `payload`.
[[nodiscard]] Status DecodeRecordPayload(BytesView payload, Message* msg);

/// Forward scan over a segment's bytes with the damage rules above.
///
///   SegmentScanner scan(bytes, group);
///   while (scan.Next(&msg)) { ... }
///   // scan.torn() / scan.corruptSkipped() describe what the scan hit.
class SegmentScanner {
 public:
  /// `data` is the whole segment file including header.
  SegmentScanner(BytesView data, std::uint32_t group);

  /// Advances to the next intact record; false at end-of-segment (clean,
  /// torn or unusable header — never throws, never reads OOB).
  bool Next(Message* msg);

  /// Segment header was unreadable; no records were yielded.
  [[nodiscard]] bool badHeader() const { return badHeader_; }
  /// Scan stopped early at a torn / zero-filled / garbage-length tail.
  [[nodiscard]] bool torn() const { return torn_; }
  /// Well-framed records dropped for CRC mismatch (bit flips).
  [[nodiscard]] std::uint64_t corruptSkipped() const { return corruptSkipped_; }
  /// Records whose payload failed to decode despite a matching CRC (should
  /// not happen without a version skew; counted, skipped).
  [[nodiscard]] std::uint64_t undecodable() const { return undecodable_; }
  /// Offset of the first byte the scan did not consume as an intact record.
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  BytesView data_;
  std::size_t offset_ = 0;
  bool badHeader_ = false;
  bool torn_ = false;
  bool done_ = false;
  std::uint64_t corruptSkipped_ = 0;
  std::uint64_t undecodable_ = 0;
};

}  // namespace md::wal
