#include "wal/format.hpp"

#include <array>
#include <charconv>

#include "common/bytes.hpp"

namespace md::wal {
namespace {

// CRC-32 lookup table (IEEE 802.3 reflected polynomial), built once.
std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

std::uint32_t Crc32(BytesView data) noexcept {
  const auto& table = CrcTable();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string SegmentFileName(std::uint32_t group, std::uint64_t index) {
  return "g" + std::to_string(group) + "-" + std::to_string(index) + ".wal";
}

std::optional<SegmentName> ParseSegmentFileName(const std::string& name) {
  if (name.size() < 7 || name.front() != 'g') return std::nullopt;  // g0-0.wal
  if (!name.ends_with(".wal")) return std::nullopt;
  const std::size_t dash = name.find('-', 1);
  if (dash == std::string::npos || dash == 1) return std::nullopt;
  const char* groupBegin = name.data() + 1;
  const char* groupEnd = name.data() + dash;
  const char* indexBegin = name.data() + dash + 1;
  const char* indexEnd = name.data() + name.size() - 4;
  if (indexBegin >= indexEnd) return std::nullopt;
  SegmentName parsed;
  auto [gp, gerr] = std::from_chars(groupBegin, groupEnd, parsed.group);
  if (gerr != std::errc{} || gp != groupEnd) return std::nullopt;
  auto [ip, ierr] = std::from_chars(indexBegin, indexEnd, parsed.index);
  if (ierr != std::errc{} || ip != indexEnd) return std::nullopt;
  return parsed;
}

void EncodeSegmentHeader(std::uint32_t group, Bytes& out) {
  ByteWriter writer(out);
  writer.WriteU32(kSegmentMagic);
  writer.WriteU32(kFormatVersion);
  writer.WriteU32(group);
  writer.WriteU32(0);  // reserved
}

Status DecodeSegmentHeader(BytesView data, std::uint32_t expectGroup) {
  ByteReader reader(data);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t group = 0;
  std::uint32_t reserved = 0;
  if (Status s = reader.ReadU32(magic); !s.ok()) return s;
  if (Status s = reader.ReadU32(version); !s.ok()) return s;
  if (Status s = reader.ReadU32(group); !s.ok()) return s;
  if (Status s = reader.ReadU32(reserved); !s.ok()) return s;
  if (magic != kSegmentMagic) {
    return Err(ErrorCode::kProtocol, "bad segment magic");
  }
  if (version != kFormatVersion) {
    return Err(ErrorCode::kProtocol, "unsupported segment version");
  }
  if (group != expectGroup) {
    return Err(ErrorCode::kProtocol, "segment group mismatch");
  }
  return OkStatus();
}

void EncodeRecord(const Message& msg, Bytes& out) {
  Bytes payload;
  ByteWriter body(payload);
  body.WriteString(msg.topic);
  body.WriteLengthPrefixed(msg.payload);
  body.WriteU32(msg.epoch);
  body.WriteU64(msg.seq);
  body.WriteU64(msg.pubId.clientHash);
  body.WriteU64(msg.pubId.counter);
  body.WriteU64(static_cast<std::uint64_t>(msg.publishTs));

  ByteWriter frame(out);
  frame.WriteU32(static_cast<std::uint32_t>(payload.size()));
  frame.WriteU32(Crc32(payload));
  frame.WriteBytes(payload);
}

Status DecodeRecordPayload(BytesView payload, Message* msg) {
  ByteReader reader(payload);
  Message out;
  if (Status s = reader.ReadString(out.topic); !s.ok()) return s;
  BytesView body;
  if (Status s = reader.ReadLengthPrefixed(body); !s.ok()) return s;
  out.payload.assign(body.begin(), body.end());
  if (Status s = reader.ReadU32(out.epoch); !s.ok()) return s;
  if (Status s = reader.ReadU64(out.seq); !s.ok()) return s;
  if (Status s = reader.ReadU64(out.pubId.clientHash); !s.ok()) return s;
  if (Status s = reader.ReadU64(out.pubId.counter); !s.ok()) return s;
  std::uint64_t ts = 0;
  if (Status s = reader.ReadU64(ts); !s.ok()) return s;
  out.publishTs = static_cast<std::int64_t>(ts);
  // Trailing bytes are tolerated: a future version may extend the record.
  *msg = std::move(out);
  return OkStatus();
}

SegmentScanner::SegmentScanner(BytesView data, std::uint32_t group)
    : data_(data) {
  if (!DecodeSegmentHeader(data_, group).ok()) {
    badHeader_ = true;
    done_ = true;
    return;
  }
  offset_ = kSegmentHeaderLen;
}

bool SegmentScanner::Next(Message* msg) {
  while (!done_) {
    const std::size_t remaining = data_.size() - offset_;
    if (remaining < kRecordFrameLen) {
      // A clean close leaves exactly zero bytes; anything else is a torn
      // frame from a crash mid-append.
      torn_ = remaining != 0;
      done_ = true;
      return false;
    }
    ByteReader frame(data_.subspan(offset_, kRecordFrameLen));
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    (void)frame.ReadU32(len);
    (void)frame.ReadU32(crc);
    if (len == 0 || len > kMaxRecordLen) {
      // Zero-filled tail (preallocation / torn page) or garbage length: the
      // framing itself is gone, nothing beyond here can be trusted.
      torn_ = true;
      done_ = true;
      return false;
    }
    if (remaining - kRecordFrameLen < len) {
      torn_ = true;  // record cut off mid-payload
      done_ = true;
      return false;
    }
    const BytesView payload = data_.subspan(offset_ + kRecordFrameLen, len);
    offset_ += kRecordFrameLen + len;
    if (Crc32(payload) != crc) {
      // Sane framing, wrong checksum: a bit flip inside one record. Skip it
      // and keep going — later records are still intact.
      ++corruptSkipped_;
      continue;
    }
    if (!DecodeRecordPayload(payload, msg).ok()) {
      ++undecodable_;
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace md::wal
