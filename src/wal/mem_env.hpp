// In-memory Env with crash and disk-fault semantics for the simulated
// cluster and the WAL's own tests.
//
// Every file tracks how many of its bytes have been Sync()'d. Crash(seed)
// models a kill -9 at an arbitrary instant: synced bytes always survive,
// and each open file additionally keeps a seed-random prefix of its
// unsynced tail — exactly the torn-write shapes a real page-cache loss
// produces. FlipRandomBit / TruncateRandomTail model latent media damage,
// SetFull models ENOSPC.
//
// Thread-safe: the sim appends from worker threads while the harness
// injects faults from the driver thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/rng.hpp"
#include "wal/env.hpp"

namespace md::wal {

class MemEnv : public Env {
 public:
  MemEnv() = default;

  Status CreateDirs(const std::string& dir) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status ReadFile(const std::string& path, Bytes* out) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status RemoveFile(const std::string& path) override;

  /// kill -9: every file keeps its synced prefix plus a seed-random prefix
  /// of its unsynced tail (possibly cutting a record mid-frame). Open
  /// handles keep working afterwards but the caller is expected to have
  /// abandoned them (Log::Abandon) — the sim crashes the node first.
  void Crash(std::uint64_t seed);

  /// Flips one random bit in one random non-empty file; false if there is
  /// no data to damage.
  bool FlipRandomBit(std::uint64_t seed);

  /// Truncates a random non-empty file by a random non-zero tail length;
  /// returns the number of bytes removed (0 if nothing to damage).
  std::size_t TruncateRandomTail(std::uint64_t seed);

  /// Overwrites the last `n` bytes of every file with zeros (preallocated-
  /// but-unwritten tail shape). For tests.
  void ZeroFillTail(const std::string& path, std::size_t n);

  /// ENOSPC switch: while full, Append fails with kCapacity.
  void SetFull(bool full);

  [[nodiscard]] std::size_t FileCount() const;
  [[nodiscard]] std::size_t TotalBytes() const;

 private:
  friend class MemWritableFile;

  struct FileState {
    Bytes data;
    std::size_t synced = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  bool full_ = false;
};

}  // namespace md::wal
