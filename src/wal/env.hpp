// Filesystem abstraction for the WAL.
//
// The Log speaks to storage only through Env, so the simulated cluster can
// run its WAL on MemEnv — an in-memory filesystem with crash semantics
// (unsynced bytes vanish), bit-flip / torn-tail damage and an ENOSPC switch —
// while the real server uses PosixEnv with fd-level fsync.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace md::wal {

/// Append-only file handle. Append buffers into the OS (or the in-memory
/// image); Sync makes everything appended so far durable across a crash.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(BytesView data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Creates `dir` and any missing parents; ok if it already exists.
  virtual Status CreateDirs(const std::string& dir) = 0;

  /// Opens `path` for appending, creating it if absent.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;

  /// Reads the whole file into `out`. kNotFound if absent.
  virtual Status ReadFile(const std::string& path, Bytes* out) = 0;

  /// Lists plain-file names (not paths) in `dir`; empty list if the
  /// directory does not exist.
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;
};

/// Real filesystem Env: open(O_APPEND)/write/fsync/close.
class PosixEnv : public Env {
 public:
  static PosixEnv& Instance();

  Status CreateDirs(const std::string& dir) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status ReadFile(const std::string& path, Bytes* out) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status RemoveFile(const std::string& path) override;
};

}  // namespace md::wal
