// Segmented write-ahead log underneath core::Cache (paper §4 durability gap).
//
// One Log instance serves all topic groups of a server; each group owns an
// independent segment sequence so recovery and retention are per-group.
// Appends are framed per format.hpp and made durable per FsyncPolicy:
//
//   kAlways       fsync after every append (ack implies durable)
//   kGroupCommit  fsync at most every flushInterval — either inline when an
//                 append notices the interval expired, or from the owner's
//                 flush timer (ClusterNode / Server schedule one)
//   kOs           never fsync on the append path; the OS page cache decides
//                 (segments are still synced once when sealed)
//
// Recovery replays every intact record oldest-to-newest per group, counts
// torn tails / corrupt records / unusable segments, and then starts a FRESH
// segment (maxIndex+1) — it never appends to a possibly-damaged tail.
//
// Retention keeps the newest `retainSegments` sealed segments per group
// (plus the active one); callers must size segmentBytes * retainSegments
// above the cache history they want to survive a crash, or messages still
// cached in memory may not be recoverable after one. When segmentMaxAge > 0
// it should match CacheConfig::maxAge so age-pruned segments only ever hold
// records the cache has itself expired.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "obs/families.hpp"
#include "proto/message.hpp"
#include "wal/env.hpp"
#include "wal/format.hpp"

namespace md::wal {

enum class FsyncPolicy : std::uint8_t { kOs = 0, kGroupCommit = 1, kAlways = 2 };

[[nodiscard]] constexpr const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kOs: return "os";
    case FsyncPolicy::kGroupCommit: return "group";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

/// Parses "os" | "group" | "always"; nullopt otherwise.
[[nodiscard]] std::optional<FsyncPolicy> ParseFsyncPolicy(std::string_view s);

struct WalConfig {
  /// Root directory for segment files. Empty disables the WAL entirely.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Group-commit bound: an append syncs inline once this much time has
  /// passed since the group's last sync (owners also run a periodic Flush).
  Duration flushInterval = 5 * kMillisecond;
  /// Seal the active segment once it reaches this many bytes.
  std::uint64_t segmentBytes = 4ULL * 1024 * 1024;
  /// Seal the active segment once it has been open this long (0 = size-only).
  Duration segmentMaxAge = 0;
  /// Sealed segments kept per group; older ones are deleted.
  std::uint32_t retainSegments = 8;
};

struct RecoveryStats {
  std::uint64_t records = 0;         // intact records replayed
  std::uint64_t corruptSkipped = 0;  // CRC-mismatch records dropped
  std::uint64_t tornTails = 0;       // segments truncated at a torn tail
  std::uint64_t badSegments = 0;     // unusable segment headers
  std::uint64_t segments = 0;        // segment files scanned
  Duration wallTime = 0;
};

/// Thread-safe segmented WAL. All methods may be called from any thread;
/// per-group state is guarded by one mutex (appends to the same group are
/// already serialized by the cache shard lock above this layer).
class Log {
 public:
  Log(Env& env, WalConfig cfg, obs::WalMetrics* metrics = nullptr);
  ~Log();

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  [[nodiscard]] bool enabled() const { return !cfg_.dir.empty(); }
  [[nodiscard]] const WalConfig& config() const { return cfg_; }

  /// Scans every segment under dir and replays intact records in order
  /// (oldest segment first within each group) through `apply`. Damage is
  /// counted, never fatal. Subsequent appends go to fresh segments.
  RecoveryStats Recover(const std::function<void(Message&&)>& apply);

  /// Appends one record to `group`'s active segment (opening it lazily) and
  /// applies the fsync policy. kCapacity when the disk is full — the caller
  /// keeps serving from memory and counts the error.
  Status Append(std::uint32_t group, const Message& msg, TimePoint now);

  /// Syncs every group with unsynced appends (group-commit timer, shutdown).
  void Flush(TimePoint now);

  /// Drops all open handles WITHOUT syncing — models kill -9. The Log stays
  /// usable; the next append opens a fresh segment.
  void Abandon();

  /// Flush + close all handles.
  void Close();

 private:
  struct GroupState {
    std::unique_ptr<WritableFile> file;  // active segment (lazily opened)
    std::uint64_t index = 0;             // active segment index
    std::uint64_t nextIndex = 0;         // index for the next segment opened
    std::uint64_t bytes = 0;             // bytes written to active segment
    TimePoint openedAt = 0;
    TimePoint lastSyncAt = 0;
    bool dirty = false;                  // unsynced appends outstanding
    std::vector<std::uint64_t> sealed;   // sealed segment indices, ascending
  };

  [[nodiscard]] std::string SegmentPath(std::uint32_t group,
                                        std::uint64_t index) const;
  Status OpenSegment(std::uint32_t group, GroupState& g, TimePoint now);
  void SealSegment(std::uint32_t group, GroupState& g);
  void PruneRetention(std::uint32_t group, GroupState& g);
  Status SyncLocked(GroupState& g, TimePoint now);

  Env& env_;
  const WalConfig cfg_;
  obs::WalMetrics* metrics_;

  std::mutex mutex_;
  std::map<std::uint32_t, GroupState> groups_;
};

}  // namespace md::wal
