#include "wal/log.hpp"

#include <algorithm>

namespace md::wal {

std::optional<FsyncPolicy> ParseFsyncPolicy(std::string_view s) {
  if (s == "os") return FsyncPolicy::kOs;
  if (s == "group") return FsyncPolicy::kGroupCommit;
  if (s == "always") return FsyncPolicy::kAlways;
  return std::nullopt;
}

Log::Log(Env& env, WalConfig cfg, obs::WalMetrics* metrics)
    : env_(env), cfg_(std::move(cfg)), metrics_(metrics) {
  if (enabled()) (void)env_.CreateDirs(cfg_.dir);
}

Log::~Log() { Close(); }

std::string Log::SegmentPath(std::uint32_t group, std::uint64_t index) const {
  return cfg_.dir + "/" + SegmentFileName(group, index);
}

RecoveryStats Log::Recover(
    const std::function<void(Message&&)>& apply) {
  RecoveryStats stats;
  if (!enabled()) return stats;
  const TimePoint begin = RealClock::Instance().Now();

  std::vector<std::string> names;
  (void)env_.ListDir(cfg_.dir, &names);
  std::map<std::uint32_t, std::vector<std::uint64_t>> byGroup;
  for (const auto& name : names) {
    if (const auto parsed = ParseSegmentFileName(name)) {
      byGroup[parsed->group].push_back(parsed->index);
    }
  }

  std::lock_guard lock(mutex_);
  // Re-entrant recovery (double kill -9: the caller crashed mid-recovery and
  // is recovering again) starts from the on-disk truth, not stale state.
  groups_.clear();
  for (auto& [group, indices] : byGroup) {
    std::sort(indices.begin(), indices.end());
    GroupState& g = groups_[group];
    for (const std::uint64_t index : indices) {
      ++stats.segments;
      Bytes data;
      if (!env_.ReadFile(SegmentPath(group, index), &data).ok()) {
        ++stats.badSegments;
      } else {
        SegmentScanner scan(data, group);
        Message msg;
        while (scan.Next(&msg)) {
          ++stats.records;
          // NB: apply() must not call back into this Log (mutex held);
          // Cache::InsertRecovered is the intended target.
          apply(std::move(msg));
        }
        if (scan.badHeader()) ++stats.badSegments;
        if (scan.torn()) ++stats.tornTails;
        stats.corruptSkipped += scan.corruptSkipped() + scan.undecodable();
      }
      g.sealed.push_back(index);
    }
    // Never append to a possibly-damaged tail: next append starts fresh.
    g.nextIndex = indices.back() + 1;
  }
  stats.wallTime = RealClock::Instance().Now() - begin;

  if (metrics_ != nullptr) {
    metrics_->recoveredRecords.Inc(stats.records);
    metrics_->corruptSkipped.Inc(stats.corruptSkipped);
    metrics_->tornTruncated.Inc(stats.tornTails);
    metrics_->segments.Set(static_cast<std::int64_t>(stats.segments));
    metrics_->recoveryLastMs.Set(ToMillis(stats.wallTime));
  }
  return stats;
}

Status Log::Append(std::uint32_t group, const Message& msg,
                   TimePoint now) {
  if (!enabled()) return OkStatus();
  std::lock_guard lock(mutex_);
  GroupState& g = groups_[group];
  if (!g.file) {
    if (Status s = OpenSegment(group, g, now); !s.ok()) {
      if (s.code() == ErrorCode::kCapacity && metrics_ != nullptr) {
        metrics_->enospcErrors.Inc();
      }
      return s;
    }
  }

  Bytes frame;
  EncodeRecord(msg, frame);
  if (Status s = g.file->Append(frame); !s.ok()) {
    if (s.code() == ErrorCode::kCapacity && metrics_ != nullptr) {
      metrics_->enospcErrors.Inc();
    }
    return s;
  }
  g.bytes += frame.size();
  g.dirty = true;
  if (metrics_ != nullptr) {
    metrics_->appends.Inc();
    metrics_->appendBytes.Inc(frame.size());
  }

  Status syncStatus = OkStatus();
  switch (cfg_.fsync) {
    case FsyncPolicy::kAlways:
      syncStatus = SyncLocked(g, now);
      break;
    case FsyncPolicy::kGroupCommit:
      if (now - g.lastSyncAt >= cfg_.flushInterval) {
        syncStatus = SyncLocked(g, now);
      }
      break;
    case FsyncPolicy::kOs:
      break;
  }

  if (g.bytes >= cfg_.segmentBytes ||
      (cfg_.segmentMaxAge > 0 && now - g.openedAt >= cfg_.segmentMaxAge)) {
    SealSegment(group, g);
  }
  return syncStatus;
}

void Log::Flush(TimePoint now) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  for (auto& [group, g] : groups_) {
    if (g.file && g.dirty) (void)SyncLocked(g, now);
  }
}

void Log::Abandon() {
  std::lock_guard lock(mutex_);
  for (auto& [group, g] : groups_) {
    g.file.reset();  // deliberately no Sync: unsynced bytes are at risk
    g.dirty = false;
  }
}

void Log::Close() {
  std::lock_guard lock(mutex_);
  for (auto& [group, g] : groups_) {
    if (!g.file) continue;
    if (g.dirty) (void)SyncLocked(g, g.lastSyncAt);
    (void)g.file->Close();
    g.file.reset();
  }
}

Status Log::OpenSegment(std::uint32_t group, GroupState& g, TimePoint now) {
  (void)env_.CreateDirs(cfg_.dir);
  std::unique_ptr<WritableFile> file;
  if (Status s = env_.NewWritableFile(SegmentPath(group, g.nextIndex), &file);
      !s.ok()) {
    return s;
  }
  Bytes header;
  EncodeSegmentHeader(group, header);
  if (Status s = file->Append(header); !s.ok()) return s;
  g.file = std::move(file);
  g.index = g.nextIndex++;
  g.bytes = header.size();
  g.openedAt = now;
  g.lastSyncAt = now;
  g.dirty = true;
  if (metrics_ != nullptr) metrics_->segments.Add(1);
  return OkStatus();
}

void Log::SealSegment(std::uint32_t group, GroupState& g) {
  if (!g.file) return;
  // A sealed segment is always synced once, even under kOs: bounded data at
  // risk is the whole point of sealing.
  if (g.dirty) (void)SyncLocked(g, g.lastSyncAt);
  (void)g.file->Close();
  g.file.reset();
  g.sealed.push_back(g.index);
  if (metrics_ != nullptr) metrics_->rotations.Inc();
  PruneRetention(group, g);
}

void Log::PruneRetention(std::uint32_t group, GroupState& g) {
  while (g.sealed.size() > cfg_.retainSegments) {
    (void)env_.RemoveFile(SegmentPath(group, g.sealed.front()));
    g.sealed.erase(g.sealed.begin());
    if (metrics_ != nullptr) metrics_->segments.Add(-1);
  }
}

Status Log::SyncLocked(GroupState& g, TimePoint now) {
  if (!g.file || !g.dirty) return OkStatus();
  if (Status s = g.file->Sync(); !s.ok()) return s;
  g.dirty = false;
  g.lastSyncAt = now;
  if (metrics_ != nullptr) metrics_->fsyncs.Inc();
  return OkStatus();
}

}  // namespace md::wal
