// Process-wide metrics subsystem (ROADMAP: quantitative claims need
// instrumentation before any perf PR can prove itself).
//
// Three primitive types, all safe for concurrent writers:
//   - Counter: monotonically increasing, sharded across cache-line-padded
//     per-thread slots so hot-path increments never contend; aggregated on
//     read.
//   - Gauge:   a single settable/adjustable value (queue depths, active
//     connections, last-failover duration).
//   - LatencyHistogram: log-bucketed (HDR-style, reusing md::Histogram)
//     value distribution, sharded the same way and merged on read.
//
// A MetricsRegistry owns metric *families* (name + help + kind) with labeled
// children (e.g. md_cluster_fences_total{server="server-1"}). Everything is
// exposed two ways:
//   - Snapshot(): a plain struct the chaos harness and benches consume
//     directly (no text parsing on the assertion path),
//   - RenderPrometheus(): the text exposition format served as GET /metrics
//     by core::Server.
//
// Writers hold references obtained once at wiring time (GetCounter/...); the
// registry mutex is only taken at registration and snapshot, never on the
// increment path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/time.hpp"

namespace md::obs {

/// Stable small index for the calling thread, used to pick a shard.
inline std::size_t ThreadShard(std::size_t shards) noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % shards;
}

/// Monotonic counter, sharded per thread, aggregated on read.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void Inc(std::uint64_t n = 1) noexcept {
    slots_[ThreadShard(kShards)].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t Value() const noexcept {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kShards> slots_{};
};

/// Instantaneous value (may go up and down).
class Gauge {
 public:
  void Set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed latency histogram, sharded per thread and merged on read.
/// Each shard wraps an md::Histogram behind its own mutex; with one writer
/// thread per shard the lock is uncontended, and Merged() pays the cost.
class LatencyHistogram {
 public:
  static constexpr std::size_t kShards = 4;

  void Record(std::int64_t nanos) noexcept {
    Shard& s = shards_[ThreadShard(kShards)];
    std::lock_guard lock(s.mu);
    s.h.Record(nanos);
  }

  /// Aggregated view across all shards.
  [[nodiscard]] Histogram Merged() const {
    Histogram out;
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      out.Merge(s.h);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    Histogram h;
  };
  std::array<Shard, kShards> shards_{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* MetricKindName(MetricKind kind) noexcept;

/// One child of a family: its label set (raw `k="v",k2="v2"` text, empty for
/// the unlabeled child) plus the values read at snapshot time.
struct SampleSnapshot {
  std::string labels;
  double value = 0;  // counter / gauge reading

  // Histogram-only fields.
  std::uint64_t count = 0;
  double sum = 0;  // accumulated nanoseconds
  std::int64_t min = 0;
  std::int64_t max = 0;
  LatencySummary summary;  // median/mean/p90/p95/p99, milliseconds
  /// Cumulative counts at the fixed exposition bounds (ns, ascending).
  std::vector<std::pair<std::int64_t, std::uint64_t>> buckets;
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SampleSnapshot> samples;  // sorted by label text
};

/// Point-in-time view of a whole registry; families sorted by name.
struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  [[nodiscard]] const FamilySnapshot* Family(std::string_view name) const;
  [[nodiscard]] const SampleSnapshot* Find(std::string_view name,
                                           std::string_view labels = "") const;
  /// Counter/gauge reading; 0 when the sample does not exist.
  [[nodiscard]] double Value(std::string_view name,
                             std::string_view labels = "") const;
  /// Sum of a family's value across every labeled child (cluster-wide
  /// totals of per-server counters); 0 when the family does not exist.
  [[nodiscard]] double Total(std::string_view name) const;
};

/// Upper bounds (ns) of the fixed exposition buckets (+Inf is implicit).
[[nodiscard]] const std::vector<std::int64_t>& ExpositionBucketBounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the child of the named family with the given label text,
  /// creating family and child as needed. References stay valid for the
  /// registry's lifetime. The first registration of a name fixes its kind
  /// and help text.
  Counter& GetCounter(std::string_view name, std::string_view help,
                      std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view help,
                  std::string_view labels = "");
  LatencyHistogram& GetHistogram(std::string_view name, std::string_view help,
                                 std::string_view labels = "");

  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Process-wide default instance (used when no registry is injected).
  static MetricsRegistry& Default();

 private:
  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
  };

  Family& GetFamily(std::string_view name, std::string_view help,
                    MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Prometheus text exposition (format 0.0.4). `scrapedAt` is stamped into a
/// trailing comment; tests normalize it away (NormalizeExposition).
[[nodiscard]] std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                                           TimePoint scrapedAt);

/// Replaces the scrape-time comment with a fixed token so fixed-seed
/// expositions byte-compare against checked-in golden files.
[[nodiscard]] std::string NormalizeExposition(std::string_view exposition);

/// Masks every sample value (but not names, labels, bucket bounds or
/// structure) — locks the exposition *shape* where values are timing-derived.
[[nodiscard]] std::string MaskExpositionValues(std::string_view exposition);

}  // namespace md::obs
