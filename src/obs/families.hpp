// Standard metric families for each subsystem, bundled so wiring code grabs
// one struct of references instead of repeating name/help strings at every
// increment site. Constructing a bundle registers (or re-finds) its families;
// references stay valid for the registry's lifetime.
//
// RegisterStandardFamilies() pre-registers every family with an unlabeled
// zero-valued child so a freshly started server already exposes the full
// schema on GET /metrics (and the golden exposition test sees a stable
// family set regardless of which subsystems happen to be active).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace md::obs {

/// core::Server counters (one bundle per server, labeled server="<name>";
/// empty label text for a standalone server).
struct CoreMetrics {
  explicit CoreMetrics(MetricsRegistry& registry, std::string_view labels = "");

  Counter& accepted;
  Gauge& active;
  Counter& frames;
  Counter& published;
  Counter& delivered;
  Counter& bytesOut;
  Counter& protoErrors;
  /// Slab-accounted engine bytes / active sessions, refreshed on Stats()
  /// and /metrics scrapes (DESIGN.md §15 byte budget).
  Gauge& bytesPerSession;
};

/// Transport loop counters (process-wide; all loops — epoll or io_uring —
/// share one bundle).
struct TransportMetrics {
  explicit TransportMetrics(MetricsRegistry& registry,
                            std::string_view labels = "");

  /// Loop iterations completed — NOT poll wakeups: both the epoll and
  /// io_uring backends tick this once per iteration, timer ticks included.
  Counter& loopIterations;
  Counter& bytesRead;
  Counter& bytesWritten;
  Gauge& sendQueueBytes;
  Counter& timersFired;
  Counter& tasksPosted;
  // Egress/ingress syscall accounting (md_transport_syscalls_total{op=...}):
  // direct single-buffer sends, scatter-gather flushes, and reads. Divided by
  // deliveries these give the syscalls-per-delivery stat the fan-out bench
  // reports.
  Counter& syscallsSend;
  Counter& syscallsSendmsg;
  Counter& syscallsRecv;
  // Payload bytes memcpy'd into egress buffers (the zero-copy path never
  // touches this; the legacy copying path counts every queued byte).
  Counter& copyBytes;
};

/// Slow-consumer backpressure counters (per server, labeled server="<name>"
/// in core; unlabeled in the sim cluster harness). Tracks watermark
/// excursions and what the overflow policy did about them.
struct SlowConsumerMetrics {
  explicit SlowConsumerMetrics(MetricsRegistry& registry,
                               std::string_view labels = "");

  Counter& softOverflows;
  Counter& disconnects;
  Counter& conflated;
  Counter& dropped;
  Gauge& sessionsOverSoft;
  LatencyHistogram& queueDepthBytes;
};

/// cluster::Node counters (one bundle per node, labeled server="<name>").
struct ClusterMetrics {
  explicit ClusterMetrics(MetricsRegistry& registry,
                          std::string_view labels = "");

  Counter& published;
  Counter& forwarded;
  Counter& delivered;
  Counter& rejects;
  Counter& takeovers;
  Counter& fences;
  Counter& unfences;
  Counter& backfilled;
  Counter& handoffs;
  Counter& handoffSessions;
  Counter& handoffAborts;
  Counter& quorumRejects;
  Counter& fenceRefusals;
  Counter& rebalances;
  Gauge& activeMembers;
  Gauge& replicationPending;
  LatencyHistogram& replicationAckNs;
  Gauge& failoverLastNs;
  LatencyHistogram& failoverNs;
};

/// wal::Log counters (one bundle per server, labeled server="<name>").
/// Appends/fsyncs describe the publish-path write load per fsync policy;
/// the recovery families describe what the last startup replay found.
struct WalMetrics {
  explicit WalMetrics(MetricsRegistry& registry, std::string_view labels = "");

  Counter& appends;
  Counter& appendBytes;
  Counter& fsyncs;
  Counter& rotations;
  Counter& corruptSkipped;
  Counter& tornTruncated;
  Counter& recoveredRecords;
  Counter& enospcErrors;
  Gauge& segments;
  Gauge& recoveryLastMs;
};

/// coord (MiniZK) counters (one bundle per coord node, labeled node="<id>").
struct CoordMetrics {
  explicit CoordMetrics(MetricsRegistry& registry, std::string_view labels = "");

  Counter& sessionExpirations;
  Counter& watchFires;
  Counter& elections;
  LatencyHistogram& writeNs;
};

/// Pre-registers every standard family (core, transport, cluster, coord,
/// trace) with an unlabeled child so the exposition schema is complete from
/// process start.
void RegisterStandardFamilies(MetricsRegistry& registry);

/// `server="<name>"` label text for per-server children.
[[nodiscard]] std::string ServerLabel(std::string_view serverName);

/// `node="<id>"` label text for per-coord-node children.
[[nodiscard]] std::string NodeLabel(std::string_view nodeId);

}  // namespace md::obs
