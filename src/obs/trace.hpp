// Per-message stage tracing.
//
// A Tracer stamps the lifecycle of a publication through the broker:
//   publish-received -> sequenced -> cached -> fanned-out -> socket-written
// and records the delta between consecutive stages plus the end-to-end span
// into registry histograms (md_trace_stage_ns{stage=...}, md_trace_end_to_end_ns).
//
// The clock is injected as a plain function so the same tracer runs on
// virtual time under simnet (Scheduler::Now) and wall time under the real
// transport (RealClock). The `domain` label ("virtual" / "wall") keeps the
// two regimes separate in the exposition.
//
// In-flight state is bounded: at most kMaxInflight traces are tracked, with
// FIFO eviction counted in md_trace_dropped_total so a stalled stage can
// never leak memory.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace md::obs {

enum class Stage : std::uint8_t {
  kPublishReceived = 0,
  kSequenced,
  kCached,
  kFannedOut,
  kSocketWritten,
};
inline constexpr std::size_t kStageCount = 5;

[[nodiscard]] const char* StageName(Stage stage) noexcept;

/// Identity of one traced publication (client hash + per-client counter).
struct TraceKey {
  std::uint64_t clientHash = 0;
  std::uint64_t counter = 0;

  bool operator==(const TraceKey&) const = default;
};

struct TraceKeyHash {
  std::size_t operator()(const TraceKey& k) const noexcept {
    // splitmix-style scramble; the two fields are already well distributed.
    std::uint64_t x = k.clientHash ^ (k.counter * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

class Tracer {
 public:
  static constexpr std::size_t kMaxInflight = 8192;

  /// `now` supplies timestamps (virtual or wall); `domain` labels the clock
  /// regime; `terminal` is the stage whose stamp finalizes a trace.
  Tracer(MetricsRegistry& registry, std::function<TimePoint()> now,
         std::string_view domain, Stage terminal = Stage::kSocketWritten);

  /// Starts a trace at kPublishReceived. Replaces any stale trace with the
  /// same key.
  void Begin(const TraceKey& key);

  /// Stamps `stage`; on the terminal stage records all stage deltas and the
  /// end-to-end span, then forgets the trace. Unknown keys are ignored
  /// (evicted or never begun).
  void Stamp(const TraceKey& key, Stage stage);

  /// Drops a trace without recording (publication rejected, conflated away,
  /// no subscribers).
  void Discard(const TraceKey& key);

  /// Taps the raw stage stream: `sink` is invoked for every Begin (as
  /// kPublishReceived) and Stamp, outside the tracer lock, on the stamping
  /// thread. Set once before traffic starts (e.g. to feed verify::Monitor);
  /// not synchronized against concurrent stamps.
  void SetStageSink(std::function<void(const TraceKey&, Stage)> sink);

  [[nodiscard]] std::size_t InflightForTest() const;

 private:
  struct Inflight {
    std::array<TimePoint, kStageCount> at;
  };

  void Finalize(const Inflight& trace);
  void EvictOldestLocked();

  static constexpr TimePoint kUnset = INT64_MIN;

  MetricsRegistry& registry_;
  std::function<TimePoint()> now_;
  Stage terminal_;

  LatencyHistogram* stage_[kStageCount] = {};  // [i]: delta stage i-1 -> i
  LatencyHistogram& endToEnd_;
  Counter& dropped_;
  std::function<void(const TraceKey&, Stage)> stageSink_;

  mutable std::mutex mu_;
  std::unordered_map<TraceKey, Inflight, TraceKeyHash> inflight_;
  std::deque<TraceKey> order_;  // FIFO eviction order (may hold stale keys)
};

}  // namespace md::obs
