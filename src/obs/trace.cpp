#include "obs/trace.hpp"

#include <utility>

namespace md::obs {

const char* StageName(Stage stage) noexcept {
  switch (stage) {
    case Stage::kPublishReceived: return "publish_received";
    case Stage::kSequenced: return "sequenced";
    case Stage::kCached: return "cached";
    case Stage::kFannedOut: return "fanned_out";
    case Stage::kSocketWritten: return "socket_written";
  }
  return "unknown";
}

Tracer::Tracer(MetricsRegistry& registry, std::function<TimePoint()> now,
               std::string_view domain, Stage terminal)
    : registry_(registry),
      now_(std::move(now)),
      terminal_(terminal),
      endToEnd_(registry.GetHistogram(
          "md_trace_end_to_end_ns",
          "Publish-received to terminal-stage latency per publication",
          "domain=\"" + std::string(domain) + "\"")),
      dropped_(registry.GetCounter(
          "md_trace_dropped_total",
          "Traces evicted before reaching their terminal stage",
          "domain=\"" + std::string(domain) + "\"")) {
  // Stage 0 has no predecessor; slots 1..N-1 hold consecutive-stage deltas.
  for (std::size_t i = 1; i < kStageCount; ++i) {
    stage_[i] = &registry.GetHistogram(
        "md_trace_stage_ns", "Latency between consecutive pipeline stages",
        "domain=\"" + std::string(domain) + "\",stage=\"" +
            StageName(static_cast<Stage>(i)) + "\"");
  }
}

void Tracer::SetStageSink(std::function<void(const TraceKey&, Stage)> sink) {
  stageSink_ = std::move(sink);
}

void Tracer::Begin(const TraceKey& key) {
  if (stageSink_) stageSink_(key, Stage::kPublishReceived);
  const TimePoint t = now_();
  std::lock_guard lock(mu_);
  Inflight& trace = inflight_[key];
  trace.at.fill(kUnset);
  trace.at[0] = t;
  order_.push_back(key);
  // Drain FIFO entries whose trace already finalized so order_ stays bounded
  // even when every trace completes promptly.
  while (!order_.empty() && !inflight_.contains(order_.front())) {
    order_.pop_front();
  }
  while (inflight_.size() > kMaxInflight) EvictOldestLocked();
}

void Tracer::Stamp(const TraceKey& key, Stage stage) {
  if (stageSink_) stageSink_(key, stage);
  const TimePoint t = now_();
  std::lock_guard lock(mu_);
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  it->second.at[static_cast<std::size_t>(stage)] = t;
  if (stage == terminal_) {
    Finalize(it->second);
    inflight_.erase(it);
  }
}

void Tracer::Discard(const TraceKey& key) {
  std::lock_guard lock(mu_);
  inflight_.erase(key);
}

std::size_t Tracer::InflightForTest() const {
  std::lock_guard lock(mu_);
  return inflight_.size();
}

void Tracer::Finalize(const Inflight& trace) {
  TimePoint prev = trace.at[0];
  if (prev == kUnset) return;
  TimePoint last = prev;
  for (std::size_t i = 1; i < kStageCount; ++i) {
    const TimePoint at = trace.at[i];
    if (at == kUnset) continue;  // stage skipped (e.g. cache disabled)
    stage_[i]->Record(at - last);
    last = at;
    if (static_cast<Stage>(i) == terminal_) break;
  }
  endToEnd_.Record(last - prev);
}

void Tracer::EvictOldestLocked() {
  while (!order_.empty()) {
    const TraceKey victim = order_.front();
    order_.pop_front();
    if (inflight_.erase(victim) > 0) {
      dropped_.Inc();
      return;
    }
    // Stale queue entry (trace already finalized/discarded); keep draining.
  }
}

}  // namespace md::obs
