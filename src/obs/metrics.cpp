#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace md::obs {

const char* MetricKindName(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

const std::vector<std::int64_t>& ExpositionBucketBounds() {
  static const std::vector<std::int64_t> kBounds = {
      1 * kMicrosecond,    10 * kMicrosecond,  50 * kMicrosecond,
      100 * kMicrosecond,  500 * kMicrosecond, 1 * kMillisecond,
      5 * kMillisecond,    10 * kMillisecond,  50 * kMillisecond,
      100 * kMillisecond,  500 * kMillisecond, 1 * kSecond,
      5 * kSecond,         10 * kSecond,
  };
  return kBounds;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry::Family& MetricsRegistry::GetFamily(std::string_view name,
                                                    std::string_view help,
                                                    MetricKind kind) {
  const auto it = families_.find(name);
  if (it != families_.end()) return it->second;
  Family family;
  family.help = std::string(help);
  family.kind = kind;
  return families_.emplace(std::string(name), std::move(family)).first->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  std::lock_guard lock(mu_);
  auto& child = GetFamily(name, help, MetricKind::kCounter)
                    .counters[std::string(labels)];
  if (!child) child = std::make_unique<Counter>();
  return *child;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  std::lock_guard lock(mu_);
  auto& child =
      GetFamily(name, help, MetricKind::kGauge).gauges[std::string(labels)];
  if (!child) child = std::make_unique<Gauge>();
  return *child;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name,
                                                std::string_view help,
                                                std::string_view labels) {
  std::lock_guard lock(mu_);
  auto& child = GetFamily(name, help, MetricKind::kHistogram)
                    .histograms[std::string(labels)];
  if (!child) child = std::make_unique<LatencyHistogram>();
  return *child;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.kind = family.kind;
    for (const auto& [labels, counter] : family.counters) {
      SampleSnapshot s;
      s.labels = labels;
      s.value = static_cast<double>(counter->Value());
      fs.samples.push_back(std::move(s));
    }
    for (const auto& [labels, gauge] : family.gauges) {
      SampleSnapshot s;
      s.labels = labels;
      s.value = static_cast<double>(gauge->Value());
      fs.samples.push_back(std::move(s));
    }
    for (const auto& [labels, hist] : family.histograms) {
      const Histogram merged = hist->Merged();
      SampleSnapshot s;
      s.labels = labels;
      s.count = merged.Count();
      s.sum = static_cast<double>(merged.Mean()) *
              static_cast<double>(merged.Count());
      s.min = merged.Min();
      s.max = merged.Max();
      s.summary = SummarizeNanos(merged);
      for (const std::int64_t bound : ExpositionBucketBounds()) {
        s.buckets.emplace_back(bound, merged.CountAtOrBelow(bound));
      }
      fs.samples.push_back(std::move(s));
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Snapshot lookups
// ---------------------------------------------------------------------------

const FamilySnapshot* MetricsSnapshot::Family(std::string_view name) const {
  for (const auto& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const SampleSnapshot* MetricsSnapshot::Find(std::string_view name,
                                            std::string_view labels) const {
  const FamilySnapshot* family = Family(name);
  if (family == nullptr) return nullptr;
  for (const auto& s : family->samples) {
    if (s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::Value(std::string_view name,
                              std::string_view labels) const {
  const SampleSnapshot* s = Find(name, labels);
  return s != nullptr ? s->value : 0.0;
}

double MetricsSnapshot::Total(std::string_view name) const {
  const FamilySnapshot* f = Family(name);
  if (f == nullptr) return 0.0;
  double total = 0.0;
  for (const SampleSnapshot& s : f->samples) total += s.value;
  return total;
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

namespace {

/// All recorded values are integral nanoseconds (or counts); printing them as
/// integers keeps the exposition byte-stable for golden comparison.
std::string Num(double v) { return std::to_string(std::llround(v)); }

void AppendSampleName(std::string& out, std::string_view name,
                      std::string_view suffix, std::string_view labels,
                      std::string_view extraLabel = "") {
  out += name;
  out += suffix;
  if (!labels.empty() || !extraLabel.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extraLabel.empty()) out += ',';
    out += extraLabel;
    out += '}';
  }
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             TimePoint scrapedAt) {
  std::string out;
  for (const auto& family : snapshot.families) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " ";
    out += MetricKindName(family.kind);
    out += '\n';
    for (const auto& s : family.samples) {
      if (family.kind != MetricKind::kHistogram) {
        AppendSampleName(out, family.name, "", s.labels);
        out += ' ' + Num(s.value) + '\n';
        continue;
      }
      for (const auto& [bound, cumulative] : s.buckets) {
        AppendSampleName(out, family.name, "_bucket", s.labels,
                         "le=\"" + std::to_string(bound) + "\"");
        out += ' ' + std::to_string(cumulative) + '\n';
      }
      AppendSampleName(out, family.name, "_bucket", s.labels, "le=\"+Inf\"");
      out += ' ' + std::to_string(s.count) + '\n';
      AppendSampleName(out, family.name, "_sum", s.labels);
      out += ' ' + Num(s.sum) + '\n';
      AppendSampleName(out, family.name, "_count", s.labels);
      out += ' ' + std::to_string(s.count) + '\n';
    }
  }
  out += "# scraped_at " + std::to_string(scrapedAt) + "\n";
  return out;
}

std::string NormalizeExposition(std::string_view exposition) {
  std::string out;
  out.reserve(exposition.size());
  std::size_t start = 0;
  while (start <= exposition.size()) {
    std::size_t end = exposition.find('\n', start);
    if (end == std::string_view::npos) end = exposition.size();
    const std::string_view line = exposition.substr(start, end - start);
    if (line.rfind("# scraped_at ", 0) == 0) {
      out += "# scraped_at TS";
    } else {
      out += line;
    }
    if (end < exposition.size()) out += '\n';
    start = end + 1;
  }
  return out;
}

std::string MaskExpositionValues(std::string_view exposition) {
  std::string out;
  out.reserve(exposition.size());
  std::size_t start = 0;
  while (start <= exposition.size()) {
    std::size_t end = exposition.find('\n', start);
    if (end == std::string_view::npos) end = exposition.size();
    const std::string_view line = exposition.substr(start, end - start);
    if (line.rfind("# scraped_at ", 0) == 0) {
      out += "# scraped_at TS";
    } else if (!line.empty() && line[0] != '#') {
      // `<name>[{labels}] <value>` — labels may contain spaces inside quotes,
      // so split at the last space (values never contain one).
      const std::size_t space = line.rfind(' ');
      if (space == std::string_view::npos) {
        out += line;
      } else {
        out += line.substr(0, space);
        out += " V";
      }
    } else {
      out += line;
    }
    if (end < exposition.size()) out += '\n';
    start = end + 1;
  }
  return out;
}

}  // namespace md::obs
