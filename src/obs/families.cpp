#include "obs/families.hpp"

namespace md::obs {

namespace {

// Family names + help, in one place so the bundles and
// RegisterStandardFamilies can't drift apart.

constexpr std::string_view kCoreAccepted = "md_core_connections_accepted_total";
constexpr std::string_view kCoreAcceptedHelp = "TCP connections accepted";
constexpr std::string_view kCoreActive = "md_core_connections_active";
constexpr std::string_view kCoreActiveHelp = "Currently open client sessions";
constexpr std::string_view kCoreFrames = "md_core_frames_received_total";
constexpr std::string_view kCoreFramesHelp = "Protocol frames parsed";
constexpr std::string_view kCorePublished = "md_core_published_total";
constexpr std::string_view kCorePublishedHelp = "Publications accepted";
constexpr std::string_view kCoreDelivered = "md_core_delivered_total";
constexpr std::string_view kCoreDeliveredHelp =
    "Messages delivered to subscribers";
constexpr std::string_view kCoreBytesOut = "md_core_bytes_out_total";
constexpr std::string_view kCoreBytesOutHelp = "Payload bytes written to clients";
constexpr std::string_view kCoreProtoErrors = "md_core_protocol_errors_total";
constexpr std::string_view kCoreProtoErrorsHelp =
    "Sessions dropped for protocol violations";
constexpr std::string_view kCoreBytesPerSession = "md_core_bytes_per_session";
constexpr std::string_view kCoreBytesPerSessionHelp =
    "Slab-accounted engine bytes in use divided by active sessions";

// Renamed from md_transport_epoll_wakeups_total: both loop backends (epoll
// AND io_uring) increment it, once per loop iteration — timer ticks and
// posted-task wakeups included — so the old name overstated what it counted.
constexpr std::string_view kTransLoopIterations =
    "md_transport_loop_iterations_total";
constexpr std::string_view kTransLoopIterationsHelp =
    "Event-loop iterations completed (any backend; includes timer ticks)";
constexpr std::string_view kTransBytesRead = "md_transport_bytes_read_total";
constexpr std::string_view kTransBytesReadHelp = "Bytes read from sockets";
constexpr std::string_view kTransBytesWritten =
    "md_transport_bytes_written_total";
constexpr std::string_view kTransBytesWrittenHelp = "Bytes written to sockets";
constexpr std::string_view kTransQueueBytes = "md_transport_send_queue_bytes";
constexpr std::string_view kTransQueueBytesHelp =
    "Bytes buffered across all connection send queues";
constexpr std::string_view kTransTimers = "md_transport_timers_fired_total";
constexpr std::string_view kTransTimersHelp = "Loop timers fired";
constexpr std::string_view kTransTasksPosted = "md_transport_tasks_posted_total";
constexpr std::string_view kTransTasksPostedHelp =
    "Cross-thread tasks enqueued onto event loops";
constexpr std::string_view kTransSyscalls = "md_transport_syscalls_total";
constexpr std::string_view kTransSyscallsHelp =
    "Socket data syscalls issued, by operation";
constexpr std::string_view kTransCopyBytes = "md_transport_copy_bytes_total";
constexpr std::string_view kTransCopyBytesHelp =
    "Payload bytes copied into egress send queues (zero-copy sends excluded)";

constexpr std::string_view kSlowSoftOverflows =
    "md_slow_consumer_soft_overflows_total";
constexpr std::string_view kSlowSoftOverflowsHelp =
    "Sessions crossing the soft send-queue watermark";
constexpr std::string_view kSlowDisconnects = "md_slow_consumer_disconnects_total";
constexpr std::string_view kSlowDisconnectsHelp =
    "Sessions evicted by the slow-consumer overflow policy";
constexpr std::string_view kSlowConflated = "md_slow_consumer_conflated_total";
constexpr std::string_view kSlowConflatedHelp =
    "Deliveries routed through the conflator while over the soft watermark";
constexpr std::string_view kSlowDropped = "md_slow_consumer_dropped_total";
constexpr std::string_view kSlowDroppedHelp =
    "Deliveries dropped by the overflow policy (drop-newest or hard reject)";
constexpr std::string_view kSlowOverSoft = "md_slow_consumer_sessions_over_soft";
constexpr std::string_view kSlowOverSoftHelp =
    "Sessions currently above the soft send-queue watermark";
constexpr std::string_view kSlowQueueDepth = "md_slow_consumer_queue_depth_bytes";
constexpr std::string_view kSlowQueueDepthHelp =
    "Send-queue depth sampled at soft-watermark crossings";

constexpr std::string_view kClusPublished = "md_cluster_published_total";
constexpr std::string_view kClusPublishedHelp =
    "Publications sequenced by this node as topic owner";
constexpr std::string_view kClusForwarded = "md_cluster_forwarded_total";
constexpr std::string_view kClusForwardedHelp =
    "Publications forwarded to the owning node";
constexpr std::string_view kClusDelivered = "md_cluster_delivered_total";
constexpr std::string_view kClusDeliveredHelp =
    "Messages delivered to local subscribers";
constexpr std::string_view kClusRejects = "md_cluster_rejects_total";
constexpr std::string_view kClusRejectsHelp =
    "Publications rejected (fenced or not owner)";
constexpr std::string_view kClusTakeovers = "md_cluster_takeovers_total";
constexpr std::string_view kClusTakeoversHelp =
    "Topic ownership takeovers completed";
constexpr std::string_view kClusFences = "md_cluster_fences_total";
constexpr std::string_view kClusFencesHelp =
    "Transitions into the fenced (quorum-lost) state";
constexpr std::string_view kClusUnfences = "md_cluster_unfences_total";
constexpr std::string_view kClusUnfencesHelp =
    "Transitions out of the fenced state";
constexpr std::string_view kClusBackfilled = "md_cluster_backfilled_total";
constexpr std::string_view kClusBackfilledHelp =
    "Messages recovered from peers on takeover";
constexpr std::string_view kClusHandoffs = "md_cluster_handoffs_total";
constexpr std::string_view kClusHandoffsHelp =
    "Subscriber-partition hand-offs initiated";
constexpr std::string_view kClusHandoffSessions =
    "md_cluster_handoff_sessions_total";
constexpr std::string_view kClusHandoffSessionsHelp =
    "Client sessions migrated through hand-offs";
constexpr std::string_view kClusHandoffAborts = "md_cluster_handoff_aborts_total";
constexpr std::string_view kClusHandoffAbortsHelp =
    "Hand-offs aborted (ack timeout or refused by the new owner)";
constexpr std::string_view kClusQuorumRejects = "md_cluster_quorum_rejects_total";
constexpr std::string_view kClusQuorumRejectsHelp =
    "Publications refused while the member quorum was lost";
constexpr std::string_view kClusFenceRefusals = "md_cluster_fence_refusals_total";
constexpr std::string_view kClusFenceRefusalsHelp =
    "Peer writes refused for carrying a stale fence epoch";
constexpr std::string_view kClusRebalances = "md_cluster_rebalances_total";
constexpr std::string_view kClusRebalancesHelp =
    "Subscriber-partition assignment recomputations applied";
constexpr std::string_view kClusActiveMembers = "md_cluster_active_members";
constexpr std::string_view kClusActiveMembersHelp =
    "Live members in the elastic membership view";
constexpr std::string_view kClusReplPending = "md_cluster_replication_pending";
constexpr std::string_view kClusReplPendingHelp =
    "Publications awaiting replication acks";
constexpr std::string_view kClusReplAck = "md_cluster_replication_ack_ns";
constexpr std::string_view kClusReplAckHelp =
    "Publish-to-replication-quorum latency";
constexpr std::string_view kClusFailoverLast = "md_cluster_failover_last_ns";
constexpr std::string_view kClusFailoverLastHelp =
    "Duration of the most recent fence-to-unfence span";
constexpr std::string_view kClusFailover = "md_cluster_failover_ns";
constexpr std::string_view kClusFailoverHelp =
    "Fence-to-unfence (failover) durations";

constexpr std::string_view kWalAppends = "md_wal_appends_total";
constexpr std::string_view kWalAppendsHelp = "Records appended to the WAL";
constexpr std::string_view kWalAppendBytes = "md_wal_append_bytes_total";
constexpr std::string_view kWalAppendBytesHelp =
    "Framed record bytes appended to the WAL";
constexpr std::string_view kWalFsyncs = "md_wal_fsyncs_total";
constexpr std::string_view kWalFsyncsHelp = "Segment fsync calls issued";
constexpr std::string_view kWalRotations = "md_wal_rotations_total";
constexpr std::string_view kWalRotationsHelp =
    "Segments sealed by size or age rotation";
constexpr std::string_view kWalCorrupt = "md_wal_corrupt_records_skipped_total";
constexpr std::string_view kWalCorruptHelp =
    "Recovery records dropped for CRC mismatch or undecodable payload";
constexpr std::string_view kWalTorn = "md_wal_torn_tails_truncated_total";
constexpr std::string_view kWalTornHelp =
    "Segments truncated at a torn or zero-filled tail during recovery";
constexpr std::string_view kWalRecovered = "md_wal_recovered_records_total";
constexpr std::string_view kWalRecoveredHelp =
    "Intact records replayed into the cache at startup";
constexpr std::string_view kWalEnospc = "md_wal_enospc_errors_total";
constexpr std::string_view kWalEnospcHelp =
    "WAL appends failed for lack of disk space (cache stays authoritative)";
constexpr std::string_view kWalSegments = "md_wal_segments";
constexpr std::string_view kWalSegmentsHelp =
    "Segment files currently on disk (active + sealed)";
constexpr std::string_view kWalRecoveryMs = "md_wal_recovery_last_ms";
constexpr std::string_view kWalRecoveryMsHelp =
    "Wall-clock duration of the most recent WAL recovery scan";

constexpr std::string_view kCoordExpirations =
    "md_coord_session_expirations_total";
constexpr std::string_view kCoordExpirationsHelp =
    "Coordination sessions expired by the leader";
constexpr std::string_view kCoordWatchFires = "md_coord_watch_fires_total";
constexpr std::string_view kCoordWatchFiresHelp = "Watch callbacks fired";
constexpr std::string_view kCoordElections = "md_coord_elections_total";
constexpr std::string_view kCoordElectionsHelp = "Leader elections started";
constexpr std::string_view kCoordWrite = "md_coord_write_ns";
constexpr std::string_view kCoordWriteHelp =
    "Client-visible coordination write latency";

}  // namespace

CoreMetrics::CoreMetrics(MetricsRegistry& r, std::string_view labels)
    : accepted(r.GetCounter(kCoreAccepted, kCoreAcceptedHelp, labels)),
      active(r.GetGauge(kCoreActive, kCoreActiveHelp, labels)),
      frames(r.GetCounter(kCoreFrames, kCoreFramesHelp, labels)),
      published(r.GetCounter(kCorePublished, kCorePublishedHelp, labels)),
      delivered(r.GetCounter(kCoreDelivered, kCoreDeliveredHelp, labels)),
      bytesOut(r.GetCounter(kCoreBytesOut, kCoreBytesOutHelp, labels)),
      protoErrors(
          r.GetCounter(kCoreProtoErrors, kCoreProtoErrorsHelp, labels)),
      bytesPerSession(
          r.GetGauge(kCoreBytesPerSession, kCoreBytesPerSessionHelp, labels)) {}

TransportMetrics::TransportMetrics(MetricsRegistry& r, std::string_view labels)
    : loopIterations(
          r.GetCounter(kTransLoopIterations, kTransLoopIterationsHelp, labels)),
      bytesRead(r.GetCounter(kTransBytesRead, kTransBytesReadHelp, labels)),
      bytesWritten(
          r.GetCounter(kTransBytesWritten, kTransBytesWrittenHelp, labels)),
      sendQueueBytes(
          r.GetGauge(kTransQueueBytes, kTransQueueBytesHelp, labels)),
      timersFired(r.GetCounter(kTransTimers, kTransTimersHelp, labels)),
      tasksPosted(
          r.GetCounter(kTransTasksPosted, kTransTasksPostedHelp, labels)),
      // The op label distinguishes the three data-path syscalls; the bundle
      // is process-wide (unlabeled otherwise), so the fixed label text is
      // the child key.
      syscallsSend(r.GetCounter(kTransSyscalls, kTransSyscallsHelp, "op=\"send\"")),
      syscallsSendmsg(
          r.GetCounter(kTransSyscalls, kTransSyscallsHelp, "op=\"sendmsg\"")),
      syscallsRecv(r.GetCounter(kTransSyscalls, kTransSyscallsHelp, "op=\"recv\"")),
      copyBytes(r.GetCounter(kTransCopyBytes, kTransCopyBytesHelp, labels)) {}

SlowConsumerMetrics::SlowConsumerMetrics(MetricsRegistry& r,
                                         std::string_view labels)
    : softOverflows(
          r.GetCounter(kSlowSoftOverflows, kSlowSoftOverflowsHelp, labels)),
      disconnects(r.GetCounter(kSlowDisconnects, kSlowDisconnectsHelp, labels)),
      conflated(r.GetCounter(kSlowConflated, kSlowConflatedHelp, labels)),
      dropped(r.GetCounter(kSlowDropped, kSlowDroppedHelp, labels)),
      sessionsOverSoft(r.GetGauge(kSlowOverSoft, kSlowOverSoftHelp, labels)),
      queueDepthBytes(
          r.GetHistogram(kSlowQueueDepth, kSlowQueueDepthHelp, labels)) {}

ClusterMetrics::ClusterMetrics(MetricsRegistry& r, std::string_view labels)
    : published(r.GetCounter(kClusPublished, kClusPublishedHelp, labels)),
      forwarded(r.GetCounter(kClusForwarded, kClusForwardedHelp, labels)),
      delivered(r.GetCounter(kClusDelivered, kClusDeliveredHelp, labels)),
      rejects(r.GetCounter(kClusRejects, kClusRejectsHelp, labels)),
      takeovers(r.GetCounter(kClusTakeovers, kClusTakeoversHelp, labels)),
      fences(r.GetCounter(kClusFences, kClusFencesHelp, labels)),
      unfences(r.GetCounter(kClusUnfences, kClusUnfencesHelp, labels)),
      backfilled(r.GetCounter(kClusBackfilled, kClusBackfilledHelp, labels)),
      handoffs(r.GetCounter(kClusHandoffs, kClusHandoffsHelp, labels)),
      handoffSessions(
          r.GetCounter(kClusHandoffSessions, kClusHandoffSessionsHelp, labels)),
      handoffAborts(
          r.GetCounter(kClusHandoffAborts, kClusHandoffAbortsHelp, labels)),
      quorumRejects(
          r.GetCounter(kClusQuorumRejects, kClusQuorumRejectsHelp, labels)),
      fenceRefusals(
          r.GetCounter(kClusFenceRefusals, kClusFenceRefusalsHelp, labels)),
      rebalances(r.GetCounter(kClusRebalances, kClusRebalancesHelp, labels)),
      activeMembers(
          r.GetGauge(kClusActiveMembers, kClusActiveMembersHelp, labels)),
      replicationPending(
          r.GetGauge(kClusReplPending, kClusReplPendingHelp, labels)),
      replicationAckNs(r.GetHistogram(kClusReplAck, kClusReplAckHelp, labels)),
      failoverLastNs(
          r.GetGauge(kClusFailoverLast, kClusFailoverLastHelp, labels)),
      failoverNs(r.GetHistogram(kClusFailover, kClusFailoverHelp, labels)) {}

WalMetrics::WalMetrics(MetricsRegistry& r, std::string_view labels)
    : appends(r.GetCounter(kWalAppends, kWalAppendsHelp, labels)),
      appendBytes(r.GetCounter(kWalAppendBytes, kWalAppendBytesHelp, labels)),
      fsyncs(r.GetCounter(kWalFsyncs, kWalFsyncsHelp, labels)),
      rotations(r.GetCounter(kWalRotations, kWalRotationsHelp, labels)),
      corruptSkipped(r.GetCounter(kWalCorrupt, kWalCorruptHelp, labels)),
      tornTruncated(r.GetCounter(kWalTorn, kWalTornHelp, labels)),
      recoveredRecords(r.GetCounter(kWalRecovered, kWalRecoveredHelp, labels)),
      enospcErrors(r.GetCounter(kWalEnospc, kWalEnospcHelp, labels)),
      segments(r.GetGauge(kWalSegments, kWalSegmentsHelp, labels)),
      recoveryLastMs(r.GetGauge(kWalRecoveryMs, kWalRecoveryMsHelp, labels)) {}

CoordMetrics::CoordMetrics(MetricsRegistry& r, std::string_view labels)
    : sessionExpirations(
          r.GetCounter(kCoordExpirations, kCoordExpirationsHelp, labels)),
      watchFires(r.GetCounter(kCoordWatchFires, kCoordWatchFiresHelp, labels)),
      elections(r.GetCounter(kCoordElections, kCoordElectionsHelp, labels)),
      writeNs(r.GetHistogram(kCoordWrite, kCoordWriteHelp, labels)) {}

void RegisterStandardFamilies(MetricsRegistry& registry) {
  CoreMetrics core(registry);
  TransportMetrics transport(registry);
  SlowConsumerMetrics slowConsumer(registry);
  ClusterMetrics cluster(registry);
  WalMetrics wal(registry);
  CoordMetrics coord(registry);
  registry.GetHistogram("md_trace_stage_ns",
                        "Latency between consecutive pipeline stages");
  registry.GetHistogram(
      "md_trace_end_to_end_ns",
      "Publish-received to terminal-stage latency per publication");
  registry.GetCounter("md_trace_dropped_total",
                      "Traces evicted before reaching their terminal stage");
}

std::string ServerLabel(std::string_view serverName) {
  return "server=\"" + std::string(serverName) + "\"";
}

std::string NodeLabel(std::string_view nodeId) {
  return "node=\"" + std::string(nodeId) + "\"";
}

}  // namespace md::obs
