#include "proto/http_stream.hpp"

#include "common/strutil.hpp"

namespace md::http {

namespace {

std::size_t FindHeaderEnd(std::string_view data) noexcept {
  const std::size_t pos = data.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string_view::npos : pos + 4;
}

std::optional<std::string> FindHeader(std::string_view head, std::string_view name) {
  for (std::string_view line : SplitView(head, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (EqualsIgnoreCase(TrimView(line.substr(0, colon)), name)) {
      return std::string(TrimView(line.substr(colon + 1)));
    }
  }
  return std::nullopt;
}

}  // namespace

std::string BuildStreamRequest(std::string_view host) {
  std::string req;
  req += "POST ";
  req += kStreamPath;
  req += " HTTP/1.1\r\nHost: ";
  req += host;
  req += "\r\nContent-Type: application/octet-stream\r\n"
         "Transfer-Encoding: chunked\r\nConnection: keep-alive\r\n\r\n";
  return req;
}

std::string BuildStreamResponse() {
  return "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n"
         "Transfer-Encoding: chunked\r\nCache-Control: no-store\r\n\r\n";
}

StreamRequestResult ParseStreamRequest(ByteQueue& in) {
  StreamRequestResult result;
  const std::string_view data = AsStringView(in.Peek());
  const std::size_t end = FindHeaderEnd(data);
  if (end == std::string_view::npos) {
    if (data.size() > 16384) {
      result.status = Err(ErrorCode::kProtocol, "oversized request head");
    }
    return result;
  }
  const std::string_view head = data.substr(0, end);

  const std::size_t lineEnd = head.find("\r\n");
  const auto parts = SplitView(head.substr(0, lineEnd), ' ');
  if (parts.size() != 3 || parts[0] != "POST" || parts[1] != kStreamPath ||
      !StartsWith(parts[2], "HTTP/1.1")) {
    result.status = Err(ErrorCode::kProtocol, "bad stream request line");
    return result;
  }
  const auto te = FindHeader(head, "Transfer-Encoding");
  if (!te || !EqualsIgnoreCase(*te, "chunked")) {
    result.status = Err(ErrorCode::kProtocol, "stream request must be chunked");
    return result;
  }
  if (const auto host = FindHeader(head, "Host")) result.host = *host;

  in.Consume(end);
  result.complete = true;
  return result;
}

StreamResponseResult ParseStreamResponse(ByteQueue& in) {
  StreamResponseResult result;
  const std::string_view data = AsStringView(in.Peek());
  const std::size_t end = FindHeaderEnd(data);
  if (end == std::string_view::npos) {
    if (data.size() > 16384) {
      result.status = Err(ErrorCode::kProtocol, "oversized response head");
    }
    return result;
  }
  const std::string_view head = data.substr(0, end);
  if (!StartsWith(head, "HTTP/1.1 200")) {
    result.status = Err(ErrorCode::kProtocol, "stream rejected");
    return result;
  }
  const auto te = FindHeader(head, "Transfer-Encoding");
  if (!te || !EqualsIgnoreCase(*te, "chunked")) {
    result.status = Err(ErrorCode::kProtocol, "stream response must be chunked");
    return result;
  }
  in.Consume(end);
  result.complete = true;
  return result;
}

void EncodeChunk(BytesView payload, Bytes& out) {
  const std::string size = Format("%zx\r\n", payload.size());
  out.insert(out.end(), size.begin(), size.end());
  out.insert(out.end(), payload.begin(), payload.end());
  out.push_back('\r');
  out.push_back('\n');
}

void EncodeFinalChunk(Bytes& out) {
  static constexpr char kFinal[] = "0\r\n\r\n";
  out.insert(out.end(), kFinal, kFinal + 5);
}

ChunkResult ExtractChunk(ByteQueue& in, std::size_t maxChunk) {
  ChunkResult result;
  const std::string_view data = AsStringView(in.Peek());

  const std::size_t lineEnd = data.find("\r\n");
  if (lineEnd == std::string_view::npos) {
    if (data.size() > 18) {
      result.status = Err(ErrorCode::kProtocol, "chunk size line too long");
    }
    return result;
  }

  // Parse the hex size (chunk extensions after ';' are tolerated/ignored).
  std::size_t size = 0;
  std::size_t digits = 0;
  for (const char c : data.substr(0, lineEnd)) {
    if (c == ';') break;
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      result.status = Err(ErrorCode::kProtocol, "bad chunk size");
      return result;
    }
    size = size * 16 + static_cast<std::size_t>(v);
    if (++digits > 8) {
      result.status = Err(ErrorCode::kProtocol, "chunk size overflow");
      return result;
    }
  }
  if (digits == 0) {
    result.status = Err(ErrorCode::kProtocol, "missing chunk size");
    return result;
  }
  if (size > maxChunk) {
    result.status = Err(ErrorCode::kProtocol, "chunk exceeds limit");
    return result;
  }

  if (size == 0) {
    // Terminal chunk: "0\r\n" followed by a final "\r\n" (no trailers sent
    // by this implementation; tolerate their absence only when complete).
    if (data.size() < lineEnd + 4) return result;  // need more
    if (data.substr(lineEnd + 2, 2) != "\r\n") {
      result.status = Err(ErrorCode::kProtocol, "trailers unsupported");
      return result;
    }
    in.Consume(lineEnd + 4);
    result.endOfStream = true;
    return result;
  }

  const std::size_t total = lineEnd + 2 + size + 2;
  if (data.size() < total) return result;  // need more bytes
  if (data.substr(lineEnd + 2 + size, 2) != "\r\n") {
    result.status = Err(ErrorCode::kProtocol, "chunk missing CRLF");
    return result;
  }
  const BytesView view = in.Peek().subspan(lineEnd + 2, size);
  result.payload = Bytes(view.begin(), view.end());
  in.Consume(total);
  return result;
}

}  // namespace md::http
