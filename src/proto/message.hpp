// The pub/sub message model (paper §3).
//
// A publication becomes a Message once the topic coordinator assigns it an
// (epoch, seq) pair. (epoch, seq) totally orders messages within a topic:
// epoch increases when coordination for the topic's group moves to another
// server; seq increases per message within an epoch. Subscribers detect gaps
// and request recovery using these fields.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace md {

/// Identifies a publication attempt at a publisher; used for acknowledgement
/// matching and client-side duplicate filtering (at-least-once semantics).
struct PublicationId {
  std::uint64_t clientHash = 0;  // hash of the publisher's client id
  std::uint64_t counter = 0;     // per-publisher monotonically increasing

  friend bool operator==(const PublicationId&, const PublicationId&) = default;
  friend auto operator<=>(const PublicationId&, const PublicationId&) = default;
};

struct Message {
  std::string topic;
  Bytes payload;
  std::uint32_t epoch = 0;   // coordinator epoch for the topic's group
  std::uint64_t seq = 0;     // sequence number within the epoch (per topic)
  PublicationId pubId;       // original publisher's id (travels end-to-end)
  std::int64_t publishTs = 0;  // publisher timestamp (ns); latency measurement

  friend bool operator==(const Message&, const Message&) = default;
};

/// Order two (epoch, seq) positions within one topic's stream.
struct StreamPos {
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const StreamPos&, const StreamPos&) = default;
  friend auto operator<=>(const StreamPos&, const StreamPos&) = default;
};

inline StreamPos PosOf(const Message& m) noexcept { return {m.epoch, m.seq}; }

}  // namespace md
