// HTTP fallback transport (paper §3: clients connect "over WebSockets (or
// HTTP)").
//
// Clients that cannot speak WebSocket open a full-duplex chunked HTTP/1.1
// exchange: a POST request with `Transfer-Encoding: chunked` streams protocol
// frames upward (one frame per chunk) while the `200 OK` response streams
// frames downward the same way. A zero-length chunk terminates a direction,
// per RFC 9112 §7.1.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace md::http {

/// Path the server recognises as a streaming session.
inline constexpr std::string_view kStreamPath = "/stream";

/// Client's request head (POST /stream + chunked).
std::string BuildStreamRequest(std::string_view host);

/// Server's response head (200 OK + chunked).
std::string BuildStreamResponse();

/// Parses/validates the client's request head. Consumes it on success.
/// nullopt + OK = need more bytes.
struct StreamRequestResult {
  bool complete = false;
  std::string host;
  Status status;
};
StreamRequestResult ParseStreamRequest(ByteQueue& in);

/// Parses/validates the server's response head. Consumes it on success.
struct StreamResponseResult {
  bool complete = false;
  Status status;
};
StreamResponseResult ParseStreamResponse(ByteQueue& in);

/// Appends one chunk (hex length, CRLF, payload, CRLF).
void EncodeChunk(BytesView payload, Bytes& out);

/// Appends the terminal zero-length chunk.
void EncodeFinalChunk(Bytes& out);

/// Extracts one chunk. `endOfStream` marks the zero-length terminator.
struct ChunkResult {
  std::optional<Bytes> payload;
  bool endOfStream = false;
  Status status;
};
ChunkResult ExtractChunk(ByteQueue& in, std::size_t maxChunk = 16 * 1024 * 1024);

}  // namespace md::http
