// Binary codec: Frame <-> bytes, and stream framing over a byte stream.
//
// Encoding: one byte FrameType tag followed by the frame's fields (varints,
// length-prefixed strings/blobs; see codec.cpp). Stream framing: a varint
// body length followed by the body, so frames can be extracted from a TCP
// byte stream incrementally.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "proto/frames.hpp"

namespace md {

/// Serializes `frame` (tag + body, no stream length prefix) into `out`.
void EncodeFrame(const Frame& frame, Bytes& out);

/// Parses one frame from exactly `data` (no length prefix expected).
Result<Frame> DecodeFrame(BytesView data);

/// Appends a stream-framed (varint length + body) frame to `out`.
void EncodeFramed(const Frame& frame, Bytes& out);

/// Incremental extractor for stream framing over a ByteQueue.
/// Returns: a frame if one is complete; std::nullopt if more bytes are
/// needed; an error Status on malformed input (connection should be closed).
struct FrameExtractResult {
  std::optional<Frame> frame;
  Status status;  // non-OK => protocol violation
};
FrameExtractResult ExtractFrame(ByteQueue& in, std::size_t maxFrameSize = 16 * 1024 * 1024);

}  // namespace md
