#include "proto/websocket.hpp"

#include <cstring>

#include "common/sha1.hpp"
#include "common/strutil.hpp"

namespace md::ws {

namespace {

constexpr std::string_view kGuid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";
constexpr std::size_t kMaxControlPayload = 125;

void ApplyMask(std::uint8_t* data, std::size_t len, std::uint32_t key) noexcept {
  std::uint8_t keyBytes[4] = {
      static_cast<std::uint8_t>(key >> 24), static_cast<std::uint8_t>(key >> 16),
      static_cast<std::uint8_t>(key >> 8), static_cast<std::uint8_t>(key)};
  for (std::size_t i = 0; i < len; ++i) data[i] ^= keyBytes[i % 4];
}

}  // namespace

void EncodeWsFrame(Opcode opcode, BytesView payload, Bytes& out,
                   std::optional<std::uint32_t> maskKey) {
  const std::size_t len = payload.size();
  out.push_back(static_cast<std::uint8_t>(0x80 | static_cast<std::uint8_t>(opcode)));

  std::uint8_t maskBit = maskKey ? 0x80 : 0x00;
  if (len < 126) {
    out.push_back(static_cast<std::uint8_t>(maskBit | len));
  } else if (len <= 0xFFFF) {
    out.push_back(maskBit | 126);
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(len));
  } else {
    out.push_back(maskBit | 127);
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(len) >> (8 * i)));
    }
  }

  if (maskKey) {
    out.push_back(static_cast<std::uint8_t>(*maskKey >> 24));
    out.push_back(static_cast<std::uint8_t>(*maskKey >> 16));
    out.push_back(static_cast<std::uint8_t>(*maskKey >> 8));
    out.push_back(static_cast<std::uint8_t>(*maskKey));
    const std::size_t start = out.size();
    out.insert(out.end(), payload.begin(), payload.end());
    ApplyMask(out.data() + start, len, *maskKey);
  } else {
    out.insert(out.end(), payload.begin(), payload.end());
  }
}

WsExtractResult ExtractWsFrame(ByteQueue& in, bool expectMasked,
                               std::size_t maxPayload) {
  WsExtractResult result;
  const BytesView data = in.Peek();
  if (data.size() < 2) return result;

  const std::uint8_t b0 = data[0];
  const std::uint8_t b1 = data[1];
  const bool fin = (b0 & 0x80) != 0;
  if ((b0 & 0x70) != 0) {
    result.status = Err(ErrorCode::kProtocol, "nonzero RSV bits");
    return result;
  }
  const auto opcode = static_cast<Opcode>(b0 & 0x0F);
  switch (opcode) {
    case Opcode::kContinuation:
    case Opcode::kText:
    case Opcode::kBinary:
    case Opcode::kClose:
    case Opcode::kPing:
    case Opcode::kPong:
      break;
    default:
      result.status = Err(ErrorCode::kProtocol, "reserved opcode");
      return result;
  }
  const bool masked = (b1 & 0x80) != 0;
  if (masked != expectMasked) {
    result.status = Err(ErrorCode::kProtocol,
                        expectMasked ? "client frame not masked"
                                     : "server frame masked");
    return result;
  }

  std::size_t pos = 2;
  std::uint64_t len = b1 & 0x7F;
  if (len == 126) {
    if (data.size() < pos + 2) return result;
    len = (static_cast<std::uint64_t>(data[pos]) << 8) | data[pos + 1];
    pos += 2;
  } else if (len == 127) {
    if (data.size() < pos + 8) return result;
    len = 0;
    for (int i = 0; i < 8; ++i) len = (len << 8) | data[pos + i];
    pos += 8;
  }

  const bool isControl = (static_cast<std::uint8_t>(opcode) & 0x8) != 0;
  if (isControl && (len > kMaxControlPayload || !fin)) {
    result.status = Err(ErrorCode::kProtocol, "invalid control frame");
    return result;
  }
  if (len > maxPayload) {
    result.status = Err(ErrorCode::kProtocol, "payload exceeds limit");
    return result;
  }

  std::uint32_t maskKey = 0;
  if (masked) {
    if (data.size() < pos + 4) return result;
    maskKey = (static_cast<std::uint32_t>(data[pos]) << 24) |
              (static_cast<std::uint32_t>(data[pos + 1]) << 16) |
              (static_cast<std::uint32_t>(data[pos + 2]) << 8) |
              static_cast<std::uint32_t>(data[pos + 3]);
    pos += 4;
  }

  if (data.size() < pos + len) return result;

  WsFrame frame;
  frame.opcode = opcode;
  frame.fin = fin;
  frame.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                       data.begin() + static_cast<std::ptrdiff_t>(pos + len));
  if (masked) ApplyMask(frame.payload.data(), frame.payload.size(), maskKey);

  in.Consume(pos + static_cast<std::size_t>(len));
  result.frame = std::move(frame);
  return result;
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

std::string GenerateKey(Rng& rng) {
  char nonce[16];
  for (auto& c : nonce) c = static_cast<char>(rng.NextBelow(256));
  return Base64Encode(std::string_view(nonce, sizeof(nonce)));
}

std::string ComputeAccept(std::string_view keyBase64) {
  std::string material(keyBase64);
  material += kGuid;
  return Base64Encode(Sha1String(material));
}

std::string BuildClientHandshake(std::string_view host, std::string_view path,
                                 std::string_view keyBase64) {
  std::string req;
  req += "GET ";
  req += path;
  req += " HTTP/1.1\r\nHost: ";
  req += host;
  req += "\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: ";
  req += keyBase64;
  req += "\r\nSec-WebSocket-Version: 13\r\n\r\n";
  return req;
}

namespace {

/// Finds \r\n\r\n; returns the offset just past it, or npos.
std::size_t FindHeaderEnd(std::string_view data) noexcept {
  const std::size_t pos = data.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string_view::npos : pos + 4;
}

/// Case-insensitive single-header lookup within a raw HTTP head block.
std::optional<std::string> FindHeader(std::string_view head, std::string_view name) {
  for (std::string_view line : SplitView(head, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (EqualsIgnoreCase(TrimView(line.substr(0, colon)), name)) {
      return std::string(TrimView(line.substr(colon + 1)));
    }
  }
  return std::nullopt;
}

}  // namespace

HandshakeParseResult ParseClientHandshake(ByteQueue& in) {
  HandshakeParseResult result;
  const std::string_view data = AsStringView(in.Peek());
  const std::size_t end = FindHeaderEnd(data);
  if (end == std::string_view::npos) {
    if (data.size() > 16384) {
      result.status = Err(ErrorCode::kProtocol, "oversized handshake");
    }
    return result;
  }
  const std::string_view head = data.substr(0, end);

  // Request line: GET <path> HTTP/1.1
  const std::size_t lineEnd = head.find("\r\n");
  const std::string_view requestLine = head.substr(0, lineEnd);
  const auto parts = SplitView(requestLine, ' ');
  if (parts.size() != 3 || parts[0] != "GET" || !StartsWith(parts[2], "HTTP/1.1")) {
    result.status = Err(ErrorCode::kProtocol, "bad request line");
    return result;
  }

  ServerHandshake hs;
  hs.path = std::string(parts[1]);

  const auto upgrade = FindHeader(head, "Upgrade");
  const auto key = FindHeader(head, "Sec-WebSocket-Key");
  const auto version = FindHeader(head, "Sec-WebSocket-Version");
  if (!upgrade || !EqualsIgnoreCase(*upgrade, "websocket") || !key ||
      !version || *version != "13") {
    result.status = Err(ErrorCode::kProtocol, "missing/invalid upgrade headers");
    return result;
  }
  hs.key = *key;
  if (const auto host = FindHeader(head, "Host")) hs.host = *host;

  in.Consume(end);
  result.handshake = std::move(hs);
  return result;
}

std::string BuildServerHandshakeResponse(std::string_view keyBase64) {
  std::string resp;
  resp += "HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n"
          "Connection: Upgrade\r\nSec-WebSocket-Accept: ";
  resp += ComputeAccept(keyBase64);
  resp += "\r\n\r\n";
  return resp;
}

ClientHandshakeResult ParseServerHandshakeResponse(ByteQueue& in,
                                                   std::string_view expectedKey) {
  ClientHandshakeResult result;
  const std::string_view data = AsStringView(in.Peek());
  const std::size_t end = FindHeaderEnd(data);
  if (end == std::string_view::npos) {
    if (data.size() > 16384) {
      result.status = Err(ErrorCode::kProtocol, "oversized handshake response");
    }
    return result;
  }
  const std::string_view head = data.substr(0, end);
  if (!StartsWith(head, "HTTP/1.1 101")) {
    result.status = Err(ErrorCode::kProtocol, "handshake rejected");
    return result;
  }
  const auto accept = FindHeader(head, "Sec-WebSocket-Accept");
  if (!accept || *accept != ComputeAccept(expectedKey)) {
    result.status = Err(ErrorCode::kProtocol, "bad Sec-WebSocket-Accept");
    return result;
  }
  in.Consume(end);
  result.complete = true;
  return result;
}

}  // namespace md::ws
