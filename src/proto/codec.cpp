#include "proto/codec.hpp"

#include <utility>

namespace md {

namespace {

// --- field-level helpers ----------------------------------------------------

void WritePubId(ByteWriter& w, const PublicationId& id) {
  w.WriteU64(id.clientHash);
  w.WriteVarint(id.counter);
}

Status ReadPubId(ByteReader& r, PublicationId& id) {
  if (Status s = r.ReadU64(id.clientHash); !s.ok()) return s;
  return r.ReadVarint(id.counter);
}

void WriteMessage(ByteWriter& w, const Message& m) {
  w.WriteString(m.topic);
  w.WriteLengthPrefixed(m.payload);
  w.WriteVarint(m.epoch);
  w.WriteVarint(m.seq);
  WritePubId(w, m.pubId);
  w.WriteU64(static_cast<std::uint64_t>(m.publishTs));
}

Status ReadMessage(ByteReader& r, Message& m) {
  if (Status s = r.ReadString(m.topic); !s.ok()) return s;
  BytesView payload;
  if (Status s = r.ReadLengthPrefixed(payload); !s.ok()) return s;
  m.payload.assign(payload.begin(), payload.end());
  std::uint64_t epoch = 0;
  if (Status s = r.ReadVarint(epoch); !s.ok()) return s;
  m.epoch = static_cast<std::uint32_t>(epoch);
  if (Status s = r.ReadVarint(m.seq); !s.ok()) return s;
  if (Status s = ReadPubId(r, m.pubId); !s.ok()) return s;
  std::uint64_t ts = 0;
  if (Status s = r.ReadU64(ts); !s.ok()) return s;
  m.publishTs = static_cast<std::int64_t>(ts);
  return OkStatus();
}

void WritePos(ByteWriter& w, const StreamPos& p) {
  w.WriteVarint(p.epoch);
  w.WriteVarint(p.seq);
}

Status ReadPos(ByteReader& r, StreamPos& p) {
  std::uint64_t epoch = 0;
  if (Status s = r.ReadVarint(epoch); !s.ok()) return s;
  p.epoch = static_cast<std::uint32_t>(epoch);
  return r.ReadVarint(p.seq);
}

/// Strict 32-bit epoch read for the rebalancing frames: a varint past
/// UINT32_MAX is a malformed (or adversarial) frame, not a silent wrap —
/// fence comparisons must never see a truncated epoch.
Status ReadEpoch32(ByteReader& r, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (Status s = r.ReadVarint(v); !s.ok()) return s;
  if (v > 0xFFFFFFFFULL) return Err(ErrorCode::kProtocol, "epoch overflow");
  out = static_cast<std::uint32_t>(v);
  return OkStatus();
}

void WriteCursors(ByteWriter& w,
                  const std::vector<std::pair<std::string, StreamPos>>& cursors) {
  w.WriteVarint(cursors.size());
  for (const auto& [topic, pos] : cursors) {
    w.WriteString(topic);
    WritePos(w, pos);
  }
}

Status ReadCursors(ByteReader& r,
                   std::vector<std::pair<std::string, StreamPos>>& out) {
  std::uint64_t count = 0;
  if (Status s = r.ReadVarint(count); !s.ok()) return s;
  if (count > 1'000'000) return Err(ErrorCode::kProtocol, "absurd cursor count");
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string topic;
    if (Status s = r.ReadString(topic); !s.ok()) return s;
    StreamPos pos;
    if (Status s = ReadPos(r, pos); !s.ok()) return s;
    out.emplace_back(std::move(topic), pos);
  }
  return OkStatus();
}

// --- per-frame encoders -----------------------------------------------------

struct Encoder {
  ByteWriter& w;

  void operator()(const ConnectFrame& f) { w.WriteString(f.clientId); }
  void operator()(const ConnAckFrame& f) { w.WriteString(f.serverId); }
  void operator()(const SubscribeFrame& f) {
    w.WriteString(f.topic);
    w.WriteU8(f.hasResumePos ? 1 : 0);
    if (f.hasResumePos) WritePos(w, f.resumeAfter);
  }
  void operator()(const SubAckFrame& f) {
    w.WriteString(f.topic);
    w.WriteU8(f.ok ? 1 : 0);
  }
  void operator()(const UnsubscribeFrame& f) { w.WriteString(f.topic); }
  void operator()(const PublishFrame& f) {
    w.WriteString(f.topic);
    w.WriteLengthPrefixed(f.payload);
    WritePubId(w, f.pubId);
    w.WriteU8(f.wantAck ? 1 : 0);
    w.WriteU64(static_cast<std::uint64_t>(f.publishTs));
  }
  void operator()(const PubAckFrame& f) {
    WritePubId(w, f.pubId);
    w.WriteU8(static_cast<std::uint8_t>(f.code));
  }
  void operator()(const DeliverFrame& f) { WriteMessage(w, f.msg); }
  void operator()(const PingFrame& f) { w.WriteVarint(f.nonce); }
  void operator()(const PongFrame& f) { w.WriteVarint(f.nonce); }
  void operator()(const DisconnectFrame& f) { w.WriteString(f.reason); }
  void operator()(const HelloFrame& f) { w.WriteString(f.serverId); }
  void operator()(const ForwardPubFrame& f) {
    w.WriteString(f.topic);
    w.WriteLengthPrefixed(f.payload);
    WritePubId(w, f.pubId);
    w.WriteString(f.originServerId);
    w.WriteU64(static_cast<std::uint64_t>(f.publishTs));
    w.WriteU8(f.electIfUnassigned ? 1 : 0);
  }
  void operator()(const BroadcastFrame& f) {
    WriteMessage(w, f.msg);
    w.WriteVarint(f.group);
    w.WriteString(f.coordinatorId);
    w.WriteVarint(f.fenceEpoch);
  }
  void operator()(const BroadcastAckFrame& f) {
    w.WriteVarint(f.group);
    w.WriteVarint(f.epoch);
    w.WriteVarint(f.seq);
    w.WriteString(f.topic);
  }
  void operator()(const ForwardRejectFrame& f) {
    WritePubId(w, f.pubId);
    w.WriteString(f.topic);
  }
  void operator()(const ReplicatedNoticeFrame& f) {
    WritePubId(w, f.pubId);
    w.WriteString(f.topic);
  }
  void operator()(const GossipAnnounceFrame& f) {
    w.WriteVarint(f.group);
    w.WriteVarint(f.epoch);
    w.WriteString(f.serverId);
  }
  void operator()(const CacheSyncReqFrame& f) {
    w.WriteVarint(f.group);
    w.WriteVarint(f.have.size());
    for (const auto& [topic, pos] : f.have) {
      w.WriteString(topic);
      WritePos(w, pos);
    }
    w.WriteVarint(f.head.size());
    for (const auto& [topic, pos] : f.head) {
      w.WriteString(topic);
      WritePos(w, pos);
    }
  }
  void operator()(const CacheSyncRespFrame& f) {
    w.WriteVarint(f.group);
    w.WriteVarint(f.messages.size());
    for (const auto& m : f.messages) WriteMessage(w, m);
    w.WriteU8(f.done ? 1 : 0);
  }
  void operator()(const HandoffFrame& f) {
    w.WriteString(f.targetServerId);
    w.WriteVarint(f.partition);
    w.WriteVarint(f.rebalanceEpoch);
    WriteCursors(w, f.cursors);
  }
  void operator()(const HandoffBeginFrame& f) {
    w.WriteVarint(f.partition);
    w.WriteVarint(f.fenceEpoch);
    w.WriteU64(f.handoffId);
    w.WriteString(f.fromServerId);
    w.WriteVarint(f.sessions.size());
    for (const auto& s : f.sessions) {
      w.WriteString(s.clientId);
      WriteCursors(w, s.cursors);
    }
  }
  void operator()(const HandoffAckFrame& f) {
    w.WriteU64(f.handoffId);
    w.WriteVarint(f.partition);
    w.WriteVarint(f.fenceEpoch);
    w.WriteU8(f.ok ? 1 : 0);
  }
};

// --- per-frame decoders -----------------------------------------------------

template <typename F>
Result<Frame> DecodeInto(ByteReader& r, Status (*fill)(ByteReader&, F&)) {
  F f{};
  if (Status s = fill(r, f); !s.ok()) return s;
  if (!r.AtEnd()) return Err(ErrorCode::kProtocol, "trailing bytes in frame");
  return Frame(std::move(f));
}

Status FillConnect(ByteReader& r, ConnectFrame& f) { return r.ReadString(f.clientId); }
Status FillConnAck(ByteReader& r, ConnAckFrame& f) { return r.ReadString(f.serverId); }

Status FillSubscribe(ByteReader& r, SubscribeFrame& f) {
  if (Status s = r.ReadString(f.topic); !s.ok()) return s;
  std::uint8_t flag = 0;
  if (Status s = r.ReadU8(flag); !s.ok()) return s;
  f.hasResumePos = flag != 0;
  if (f.hasResumePos) return ReadPos(r, f.resumeAfter);
  return OkStatus();
}

Status FillSubAck(ByteReader& r, SubAckFrame& f) {
  if (Status s = r.ReadString(f.topic); !s.ok()) return s;
  std::uint8_t ok = 0;
  if (Status s = r.ReadU8(ok); !s.ok()) return s;
  f.ok = ok != 0;
  return OkStatus();
}

Status FillPublish(ByteReader& r, PublishFrame& f) {
  if (Status s = r.ReadString(f.topic); !s.ok()) return s;
  BytesView payload;
  if (Status s = r.ReadLengthPrefixed(payload); !s.ok()) return s;
  f.payload.assign(payload.begin(), payload.end());
  if (Status s = ReadPubId(r, f.pubId); !s.ok()) return s;
  std::uint8_t ack = 0;
  if (Status s = r.ReadU8(ack); !s.ok()) return s;
  f.wantAck = ack != 0;
  std::uint64_t ts = 0;
  if (Status s = r.ReadU64(ts); !s.ok()) return s;
  f.publishTs = static_cast<std::int64_t>(ts);
  return OkStatus();
}

Status FillPubAck(ByteReader& r, PubAckFrame& f) {
  if (Status s = ReadPubId(r, f.pubId); !s.ok()) return s;
  std::uint8_t code = 0;
  if (Status s = r.ReadU8(code); !s.ok()) return s;
  if (code > kMaxPubAckCode) return Err(ErrorCode::kProtocol, "bad puback code");
  f.code = static_cast<PubAckCode>(code);
  return OkStatus();
}

Status FillUnsubscribe(ByteReader& r, UnsubscribeFrame& f) { return r.ReadString(f.topic); }
Status FillDeliver(ByteReader& r, DeliverFrame& f) { return ReadMessage(r, f.msg); }
Status FillPing(ByteReader& r, PingFrame& f) { return r.ReadVarint(f.nonce); }
Status FillPong(ByteReader& r, PongFrame& f) { return r.ReadVarint(f.nonce); }
Status FillDisconnect(ByteReader& r, DisconnectFrame& f) { return r.ReadString(f.reason); }
Status FillHello(ByteReader& r, HelloFrame& f) { return r.ReadString(f.serverId); }

Status FillForwardPub(ByteReader& r, ForwardPubFrame& f) {
  if (Status s = r.ReadString(f.topic); !s.ok()) return s;
  BytesView payload;
  if (Status s = r.ReadLengthPrefixed(payload); !s.ok()) return s;
  f.payload.assign(payload.begin(), payload.end());
  if (Status s = ReadPubId(r, f.pubId); !s.ok()) return s;
  if (Status s = r.ReadString(f.originServerId); !s.ok()) return s;
  std::uint64_t ts = 0;
  if (Status s = r.ReadU64(ts); !s.ok()) return s;
  f.publishTs = static_cast<std::int64_t>(ts);
  std::uint8_t elect = 0;
  if (Status s = r.ReadU8(elect); !s.ok()) return s;
  f.electIfUnassigned = elect != 0;
  return OkStatus();
}

Status FillBroadcast(ByteReader& r, BroadcastFrame& f) {
  if (Status s = ReadMessage(r, f.msg); !s.ok()) return s;
  std::uint64_t group = 0;
  if (Status s = r.ReadVarint(group); !s.ok()) return s;
  f.group = static_cast<std::uint32_t>(group);
  if (Status s = r.ReadString(f.coordinatorId); !s.ok()) return s;
  return ReadEpoch32(r, f.fenceEpoch);
}

Status FillBroadcastAck(ByteReader& r, BroadcastAckFrame& f) {
  std::uint64_t group = 0;
  if (Status s = r.ReadVarint(group); !s.ok()) return s;
  f.group = static_cast<std::uint32_t>(group);
  std::uint64_t epoch = 0;
  if (Status s = r.ReadVarint(epoch); !s.ok()) return s;
  f.epoch = static_cast<std::uint32_t>(epoch);
  if (Status s = r.ReadVarint(f.seq); !s.ok()) return s;
  return r.ReadString(f.topic);
}

Status FillForwardReject(ByteReader& r, ForwardRejectFrame& f) {
  if (Status s = ReadPubId(r, f.pubId); !s.ok()) return s;
  return r.ReadString(f.topic);
}

Status FillReplicatedNotice(ByteReader& r, ReplicatedNoticeFrame& f) {
  if (Status s = ReadPubId(r, f.pubId); !s.ok()) return s;
  return r.ReadString(f.topic);
}

Status FillGossipAnnounce(ByteReader& r, GossipAnnounceFrame& f) {
  std::uint64_t group = 0;
  if (Status s = r.ReadVarint(group); !s.ok()) return s;
  f.group = static_cast<std::uint32_t>(group);
  std::uint64_t epoch = 0;
  if (Status s = r.ReadVarint(epoch); !s.ok()) return s;
  f.epoch = static_cast<std::uint32_t>(epoch);
  return r.ReadString(f.serverId);
}

Status FillCacheSyncReq(ByteReader& r, CacheSyncReqFrame& f) {
  std::uint64_t group = 0;
  if (Status s = r.ReadVarint(group); !s.ok()) return s;
  f.group = static_cast<std::uint32_t>(group);
  std::uint64_t count = 0;
  if (Status s = r.ReadVarint(count); !s.ok()) return s;
  if (count > 1'000'000) return Err(ErrorCode::kProtocol, "absurd have-list size");
  f.have.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string topic;
    if (Status s = r.ReadString(topic); !s.ok()) return s;
    StreamPos pos;
    if (Status s = ReadPos(r, pos); !s.ok()) return s;
    f.have.emplace_back(std::move(topic), pos);
  }
  std::uint64_t heads = 0;
  if (Status s = r.ReadVarint(heads); !s.ok()) return s;
  if (heads > 1'000'000) return Err(ErrorCode::kProtocol, "absurd head-list size");
  f.head.reserve(static_cast<std::size_t>(heads));
  for (std::uint64_t i = 0; i < heads; ++i) {
    std::string topic;
    if (Status s = r.ReadString(topic); !s.ok()) return s;
    StreamPos pos;
    if (Status s = ReadPos(r, pos); !s.ok()) return s;
    f.head.emplace_back(std::move(topic), pos);
  }
  return OkStatus();
}

Status FillCacheSyncResp(ByteReader& r, CacheSyncRespFrame& f) {
  std::uint64_t group = 0;
  if (Status s = r.ReadVarint(group); !s.ok()) return s;
  f.group = static_cast<std::uint32_t>(group);
  std::uint64_t count = 0;
  if (Status s = r.ReadVarint(count); !s.ok()) return s;
  if (count > 10'000'000) return Err(ErrorCode::kProtocol, "absurd message count");
  f.messages.resize(static_cast<std::size_t>(count));
  for (auto& m : f.messages) {
    if (Status s = ReadMessage(r, m); !s.ok()) return s;
  }
  std::uint8_t done = 0;
  if (Status s = r.ReadU8(done); !s.ok()) return s;
  f.done = done != 0;
  return OkStatus();
}

Status FillHandoff(ByteReader& r, HandoffFrame& f) {
  if (Status s = r.ReadString(f.targetServerId); !s.ok()) return s;
  std::uint64_t partition = 0;
  if (Status s = r.ReadVarint(partition); !s.ok()) return s;
  f.partition = static_cast<std::uint32_t>(partition);
  if (Status s = ReadEpoch32(r, f.rebalanceEpoch); !s.ok()) return s;
  return ReadCursors(r, f.cursors);
}

Status FillHandoffBegin(ByteReader& r, HandoffBeginFrame& f) {
  std::uint64_t partition = 0;
  if (Status s = r.ReadVarint(partition); !s.ok()) return s;
  f.partition = static_cast<std::uint32_t>(partition);
  if (Status s = ReadEpoch32(r, f.fenceEpoch); !s.ok()) return s;
  if (Status s = r.ReadU64(f.handoffId); !s.ok()) return s;
  if (Status s = r.ReadString(f.fromServerId); !s.ok()) return s;
  std::uint64_t count = 0;
  if (Status s = r.ReadVarint(count); !s.ok()) return s;
  if (count > 1'000'000) return Err(ErrorCode::kProtocol, "absurd session count");
  f.sessions.resize(static_cast<std::size_t>(count));
  for (auto& session : f.sessions) {
    if (Status s = r.ReadString(session.clientId); !s.ok()) return s;
    if (Status s = ReadCursors(r, session.cursors); !s.ok()) return s;
  }
  return OkStatus();
}

Status FillHandoffAck(ByteReader& r, HandoffAckFrame& f) {
  if (Status s = r.ReadU64(f.handoffId); !s.ok()) return s;
  std::uint64_t partition = 0;
  if (Status s = r.ReadVarint(partition); !s.ok()) return s;
  f.partition = static_cast<std::uint32_t>(partition);
  if (Status s = ReadEpoch32(r, f.fenceEpoch); !s.ok()) return s;
  std::uint8_t ok = 0;
  if (Status s = r.ReadU8(ok); !s.ok()) return s;
  f.ok = ok != 0;
  return OkStatus();
}

}  // namespace

FrameType TypeOf(const Frame& frame) noexcept {
  struct Visitor {
    FrameType operator()(const ConnectFrame&) { return FrameType::kConnect; }
    FrameType operator()(const ConnAckFrame&) { return FrameType::kConnAck; }
    FrameType operator()(const SubscribeFrame&) { return FrameType::kSubscribe; }
    FrameType operator()(const SubAckFrame&) { return FrameType::kSubAck; }
    FrameType operator()(const UnsubscribeFrame&) { return FrameType::kUnsubscribe; }
    FrameType operator()(const PublishFrame&) { return FrameType::kPublish; }
    FrameType operator()(const PubAckFrame&) { return FrameType::kPubAck; }
    FrameType operator()(const DeliverFrame&) { return FrameType::kDeliver; }
    FrameType operator()(const PingFrame&) { return FrameType::kPing; }
    FrameType operator()(const PongFrame&) { return FrameType::kPong; }
    FrameType operator()(const DisconnectFrame&) { return FrameType::kDisconnect; }
    FrameType operator()(const HelloFrame&) { return FrameType::kHello; }
    FrameType operator()(const ForwardPubFrame&) { return FrameType::kForwardPub; }
    FrameType operator()(const BroadcastFrame&) { return FrameType::kBroadcast; }
    FrameType operator()(const BroadcastAckFrame&) { return FrameType::kBroadcastAck; }
    FrameType operator()(const ForwardRejectFrame&) { return FrameType::kForwardReject; }
    FrameType operator()(const ReplicatedNoticeFrame&) { return FrameType::kReplicatedNotice; }
    FrameType operator()(const GossipAnnounceFrame&) { return FrameType::kGossipAnnounce; }
    FrameType operator()(const CacheSyncReqFrame&) { return FrameType::kCacheSyncReq; }
    FrameType operator()(const CacheSyncRespFrame&) { return FrameType::kCacheSyncResp; }
    FrameType operator()(const HandoffFrame&) { return FrameType::kHandoff; }
    FrameType operator()(const HandoffBeginFrame&) { return FrameType::kHandoffBegin; }
    FrameType operator()(const HandoffAckFrame&) { return FrameType::kHandoffAck; }
  };
  return std::visit(Visitor{}, frame);
}

const char* FrameTypeName(FrameType type) noexcept {
  switch (type) {
    case FrameType::kConnect: return "CONNECT";
    case FrameType::kConnAck: return "CONNACK";
    case FrameType::kSubscribe: return "SUBSCRIBE";
    case FrameType::kSubAck: return "SUBACK";
    case FrameType::kUnsubscribe: return "UNSUBSCRIBE";
    case FrameType::kPublish: return "PUBLISH";
    case FrameType::kPubAck: return "PUBACK";
    case FrameType::kDeliver: return "DELIVER";
    case FrameType::kPing: return "PING";
    case FrameType::kPong: return "PONG";
    case FrameType::kDisconnect: return "DISCONNECT";
    case FrameType::kHello: return "HELLO";
    case FrameType::kForwardPub: return "FORWARD_PUB";
    case FrameType::kBroadcast: return "BROADCAST";
    case FrameType::kBroadcastAck: return "BROADCAST_ACK";
    case FrameType::kForwardReject: return "FORWARD_REJECT";
    case FrameType::kReplicatedNotice: return "REPLICATED_NOTICE";
    case FrameType::kGossipAnnounce: return "GOSSIP_ANNOUNCE";
    case FrameType::kCacheSyncReq: return "CACHE_SYNC_REQ";
    case FrameType::kCacheSyncResp: return "CACHE_SYNC_RESP";
    case FrameType::kHandoff: return "HANDOFF";
    case FrameType::kHandoffBegin: return "HANDOFF_BEGIN";
    case FrameType::kHandoffAck: return "HANDOFF_ACK";
  }
  return "UNKNOWN";
}

void EncodeFrame(const Frame& frame, Bytes& out) {
  ByteWriter w(out);
  w.WriteU8(static_cast<std::uint8_t>(TypeOf(frame)));
  std::visit(Encoder{w}, frame);
}

Result<Frame> DecodeFrame(BytesView data) {
  ByteReader r(data);
  std::uint8_t tag = 0;
  if (Status s = r.ReadU8(tag); !s.ok()) return s;
  switch (static_cast<FrameType>(tag)) {
    case FrameType::kConnect: return DecodeInto<ConnectFrame>(r, FillConnect);
    case FrameType::kConnAck: return DecodeInto<ConnAckFrame>(r, FillConnAck);
    case FrameType::kSubscribe: return DecodeInto<SubscribeFrame>(r, FillSubscribe);
    case FrameType::kSubAck: return DecodeInto<SubAckFrame>(r, FillSubAck);
    case FrameType::kUnsubscribe: return DecodeInto<UnsubscribeFrame>(r, FillUnsubscribe);
    case FrameType::kPublish: return DecodeInto<PublishFrame>(r, FillPublish);
    case FrameType::kPubAck: return DecodeInto<PubAckFrame>(r, FillPubAck);
    case FrameType::kDeliver: return DecodeInto<DeliverFrame>(r, FillDeliver);
    case FrameType::kPing: return DecodeInto<PingFrame>(r, FillPing);
    case FrameType::kPong: return DecodeInto<PongFrame>(r, FillPong);
    case FrameType::kDisconnect: return DecodeInto<DisconnectFrame>(r, FillDisconnect);
    case FrameType::kHello: return DecodeInto<HelloFrame>(r, FillHello);
    case FrameType::kForwardPub: return DecodeInto<ForwardPubFrame>(r, FillForwardPub);
    case FrameType::kBroadcast: return DecodeInto<BroadcastFrame>(r, FillBroadcast);
    case FrameType::kBroadcastAck: return DecodeInto<BroadcastAckFrame>(r, FillBroadcastAck);
    case FrameType::kForwardReject: return DecodeInto<ForwardRejectFrame>(r, FillForwardReject);
    case FrameType::kReplicatedNotice: return DecodeInto<ReplicatedNoticeFrame>(r, FillReplicatedNotice);
    case FrameType::kGossipAnnounce: return DecodeInto<GossipAnnounceFrame>(r, FillGossipAnnounce);
    case FrameType::kCacheSyncReq: return DecodeInto<CacheSyncReqFrame>(r, FillCacheSyncReq);
    case FrameType::kCacheSyncResp: return DecodeInto<CacheSyncRespFrame>(r, FillCacheSyncResp);
    case FrameType::kHandoff: return DecodeInto<HandoffFrame>(r, FillHandoff);
    case FrameType::kHandoffBegin: return DecodeInto<HandoffBeginFrame>(r, FillHandoffBegin);
    case FrameType::kHandoffAck: return DecodeInto<HandoffAckFrame>(r, FillHandoffAck);
  }
  return Err(ErrorCode::kProtocol, "unknown frame type");
}

void EncodeFramed(const Frame& frame, Bytes& out) {
  Bytes body;
  EncodeFrame(frame, body);
  ByteWriter w(out);
  w.WriteVarint(body.size());
  w.WriteBytes(body);
}

FrameExtractResult ExtractFrame(ByteQueue& in, std::size_t maxFrameSize) {
  FrameExtractResult result;
  const BytesView avail = in.Peek();
  ByteReader r(avail);
  std::uint64_t len = 0;
  if (Status s = r.ReadVarint(len); !s.ok()) {
    // Could be an incomplete varint; only an error if it is malformed.
    if (avail.size() >= 10) result.status = s;
    return result;
  }
  if (len > maxFrameSize) {
    result.status = Err(ErrorCode::kProtocol, "frame exceeds maximum size");
    return result;
  }
  if (r.remaining() < len) return result;  // body not complete yet
  BytesView body;
  (void)r.ReadBytes(static_cast<std::size_t>(len), body);
  Result<Frame> frame = DecodeFrame(body);
  if (!frame.ok()) {
    result.status = frame.status();
    return result;
  }
  in.Consume(r.position());
  result.frame = std::move(frame).value();
  return result;
}

}  // namespace md
