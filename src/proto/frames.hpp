// Typed wire frames for the client protocol and the intra-cluster protocol.
//
// All frames travel over a persistent ordered byte stream (TCP, WebSocket
// binary frames, or the in-process / simulated transports). One Frame is one
// unit of the protocol; the codec (codec.hpp) maps Frame <-> bytes.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "proto/message.hpp"

namespace md {

// ---------------------------------------------------------------------------
// Client <-> server frames
// ---------------------------------------------------------------------------

/// First frame on a client connection.
struct ConnectFrame {
  std::string clientId;
  friend bool operator==(const ConnectFrame&, const ConnectFrame&) = default;
};

struct ConnAckFrame {
  std::string serverId;
  friend bool operator==(const ConnAckFrame&, const ConnAckFrame&) = default;
};

/// Subscribe to one topic. If `hasResumePos`, the client asks for in-order
/// recovery of every cached message after `resumeAfter` (paper §5.2.3).
struct SubscribeFrame {
  std::string topic;
  bool hasResumePos = false;
  StreamPos resumeAfter;
  friend bool operator==(const SubscribeFrame&, const SubscribeFrame&) = default;
};

struct SubAckFrame {
  std::string topic;
  bool ok = true;
  friend bool operator==(const SubAckFrame&, const SubAckFrame&) = default;
};

/// Stop receiving a topic. No resume state is kept server-side afterwards.
struct UnsubscribeFrame {
  std::string topic;
  friend bool operator==(const UnsubscribeFrame&, const UnsubscribeFrame&) = default;
};

/// Publication sent by a publisher client. `wantAck` selects at-least-once
/// (QoS 1) vs at-most-once (QoS 0) semantics (paper §3).
struct PublishFrame {
  std::string topic;
  Bytes payload;
  PublicationId pubId;
  bool wantAck = true;
  std::int64_t publishTs = 0;
  friend bool operator==(const PublishFrame&, const PublishFrame&) = default;
};

/// Publication acknowledgement status. Anything other than kOk means the
/// publication was not sequenced and the client must republish; kNoQuorum is
/// the *retryable* rejection a quorum-gated minority returns instead of
/// split-braining (the client backs off before republishing).
enum class PubAckCode : std::uint8_t {
  kOk = 0,
  kFailed = 1,    // sequencing failed (coordinator race lost, node fenced)
  kNoQuorum = 2,  // server cannot see a member majority; retry after backoff
};
inline constexpr std::uint8_t kMaxPubAckCode = 2;

struct PubAckFrame {
  PublicationId pubId;
  PubAckCode code = PubAckCode::kOk;
  [[nodiscard]] bool ok() const noexcept { return code == PubAckCode::kOk; }
  friend bool operator==(const PubAckFrame&, const PubAckFrame&) = default;
};

/// Notification delivered to a subscriber.
struct DeliverFrame {
  Message msg;
  friend bool operator==(const DeliverFrame&, const DeliverFrame&) = default;
};

struct PingFrame {
  std::uint64_t nonce = 0;
  friend bool operator==(const PingFrame&, const PingFrame&) = default;
};

struct PongFrame {
  std::uint64_t nonce = 0;
  friend bool operator==(const PongFrame&, const PongFrame&) = default;
};

/// Server-initiated close (e.g. partition self-fencing, paper §5.2.2) or
/// client-initiated goodbye.
struct DisconnectFrame {
  std::string reason;
  friend bool operator==(const DisconnectFrame&, const DisconnectFrame&) = default;
};

// ---------------------------------------------------------------------------
// Server <-> server (cluster) frames
// ---------------------------------------------------------------------------

/// Identifies a cluster peer on an inter-server connection.
struct HelloFrame {
  std::string serverId;
  friend bool operator==(const HelloFrame&, const HelloFrame&) = default;
};

/// A publication forwarded from the contact server toward the (actual or
/// would-be) coordinator of the topic's group (paper §5.2.2).
struct ForwardPubFrame {
  std::string topic;
  Bytes payload;
  PublicationId pubId;
  std::string originServerId;  // contact server awaiting the ack
  std::int64_t publishTs = 0;
  bool electIfUnassigned = false;  // receiver should run for coordinator
  friend bool operator==(const ForwardPubFrame&, const ForwardPubFrame&) = default;
};

/// Sequenced message broadcast by a group coordinator to all cluster members.
struct BroadcastFrame {
  Message msg;
  std::uint32_t group = 0;
  std::string coordinatorId;
  /// Sender's membership fence epoch (the linearized version of its fence
  /// znode). Receivers refuse broadcasts below the sender's last announced
  /// epoch, so an evicted node replaying buffered writes is ignored
  /// cluster-wide. 0 = sender not running elastic membership (always accepted).
  std::uint32_t fenceEpoch = 0;
  friend bool operator==(const BroadcastFrame&, const BroadcastFrame&) = default;
};

/// Confirms replication of a broadcast message into the sender's cache.
struct BroadcastAckFrame {
  std::uint32_t group = 0;
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
  std::string topic;
  friend bool operator==(const BroadcastAckFrame&, const BroadcastAckFrame&) = default;
};

/// Tells the contact server that the forwarded publication could not be
/// sequenced (coordinator race lost); the publisher gets a failed ack and
/// republishes (paper §5.2.2, footnote 3).
struct ForwardRejectFrame {
  PublicationId pubId;
  std::string topic;
  friend bool operator==(const ForwardRejectFrame&, const ForwardRejectFrame&) = default;
};

/// Coordinator -> contact server: the publication has reached the configured
/// replication degree and may be acknowledged to the publisher. Only used
/// when the cluster runs with more than two copies before ack (the paper's
/// §5.2 extension for tolerating additional concurrent faults).
struct ReplicatedNoticeFrame {
  PublicationId pubId;
  std::string topic;
  friend bool operator==(const ReplicatedNoticeFrame&, const ReplicatedNoticeFrame&) = default;
};

/// Gossip: "server `serverId` now coordinates `group` at `epoch`". Populates
/// peers' lazy gossip maps (paper §5.2.1).
struct GossipAnnounceFrame {
  std::uint32_t group = 0;
  std::uint32_t epoch = 0;
  std::string serverId;
  friend bool operator==(const GossipAnnounceFrame&, const GossipAnnounceFrame&) = default;
};

/// Ask a peer for every cached message of `group` it holds after `after`
/// (per topic); used for cache reconstruction after crash/partition recovery
/// (paper §5.2.2).
struct CacheSyncReqFrame {
  std::uint32_t group = 0;
  // Positions already held per topic; peer sends anything newer. Empty means
  // "send everything you have for the group".
  std::vector<std::pair<std::string, StreamPos>> have;
  // Earliest position still held per topic: the peer also resends anything
  // OLDER it holds. A WAL-recovered history can be missing its first records
  // (bit flip or ENOSPC at a topic's head) and no forward cursor can express
  // a hole that lies before the surviving history; topics absent here get no
  // older-than backfill.
  std::vector<std::pair<std::string, StreamPos>> head;
  friend bool operator==(const CacheSyncReqFrame&, const CacheSyncReqFrame&) = default;
};

struct CacheSyncRespFrame {
  std::uint32_t group = 0;
  std::vector<Message> messages;
  bool done = true;  // false => more chunks follow
  friend bool operator==(const CacheSyncRespFrame&, const CacheSyncRespFrame&) = default;
};

// ---------------------------------------------------------------------------
// Elastic rebalancing frames (DESIGN.md §12)
// ---------------------------------------------------------------------------

/// One migrating session inside a HandoffBeginFrame: the client plus the
/// old owner's delivered-through cursor per subscribed topic.
struct HandoffSession {
  std::string clientId;
  std::vector<std::pair<std::string, StreamPos>> cursors;
  friend bool operator==(const HandoffSession&, const HandoffSession&) = default;
};

/// Old owner -> new owner: start migrating one frozen subscriber-partition
/// slice. Carries the transferred resume cursors; the receiver holds them as
/// attach floors until the redirected clients reconnect. Idempotent — a
/// re-sent begin overwrites and is re-acked.
struct HandoffBeginFrame {
  std::uint32_t partition = 0;
  std::uint32_t fenceEpoch = 0;  // sender's epoch; stale senders are refused
  std::uint64_t handoffId = 0;
  std::string fromServerId;
  std::vector<HandoffSession> sessions;
  friend bool operator==(const HandoffBeginFrame&, const HandoffBeginFrame&) = default;
};

/// New owner -> old owner: the slice transfer is durable (ok) or refused.
/// Duplicate acks for an already-released hand-off are ignored.
struct HandoffAckFrame {
  std::uint64_t handoffId = 0;
  std::uint32_t partition = 0;
  std::uint32_t fenceEpoch = 0;  // responder's epoch
  bool ok = true;
  friend bool operator==(const HandoffAckFrame&, const HandoffAckFrame&) = default;
};

/// Server -> client: your partition moved; reconnect to `targetServerId`.
/// The cursors are the server-side delivered-through positions — a client
/// with no local resume state adopts them so the new owner backfills from
/// exactly the ownership boundary.
struct HandoffFrame {
  std::string targetServerId;
  std::uint32_t partition = 0;
  std::uint32_t rebalanceEpoch = 0;
  std::vector<std::pair<std::string, StreamPos>> cursors;
  friend bool operator==(const HandoffFrame&, const HandoffFrame&) = default;
};

// ---------------------------------------------------------------------------

using Frame = std::variant<
    ConnectFrame, ConnAckFrame, SubscribeFrame, SubAckFrame, UnsubscribeFrame,
    PublishFrame, PubAckFrame, DeliverFrame, PingFrame, PongFrame,
    DisconnectFrame, HelloFrame, ForwardPubFrame, BroadcastFrame,
    BroadcastAckFrame, ForwardRejectFrame, ReplicatedNoticeFrame,
    GossipAnnounceFrame, CacheSyncReqFrame, CacheSyncRespFrame, HandoffFrame,
    HandoffBeginFrame, HandoffAckFrame>;

/// Wire identifiers; order is part of the protocol, append-only.
enum class FrameType : std::uint8_t {
  kConnect = 1,
  kConnAck = 2,
  kSubscribe = 3,
  kSubAck = 4,
  kPublish = 5,
  kPubAck = 6,
  kDeliver = 7,
  kPing = 8,
  kPong = 9,
  kDisconnect = 10,
  kUnsubscribe = 11,
  kHello = 20,
  kForwardPub = 21,
  kBroadcast = 22,
  kBroadcastAck = 23,
  kForwardReject = 24,
  kGossipAnnounce = 25,
  kCacheSyncReq = 26,
  kCacheSyncResp = 27,
  kReplicatedNotice = 28,
  kHandoff = 29,
  kHandoffBegin = 30,
  kHandoffAck = 31,
};

FrameType TypeOf(const Frame& frame) noexcept;
const char* FrameTypeName(FrameType type) noexcept;

}  // namespace md
