// RFC 6455 WebSocket subset, implemented from scratch (paper §3: clients
// connect over WebSockets).
//
// Covers: HTTP/1.1 upgrade handshake (client request + server response with
// Sec-WebSocket-Accept), binary/text data frames, fragmentation-free payloads
// up to 2^63 bytes, client-side masking, ping/pong, close. Extensions and
// subprotocol negotiation are not implemented (not needed by the protocol).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace md::ws {

enum class Opcode : std::uint8_t {
  kContinuation = 0x0,
  kText = 0x1,
  kBinary = 0x2,
  kClose = 0x8,
  kPing = 0x9,
  kPong = 0xA,
};

/// RFC 6455 §7.4.1 close status: the server is overloaded for this client
/// ("try again later") — sent when the slow-consumer policy evicts a session.
inline constexpr std::uint16_t kClosePolicyTryAgainLater = 1013;

struct WsFrame {
  Opcode opcode = Opcode::kBinary;
  bool fin = true;
  Bytes payload;
};

/// Appends one encoded frame to `out`. If `maskKey` is set the payload is
/// masked (clients MUST mask; servers MUST NOT — RFC 6455 §5.3).
void EncodeWsFrame(Opcode opcode, BytesView payload, Bytes& out,
                   std::optional<std::uint32_t> maskKey = std::nullopt);

/// Incremental decoder over a ByteQueue. Returns a frame when complete,
/// std::nullopt when more bytes are needed, or an error on protocol
/// violations (bad RSV bits, oversized control frame, wrong masking).
struct WsExtractResult {
  std::optional<WsFrame> frame;
  Status status;
};
WsExtractResult ExtractWsFrame(ByteQueue& in, bool expectMasked,
                               std::size_t maxPayload = 16 * 1024 * 1024);

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Builds the client's HTTP/1.1 upgrade request. `key` is the raw 16-byte
/// nonce, base64-encoded into Sec-WebSocket-Key.
std::string BuildClientHandshake(std::string_view host, std::string_view path,
                                 std::string_view keyBase64);

/// Generates a random Sec-WebSocket-Key (base64 of 16 random bytes).
std::string GenerateKey(Rng& rng);

/// Computes Sec-WebSocket-Accept for a given Sec-WebSocket-Key.
std::string ComputeAccept(std::string_view keyBase64);

/// Result of parsing the server side of the handshake.
struct ServerHandshake {
  std::string path;
  std::string key;   // Sec-WebSocket-Key as received
  std::string host;
};

/// Incrementally parses an HTTP upgrade request from `in`. Consumes the
/// request bytes on success. nullopt = need more bytes.
struct HandshakeParseResult {
  std::optional<ServerHandshake> handshake;
  Status status;
};
HandshakeParseResult ParseClientHandshake(ByteQueue& in);

/// Builds the server's 101 Switching Protocols response.
std::string BuildServerHandshakeResponse(std::string_view keyBase64);

/// Parses/validates the server's 101 response against the expected key.
/// Consumes the response bytes on success. nullopt = need more bytes.
struct ClientHandshakeResult {
  bool complete = false;
  Status status;
};
ClientHandshakeResult ParseServerHandshakeResponse(ByteQueue& in,
                                                   std::string_view expectedKey);

}  // namespace md::ws
