// Always-on runtime verification monitor (the ROADMAP's "online runtime
// verification" item; cf. "Runtime Verification Containers for
// Publish/Subscribe Networks", PAPERS.md).
//
// A Monitor checks the chaos harness's streaming invariants — in-order,
// gap-free, duplicate-free per-stream delivery, bounded send queues, and
// monotone counters — against live traffic, in bounded memory:
//
//   - one observation per emitted delivery, keyed by (session, topic); the
//     shared rules live in verify/invariants.hpp so simulation and
//     production enforce identical semantics,
//   - per-stream state (last position + a small recent-publication window)
//     lives in sharded LRU tables under an explicit byte budget; a stream
//     evicted and later re-observed re-baselines silently (soundness over
//     completeness: eviction can hide a violation, never invent one),
//   - optional sampling (track 1/N streams by key hash) trades coverage for
//     hot-path cost on million-session servers,
//   - every verdict and every cost is exported through MetricsRegistry:
//     md_invariant_violations_total{kind=...} plus md_monitor_* self-metrics.
//
// The observation contract is *per-connection emission order*: feed the
// monitor the deliveries one connection's stream emits, in the order the
// engine emits them (core::Server feeds worker-side fan-out, TcpClusterHost
// feeds its loop-thread sends, the chaos driver and md_monitor sidecar feed
// per-connection-generation client streams). Under that contract the rules
// are sound — no false positives on reconnects, resume backfills, or
// at-least-once re-sequencing.
//
// A monitor that has never seen a violation is untested: InjectFault arms a
// one-shot mutation of the next eligible *observation* (never the real
// traffic), so tests and the md_server /inject debug endpoint can prove each
// rule fires — exactly once, because stream state is always advanced with
// the original event, so an injected fault can never cascade.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proto/message.hpp"
#include "verify/invariants.hpp"

namespace md::verify {

struct MonitorConfig {
  /// Ceiling on tracked-stream state, bytes (approximate, deterministic
  /// accounting — see Monitor::EntryCost). LRU eviction enforces it.
  std::size_t byteBudget = 4 * 1024 * 1024;
  /// Track one in every N streams (by key hash); 1 = track everything.
  std::uint64_t sampleEvery = 1;
  /// Per-stream recent-publication window for duplicate detection.
  std::size_t recentIds = 8;
  /// Violation reports kept for inspection (counters keep counting past it).
  std::size_t maxReports = 256;
  /// Label value for this monitor's metric families (usually the server id);
  /// empty = unlabeled.
  std::string scope;
};

struct Violation {
  ViolationKind kind = ViolationKind::kOrder;
  std::string detail;
};

class Monitor {
 public:
  Monitor(obs::MetricsRegistry& registry, MonitorConfig cfg);

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// One emitted delivery on `sessionKey`'s stream of `topic`. Thread-safe;
  /// per-stream calls must arrive in the connection's emission order.
  void OnDelivery(std::uint64_t sessionKey, std::string_view topic,
                  StreamPos pos, const PublicationId& id);

  /// A partition hand-off re-attached `sessionKey`'s stream of `topic` to a
  /// new owner with `from` as the transferred resume cursor. Seeds (or
  /// re-baselines) the stream at `from` and marks the next delivery as the
  /// ownership boundary: it is checked with the stricter [rebalance]
  /// continuity rule instead of the steady-state [order]/[gap] pair.
  void OnHandoffResume(std::uint64_t sessionKey, std::string_view topic,
                       StreamPos from);

  /// A send-queue depth sample for one connection against its hard watermark.
  void OnBackpressure(std::uint64_t sessionKey, std::size_t pendingBytes,
                      std::size_t hardWatermark);

  /// A post-recovery durability audit result for `subject` (a server id or
  /// "cluster"): how many acknowledged publications within retention are
  /// missing from the recovered cache. Zero means the audit passed.
  void OnRecoveryAudit(const std::string& subject, std::size_t missingAcked);

  /// One sample of a monotone counter series (name + label text); flags a
  /// regression against the previous sample of the same series.
  void OnCounterSample(std::string_view series, double value);

  /// Feeds every counter family of a snapshot through OnCounterSample —
  /// core::Server calls this on each /metrics scrape, so every scrape
  /// doubles as a consistency check.
  void OnMetricsSnapshot(const obs::MetricsSnapshot& snapshot);

  /// Tap for the obs::Tracer stage stream (Tracer::SetStageSink): per-stage
  /// event counts feed md_monitor_stage_events_total.
  void OnStage(const obs::TraceKey& key, obs::Stage stage);

  /// Drops one stream's state (the engine calls this on unsubscribe, so a
  /// later resubscribe on the same connection re-baselines instead of being
  /// flagged as a gap).
  void Forget(std::uint64_t sessionKey, std::string_view topic);

  /// Arms a one-shot fault: the next eligible observation is mutated to
  /// violate `kind` (stream state still advances with the original event, so
  /// exactly one violation fires and nothing cascades).
  void InjectFault(ViolationKind kind);

  [[nodiscard]] std::vector<Violation> Reports() const;
  [[nodiscard]] std::uint64_t ViolationCount() const noexcept;
  [[nodiscard]] std::uint64_t ViolationCount(ViolationKind kind) const;
  [[nodiscard]] std::size_t TrackedStreams() const;
  [[nodiscard]] std::size_t TrackedBytes() const;
  [[nodiscard]] std::uint64_t Evictions() const;
  [[nodiscard]] const MonitorConfig& config() const noexcept { return cfg_; }

  /// Deterministic per-stream cost model (fixed constants, not sizeof, so
  /// golden expositions are identical across toolchains/sanitizers).
  [[nodiscard]] std::size_t EntryCost(std::string_view topic) const noexcept;

 private:
  struct RingSlot {
    StreamPos pos;
    PublicationId id;
  };
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t session = 0;
    std::string topic;
    std::size_t cost = 0;
    bool has = false;              // false until the baseline observation
    bool handoff = false;          // next delivery crosses an ownership change
    StreamPos last{};
    PublicationId lastId{};
    std::vector<RingSlot> ring;    // recent (pos, id) pairs, rotating
    std::size_t ringSize = 0;
    std::size_t ringNext = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently touched
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  static constexpr std::size_t kShards = 8;

  [[nodiscard]] static std::uint64_t StreamKey(std::uint64_t sessionKey,
                                               std::string_view topic) noexcept;
  Entry& TouchLocked(Shard& shard, std::uint64_t key, std::uint64_t sessionKey,
                     std::string_view topic);
  void EvictOldestLocked(Shard& shard);
  [[nodiscard]] bool InRing(const Entry& e, StreamPos pos,
                            const PublicationId& id) const noexcept;
  static void PushRing(Entry& e, StreamPos pos, const PublicationId& id);
  bool TakeInjection(ViolationKind kind);
  void Report(ViolationKind kind, std::string detail);

  MonitorConfig cfg_;
  std::size_t shardBudget_ = 0;

  std::array<Shard, kShards> shards_;

  std::atomic<std::uint32_t> armedMask_{0};
  std::atomic<std::uint64_t> totalViolations_{0};

  mutable std::mutex reportsMu_;
  std::vector<Violation> reports_;

  mutable std::mutex countersMu_;
  std::map<std::string, double, std::less<>> counterLast_;

  // Metric handles (registered in the constructor, not in
  // RegisterStandardFamilies: servers without runtimeVerify keep their
  // exposition schema — and the checked-in goldens — byte-stable).
  obs::Counter* violations_[kViolationKindCount] = {};
  obs::Counter& events_;
  obs::Counter& sampledOut_;
  obs::Counter& evictions_;
  obs::Counter& injected_;
  obs::Counter& reportsDropped_;
  obs::Gauge& trackedStreams_;
  obs::Gauge& trackedBytes_;
  obs::Counter* stageEvents_[obs::kStageCount] = {};
};

}  // namespace md::verify
