// Shared delivery-invariant rules (the single source of truth for both the
// simulation-time chaos checker and the production runtime monitor).
//
// The chaos harness (src/cluster/chaos.hpp) and the always-on verify::Monitor
// observe very different vantages — post-hoc recorded client streams versus a
// sampled, bounded-memory live stream — but the *decisions* they make about a
// stream must be identical, or a seed that passes in simulation could page an
// operator in production (and vice versa). Every rule below is a pure
// function over observed positions/ids so both checkers delegate here and a
// rule change is one edit, covered by tests/verify/equivalence_test.cpp.
//
// Rule vocabulary (ViolationKind) and the report formatting used by the sim
// checker live here too, so `[order] ...` messages stay byte-identical across
// the refactor (tests/cluster/chaos_test.cpp pins them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "proto/message.hpp"

namespace md::verify {

/// The invariant classes the runtime monitor can flag. `kind` label values of
/// md_invariant_violations_total; ordering is part of the exposition schema.
enum class ViolationKind : std::uint8_t {
  kOrder = 0,        // a position not strictly after its predecessor
  kGap,              // a same-epoch sequence jump (missed messages)
  kDuplicate,        // the same publication re-emitted at the same position
  kBackpressure,     // pending bytes past the hard watermark
  kMetrics,          // a monotone counter went backwards
  kRebalance,        // continuity broken across a partition ownership change
  kDurability,       // an acked publication missing after crash recovery
};
inline constexpr std::size_t kViolationKindCount = 7;

[[nodiscard]] constexpr const char* ViolationKindName(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kOrder: return "order";
    case ViolationKind::kGap: return "gap";
    case ViolationKind::kDuplicate: return "duplicate";
    case ViolationKind::kBackpressure: return "backpressure";
    case ViolationKind::kMetrics: return "metrics";
    case ViolationKind::kRebalance: return "rebalance";
    case ViolationKind::kDurability: return "durability";
  }
  return "?";
}

/// Inverse of ViolationKindName, plus the aliases the chaos harness's
/// bracket tags use ("reorder", "dup"). Drives the md_server /inject
/// endpoint and md_monitor --inject flag.
[[nodiscard]] inline std::optional<ViolationKind> ParseViolationKind(
    std::string_view name) {
  if (name == "order" || name == "reorder") return ViolationKind::kOrder;
  if (name == "gap") return ViolationKind::kGap;
  if (name == "duplicate" || name == "dup") return ViolationKind::kDuplicate;
  if (name == "backpressure") return ViolationKind::kBackpressure;
  if (name == "metrics") return ViolationKind::kMetrics;
  if (name == "rebalance" || name == "handoff") return ViolationKind::kRebalance;
  if (name == "durability" || name == "loss") return ViolationKind::kDurability;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Decision rules
// ---------------------------------------------------------------------------

/// [order]: within one delivery stream, (epoch, seq) must be strictly
/// increasing. Equality is a violation too — the same position emitted twice
/// is caught by the duplicate rule first when the publication matches.
[[nodiscard]] constexpr bool ViolatesOrder(StreamPos prev, StreamPos next) noexcept {
  return !(prev < next);
}

/// [gap]: a same-epoch jump of more than one skipped messages the stream
/// owner never emitted. Epoch transitions are exempt: a new epoch restarts
/// sequencing and the cross-epoch cut is covered by [order]/[loss] instead
/// (sound, not complete — see DESIGN.md §11).
[[nodiscard]] constexpr bool IsSequenceGap(StreamPos prev, StreamPos next) noexcept {
  return next.epoch == prev.epoch && next.seq > prev.seq + 1;
}

/// [backpressure]: the hard watermark is an all-or-nothing bound — a stalled
/// consumer may pin its queue *at* the mark, never past it.
[[nodiscard]] constexpr bool ExceedsHardWatermark(std::size_t pendingBytes,
                                                  std::size_t hardWatermark) noexcept {
  return pendingBytes > hardWatermark;
}

/// [metrics]: counters are monotone; any regression between two samples of
/// the same series means a lost shard, a reset, or double accounting.
[[nodiscard]] constexpr bool RegressedCounter(double previous, double current) noexcept {
  return current < previous;
}

/// [rebalance]: the first delivery after a partition ownership change must
/// continue the stream exactly where the old owner left it — no regression,
/// no re-emission of the boundary position, and no same-epoch skip. The gap
/// half is stricter than steady-state [gap] on purpose: during a hand-off
/// every sequenced message is replicated (the minority cannot sequence), so
/// a hole at the boundary is always a lost transfer, never an expired ack.
[[nodiscard]] constexpr bool ViolatesRebalanceContinuity(StreamPos prev,
                                                         StreamPos next) noexcept {
  return ViolatesOrder(prev, next) || IsSequenceGap(prev, next);
}

/// [durability]: after crash recovery, every acknowledged publication still
/// within the retention window must be present in the recovered cache(s). A
/// single missing publication is a broken promise — the ack told the
/// publisher its message was safe.
[[nodiscard]] constexpr bool ViolatesDurability(std::size_t missingAcked) noexcept {
  return missingAcked > 0;
}

// ---------------------------------------------------------------------------
// Report formatting (shared so sim messages survive the extraction unchanged)
// ---------------------------------------------------------------------------

[[nodiscard]] inline std::string FormatPos(StreamPos pos) {
  return std::to_string(pos.epoch) + ":" + std::to_string(pos.seq);
}

[[nodiscard]] inline std::string FormatPubId(const PublicationId& id) {
  return std::to_string(id.clientHash % 99991) + "#" + std::to_string(id.counter);
}

/// "[order] <stream>: pos <next> delivered after <prev>"
[[nodiscard]] inline std::string FormatOrderViolation(const std::string& stream,
                                                      StreamPos prev,
                                                      StreamPos next) {
  return "[order] " + stream + ": pos " + FormatPos(next) +
         " delivered after " + FormatPos(prev);
}

/// "[dup] <stream>: publication <id> delivered twice"
[[nodiscard]] inline std::string FormatDuplicateViolation(
    const std::string& stream, const PublicationId& id) {
  return "[dup] " + stream + ": publication " + FormatPubId(id) +
         " delivered twice";
}

/// "[backpressure] <subject> buffered <n> bytes toward one client, over the
///  <hard>-byte hard watermark"
[[nodiscard]] inline std::string FormatBackpressureViolation(
    const std::string& subject, std::size_t pendingBytes,
    std::size_t hardWatermark) {
  return "[backpressure] " + subject + " buffered " +
         std::to_string(pendingBytes) + " bytes toward one client, over the " +
         std::to_string(hardWatermark) + "-byte hard watermark";
}

/// "[gap] <stream>: seq jumped <prev> -> <next> (<missed> missed)"
[[nodiscard]] inline std::string FormatGapViolation(const std::string& stream,
                                                    StreamPos prev,
                                                    StreamPos next) {
  return "[gap] " + stream + ": seq jumped " + FormatPos(prev) + " -> " +
         FormatPos(next) + " (" + std::to_string(next.seq - prev.seq - 1) +
         " missed)";
}

/// "[metrics] counter <series> regressed <prev> -> <cur>"
[[nodiscard]] inline std::string FormatCounterRegression(
    const std::string& series, double previous, double current) {
  return "[metrics] counter " + series + " regressed " +
         std::to_string(previous) + " -> " + std::to_string(current);
}

/// "[rebalance] <stream>: hand-off resumed at <next> after <prev>"
[[nodiscard]] inline std::string FormatRebalanceViolation(
    const std::string& stream, StreamPos prev, StreamPos next) {
  return "[rebalance] " + stream + ": hand-off resumed at " + FormatPos(next) +
         " after " + FormatPos(prev);
}

/// "[durability] <subject>: <n> acked publication(s) missing after recovery"
[[nodiscard]] inline std::string FormatDurabilityViolation(
    const std::string& subject, std::size_t missingAcked) {
  return "[durability] " + subject + ": " + std::to_string(missingAcked) +
         " acked publication(s) missing after recovery";
}

}  // namespace md::verify
