#include "verify/monitor.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"

namespace md::verify {

namespace {

// Fixed accounting constants (bytes). Chosen at or above the real footprint
// of an Entry + its index slot on 64-bit platforms, and deliberately not
// sizeof-derived so tracked-bytes gauges are identical across toolchains —
// the exposition golden pins them.
constexpr std::size_t kEntryBaseCost = 192;   // Entry fields + list node
constexpr std::size_t kIndexSlotCost = 64;    // unordered_map bucket + node
constexpr std::size_t kRingSlotCost = 32;     // RingSlot, padded

std::string SessionStreamName(std::uint64_t sessionKey, std::string_view topic) {
  return "session " + std::to_string(sessionKey) + "/" + std::string(topic);
}

std::string WithScope(const MonitorConfig& cfg, std::string labels) {
  if (cfg.scope.empty()) return labels;
  if (!labels.empty()) labels += ',';
  labels += "server=\"" + cfg.scope + "\"";
  return labels;
}

}  // namespace

Monitor::Monitor(obs::MetricsRegistry& registry, MonitorConfig cfg)
    : cfg_(std::move(cfg)),
      events_(registry.GetCounter("md_monitor_events_total",
                                  "Observations fed to the runtime monitor",
                                  WithScope(cfg_, ""))),
      sampledOut_(registry.GetCounter(
          "md_monitor_sampled_out_total",
          "Delivery observations skipped by stream sampling",
          WithScope(cfg_, ""))),
      evictions_(registry.GetCounter(
          "md_monitor_evictions_total",
          "Tracked streams evicted to stay inside the byte budget",
          WithScope(cfg_, ""))),
      injected_(registry.GetCounter(
          "md_monitor_injected_total",
          "Deliberate one-shot violations applied by the injection hook",
          WithScope(cfg_, ""))),
      reportsDropped_(registry.GetCounter(
          "md_monitor_reports_dropped_total",
          "Violation reports discarded past the report buffer cap",
          WithScope(cfg_, ""))),
      trackedStreams_(registry.GetGauge("md_monitor_tracked_streams",
                                        "Streams with live monitor state",
                                        WithScope(cfg_, ""))),
      trackedBytes_(registry.GetGauge(
          "md_monitor_tracked_bytes",
          "Approximate bytes of tracked-stream state (bounded by the budget)",
          WithScope(cfg_, ""))) {
  if (cfg_.sampleEvery == 0) cfg_.sampleEvery = 1;
  if (cfg_.recentIds == 0) cfg_.recentIds = 1;
  shardBudget_ = std::max<std::size_t>(cfg_.byteBudget / kShards, 1);
  // Pre-register every kind so the exposition schema is complete from the
  // first scrape, violations or not.
  for (std::size_t k = 0; k < kViolationKindCount; ++k) {
    violations_[k] = &registry.GetCounter(
        "md_invariant_violations_total",
        "Delivery-invariant violations flagged by the runtime monitor",
        WithScope(cfg_, std::string("kind=\"") +
                            ViolationKindName(static_cast<ViolationKind>(k)) +
                            "\""));
  }
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    stageEvents_[s] = &registry.GetCounter(
        "md_monitor_stage_events_total",
        "Tracer pipeline stage events seen by the runtime monitor",
        WithScope(cfg_, std::string("stage=\"") +
                            obs::StageName(static_cast<obs::Stage>(s)) + "\""));
  }
}

std::uint64_t Monitor::StreamKey(std::uint64_t sessionKey,
                                 std::string_view topic) noexcept {
  return MixU64(sessionKey ^ (Fnv1a64(topic) * 0x9E3779B97F4A7C15ULL));
}

std::size_t Monitor::EntryCost(std::string_view topic) const noexcept {
  return kEntryBaseCost + kIndexSlotCost + topic.size() +
         cfg_.recentIds * kRingSlotCost;
}

void Monitor::OnDelivery(std::uint64_t sessionKey, std::string_view topic,
                         StreamPos pos, const PublicationId& id) {
  events_.Inc();
  if (cfg_.sampleEvery > 1 && MixU64(sessionKey) % cfg_.sampleEvery != 0) {
    sampledOut_.Inc();
    return;
  }
  const std::uint64_t key = StreamKey(sessionKey, topic);
  Shard& shard = shards_[key % kShards];
  std::lock_guard lock(shard.mu);
  Entry& e = TouchLocked(shard, key, sessionKey, topic);

  // Injection mutates only the *observed* event; `e` is always advanced with
  // the original below, so an injected fault fires exactly once.
  StreamPos seenPos = pos;
  PublicationId seenId = id;
  bool syntheticBoundary = false;
  if (e.has && armedMask_.load(std::memory_order_relaxed) != 0) {
    if (TakeInjection(ViolationKind::kDuplicate)) {
      seenPos = e.last;
      seenId = e.lastId;
    } else if (TakeInjection(ViolationKind::kOrder)) {
      seenPos = e.last;          // not after its predecessor
      seenId.clientHash ^= 1;    // ...but not a replay either
    } else if (TakeInjection(ViolationKind::kGap)) {
      seenPos.epoch = e.last.epoch;
      seenPos.seq = e.last.seq + 5;
    } else if (TakeInjection(ViolationKind::kRebalance)) {
      // A hole at a (synthesized) ownership boundary: the new owner resumed
      // past messages the old owner had already sequenced.
      seenPos.epoch = e.last.epoch;
      seenPos.seq = e.last.seq + 3;
      seenId.clientHash ^= 1;
      syntheticBoundary = true;
    }
  }

  if (e.has) {
    const bool boundary = e.handoff || syntheticBoundary;
    if (boundary) {
      // The ownership-change rule subsumes order/gap/duplicate at the
      // boundary: any discontinuity here is a hand-off bug, flagged once.
      if (InRing(e, seenPos, seenId) ||
          ViolatesRebalanceContinuity(e.last, seenPos)) {
        Report(ViolationKind::kRebalance,
               FormatRebalanceViolation(SessionStreamName(sessionKey, topic),
                                        e.last, seenPos));
      }
    } else if (InRing(e, seenPos, seenId)) {
      Report(ViolationKind::kDuplicate,
             "[duplicate] " + SessionStreamName(sessionKey, topic) +
                 ": publication " + FormatPubId(seenId) + " re-emitted at " +
                 FormatPos(seenPos));
    } else if (ViolatesOrder(e.last, seenPos)) {
      Report(ViolationKind::kOrder,
             FormatOrderViolation(SessionStreamName(sessionKey, topic), e.last,
                                  seenPos));
    } else if (IsSequenceGap(e.last, seenPos)) {
      Report(ViolationKind::kGap,
             FormatGapViolation(SessionStreamName(sessionKey, topic), e.last,
                                seenPos));
    }
  }

  e.has = true;
  e.handoff = false;
  e.last = pos;
  e.lastId = id;
  PushRing(e, pos, id);
}

void Monitor::OnHandoffResume(std::uint64_t sessionKey, std::string_view topic,
                              StreamPos from) {
  events_.Inc();
  if (cfg_.sampleEvery > 1 && MixU64(sessionKey) % cfg_.sampleEvery != 0) {
    sampledOut_.Inc();
    return;
  }
  const std::uint64_t key = StreamKey(sessionKey, topic);
  Shard& shard = shards_[key % kShards];
  std::lock_guard lock(shard.mu);
  Entry& e = TouchLocked(shard, key, sessionKey, topic);
  // The transferred cursor is the authoritative boundary position — even for
  // a stream the monitor already tracked (old state belonged to the previous
  // owner's emission order).
  e.has = true;
  e.handoff = true;
  e.last = from;
}

void Monitor::OnBackpressure(std::uint64_t sessionKey, std::size_t pendingBytes,
                             std::size_t hardWatermark) {
  events_.Inc();
  std::size_t seen = pendingBytes;
  if (armedMask_.load(std::memory_order_relaxed) != 0 &&
      TakeInjection(ViolationKind::kBackpressure)) {
    seen = hardWatermark + 1 + pendingBytes;
  }
  if (ExceedsHardWatermark(seen, hardWatermark)) {
    Report(ViolationKind::kBackpressure,
           FormatBackpressureViolation(
               "session " + std::to_string(sessionKey), seen, hardWatermark));
  }
}

void Monitor::OnRecoveryAudit(const std::string& subject,
                              std::size_t missingAcked) {
  events_.Inc();
  std::size_t seen = missingAcked;
  if (armedMask_.load(std::memory_order_relaxed) != 0 &&
      TakeInjection(ViolationKind::kDurability)) {
    seen = missingAcked + 1;
  }
  if (ViolatesDurability(seen)) {
    Report(ViolationKind::kDurability, FormatDurabilityViolation(subject, seen));
  }
}

void Monitor::OnCounterSample(std::string_view series, double value) {
  events_.Inc();
  std::lock_guard lock(countersMu_);
  const auto it = counterLast_.find(series);
  if (it != counterLast_.end()) {
    double seen = value;
    if (armedMask_.load(std::memory_order_relaxed) != 0 &&
        TakeInjection(ViolationKind::kMetrics)) {
      seen = it->second - 1;
    }
    if (RegressedCounter(it->second, seen)) {
      Report(ViolationKind::kMetrics,
             FormatCounterRegression(it->first, it->second, seen));
    }
    it->second = value;  // the real sample, injected or not
    return;
  }
  // Bound the series table: a scrape target's schema is small, but a
  // misbehaving feed must not grow monitor state without limit.
  if (counterLast_.size() < 8192) counterLast_.emplace(series, value);
}

void Monitor::OnMetricsSnapshot(const obs::MetricsSnapshot& snapshot) {
  for (const auto& family : snapshot.families) {
    if (family.kind != obs::MetricKind::kCounter) continue;
    for (const auto& sample : family.samples) {
      OnCounterSample(family.name + "{" + sample.labels + "}", sample.value);
    }
  }
}

void Monitor::OnStage(const obs::TraceKey& /*key*/, obs::Stage stage) {
  const auto s = static_cast<std::size_t>(stage);
  if (s < obs::kStageCount) stageEvents_[s]->Inc();
}

void Monitor::Forget(std::uint64_t sessionKey, std::string_view topic) {
  const std::uint64_t key = StreamKey(sessionKey, topic);
  Shard& shard = shards_[key % kShards];
  std::lock_guard lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->cost;
  trackedBytes_.Add(-static_cast<std::int64_t>(it->second->cost));
  trackedStreams_.Add(-1);
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void Monitor::InjectFault(ViolationKind kind) {
  armedMask_.fetch_or(1u << static_cast<std::uint32_t>(kind),
                      std::memory_order_relaxed);
}

std::vector<Violation> Monitor::Reports() const {
  std::lock_guard lock(reportsMu_);
  return reports_;
}

std::uint64_t Monitor::ViolationCount() const noexcept {
  return totalViolations_.load(std::memory_order_relaxed);
}

std::uint64_t Monitor::ViolationCount(ViolationKind kind) const {
  return violations_[static_cast<std::size_t>(kind)]->Value();
}

std::size_t Monitor::TrackedStreams() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

std::size_t Monitor::TrackedBytes() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.bytes;
  }
  return n;
}

std::uint64_t Monitor::Evictions() const { return evictions_.Value(); }

Monitor::Entry& Monitor::TouchLocked(Shard& shard, std::uint64_t key,
                                     std::uint64_t sessionKey,
                                     std::string_view topic) {
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return *it->second;
  }
  const std::size_t cost = EntryCost(topic);
  while (shard.bytes + cost > shardBudget_ && !shard.lru.empty()) {
    EvictOldestLocked(shard);
  }
  shard.lru.emplace_front();
  Entry& e = shard.lru.front();
  e.key = key;
  e.session = sessionKey;
  e.topic.assign(topic);
  e.cost = cost;
  e.ring.resize(cfg_.recentIds);
  shard.index[key] = shard.lru.begin();
  shard.bytes += cost;
  trackedBytes_.Add(static_cast<std::int64_t>(cost));
  trackedStreams_.Add(1);
  return e;
}

void Monitor::EvictOldestLocked(Shard& shard) {
  const Entry& victim = shard.lru.back();
  shard.bytes -= victim.cost;
  trackedBytes_.Add(-static_cast<std::int64_t>(victim.cost));
  trackedStreams_.Add(-1);
  evictions_.Inc();
  shard.index.erase(victim.key);
  shard.lru.pop_back();
}

bool Monitor::InRing(const Entry& e, StreamPos pos,
                     const PublicationId& id) const noexcept {
  for (std::size_t i = 0; i < e.ringSize; ++i) {
    const RingSlot& slot = e.ring[i];
    if (slot.pos == pos && slot.id == id) return true;
  }
  return false;
}

void Monitor::PushRing(Entry& e, StreamPos pos, const PublicationId& id) {
  if (e.ring.empty()) return;
  e.ring[e.ringNext] = {pos, id};
  e.ringNext = (e.ringNext + 1) % e.ring.size();
  e.ringSize = std::min(e.ringSize + 1, e.ring.size());
}

bool Monitor::TakeInjection(ViolationKind kind) {
  const std::uint32_t bit = 1u << static_cast<std::uint32_t>(kind);
  std::uint32_t cur = armedMask_.load(std::memory_order_relaxed);
  while ((cur & bit) != 0) {
    if (armedMask_.compare_exchange_weak(cur, cur & ~bit,
                                         std::memory_order_relaxed)) {
      injected_.Inc();
      return true;
    }
  }
  return false;
}

void Monitor::Report(ViolationKind kind, std::string detail) {
  violations_[static_cast<std::size_t>(kind)]->Inc();
  totalViolations_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(reportsMu_);
  if (reports_.size() >= cfg_.maxReports) {
    reportsDropped_.Inc();
    return;
  }
  reports_.push_back({kind, std::move(detail)});
}

}  // namespace md::verify
