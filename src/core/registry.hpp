// Subscription registry: topic -> subscribers and client -> topics.
//
// Sharded by topic hash so concurrent Workers touch disjoint locks, and
// copy-on-write on the read path: every topic keeps an immutable, shared
// snapshot of its subscriber set that the fan-out path grabs with a brief
// lock + shared_ptr copy. Mutations (subscribe/unsubscribe/drop) invalidate
// the snapshot; the next reader rebuilds it once, so a publish-dominated
// workload pays O(1) per publish regardless of subscriber count, while a
// churn burst costs one O(N) rebuild for the whole burst instead of one
// O(N) set copy per publish.
//
// Client ids are opaque 64-bit handles assigned by the server (connection
// identities), not the application-level client-id strings.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace md::core {

using ClientHandle = std::uint64_t;

/// Immutable, shared view of one topic's subscribers (ascending handle
/// order). Holders may read it lock-free for as long as they keep the
/// shared_ptr; it is never mutated after publication.
using SubscriberSnapshot = std::shared_ptr<const std::vector<ClientHandle>>;

class SubscriptionRegistry {
 public:
  explicit SubscriptionRegistry(std::uint32_t shardCount = 64)
      : shards_(shardCount) {}

  SubscriptionRegistry(const SubscriptionRegistry&) = delete;
  SubscriptionRegistry& operator=(const SubscriptionRegistry&) = delete;

  /// Returns true if this is a new (topic, client) pair.
  bool Subscribe(const std::string& topic, ClientHandle client);
  bool Unsubscribe(const std::string& topic, ClientHandle client);

  /// Removes every subscription of `client`; returns the topics it held.
  std::vector<std::string> DropClient(ClientHandle client);

  /// Freezes or thaws every subscription of `client`. A frozen client keeps
  /// its memberships and resume state but is excluded from fan-out snapshots
  /// — the session-drain primitive of a partition hand-off (DESIGN.md §12):
  /// freeze, let in-flight bytes drain, transfer the cursor, redirect.
  /// Returns the topics affected (empty if the client holds none).
  std::vector<std::string> SetFrozen(ClientHandle client, bool frozen);

  /// True if `client` is currently frozen on `topic`.
  [[nodiscard]] bool IsFrozen(const std::string& topic, ClientHandle client) const;

  /// The hot fan-out read: the topic's current subscriber snapshot, or
  /// nullptr when the topic has no subscribers. The lock is held only for
  /// the shared_ptr copy (plus a one-off rebuild after churn).
  [[nodiscard]] SubscriberSnapshot Snapshot(const std::string& topic) const;

  /// Snapshot of subscribers for a topic as a fresh vector (copies the CoW
  /// snapshot; prefer Snapshot() on hot paths).
  [[nodiscard]] std::vector<ClientHandle> SubscribersOf(const std::string& topic) const;

  /// Visits subscribers of the topic's current snapshot. The shard lock is
  /// NOT held during the visit (the snapshot is immutable), so `fn` may
  /// re-enter the registry.
  void ForEachSubscriber(const std::string& topic,
                         const std::function<void(ClientHandle)>& fn) const;

  [[nodiscard]] std::size_t SubscriberCount(const std::string& topic) const;
  [[nodiscard]] std::vector<std::string> TopicsOf(ClientHandle client) const;
  [[nodiscard]] std::size_t TotalSubscriptions() const;

 private:
  struct TopicEntry {
    std::set<ClientHandle> members;  // mutation-side source of truth
    /// Members excluded from snapshots while a hand-off drains them
    /// (always a subset of `members`).
    std::set<ClientHandle> frozen;
    /// Cached immutable view; nullptr after a mutation until the next read
    /// rebuilds it (lazily, so a churn burst invalidates instead of
    /// rebuilding N times).
    mutable SubscriberSnapshot snapshot;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, TopicEntry> byTopic;
  };

  [[nodiscard]] Shard& ShardFor(const std::string& topic) {
    return shards_[Fnv1a64(topic) % shards_.size()];
  }
  [[nodiscard]] const Shard& ShardFor(const std::string& topic) const {
    return shards_[Fnv1a64(topic) % shards_.size()];
  }

  /// Returns the entry's snapshot, rebuilding it if a mutation invalidated
  /// it. Caller must hold the shard mutex.
  static const SubscriberSnapshot& SnapshotLocked(const TopicEntry& entry);

  std::vector<Shard> shards_;

  // Reverse index, separately locked (subscribe/drop only, not fan-out).
  mutable std::mutex clientsMutex_;
  std::map<ClientHandle, std::set<std::string>> byClient_;
};

}  // namespace md::core
