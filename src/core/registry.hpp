// Subscription registry: topic -> subscribers and client -> topics.
//
// Sharded by topic so concurrent Workers touch disjoint locks, and
// copy-on-write on the read path: every topic keeps an immutable, shared
// snapshot of its subscriber set that the fan-out path grabs with a brief
// lock + shared_ptr copy. Mutations (subscribe/unsubscribe/drop) invalidate
// the snapshot; the next reader rebuilds it once, so a publish-dominated
// workload pays O(1) per publish regardless of subscriber count, while a
// churn burst costs one O(N) rebuild for the whole burst instead of one
// O(N) set copy per publish.
//
// Footprint (DESIGN.md §15): topics are interned to dense u32 ids at the
// subscribe boundary, so all internal state is id-keyed — FlatMap shards
// instead of std::map<std::string,...>, sorted SmallVectors instead of
// std::set nodes, and the per-client reverse index stores 4-byte ids. The
// public API stays string-based (callers and the wire never see ids), and
// read-only paths use TopicTable::Find so publishes to unknown topics never
// grow the intern table.
//
// Client ids are opaque 64-bit handles assigned by the server (connection
// identities), not the application-level client-id strings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/hash.hpp"
#include "common/small_vector.hpp"
#include "common/topic_intern.hpp"

namespace md::core {

using ClientHandle = std::uint64_t;

/// Immutable, shared view of one topic's subscribers (ascending handle
/// order). Holders may read it lock-free for as long as they keep the
/// shared_ptr; it is never mutated after publication.
using SubscriberSnapshot = std::shared_ptr<const std::vector<ClientHandle>>;

/// Exact byte accounting of the registry's id-keyed state, summed for the
/// md_core_bytes_per_session gauge and the bench_c10m budget gate.
struct RegistryFootprint {
  std::size_t topicEntries = 0;
  std::size_t clientEntries = 0;
  std::size_t bytes = 0;
};

class SubscriptionRegistry {
 public:
  explicit SubscriptionRegistry(std::uint32_t shardCount = 64)
      : shards_(shardCount) {}

  SubscriptionRegistry(const SubscriptionRegistry&) = delete;
  SubscriptionRegistry& operator=(const SubscriptionRegistry&) = delete;

  /// Returns true if this is a new (topic, client) pair.
  bool Subscribe(const std::string& topic, ClientHandle client);
  bool Unsubscribe(const std::string& topic, ClientHandle client);

  /// Removes every subscription of `client`; returns the topics it held.
  /// Purges the reverse-index entry and any emptied TopicEntry so churn
  /// leaves no residue (asserted by the registry churn test).
  std::vector<std::string> DropClient(ClientHandle client);

  /// Freezes or thaws every subscription of `client`. A frozen client keeps
  /// its memberships and resume state but is excluded from fan-out snapshots
  /// — the session-drain primitive of a partition hand-off (DESIGN.md §12):
  /// freeze, let in-flight bytes drain, transfer the cursor, redirect.
  /// Returns the topics affected (empty if the client holds none).
  std::vector<std::string> SetFrozen(ClientHandle client, bool frozen);

  /// True if `client` is currently frozen on `topic`.
  [[nodiscard]] bool IsFrozen(const std::string& topic, ClientHandle client) const;

  /// The hot fan-out read: the topic's current subscriber snapshot, or
  /// nullptr when the topic has no subscribers. The lock is held only for
  /// the shared_ptr copy (plus a one-off rebuild after churn).
  [[nodiscard]] SubscriberSnapshot Snapshot(const std::string& topic) const;

  /// Snapshot of subscribers for a topic as a fresh vector (copies the CoW
  /// snapshot; prefer Snapshot() on hot paths).
  [[nodiscard]] std::vector<ClientHandle> SubscribersOf(const std::string& topic) const;

  /// Visits subscribers of the topic's current snapshot. The shard lock is
  /// NOT held during the visit (the snapshot is immutable), so `fn` may
  /// re-enter the registry.
  void ForEachSubscriber(const std::string& topic,
                         const std::function<void(ClientHandle)>& fn) const;

  [[nodiscard]] std::size_t SubscriberCount(const std::string& topic) const;
  [[nodiscard]] std::vector<std::string> TopicsOf(ClientHandle client) const;
  [[nodiscard]] std::size_t TotalSubscriptions() const;

  /// Walks every shard and the reverse index, summing bytes actually held
  /// (FlatMap arrays + SmallVector spill). O(topics + clients); intended
  /// for metrics scrapes and the footprint bench, not hot paths.
  [[nodiscard]] RegistryFootprint Footprint() const;

 private:
  struct TopicEntry {
    /// Mutation-side source of truth, ascending handle order. Inline
    /// capacity 2: the C10M workload is one subscriber per topic.
    md::SmallVector<ClientHandle, 2> members;
    /// Members excluded from snapshots while a hand-off drains them
    /// (always a subset of `members`).
    md::SmallVector<ClientHandle, 1> frozen;
    /// Cached immutable view; nullptr after a mutation until the next read
    /// rebuilds it (lazily, so a churn burst invalidates instead of
    /// rebuilding N times).
    mutable SubscriberSnapshot snapshot;
  };

  struct Shard {
    mutable std::mutex mutex;
    md::FlatMap<TopicId, TopicEntry> byTopic;
  };

  [[nodiscard]] Shard& ShardForId(TopicId id) {
    return shards_[MixU64(id) % shards_.size()];
  }
  [[nodiscard]] const Shard& ShardForId(TopicId id) const {
    return shards_[MixU64(id) % shards_.size()];
  }

  /// Returns the entry's snapshot, rebuilding it if a mutation invalidated
  /// it. Caller must hold the shard mutex.
  static const SubscriberSnapshot& SnapshotLocked(const TopicEntry& entry);

  /// Resolves interned ids to names and sorts lexically — preserves the
  /// ordering the old std::set<std::string> API produced.
  static std::vector<std::string> NamesOfSorted(
      const md::SmallVector<TopicId, 4>& ids);

  std::vector<Shard> shards_;

  // Reverse index, separately locked (subscribe/drop only, not fan-out).
  // Values are sorted interned-id vectors: 4 bytes per subscription.
  mutable std::mutex clientsMutex_;
  md::FlatMap<ClientHandle, md::SmallVector<TopicId, 4>> byClient_;
};

}  // namespace md::core
