// Subscription registry: topic -> subscribers and client -> topics.
//
// Sharded by topic hash so concurrent Workers touch disjoint locks on the
// fan-out path. Client ids are opaque 64-bit handles assigned by the server
// (connection identities), not the application-level client-id strings.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace md::core {

using ClientHandle = std::uint64_t;

class SubscriptionRegistry {
 public:
  explicit SubscriptionRegistry(std::uint32_t shardCount = 64)
      : shards_(shardCount) {}

  SubscriptionRegistry(const SubscriptionRegistry&) = delete;
  SubscriptionRegistry& operator=(const SubscriptionRegistry&) = delete;

  /// Returns true if this is a new (topic, client) pair.
  bool Subscribe(const std::string& topic, ClientHandle client);
  bool Unsubscribe(const std::string& topic, ClientHandle client);

  /// Removes every subscription of `client`; returns the topics it held.
  std::vector<std::string> DropClient(ClientHandle client);

  /// Snapshot of subscribers for a topic (copy: fan-out iterates lock-free).
  [[nodiscard]] std::vector<ClientHandle> SubscribersOf(const std::string& topic) const;

  /// Visits subscribers without copying (lock held during visit — keep `fn`
  /// cheap; used on the hot fan-out path).
  void ForEachSubscriber(const std::string& topic,
                         const std::function<void(ClientHandle)>& fn) const;

  [[nodiscard]] std::size_t SubscriberCount(const std::string& topic) const;
  [[nodiscard]] std::vector<std::string> TopicsOf(ClientHandle client) const;
  [[nodiscard]] std::size_t TotalSubscriptions() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::set<ClientHandle>> byTopic;
  };

  [[nodiscard]] Shard& ShardFor(const std::string& topic) {
    return shards_[Fnv1a64(topic) % shards_.size()];
  }
  [[nodiscard]] const Shard& ShardFor(const std::string& topic) const {
    return shards_[Fnv1a64(topic) % shards_.size()];
  }

  std::vector<Shard> shards_;

  // Reverse index, separately locked (subscribe/drop only, not fan-out).
  mutable std::mutex clientsMutex_;
  std::map<ClientHandle, std::set<std::string>> byClient_;
};

}  // namespace md::core
