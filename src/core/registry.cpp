#include "core/registry.hpp"

#include <algorithm>

namespace md::core {

namespace {

TopicTable& Topics() { return TopicTable::Default(); }

}  // namespace

bool SubscriptionRegistry::Subscribe(const std::string& topic, ClientHandle client) {
  const TopicId id = Topics().Intern(topic);
  if (id == kInvalidTopicId) return false;  // intern table full
  bool inserted = false;
  {
    Shard& shard = ShardForId(id);
    std::lock_guard lock(shard.mutex);
    TopicEntry& entry = shard.byTopic[id];
    inserted = entry.members.InsertSorted(client);
    if (inserted) entry.snapshot.reset();  // invalidate; rebuilt on next read
  }
  if (inserted) {
    std::lock_guard lock(clientsMutex_);
    byClient_[client].InsertSorted(id);
  }
  return inserted;
}

bool SubscriptionRegistry::Unsubscribe(const std::string& topic, ClientHandle client) {
  const TopicId id = Topics().Find(topic);
  if (id == kInvalidTopicId) return false;  // never subscribed by anyone
  bool erased = false;
  {
    Shard& shard = ShardForId(id);
    std::lock_guard lock(shard.mutex);
    if (TopicEntry* entry = shard.byTopic.Find(id)) {
      erased = entry->members.EraseSorted(client);
      if (erased) {
        entry->frozen.EraseSorted(client);
        entry->snapshot.reset();
      }
      if (entry->members.empty()) shard.byTopic.Erase(id);
    }
  }
  if (erased) {
    std::lock_guard lock(clientsMutex_);
    if (auto* topics = byClient_.Find(client)) {
      topics->EraseSorted(id);
      if (topics->empty()) byClient_.Erase(client);
    }
  }
  return erased;
}

std::vector<std::string> SubscriptionRegistry::DropClient(ClientHandle client) {
  md::SmallVector<TopicId, 4> ids;
  {
    std::lock_guard lock(clientsMutex_);
    auto* topics = byClient_.Find(client);
    if (topics == nullptr) return {};
    ids = std::move(*topics);
    byClient_.Erase(client);  // purge the reverse-index back-reference
  }
  for (const TopicId id : ids) {
    Shard& shard = ShardForId(id);
    std::lock_guard lock(shard.mutex);
    if (TopicEntry* entry = shard.byTopic.Find(id)) {
      if (entry->members.EraseSorted(client)) {
        entry->frozen.EraseSorted(client);
        entry->snapshot.reset();
      }
      // Erase emptied entries so churned topics do not accumulate.
      if (entry->members.empty()) shard.byTopic.Erase(id);
    }
  }
  return NamesOfSorted(ids);
}

std::vector<std::string> SubscriptionRegistry::SetFrozen(ClientHandle client,
                                                         bool frozen) {
  md::SmallVector<TopicId, 4> ids;
  {
    std::lock_guard lock(clientsMutex_);
    if (const auto* topics = byClient_.Find(client)) ids = *topics;
  }
  for (const TopicId id : ids) {
    Shard& shard = ShardForId(id);
    std::lock_guard lock(shard.mutex);
    TopicEntry* entry = shard.byTopic.Find(id);
    if (entry == nullptr || !entry->members.ContainsSorted(client)) continue;
    const bool changed = frozen ? entry->frozen.InsertSorted(client)
                                : entry->frozen.EraseSorted(client);
    if (changed) entry->snapshot.reset();
  }
  return NamesOfSorted(ids);
}

bool SubscriptionRegistry::IsFrozen(const std::string& topic,
                                    ClientHandle client) const {
  const TopicId id = Topics().Find(topic);
  if (id == kInvalidTopicId) return false;
  const Shard& shard = ShardForId(id);
  std::lock_guard lock(shard.mutex);
  const TopicEntry* entry = shard.byTopic.Find(id);
  return entry != nullptr && entry->frozen.ContainsSorted(client);
}

const SubscriberSnapshot& SubscriptionRegistry::SnapshotLocked(
    const TopicEntry& entry) {
  if (!entry.snapshot) {
    if (entry.frozen.empty()) {
      entry.snapshot = std::make_shared<const std::vector<ClientHandle>>(
          entry.members.begin(), entry.members.end());
    } else {
      auto visible = std::make_shared<std::vector<ClientHandle>>();
      visible->reserve(entry.members.size());
      for (const ClientHandle member : entry.members) {
        if (!entry.frozen.ContainsSorted(member)) visible->push_back(member);
      }
      entry.snapshot = std::move(visible);
    }
  }
  return entry.snapshot;
}

SubscriberSnapshot SubscriptionRegistry::Snapshot(const std::string& topic) const {
  const TopicId id = Topics().Find(topic);
  if (id == kInvalidTopicId) return nullptr;
  const Shard& shard = ShardForId(id);
  std::lock_guard lock(shard.mutex);
  const TopicEntry* entry = shard.byTopic.Find(id);
  if (entry == nullptr) return nullptr;
  return SnapshotLocked(*entry);
}

std::vector<ClientHandle> SubscriptionRegistry::SubscribersOf(
    const std::string& topic) const {
  const SubscriberSnapshot snap = Snapshot(topic);
  if (!snap) return {};
  return *snap;
}

void SubscriptionRegistry::ForEachSubscriber(
    const std::string& topic, const std::function<void(ClientHandle)>& fn) const {
  const SubscriberSnapshot snap = Snapshot(topic);
  if (!snap) return;
  for (const ClientHandle client : *snap) fn(client);
}

std::size_t SubscriptionRegistry::SubscriberCount(const std::string& topic) const {
  const TopicId id = Topics().Find(topic);
  if (id == kInvalidTopicId) return 0;
  const Shard& shard = ShardForId(id);
  std::lock_guard lock(shard.mutex);
  const TopicEntry* entry = shard.byTopic.Find(id);
  return entry == nullptr ? 0 : entry->members.size();
}

std::vector<std::string> SubscriptionRegistry::TopicsOf(ClientHandle client) const {
  std::lock_guard lock(clientsMutex_);
  const auto* topics = byClient_.Find(client);
  if (topics == nullptr) return {};
  return NamesOfSorted(*topics);
}

std::size_t SubscriptionRegistry::TotalSubscriptions() const {
  std::lock_guard lock(clientsMutex_);
  std::size_t total = 0;
  byClient_.ForEach([&](ClientHandle, const md::SmallVector<TopicId, 4>& t) {
    total += t.size();
  });
  return total;
}

RegistryFootprint SubscriptionRegistry::Footprint() const {
  RegistryFootprint fp;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    fp.topicEntries += shard.byTopic.size();
    fp.bytes += shard.byTopic.MemoryBytes();
    shard.byTopic.ForEach([&](TopicId, const TopicEntry& entry) {
      fp.bytes += entry.members.HeapBytes() + entry.frozen.HeapBytes();
      if (entry.snapshot) {
        fp.bytes += entry.snapshot->capacity() * sizeof(ClientHandle) +
                    sizeof(std::vector<ClientHandle>);
      }
    });
  }
  {
    std::lock_guard lock(clientsMutex_);
    fp.clientEntries = byClient_.size();
    fp.bytes += byClient_.MemoryBytes();
    byClient_.ForEach([&](ClientHandle, const md::SmallVector<TopicId, 4>& t) {
      fp.bytes += t.HeapBytes();
    });
  }
  return fp;
}

std::vector<std::string> SubscriptionRegistry::NamesOfSorted(
    const md::SmallVector<TopicId, 4>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (const TopicId id : ids) {
    names.emplace_back(Topics().NameOf(id));
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace md::core
