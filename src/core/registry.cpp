#include "core/registry.hpp"

namespace md::core {

bool SubscriptionRegistry::Subscribe(const std::string& topic, ClientHandle client) {
  bool inserted = false;
  {
    Shard& shard = ShardFor(topic);
    std::lock_guard lock(shard.mutex);
    TopicEntry& entry = shard.byTopic[topic];
    inserted = entry.members.insert(client).second;
    if (inserted) entry.snapshot.reset();  // invalidate; rebuilt on next read
  }
  if (inserted) {
    std::lock_guard lock(clientsMutex_);
    byClient_[client].insert(topic);
  }
  return inserted;
}

bool SubscriptionRegistry::Unsubscribe(const std::string& topic, ClientHandle client) {
  bool erased = false;
  {
    Shard& shard = ShardFor(topic);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.byTopic.find(topic);
    if (it != shard.byTopic.end()) {
      erased = it->second.members.erase(client) > 0;
      if (erased) {
        it->second.frozen.erase(client);
        it->second.snapshot.reset();
      }
      if (it->second.members.empty()) shard.byTopic.erase(it);
    }
  }
  if (erased) {
    std::lock_guard lock(clientsMutex_);
    const auto it = byClient_.find(client);
    if (it != byClient_.end()) {
      it->second.erase(topic);
      if (it->second.empty()) byClient_.erase(it);
    }
  }
  return erased;
}

std::vector<std::string> SubscriptionRegistry::DropClient(ClientHandle client) {
  std::vector<std::string> topics;
  {
    std::lock_guard lock(clientsMutex_);
    const auto it = byClient_.find(client);
    if (it == byClient_.end()) return topics;
    topics.assign(it->second.begin(), it->second.end());
    byClient_.erase(it);
  }
  for (const auto& topic : topics) {
    Shard& shard = ShardFor(topic);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.byTopic.find(topic);
    if (it != shard.byTopic.end()) {
      if (it->second.members.erase(client) > 0) {
        it->second.frozen.erase(client);
        it->second.snapshot.reset();
      }
      if (it->second.members.empty()) shard.byTopic.erase(it);
    }
  }
  return topics;
}

std::vector<std::string> SubscriptionRegistry::SetFrozen(ClientHandle client,
                                                         bool frozen) {
  const std::vector<std::string> topics = TopicsOf(client);
  for (const auto& topic : topics) {
    Shard& shard = ShardFor(topic);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.byTopic.find(topic);
    if (it == shard.byTopic.end() || !it->second.members.contains(client)) {
      continue;
    }
    const bool changed = frozen ? it->second.frozen.insert(client).second
                                : it->second.frozen.erase(client) > 0;
    if (changed) it->second.snapshot.reset();
  }
  return topics;
}

bool SubscriptionRegistry::IsFrozen(const std::string& topic,
                                    ClientHandle client) const {
  const Shard& shard = ShardFor(topic);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.byTopic.find(topic);
  return it != shard.byTopic.end() && it->second.frozen.contains(client);
}

const SubscriberSnapshot& SubscriptionRegistry::SnapshotLocked(
    const TopicEntry& entry) {
  if (!entry.snapshot) {
    if (entry.frozen.empty()) {
      entry.snapshot = std::make_shared<const std::vector<ClientHandle>>(
          entry.members.begin(), entry.members.end());
    } else {
      auto visible = std::make_shared<std::vector<ClientHandle>>();
      visible->reserve(entry.members.size());
      for (const ClientHandle member : entry.members) {
        if (!entry.frozen.contains(member)) visible->push_back(member);
      }
      entry.snapshot = std::move(visible);
    }
  }
  return entry.snapshot;
}

SubscriberSnapshot SubscriptionRegistry::Snapshot(const std::string& topic) const {
  const Shard& shard = ShardFor(topic);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.byTopic.find(topic);
  if (it == shard.byTopic.end()) return nullptr;
  return SnapshotLocked(it->second);
}

std::vector<ClientHandle> SubscriptionRegistry::SubscribersOf(
    const std::string& topic) const {
  const SubscriberSnapshot snap = Snapshot(topic);
  if (!snap) return {};
  return *snap;
}

void SubscriptionRegistry::ForEachSubscriber(
    const std::string& topic, const std::function<void(ClientHandle)>& fn) const {
  const SubscriberSnapshot snap = Snapshot(topic);
  if (!snap) return;
  for (const ClientHandle client : *snap) fn(client);
}

std::size_t SubscriptionRegistry::SubscriberCount(const std::string& topic) const {
  const Shard& shard = ShardFor(topic);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.byTopic.find(topic);
  return it == shard.byTopic.end() ? 0 : it->second.members.size();
}

std::vector<std::string> SubscriptionRegistry::TopicsOf(ClientHandle client) const {
  std::lock_guard lock(clientsMutex_);
  const auto it = byClient_.find(client);
  if (it == byClient_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::size_t SubscriptionRegistry::TotalSubscriptions() const {
  std::lock_guard lock(clientsMutex_);
  std::size_t total = 0;
  for (const auto& [client, topics] : byClient_) total += topics.size();
  return total;
}

}  // namespace md::core
