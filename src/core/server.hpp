// Single-node MigratoryData server: the vertically-scaling engine of §4.
//
// Two layers, exactly as the paper describes:
//   - I/O layer: a configurable number of IoThreads, each running its own
//     epoll loop. Every client is pinned to one IoThread for its whole
//     connection lifetime (reads and writes of that client always happen on
//     that thread — no locks on the per-connection parse state). Client
//     connections are spread across IoThreads via SO_REUSEPORT listeners.
//   - Logic layer: a configurable number of Workers, each a thread draining
//     an MPSC queue. A client is pinned to one Worker (hash of its handle).
//     Workers run the pub/sub logic: subscription registry updates, sequence
//     assignment, cache appends, matching and fan-out.
//
// IoThread -> Worker: decoded frames are enqueued on the client's Worker
// queue. Worker -> IoThread: encoded bytes are posted to the client's loop.
//
// Clients speak either the raw framed protocol or WebSocket (auto-detected
// from the first bytes). Optional batching coalesces deliveries per client.
//
// This class implements the single-server service (the Table 1 / C1M
// scenario); multi-server replication lives in src/cluster.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.hpp"
#include "obs/families.hpp"
#include "obs/trace.hpp"
#include "core/backpressure.hpp"
#include "core/batcher.hpp"
#include "core/cache.hpp"
#include "core/registry.hpp"
#include "core/sequencer.hpp"
#include "core/session.hpp"
#include "proto/codec.hpp"
#include "proto/websocket.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"
#include "verify/monitor.hpp"
#include "wal/log.hpp"

namespace md::core {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral (read back via Port())
  int ioThreads = 2;       // paper: configurable, default #CPUs
  int workers = 2;
  std::string serverId = "server-1";
  CacheConfig cache;
  /// Durable topic cache (DESIGN.md §13): a non-empty `wal.dir` logs every
  /// cache append to a segmented WAL there, and Start() replays the intact
  /// records — rebuilding the cache and re-priming the sequencer — before
  /// any listener binds.
  wal::WalConfig wal;
  bool enableBatching = false;
  BatchConfig batch;
  /// Conflation (paper §4): within each window a subscriber receives only
  /// the newest message of each of its topics.
  bool enableConflation = false;
  ConflateConfig conflate;
  /// Per-IoThread delivery batching: fan-out posts one task per IoThread
  /// carrying the shared wire bytes and that loop's target list, instead of
  /// one closure + wakeup per subscriber. Off = legacy per-subscriber posts
  /// (kept for the bench_fanout ablation).
  bool fanoutBatching = true;
  /// Zero-copy egress: deliveries queue a reference to the shared wire
  /// buffer on each subscriber connection (SendQueue + scatter-gather
  /// flush) instead of memcpy'ing into a per-session buffer. Off = legacy
  /// copying sends (the bench_fanout ablation's middle row).
  bool zeroCopyEgress = true;
  /// Which real-network event loop backend the IoThreads run. io_uring
  /// falls back to epoll (with a warning) when the kernel can't run it.
  LoopKind eventLoop = LoopKind::kEpoll;
  /// Slow-consumer handling: send-queue watermarks every client connection is
  /// held to, and what to do with a session that stays over the soft mark.
  BackpressureConfig backpressure;
  std::size_t maxFrameSize = 1 * 1024 * 1024;
  /// Metrics destination; nullptr uses the process-wide default registry.
  /// The registry must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Always-on runtime verification (DESIGN.md §11): embed a verify::Monitor
  /// fed from the fan-out, backpressure and tracer paths, exporting
  /// md_invariant_violations_total{kind=...} through this server's registry.
  bool runtimeVerify = false;
  verify::MonitorConfig verifyConfig;
  /// Debug-only: accept plain-HTTP `GET /inject?kind=...` to arm a one-shot
  /// observation fault on the embedded monitor (proves detection end to end;
  /// never enable on a production port).
  bool verifyInjectEndpoint = false;
};

struct ServerStats {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsActive = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytesOut = 0;
  std::uint64_t protocolErrors = 0;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds listeners and starts IoThread + Worker threads.
  Status Start();
  void Stop();

  [[nodiscard]] std::uint16_t Port() const noexcept { return boundPort_; }
  [[nodiscard]] ServerStats Stats() const;
  /// Recomputes md_core_bytes_per_session from slab + table accounting.
  /// Called by Stats() and /metrics scrapes; cheap (O(shards)).
  void RefreshBytesPerSession() const;
  [[nodiscard]] const Cache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The embedded runtime monitor; nullptr unless cfg.runtimeVerify.
  [[nodiscard]] verify::Monitor* monitor() noexcept { return monitor_.get(); }
  /// What the last Start() replayed from the WAL (zeros when WAL disabled).
  [[nodiscard]] const wal::RecoveryStats& walRecovery() const noexcept {
    return walRecovery_;
  }

  /// Session freeze/drain hooks for partition hand-off (DESIGN.md §12): a
  /// frozen session keeps its subscriptions and resume cursors but is
  /// excluded from fan-out snapshots, so once its connection's in-flight
  /// bytes drain the stream is quiescent and the cursor can be transferred.
  /// UnfreezeSession re-admits it (hand-off abort). Returns the topics
  /// affected. Thread-safe.
  std::vector<std::string> FreezeSession(ClientHandle client) {
    return registry_.SetFrozen(client, true);
  }
  std::vector<std::string> UnfreezeSession(ClientHandle client) {
    return registry_.SetFrozen(client, false);
  }

 private:
  // Session itself lives in core/session.hpp (slab-allocated, shared with
  // the footprint bench); the Server owns the table and the lifecycle.
  struct Job {
    SessionPtr session;
    std::optional<Frame> frame;  // nullopt => client disconnected
  };

  struct IoThread {
    std::unique_ptr<NetLoop> loop;
    ListenerPtr listener;
    std::thread thread;
  };

  struct Worker {
    MpscQueue<Job> queue{262144};
    std::thread thread;
  };

  // Called on the session's IoThread.
  void OnAccept(std::size_t ioIndex, ConnectionPtr conn);
  void OnData(const SessionPtr& session, BytesView data);
  void OnClosed(const SessionPtr& session);
  void ParseFrames(const SessionPtr& session);
  void FailSession(const SessionPtr& session, const Status& status);
  /// Answers a plain-HTTP `GET /metrics` scrape with the Prometheus text
  /// exposition, then closes (scrapes are one-shot, not upgraded sessions).
  void ServeMetrics(const SessionPtr& session);
  /// Debug endpoint (`GET /inject?kind=...`, gated on verifyInjectEndpoint):
  /// arms a one-shot observation fault on the embedded monitor.
  void ServeInject(const SessionPtr& session, std::string_view path);

  // Called on the session's Worker thread.
  void WorkerMain(std::size_t index);
  void HandleFrame(const SessionPtr& session, const Frame& frame);
  void HandlePublish(const SessionPtr& session, const PublishFrame& pub);
  void HandleSubscribe(const SessionPtr& session, const SubscribeFrame& sub);
  void DropSession(const SessionPtr& session);

  /// Batched fan-out: targets are grouped by IoThread and each loop gets ONE
  /// posted task carrying the shared wire bytes plus its target list.
  void FanOutBatched(std::vector<std::vector<SessionPtr>>&& byIo,
                     const Frame& deliver,
                     const std::shared_ptr<const Message>& sharedMsg,
                     obs::TraceKey traceKey);
  /// Legacy fan-out: one posted closure per subscriber (ablation baseline).
  void FanOutPerSubscriber(const std::vector<std::vector<SessionPtr>>& byIo,
                           const Frame& deliver,
                           const std::shared_ptr<const Message>& sharedMsg,
                           obs::TraceKey traceKey);

  // Send path (any thread -> session's IoThread).
  void SendFrame(const SessionPtr& session, const Frame& frame);
  void SendEncoded(const SessionPtr& session,
                   const std::shared_ptr<const Bytes>& wire,
                   std::optional<obs::TraceKey> trace = std::nullopt,
                   bool deliverClass = false,
                   std::shared_ptr<const Message> msgForConflate = nullptr);
  void SendDeliverConflated(const SessionPtr& session,
                            const std::shared_ptr<const Message>& msg);
  /// IoThread-side half of conflated delivery (batch tasks call it directly).
  void OfferConflatedOnLoop(const SessionPtr& session, const Message& msg);
  void FlushBatch(const SessionPtr& session);
  void FlushConflator(const SessionPtr& session);
  void WriteOut(const SessionPtr& session, BytesView wire,
                bool deliverClass = false);
  /// Zero-copy flavour: queues a reference to the shared wire buffer (unless
  /// the session batches, which coalesces copies by design, or
  /// cfg_.zeroCopyEgress is off for the ablation).
  void WriteOutShared(const SessionPtr& session,
                      const std::shared_ptr<const Bytes>& wire,
                      bool deliverClass);
  /// The one place connection->Send() is called (IoThread only). Applies the
  /// overflow policy on a kCapacity result: distinguishes soft-accepted from
  /// hard-rejected via PendingBytes(), counts metrics, and arms the eviction
  /// grace timer / drops the frame per ServerConfig::backpressure. Returns
  /// whether the bytes were accepted into the connection.
  bool SendOnLoop(const SessionPtr& session, BytesView wire, bool deliverClass);
  bool SendOnLoopShared(const SessionPtr& session,
                        const std::shared_ptr<const Bytes>& wire,
                        bool deliverClass);
  /// Common policy core of the two SendOnLoop flavours: `shared` non-null
  /// selects the refcounted connection Send.
  bool SendBytesOnLoop(const SessionPtr& session, BytesView view,
                       const std::shared_ptr<const Bytes>* shared,
                       bool deliverClass);
  /// Sends a policy close notice (WS Close 1013 or DisconnectFrame), then
  /// CloseAfterFlush() so the notice reaches clients that are still reading.
  void EvictSlowConsumer(const SessionPtr& session);

  ServerConfig cfg_;
  obs::MetricsRegistry& metrics_;
  obs::CoreMetrics m_;
  obs::TransportMetrics tm_;
  obs::SlowConsumerMetrics scm_;
  obs::WalMetrics wm_;
  obs::Tracer tracer_;
  std::unique_ptr<verify::Monitor> monitor_;
  std::unique_ptr<wal::Log> wal_;
  wal::RecoveryStats walRecovery_;
  std::thread walFlusher_;             // group-commit policy only
  std::atomic<bool> walFlusherStop_{false};
  std::atomic<bool> running_{false};
  std::uint16_t boundPort_ = 0;

  std::vector<std::unique_ptr<IoThread>> ioThreads_;
  std::vector<std::unique_ptr<Worker>> workers_;

  SubscriptionRegistry registry_;
  Cache cache_;
  Sequencer sequencer_;

  std::atomic<std::uint64_t> nextHandle_{1};

  [[nodiscard]] SessionPtr FindSession(ClientHandle handle) {
    return sessions_.Find(handle);
  }
  SessionTable sessions_;
};

}  // namespace md::core
