#include "core/server.hpp"

#include <chrono>

#include "common/logging.hpp"
#include "proto/http_stream.hpp"
#include "common/strutil.hpp"

namespace md::core {

// Session itself lives in core/session.hpp (DESIGN.md §15): slab-allocated
// via MakeSession() so the footprint bench exercises the identical struct.

namespace {

/// Encodes a frame in the session's transport flavour. Mode values mirror
/// Session::Mode (kept as a raw byte so proto stays decoupled from core).
void EncodeForMode(const Frame& frame, std::uint8_t mode, Bytes& out) {
  if (mode == 2 /*kWs*/) {
    Bytes body;
    EncodeFrame(frame, body);
    ws::EncodeWsFrame(ws::Opcode::kBinary, BytesView(body), out);
  } else if (mode == 4 /*kHttp*/) {
    Bytes body;
    EncodeFrame(frame, body);
    http::EncodeChunk(BytesView(body), out);
  } else {
    EncodeFramed(frame, out);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      metrics_(cfg_.metrics != nullptr ? *cfg_.metrics
                                       : obs::MetricsRegistry::Default()),
      m_(metrics_, obs::ServerLabel(cfg_.serverId)),
      tm_(metrics_),
      scm_(metrics_, obs::ServerLabel(cfg_.serverId)),
      wm_(metrics_, obs::ServerLabel(cfg_.serverId)),
      tracer_(metrics_, [] { return RealClock::Instance().Now(); }, "wall"),
      cache_(cfg_.cache) {
  // Pre-register the full schema so GET /metrics exposes every family from
  // the first scrape, not just the ones that have seen traffic.
  obs::RegisterStandardFamilies(metrics_);
  if (cfg_.ioThreads < 1) cfg_.ioThreads = 1;
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (!cfg_.wal.dir.empty()) {
    wal_ = std::make_unique<wal::Log>(wal::PosixEnv::Instance(), cfg_.wal, &wm_);
    cache_.AttachWal(wal_.get());
  }
  if (cfg_.runtimeVerify) {
    // The monitor's families register here, not in RegisterStandardFamilies:
    // a server without runtimeVerify keeps its exposition schema (and the
    // checked-in goldens) byte-stable.
    if (cfg_.verifyConfig.scope.empty()) cfg_.verifyConfig.scope = cfg_.serverId;
    monitor_ = std::make_unique<verify::Monitor>(metrics_, cfg_.verifyConfig);
    tracer_.SetStageSink([m = monitor_.get()](const obs::TraceKey& key,
                                              obs::Stage stage) {
      m->OnStage(key, stage);
    });
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) return Err(ErrorCode::kAlreadyExists, "running");

  // Replay the WAL before anything can publish: the cache regains its
  // history and the sequencer resumes AFTER the newest recovered position
  // per topic (re-issuing a durable position would fork the stream).
  if (wal_) {
    const TimePoint now = RealClock::Instance().Now();
    walRecovery_ = wal_->Recover(
        [this, now](Message&& msg) { cache_.InsertRecovered(msg, now); });
    if (walRecovery_.records != 0 || walRecovery_.tornTails != 0 ||
        walRecovery_.corruptSkipped != 0 || walRecovery_.badSegments != 0) {
      MD_INFO(
          "server %s WAL recovery: %llu records from %llu segments "
          "(%llu torn tails, %llu corrupt skipped, %llu bad segments)",
          cfg_.serverId.c_str(),
          static_cast<unsigned long long>(walRecovery_.records),
          static_cast<unsigned long long>(walRecovery_.segments),
          static_cast<unsigned long long>(walRecovery_.tornTails),
          static_cast<unsigned long long>(walRecovery_.corruptSkipped),
          static_cast<unsigned long long>(walRecovery_.badSegments));
    }
  }

  // The single-node server sequences every group itself at epoch 1.
  for (std::uint32_t g = 0; g < cfg_.cache.topicGroups; ++g) {
    sequencer_.BeginEpoch(g, 1);
    if (wal_) {
      for (const auto& [topic, pos] : cache_.GroupPositions(g)) {
        sequencer_.PrimeTopic(g, topic, pos);
      }
    }
  }

  if (wal_ && cfg_.wal.fsync == wal::FsyncPolicy::kGroupCommit) {
    walFlusherStop_.store(false);
    walFlusher_ = std::thread([this] {
      while (!walFlusherStop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(cfg_.wal.flushInterval));
        wal_->Flush(RealClock::Instance().Now());
      }
    });
  }

  for (int i = 0; i < cfg_.ioThreads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->loop = CreateNetLoop(cfg_.eventLoop);
    io->loop->SetMetrics(&tm_);
    auto listener = io->loop->Listen(boundPort_ != 0 ? boundPort_ : cfg_.port);
    if (!listener.ok()) {
      running_.store(false);
      return listener.status();
    }
    io->listener = std::move(*listener);
    boundPort_ = io->listener->Port();
    const std::size_t index = static_cast<std::size_t>(i);
    io->listener->SetAcceptHandler(
        [this, index](ConnectionPtr conn) { OnAccept(index, std::move(conn)); });
    ioThreads_.push_back(std::move(io));
  }
  for (auto& io : ioThreads_) {
    io->thread = std::thread([loop = io->loop.get()] { loop->Run(); });
  }

  for (int i = 0; i < cfg_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    workers_.push_back(std::move(worker));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerMain(i); });
  }

  MD_INFO("server %s listening on port %u (%d io threads, %d workers)",
          cfg_.serverId.c_str(), boundPort_, cfg_.ioThreads, cfg_.workers);
  return OkStatus();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  if (walFlusher_.joinable()) {
    walFlusherStop_.store(true);
    walFlusher_.join();
  }
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& io : ioThreads_) io->loop->Stop();
  for (auto& io : ioThreads_) {
    if (io->thread.joinable()) io->thread.join();
  }
  sessions_.Clear();
  workers_.clear();
  ioThreads_.clear();
  if (wal_) wal_->Close();  // clean shutdown: everything synced on disk
}

void Server::RefreshBytesPerSession() const {
  // Slab accounting covers sessions (allocate_shared slots), registry
  // FlatMap arrays + SmallVector spill, and cache deque blocks; the session
  // table's hash nodes and the interned-name storage are the only engine
  // state outside the arena, so they are added explicitly.
  const std::uint64_t active =
      static_cast<std::uint64_t>(std::max<std::int64_t>(m_.active.Value(), 0));
  const SlabStats slab = SlabArena::Default().Stats();
  const std::uint64_t engineBytes = slab.bytesInUse + sessions_.MemoryBytes() +
                                    TopicTable::Default().MemoryBytes();
  m_.bytesPerSession.Set(
      static_cast<std::int64_t>(engineBytes / std::max<std::uint64_t>(active, 1)));
}

ServerStats Server::Stats() const {
  RefreshBytesPerSession();
  ServerStats s;
  s.connectionsAccepted = m_.accepted.Value();
  s.connectionsActive = static_cast<std::uint64_t>(m_.active.Value());
  s.framesReceived = m_.frames.Value();
  s.published = m_.published.Value();
  s.delivered = m_.delivered.Value();
  s.bytesOut = m_.bytesOut.Value();
  s.protocolErrors = m_.protoErrors.Value();
  return s;
}

// ---------------------------------------------------------------------------
// I/O layer (runs on IoThreads)
// ---------------------------------------------------------------------------

void Server::OnAccept(std::size_t ioIndex, ConnectionPtr conn) {
  auto session = MakeSession();
  session->handle = nextHandle_.fetch_add(1);
  session->ioIndex = ioIndex;
  // Clients are balanced among Workers by a hash of their identity and stay
  // pinned for their connection lifetime (paper hashes the IP address; the
  // connection handle balances equally and is stable the same way).
  session->workerIndex = MixU64(session->handle) % workers_.size();
  session->conn = std::move(conn);
  session->loop = ioThreads_[ioIndex]->loop.get();
  session->conn->SetWatermarks(cfg_.backpressure.ToWatermarks());
  // Low-watermark recovery: the connection drained below wm.low after a
  // soft excursion — the session is healthy again (IoThread callback).
  session->conn->SetDrainedHandler(
      [this, weak = std::weak_ptr<Session>(session)] {
        auto s = weak.lock();
        if (!s || !s->overSoft) return;
        s->overSoft = false;
        scm_.sessionsOverSoft.Add(-1);
      });
  if (cfg_.enableBatching) {
    session->batcher = std::make_unique<Batcher>(
        cfg_.batch, [this, weak = std::weak_ptr<Session>(session)](BytesView data) {
          if (auto s = weak.lock()) {
            (void)SendOnLoop(s, data, /*deliverClass=*/false);
          }
        });
  }
  if (cfg_.enableConflation ||
      cfg_.backpressure.policy == OverflowPolicy::kConflate) {
    // Emits the newest message per topic at each window close (IoThread).
    // With enableConflation this is the delivery path for every session and
    // `delivered` advances per emission (suppressed duplicates never count);
    // under the kConflate overflow policy the fan-out already counted the
    // delivery when it routed the message here, so emissions must not.
    const bool countEmits = cfg_.enableConflation;
    session->conflator = std::make_unique<Conflator>(
        cfg_.conflate,
        [this, countEmits,
         weak = std::weak_ptr<Session>(session)](const Message& m) {
          auto s = weak.lock();
          if (!s || !s->open.load(std::memory_order_relaxed)) return;
          Bytes wire;
          EncodeForMode(Frame(DeliverFrame{m}),
                        static_cast<std::uint8_t>(s->CurrentMode()), wire);
          if (countEmits) m_.delivered.Inc();
          WriteOut(s, BytesView(wire), /*deliverClass=*/true);
        });
  }

  m_.accepted.Inc();
  m_.active.Add(1);
  sessions_.Insert(session);

  session->conn->SetDataHandler(
      [this, session](BytesView data) { OnData(session, data); });
  session->conn->SetCloseHandler([this, session] { OnClosed(session); });
}

void Server::OnData(const SessionPtr& session, BytesView data) {
  session->in.Append(data);
  ParseFrames(session);
}

void Server::ParseFrames(const SessionPtr& session) {
  using Mode = Session::Mode;

  // The session's IoThread is the only writer of `mode`; keep a local copy
  // and publish transitions with relaxed stores (Workers observing the mode
  // are ordered behind the frame handoff through the Worker queue).
  Mode mode = session->CurrentMode();
  const auto setMode = [&](Mode m) {
    mode = m;
    session->mode.store(m, std::memory_order_relaxed);
  };

  if (mode == Mode::kDetect) {
    if (session->in.size() < 4) return;
    const auto head = AsStringView(session->in.Peek()).substr(0, 4);
    if (head == "GET ") {
      setMode(Mode::kWsHandshake);  // WebSocket upgrade
    } else if (head == "POST") {
      setMode(Mode::kHttpHandshake);  // HTTP chunked-stream fallback
    } else {
      setMode(Mode::kRaw);
    }
  }

  if (mode == Mode::kWsHandshake) {
    // A plain-HTTP scrape of /metrics shares the "GET " prefix with the
    // WebSocket upgrade; peek the request line and intercept it before the
    // handshake parser (which requires Upgrade headers) rejects it.
    const auto text = AsStringView(session->in.Peek());
    const auto lineEnd = text.find("\r\n");
    if (lineEnd != std::string_view::npos) {
      const auto line = text.substr(0, lineEnd);  // "GET <path> HTTP/1.1"
      const auto pathStart = line.find(' ');
      const auto pathEnd = line.find(' ', pathStart + 1);
      if (pathStart != std::string_view::npos &&
          pathEnd != std::string_view::npos) {
        const auto path = line.substr(pathStart + 1, pathEnd - pathStart - 1);
        if (path == "/metrics") {
          if (text.find("\r\n\r\n") == std::string_view::npos) return;
          ServeMetrics(session);
          return;
        }
        if (cfg_.verifyInjectEndpoint && monitor_ != nullptr &&
            path.rfind("/inject", 0) == 0) {
          if (text.find("\r\n\r\n") == std::string_view::npos) return;
          ServeInject(session, path);
          return;
        }
      }
    } else if (text.size() > 8 * 1024) {
      FailSession(session, Err(ErrorCode::kProtocol, "request line too long"));
      return;
    }
    auto hs = ws::ParseClientHandshake(session->in);
    if (!hs.status.ok()) {
      FailSession(session, hs.status);
      return;
    }
    if (!hs.handshake) return;  // need more bytes
    const std::string response = ws::BuildServerHandshakeResponse(hs.handshake->key);
    (void)SendOnLoop(session, AsBytes(response), /*deliverClass=*/false);
    setMode(Mode::kWs);
  }

  if (mode == Mode::kHttpHandshake) {
    auto req = http::ParseStreamRequest(session->in);
    if (!req.status.ok()) {
      FailSession(session, req.status);
      return;
    }
    if (!req.complete) return;
    const std::string response = http::BuildStreamResponse();
    (void)SendOnLoop(session, AsBytes(response), /*deliverClass=*/false);
    setMode(Mode::kHttp);
  }

  while (session->open.load(std::memory_order_relaxed)) {
    std::optional<Frame> frame;
    if (mode == Mode::kWs) {
      auto r = ws::ExtractWsFrame(session->in, /*expectMasked=*/true, cfg_.maxFrameSize);
      if (!r.status.ok()) {
        FailSession(session, r.status);
        return;
      }
      if (!r.frame) break;
      switch (r.frame->opcode) {
        case ws::Opcode::kBinary: {
          auto decoded = DecodeFrame(BytesView(r.frame->payload));
          if (!decoded.ok()) {
            FailSession(session, decoded.status());
            return;
          }
          frame = std::move(*decoded);
          break;
        }
        case ws::Opcode::kPing: {
          // Keepalive is control-class: it bypasses the overflow policy so a
          // responsive client is never dropped for another session's backlog.
          Bytes pong;
          ws::EncodeWsFrame(ws::Opcode::kPong, BytesView(r.frame->payload), pong);
          (void)SendOnLoop(session, BytesView(pong), /*deliverClass=*/false);
          continue;
        }
        case ws::Opcode::kClose:
          session->conn->Close();
          return;
        default:
          continue;  // text/pong/continuation ignored
      }
    } else if (mode == Mode::kHttp) {
      auto r = http::ExtractChunk(session->in, cfg_.maxFrameSize);
      if (!r.status.ok()) {
        FailSession(session, r.status);
        return;
      }
      if (r.endOfStream) {
        session->conn->Close();
        return;
      }
      if (!r.payload) break;
      auto decoded = DecodeFrame(BytesView(*r.payload));
      if (!decoded.ok()) {
        FailSession(session, decoded.status());
        return;
      }
      frame = std::move(*decoded);
    } else {
      auto r = ExtractFrame(session->in, cfg_.maxFrameSize);
      if (!r.status.ok()) {
        FailSession(session, r.status);
        return;
      }
      if (!r.frame) break;
      frame = std::move(*r.frame);
    }

    m_.frames.Inc();
    Worker& worker = *workers_[session->workerIndex];
    if (!worker.queue.TryPush(Job{session, std::move(frame)}).ok()) {
      // Worker overloaded: shed this client rather than buffer unboundedly.
      FailSession(session, Err(ErrorCode::kCapacity, "worker queue full"));
      return;
    }
  }
}

void Server::ServeMetrics(const SessionPtr& session) {
  RefreshBytesPerSession();  // gauge is scrape-time derived, not event-driven
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  // Every scrape doubles as a consistency check: the monitor flags any
  // counter that went backwards since the previous scrape.
  if (monitor_) monitor_->OnMetricsSnapshot(snapshot);
  const std::string body =
      obs::RenderPrometheus(std::move(snapshot), RealClock::Instance().Now());
  std::string response =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n"
      "\r\n";
  response += body;
  (void)SendOnLoop(session, AsBytes(response), /*deliverClass=*/false);
  session->conn->CloseAfterFlush();
}

void Server::ServeInject(const SessionPtr& session, std::string_view path) {
  // "GET /inject?kind=<order|gap|duplicate|backpressure|metrics>" arms a
  // one-shot observation fault on the embedded monitor (debug builds only —
  // gated on ServerConfig::verifyInjectEndpoint).
  std::string body;
  std::string statusLine = "HTTP/1.1 200 OK";
  std::optional<verify::ViolationKind> kind;
  const auto q = path.find("kind=");
  if (q != std::string_view::npos) {
    auto value = path.substr(q + 5);
    const auto amp = value.find('&');
    if (amp != std::string_view::npos) value = value.substr(0, amp);
    kind = verify::ParseViolationKind(value);
  }
  if (kind) {
    monitor_->InjectFault(*kind);
    body = std::string("armed ") + verify::ViolationKindName(*kind) + "\n";
  } else {
    statusLine = "HTTP/1.1 400 Bad Request";
    body = "usage: /inject?kind=order|gap|duplicate|backpressure|metrics\n";
  }
  std::string response = statusLine +
                         "\r\n"
                         "Content-Type: text/plain\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\n"
                         "Connection: close\r\n"
                         "\r\n" +
                         body;
  (void)SendOnLoop(session, AsBytes(response), /*deliverClass=*/false);
  session->conn->CloseAfterFlush();
}

void Server::FailSession(const SessionPtr& session, const Status& status) {
  MD_DEBUG("closing session %llu: %s",
           static_cast<unsigned long long>(session->handle),
           status.ToString().c_str());
  m_.protoErrors.Inc();
  session->conn->Close();
}

void Server::OnClosed(const SessionPtr& session) {
  if (!session->open.exchange(false)) return;
  m_.active.Add(-1);
  if (session->overSoft) {  // close handler runs on the session's IoThread
    session->overSoft = false;
    scm_.sessionsOverSoft.Add(-1);
  }
  // Let the session's Worker clean up subscriptions in order with any frames
  // still queued ahead.
  Worker& worker = *workers_[session->workerIndex];
  if (!worker.queue.TryPush(Job{session, std::nullopt}).ok()) {
    DropSession(session);  // queue closed/full during shutdown: clean inline
  }
}

// ---------------------------------------------------------------------------
// Logic layer (runs on Workers)
// ---------------------------------------------------------------------------

void Server::WorkerMain(std::size_t index) {
  Worker& worker = *workers_[index];
  std::vector<Job> batch;
  batch.reserve(256);
  while (true) {
    batch.clear();
    if (worker.queue.PopBatchBlocking(batch, 256) == 0) return;  // closed+drained
    for (Job& job : batch) {
      if (!job.frame) {
        DropSession(job.session);
      } else {
        HandleFrame(job.session, *job.frame);
      }
    }
  }
}

void Server::HandleFrame(const SessionPtr& session, const Frame& frame) {
  if (const auto* connect = std::get_if<ConnectFrame>(&frame)) {
    session->clientId = connect->clientId;
    SendFrame(session, ConnAckFrame{cfg_.serverId});
    return;
  }
  if (const auto* sub = std::get_if<SubscribeFrame>(&frame)) {
    HandleSubscribe(session, *sub);
    return;
  }
  if (const auto* unsub = std::get_if<UnsubscribeFrame>(&frame)) {
    registry_.Unsubscribe(unsub->topic, session->handle);
    if (monitor_) monitor_->Forget(session->handle, unsub->topic);
    return;
  }
  if (const auto* pub = std::get_if<PublishFrame>(&frame)) {
    HandlePublish(session, *pub);
    return;
  }
  if (const auto* ping = std::get_if<PingFrame>(&frame)) {
    SendFrame(session, PongFrame{ping->nonce});
    return;
  }
  if (std::get_if<DisconnectFrame>(&frame) != nullptr) {
    session->conn->Close();
    return;
  }
  // Cluster frames are not valid on a single-node client port.
  FailSession(session, Err(ErrorCode::kProtocol, "unexpected frame type"));
}

void Server::HandleSubscribe(const SessionPtr& session, const SubscribeFrame& sub) {
  registry_.Subscribe(sub.topic, session->handle);
  // A (re)subscribe starts a fresh logical stream — the resume backfill may
  // legitimately replay positions an earlier subscription already emitted.
  if (monitor_) monitor_->Forget(session->handle, sub.topic);
  SendFrame(session, SubAckFrame{sub.topic, true});
  if (sub.hasResumePos) {
    // Recovery: replay everything cached after the client's last position.
    for (const Message& missed : cache_.GetAfter(sub.topic, sub.resumeAfter)) {
      m_.delivered.Inc();
      if (monitor_) {
        monitor_->OnDelivery(session->handle, missed.topic, PosOf(missed),
                             missed.pubId);
      }
      SendFrame(session, DeliverFrame{missed});
    }
  }
}

void Server::HandlePublish(const SessionPtr& session, const PublishFrame& pub) {
  const obs::TraceKey traceKey{pub.pubId.clientHash, pub.pubId.counter};
  tracer_.Begin(traceKey);

  const std::uint32_t group = cache_.GroupOf(pub.topic);
  const auto pos = sequencer_.Assign(group, pub.topic);
  if (!pos) {
    tracer_.Discard(traceKey);
    if (pub.wantAck) {
      SendFrame(session, PubAckFrame{pub.pubId, PubAckCode::kFailed});
    }
    return;
  }
  tracer_.Stamp(traceKey, obs::Stage::kSequenced);

  Message msg;
  msg.topic = pub.topic;
  msg.payload = pub.payload;
  msg.epoch = pos->epoch;
  msg.seq = pos->seq;
  msg.pubId = pub.pubId;
  msg.publishTs = pub.publishTs;
  cache_.Append(msg, RealClock::Instance().Now());
  tracer_.Stamp(traceKey, obs::Stage::kCached);
  m_.published.Inc();

  // Acknowledge after the message is durably cached (single-node guarantee;
  // the cluster version acks after replication to 2 servers — see
  // src/cluster).
  if (pub.wantAck) SendFrame(session, PubAckFrame{pub.pubId, PubAckCode::kOk});

  // Fan-out: grab the topic's CoW subscriber snapshot (lock-brief shared_ptr
  // copy), resolve handles through the sharded session table, and group the
  // live targets by their IoThread.
  const SubscriberSnapshot subscribers = registry_.Snapshot(pub.topic);
  if (!subscribers || subscribers->empty()) {
    tracer_.Discard(traceKey);
    return;
  }

  const Frame deliver{DeliverFrame{std::move(msg)}};

  std::vector<std::vector<SessionPtr>> byIo(ioThreads_.size());
  std::size_t live = 0;
  for (const ClientHandle h : *subscribers) {
    SessionPtr target = FindSession(h);
    if (!target || !target->open.load(std::memory_order_relaxed)) continue;
    byIo[target->ioIndex].push_back(std::move(target));
    ++live;
  }
  if (live == 0) {
    tracer_.Discard(traceKey);  // every subscriber already closed
    return;
  }

  tracer_.Stamp(traceKey, obs::Stage::kFannedOut);

  std::shared_ptr<const Message> sharedMsg;
  if (cfg_.enableConflation ||
      cfg_.backpressure.policy == OverflowPolicy::kConflate) {
    // Conflation works on messages, so encoding happens per emission (the
    // delivered counter advances there as suppressed duplicates are
    // intentionally never delivered). The kConflate overflow policy also
    // needs the message alongside the wire bytes: sessions over their soft
    // watermark divert to their conflator at write time.
    sharedMsg = std::make_shared<const Message>(std::get<DeliverFrame>(deliver).msg);
  }
  if (cfg_.fanoutBatching) {
    FanOutBatched(std::move(byIo), deliver, sharedMsg, traceKey);
  } else {
    FanOutPerSubscriber(byIo, deliver, sharedMsg, traceKey);
  }
}

void Server::FanOutBatched(std::vector<std::vector<SessionPtr>>&& byIo,
                           const Frame& deliver,
                           const std::shared_ptr<const Message>& sharedMsg,
                           obs::TraceKey traceKey) {
  // Encode once per transport flavour present among the targets; the fixed
  // array (indexed by Session::Mode) is shared across every IoThread batch.
  std::array<std::shared_ptr<const Bytes>, Session::kModeCount> wires{};

  bool traceAttached = false;
  for (std::size_t io = 0; io < byIo.size(); ++io) {
    std::vector<SessionPtr>& targets = byIo[io];
    if (targets.empty()) continue;
    NetLoop* loop = ioThreads_[io]->loop.get();

    if (sharedMsg && cfg_.enableConflation) {
      // Conflated delivery: one task per loop offering the message to each
      // target's conflator (traces are discarded below, as on the per-
      // subscriber path — conflation decouples emission from this publish).
      loop->Post([this, targets = std::move(targets), sharedMsg] {
        for (const SessionPtr& s : targets) OfferConflatedOnLoop(s, *sharedMsg);
      });
      continue;
    }

    for (const SessionPtr& target : targets) {
      const auto modeKey = static_cast<std::size_t>(target->CurrentMode());
      std::shared_ptr<const Bytes>& wire = wires[modeKey];
      if (!wire) {
        // Encode once into a pooled wire buffer; every subscriber on every
        // IoThread queues a reference to these same bytes.
        auto bytes = AcquireWireBuffer();
        EncodeForMode(deliver, static_cast<std::uint8_t>(modeKey), *bytes);
        wire = std::move(bytes);
      }
      m_.delivered.Inc();
      if (monitor_) {
        const Message& msg = std::get<DeliverFrame>(deliver).msg;
        monitor_->OnDelivery(target->handle, msg.topic, PosOf(msg), msg.pubId);
      }
    }

    // The first live socket write finalizes the trace (first-subscriber
    // latency); only the first batch carries the key.
    const std::optional<obs::TraceKey> trace =
        traceAttached ? std::nullopt : std::optional<obs::TraceKey>(traceKey);
    traceAttached = true;
    loop->Post([this, targets = std::move(targets), wires, sharedMsg, trace] {
      bool stamped = false;
      for (const SessionPtr& s : targets) {
        if (!s->open.load(std::memory_order_relaxed)) continue;
        if (sharedMsg && s->overSoft && s->conflator) {
          // kConflate overflow policy: while this session is over its soft
          // watermark it gets the newest value per topic, not the backlog.
          scm_.conflated.Inc();
          OfferConflatedOnLoop(s, *sharedMsg);
          continue;
        }
        const auto& wire = wires[static_cast<std::size_t>(s->CurrentMode())];
        if (!wire) continue;
        WriteOutShared(s, wire, /*deliverClass=*/true);
        if (trace && !stamped) {
          tracer_.Stamp(*trace, obs::Stage::kSocketWritten);
          stamped = true;
        }
      }
      if (trace && !stamped) tracer_.Discard(*trace);  // all closed meanwhile
    });
  }
  if (!traceAttached) tracer_.Discard(traceKey);  // conflated fan-out
}

void Server::FanOutPerSubscriber(const std::vector<std::vector<SessionPtr>>& byIo,
                                 const Frame& deliver,
                                 const std::shared_ptr<const Message>& sharedMsg,
                                 obs::TraceKey traceKey) {
  // Pre-batching path: one posted closure (and eventfd wakeup) per
  // subscriber. Kept behind ServerConfig::fanoutBatching=false so the
  // bench_fanout ablation can measure exactly what batching buys.
  std::array<std::shared_ptr<const Bytes>, Session::kModeCount> wires{};
  bool traced = false;
  for (const std::vector<SessionPtr>& targets : byIo) {
    for (const SessionPtr& target : targets) {
      if (sharedMsg && cfg_.enableConflation) {
        SendDeliverConflated(target, sharedMsg);
        continue;
      }
      const auto modeKey = static_cast<std::size_t>(target->CurrentMode());
      std::shared_ptr<const Bytes>& wire = wires[modeKey];
      if (!wire) {
        auto bytes = AcquireWireBuffer();
        EncodeForMode(deliver, static_cast<std::uint8_t>(modeKey), *bytes);
        wire = std::move(bytes);
      }
      m_.delivered.Inc();
      if (monitor_) {
        const Message& msg = std::get<DeliverFrame>(deliver).msg;
        monitor_->OnDelivery(target->handle, msg.topic, PosOf(msg), msg.pubId);
      }
      SendEncoded(target, wire,
                  traced ? std::nullopt : std::optional<obs::TraceKey>(traceKey),
                  /*deliverClass=*/true, sharedMsg);
      traced = true;
    }
  }
  if (!traced) tracer_.Discard(traceKey);  // conflated fan-out
}

void Server::DropSession(const SessionPtr& session) {
  // DropClient purges the registry's reverse index and any emptied topic
  // entries, so churn leaves no interned-topic back-references behind.
  registry_.DropClient(session->handle);
  sessions_.Erase(session->handle);
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void Server::SendFrame(const SessionPtr& session, const Frame& frame) {
  auto wire = AcquireWireBuffer();
  EncodeForMode(frame, static_cast<std::uint8_t>(session->CurrentMode()), *wire);
  SendEncoded(session, std::move(wire));
}

void Server::SendEncoded(const SessionPtr& session,
                         const std::shared_ptr<const Bytes>& wire,
                         std::optional<obs::TraceKey> trace, bool deliverClass,
                         std::shared_ptr<const Message> msgForConflate) {
  // All writes funnel through the session's IoThread: the connection, the
  // batcher and the conflator are only ever touched there.
  session->loop->Post([this, session, wire, trace, deliverClass,
                       msgForConflate = std::move(msgForConflate)] {
    if (!session->open.load(std::memory_order_relaxed)) {
      if (trace) tracer_.Discard(*trace);
      return;
    }
    if (msgForConflate && session->overSoft && session->conflator) {
      scm_.conflated.Inc();
      OfferConflatedOnLoop(session, *msgForConflate);
      if (trace) tracer_.Discard(*trace);
      return;
    }
    WriteOutShared(session, wire, deliverClass);
    if (trace) tracer_.Stamp(*trace, obs::Stage::kSocketWritten);
  });
}

void Server::WriteOut(const SessionPtr& session, BytesView wire,
                      bool deliverClass) {
  if (session->batcher) {
    // kDropNewest sheds a deliver-class frame before it enters the batcher —
    // the same point a direct write would have dropped it.
    if (deliverClass && session->overSoft &&
        cfg_.backpressure.policy == OverflowPolicy::kDropNewest) {
      scm_.dropped.Inc();
      return;
    }
    session->batcher->Enqueue(wire, session->loop->Now());
    if (!session->flushTimerArmed && session->batcher->PendingBytes() > 0) {
      session->flushTimerArmed = true;
      session->loop->ScheduleTimer(cfg_.batch.maxDelay,
                                   [this, session] { FlushBatch(session); });
    }
  } else {
    (void)SendOnLoop(session, wire, deliverClass);
  }
}

void Server::WriteOutShared(const SessionPtr& session,
                            const std::shared_ptr<const Bytes>& wire,
                            bool deliverClass) {
  // The batcher coalesces frames into its own buffer (copying is the whole
  // point there), and the ablation's legacy row forces the copying path.
  if (session->batcher || !cfg_.zeroCopyEgress) {
    WriteOut(session, BytesView(*wire), deliverClass);
    return;
  }
  (void)SendOnLoopShared(session, wire, deliverClass);
}

bool Server::SendOnLoop(const SessionPtr& session, BytesView wire,
                        bool deliverClass) {
  return SendBytesOnLoop(session, wire, nullptr, deliverClass);
}

bool Server::SendOnLoopShared(const SessionPtr& session,
                              const std::shared_ptr<const Bytes>& wire,
                              bool deliverClass) {
  return SendBytesOnLoop(session, BytesView(*wire), &wire, deliverClass);
}

bool Server::SendBytesOnLoop(const SessionPtr& session, BytesView view,
                             const std::shared_ptr<const Bytes>* shared,
                             bool deliverClass) {
  if (session->evicting || !session->conn->IsOpen()) return false;
  if (deliverClass && session->overSoft &&
      cfg_.backpressure.policy == OverflowPolicy::kDropNewest) {
    scm_.dropped.Inc();
    return false;
  }
  const std::size_t before = session->conn->PendingBytes();
  const Status st = shared != nullptr ? session->conn->Send(*shared)
                                      : session->conn->Send(view);
  if (st.ok()) {
    m_.bytesOut.Inc(view.size());
    return true;
  }
  if (st.code() != ErrorCode::kCapacity) return false;  // closed under us
  // kCapacity is ambiguous by design: over-soft Sends accept the bytes, over-
  // hard Sends reject the whole frame. PendingBytes moved iff accepted
  // (deterministic — we are on the connection's IoThread).
  const bool accepted = session->conn->PendingBytes() > before;
  if (accepted) m_.bytesOut.Inc(view.size());
  if (!session->overSoft) {
    session->overSoft = true;
    scm_.softOverflows.Inc();
    scm_.sessionsOverSoft.Add(1);
  }
  // Sample depth on every over-soft send (already the slow path): the
  // histogram's max is the peak backlog any session ever pinned, which is
  // what the hard watermark bounds.
  scm_.queueDepthBytes.Record(
      static_cast<std::int64_t>(session->conn->PendingBytes()));
  if (monitor_) {
    monitor_->OnBackpressure(session->handle, session->conn->PendingBytes(),
                             cfg_.backpressure.hardWatermark);
  }
  if (cfg_.backpressure.policy == OverflowPolicy::kDisconnect) {
    if (!accepted) {
      // Hard reject under kDisconnect: the frame is lost and the stream has a
      // gap, so the only correct continuation is eviction — an at-least-once
      // client reconnects and backfills past the gap.
      EvictSlowConsumer(session);
    } else if (!session->evictTimerArmed) {
      // Grace before eviction: a healthy client absorbing a burst (e.g. its
      // own resume backfill) drains below the low watermark within the grace
      // and survives; a stalled one is still over soft when the timer fires.
      session->evictTimerArmed = true;
      session->loop->ScheduleTimer(
          cfg_.backpressure.evictGrace, [this, session] {
            session->evictTimerArmed = false;
            if (session->overSoft && !session->evicting &&
                session->open.load(std::memory_order_relaxed)) {
              EvictSlowConsumer(session);
            }
          });
    }
  } else if (!accepted) {
    scm_.dropped.Inc();  // kConflate/kDropNewest past the hard mark: shed
  }
  return accepted;
}

void Server::EvictSlowConsumer(const SessionPtr& session) {
  if (session->evicting) return;
  session->evicting = true;
  scm_.disconnects.Inc();
  MD_INFO("evicting slow consumer %llu (%s): %zu bytes pending",
          static_cast<unsigned long long>(session->handle),
          session->conn->PeerName().c_str(), session->conn->PendingBytes());
  // Best-effort close notice so a client that is merely slow (not dead)
  // learns this was a policy eviction, then a flush-bounded close. Encoded
  // per transport flavour: a WS endpoint must see a proper Close frame
  // (1013 "try again later"), not a mid-stream TCP reset.
  Bytes notice;
  if (session->CurrentMode() == Session::Mode::kWs) {
    Bytes payload{static_cast<std::uint8_t>(ws::kClosePolicyTryAgainLater >> 8),
                  static_cast<std::uint8_t>(ws::kClosePolicyTryAgainLater)};
    static constexpr std::string_view kReason = "slow consumer";
    payload.insert(payload.end(), kReason.begin(), kReason.end());
    ws::EncodeWsFrame(ws::Opcode::kClose, BytesView(payload), notice);
  } else {
    EncodeForMode(Frame(DisconnectFrame{"slow consumer: send queue overflow"}),
                  static_cast<std::uint8_t>(session->CurrentMode()), notice);
  }
  (void)session->conn->Send(BytesView(notice));
  session->conn->CloseAfterFlush();
}

void Server::SendDeliverConflated(const SessionPtr& session,
                                  const std::shared_ptr<const Message>& msg) {
  session->loop->Post(
      [this, session, msg] { OfferConflatedOnLoop(session, *msg); });
}

void Server::OfferConflatedOnLoop(const SessionPtr& session, const Message& msg) {
  if (!session->open.load(std::memory_order_relaxed) || !session->conflator) {
    return;
  }
  session->conflator->Offer(msg, session->loop->Now());
  if (!session->conflateTimerArmed) {
    session->conflateTimerArmed = true;
    session->loop->ScheduleTimer(cfg_.conflate.interval,
                                 [this, session] { FlushConflator(session); });
  }
}

void Server::FlushConflator(const SessionPtr& session) {
  session->conflateTimerArmed = false;
  if (!session->open.load(std::memory_order_relaxed) || !session->conflator) return;
  session->conflator->OnTime(session->loop->Now());
  if (const auto deadline = session->conflator->Deadline()) {
    session->conflateTimerArmed = true;
    session->loop->ScheduleTimer(*deadline - session->loop->Now(),
                                 [this, session] { FlushConflator(session); });
  }
}

void Server::FlushBatch(const SessionPtr& session) {
  session->flushTimerArmed = false;
  if (!session->open.load(std::memory_order_relaxed) || !session->batcher) return;
  session->batcher->OnTime(session->loop->Now());
  if (const auto deadline = session->batcher->Deadline()) {
    session->flushTimerArmed = true;
    session->loop->ScheduleTimer(*deadline - session->loop->Now(),
                                 [this, session] { FlushBatch(session); });
  }
}

}  // namespace md::core
