#include "core/server.hpp"

#include "common/logging.hpp"
#include "proto/http_stream.hpp"
#include "common/strutil.hpp"

namespace md::core {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

struct Server::Session : std::enable_shared_from_this<Server::Session> {
  ClientHandle handle = 0;
  std::size_t ioIndex = 0;
  std::size_t workerIndex = 0;
  ConnectionPtr conn;
  EpollLoop* loop = nullptr;

  // Protocol mode, auto-detected from the first bytes. Written only on the
  // session's IoThread (during the handshake, before any frame reaches a
  // Worker); read by Workers on the fan-out encode path, hence atomic.
  enum class Mode : std::uint8_t {
    kDetect,
    kWsHandshake,
    kWs,
    kHttpHandshake,
    kHttp,
    kRaw,
  };
  static constexpr std::size_t kModeCount = 6;
  std::atomic<Mode> mode{Mode::kDetect};
  [[nodiscard]] Mode CurrentMode() const noexcept {
    return mode.load(std::memory_order_relaxed);
  }
  ByteQueue in;

  // Worker-thread state.
  std::string clientId;

  // IoThread-side outgoing batcher/conflator (nullptr when disabled).
  std::unique_ptr<Batcher> batcher;
  bool flushTimerArmed = false;
  std::unique_ptr<Conflator> conflator;
  bool conflateTimerArmed = false;

  std::atomic<bool> open{true};
};

namespace {

/// Encodes a frame in the session's transport flavour. Mode values mirror
/// Server::Session::Mode (a private nested enum, hence the raw byte here).
void EncodeForMode(const Frame& frame, std::uint8_t mode, Bytes& out) {
  if (mode == 2 /*kWs*/) {
    Bytes body;
    EncodeFrame(frame, body);
    ws::EncodeWsFrame(ws::Opcode::kBinary, BytesView(body), out);
  } else if (mode == 4 /*kHttp*/) {
    Bytes body;
    EncodeFrame(frame, body);
    http::EncodeChunk(BytesView(body), out);
  } else {
    EncodeFramed(frame, out);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      metrics_(cfg_.metrics != nullptr ? *cfg_.metrics
                                       : obs::MetricsRegistry::Default()),
      m_(metrics_, obs::ServerLabel(cfg_.serverId)),
      tm_(metrics_),
      tracer_(metrics_, [] { return RealClock::Instance().Now(); }, "wall"),
      cache_(cfg_.cache) {
  // Pre-register the full schema so GET /metrics exposes every family from
  // the first scrape, not just the ones that have seen traffic.
  obs::RegisterStandardFamilies(metrics_);
  if (cfg_.ioThreads < 1) cfg_.ioThreads = 1;
  if (cfg_.workers < 1) cfg_.workers = 1;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) return Err(ErrorCode::kAlreadyExists, "running");

  // The single-node server sequences every group itself at epoch 1.
  for (std::uint32_t g = 0; g < cfg_.cache.topicGroups; ++g) {
    sequencer_.BeginEpoch(g, 1);
  }

  for (int i = 0; i < cfg_.ioThreads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->loop = std::make_unique<EpollLoop>();
    io->loop->SetMetrics(&tm_);
    auto listener = io->loop->Listen(boundPort_ != 0 ? boundPort_ : cfg_.port);
    if (!listener.ok()) {
      running_.store(false);
      return listener.status();
    }
    io->listener = std::move(*listener);
    boundPort_ = io->listener->Port();
    const std::size_t index = static_cast<std::size_t>(i);
    io->listener->SetAcceptHandler(
        [this, index](ConnectionPtr conn) { OnAccept(index, std::move(conn)); });
    ioThreads_.push_back(std::move(io));
  }
  for (auto& io : ioThreads_) {
    io->thread = std::thread([loop = io->loop.get()] { loop->Run(); });
  }

  for (int i = 0; i < cfg_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    workers_.push_back(std::move(worker));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerMain(i); });
  }

  MD_INFO("server %s listening on port %u (%d io threads, %d workers)",
          cfg_.serverId.c_str(), boundPort_, cfg_.ioThreads, cfg_.workers);
  return OkStatus();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& io : ioThreads_) io->loop->Stop();
  for (auto& io : ioThreads_) {
    if (io->thread.joinable()) io->thread.join();
  }
  for (SessionShard& shard : sessionShards_) {
    std::lock_guard lock(shard.mutex);
    shard.map.clear();
  }
  workers_.clear();
  ioThreads_.clear();
}

ServerStats Server::Stats() const {
  ServerStats s;
  s.connectionsAccepted = m_.accepted.Value();
  s.connectionsActive = static_cast<std::uint64_t>(m_.active.Value());
  s.framesReceived = m_.frames.Value();
  s.published = m_.published.Value();
  s.delivered = m_.delivered.Value();
  s.bytesOut = m_.bytesOut.Value();
  s.protocolErrors = m_.protoErrors.Value();
  return s;
}

// ---------------------------------------------------------------------------
// I/O layer (runs on IoThreads)
// ---------------------------------------------------------------------------

void Server::OnAccept(std::size_t ioIndex, ConnectionPtr conn) {
  auto session = std::make_shared<Session>();
  session->handle = nextHandle_.fetch_add(1);
  session->ioIndex = ioIndex;
  // Clients are balanced among Workers by a hash of their identity and stay
  // pinned for their connection lifetime (paper hashes the IP address; the
  // connection handle balances equally and is stable the same way).
  session->workerIndex = MixU64(session->handle) % workers_.size();
  session->conn = std::move(conn);
  session->loop = ioThreads_[ioIndex]->loop.get();
  if (cfg_.enableBatching) {
    session->batcher = std::make_unique<Batcher>(
        cfg_.batch, [this, weak = std::weak_ptr<Session>(session)](BytesView data) {
          if (auto s = weak.lock()) {
            m_.bytesOut.Inc(data.size());
            (void)s->conn->Send(data);
          }
        });
  }
  if (cfg_.enableConflation) {
    // Emits the newest message per topic at each window close (IoThread).
    session->conflator = std::make_unique<Conflator>(
        cfg_.conflate,
        [this, weak = std::weak_ptr<Session>(session)](const Message& m) {
          auto s = weak.lock();
          if (!s || !s->open.load(std::memory_order_relaxed)) return;
          Bytes wire;
          EncodeForMode(Frame(DeliverFrame{m}),
                        static_cast<std::uint8_t>(s->CurrentMode()), wire);
          m_.delivered.Inc();
          WriteOut(s, BytesView(wire));
        });
  }

  m_.accepted.Inc();
  m_.active.Add(1);
  {
    SessionShard& shard = ShardOf(session->handle);
    std::lock_guard lock(shard.mutex);
    shard.map[session->handle] = session;
  }

  session->conn->SetDataHandler(
      [this, session](BytesView data) { OnData(session, data); });
  session->conn->SetCloseHandler([this, session] { OnClosed(session); });
}

void Server::OnData(const SessionPtr& session, BytesView data) {
  session->in.Append(data);
  ParseFrames(session);
}

void Server::ParseFrames(const SessionPtr& session) {
  using Mode = Session::Mode;

  // The session's IoThread is the only writer of `mode`; keep a local copy
  // and publish transitions with relaxed stores (Workers observing the mode
  // are ordered behind the frame handoff through the Worker queue).
  Mode mode = session->CurrentMode();
  const auto setMode = [&](Mode m) {
    mode = m;
    session->mode.store(m, std::memory_order_relaxed);
  };

  if (mode == Mode::kDetect) {
    if (session->in.size() < 4) return;
    const auto head = AsStringView(session->in.Peek()).substr(0, 4);
    if (head == "GET ") {
      setMode(Mode::kWsHandshake);  // WebSocket upgrade
    } else if (head == "POST") {
      setMode(Mode::kHttpHandshake);  // HTTP chunked-stream fallback
    } else {
      setMode(Mode::kRaw);
    }
  }

  if (mode == Mode::kWsHandshake) {
    // A plain-HTTP scrape of /metrics shares the "GET " prefix with the
    // WebSocket upgrade; peek the request line and intercept it before the
    // handshake parser (which requires Upgrade headers) rejects it.
    const auto text = AsStringView(session->in.Peek());
    const auto lineEnd = text.find("\r\n");
    if (lineEnd != std::string_view::npos) {
      const auto line = text.substr(0, lineEnd);  // "GET <path> HTTP/1.1"
      const auto pathStart = line.find(' ');
      const auto pathEnd = line.find(' ', pathStart + 1);
      if (pathStart != std::string_view::npos &&
          pathEnd != std::string_view::npos &&
          line.substr(pathStart + 1, pathEnd - pathStart - 1) == "/metrics") {
        if (text.find("\r\n\r\n") == std::string_view::npos) return;
        ServeMetrics(session);
        return;
      }
    } else if (text.size() > 8 * 1024) {
      FailSession(session, Err(ErrorCode::kProtocol, "request line too long"));
      return;
    }
    auto hs = ws::ParseClientHandshake(session->in);
    if (!hs.status.ok()) {
      FailSession(session, hs.status);
      return;
    }
    if (!hs.handshake) return;  // need more bytes
    const std::string response = ws::BuildServerHandshakeResponse(hs.handshake->key);
    m_.bytesOut.Inc(response.size());
    (void)session->conn->Send(AsBytes(response));
    setMode(Mode::kWs);
  }

  if (mode == Mode::kHttpHandshake) {
    auto req = http::ParseStreamRequest(session->in);
    if (!req.status.ok()) {
      FailSession(session, req.status);
      return;
    }
    if (!req.complete) return;
    const std::string response = http::BuildStreamResponse();
    m_.bytesOut.Inc(response.size());
    (void)session->conn->Send(AsBytes(response));
    setMode(Mode::kHttp);
  }

  while (session->open.load(std::memory_order_relaxed)) {
    std::optional<Frame> frame;
    if (mode == Mode::kWs) {
      auto r = ws::ExtractWsFrame(session->in, /*expectMasked=*/true, cfg_.maxFrameSize);
      if (!r.status.ok()) {
        FailSession(session, r.status);
        return;
      }
      if (!r.frame) break;
      switch (r.frame->opcode) {
        case ws::Opcode::kBinary: {
          auto decoded = DecodeFrame(BytesView(r.frame->payload));
          if (!decoded.ok()) {
            FailSession(session, decoded.status());
            return;
          }
          frame = std::move(*decoded);
          break;
        }
        case ws::Opcode::kPing: {
          Bytes pong;
          ws::EncodeWsFrame(ws::Opcode::kPong, BytesView(r.frame->payload), pong);
          (void)session->conn->Send(BytesView(pong));
          continue;
        }
        case ws::Opcode::kClose:
          session->conn->Close();
          return;
        default:
          continue;  // text/pong/continuation ignored
      }
    } else if (mode == Mode::kHttp) {
      auto r = http::ExtractChunk(session->in, cfg_.maxFrameSize);
      if (!r.status.ok()) {
        FailSession(session, r.status);
        return;
      }
      if (r.endOfStream) {
        session->conn->Close();
        return;
      }
      if (!r.payload) break;
      auto decoded = DecodeFrame(BytesView(*r.payload));
      if (!decoded.ok()) {
        FailSession(session, decoded.status());
        return;
      }
      frame = std::move(*decoded);
    } else {
      auto r = ExtractFrame(session->in, cfg_.maxFrameSize);
      if (!r.status.ok()) {
        FailSession(session, r.status);
        return;
      }
      if (!r.frame) break;
      frame = std::move(*r.frame);
    }

    m_.frames.Inc();
    Worker& worker = *workers_[session->workerIndex];
    if (!worker.queue.TryPush(Job{session, std::move(frame)}).ok()) {
      // Worker overloaded: shed this client rather than buffer unboundedly.
      FailSession(session, Err(ErrorCode::kCapacity, "worker queue full"));
      return;
    }
  }
}

void Server::ServeMetrics(const SessionPtr& session) {
  const std::string body =
      obs::RenderPrometheus(metrics_.Snapshot(), RealClock::Instance().Now());
  std::string response =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n"
      "\r\n";
  response += body;
  m_.bytesOut.Inc(response.size());
  (void)session->conn->Send(AsBytes(response));
  session->conn->Close();
}

void Server::FailSession(const SessionPtr& session, const Status& status) {
  MD_DEBUG("closing session %llu: %s",
           static_cast<unsigned long long>(session->handle),
           status.ToString().c_str());
  m_.protoErrors.Inc();
  session->conn->Close();
}

void Server::OnClosed(const SessionPtr& session) {
  if (!session->open.exchange(false)) return;
  m_.active.Add(-1);
  // Let the session's Worker clean up subscriptions in order with any frames
  // still queued ahead.
  Worker& worker = *workers_[session->workerIndex];
  if (!worker.queue.TryPush(Job{session, std::nullopt}).ok()) {
    DropSession(session);  // queue closed/full during shutdown: clean inline
  }
}

// ---------------------------------------------------------------------------
// Logic layer (runs on Workers)
// ---------------------------------------------------------------------------

void Server::WorkerMain(std::size_t index) {
  Worker& worker = *workers_[index];
  std::vector<Job> batch;
  batch.reserve(256);
  while (true) {
    batch.clear();
    if (worker.queue.PopBatchBlocking(batch, 256) == 0) return;  // closed+drained
    for (Job& job : batch) {
      if (!job.frame) {
        DropSession(job.session);
      } else {
        HandleFrame(job.session, *job.frame);
      }
    }
  }
}

void Server::HandleFrame(const SessionPtr& session, const Frame& frame) {
  if (const auto* connect = std::get_if<ConnectFrame>(&frame)) {
    session->clientId = connect->clientId;
    SendFrame(session, ConnAckFrame{cfg_.serverId});
    return;
  }
  if (const auto* sub = std::get_if<SubscribeFrame>(&frame)) {
    HandleSubscribe(session, *sub);
    return;
  }
  if (const auto* unsub = std::get_if<UnsubscribeFrame>(&frame)) {
    registry_.Unsubscribe(unsub->topic, session->handle);
    return;
  }
  if (const auto* pub = std::get_if<PublishFrame>(&frame)) {
    HandlePublish(session, *pub);
    return;
  }
  if (const auto* ping = std::get_if<PingFrame>(&frame)) {
    SendFrame(session, PongFrame{ping->nonce});
    return;
  }
  if (std::get_if<DisconnectFrame>(&frame) != nullptr) {
    session->conn->Close();
    return;
  }
  // Cluster frames are not valid on a single-node client port.
  FailSession(session, Err(ErrorCode::kProtocol, "unexpected frame type"));
}

void Server::HandleSubscribe(const SessionPtr& session, const SubscribeFrame& sub) {
  registry_.Subscribe(sub.topic, session->handle);
  SendFrame(session, SubAckFrame{sub.topic, true});
  if (sub.hasResumePos) {
    // Recovery: replay everything cached after the client's last position.
    for (const Message& missed : cache_.GetAfter(sub.topic, sub.resumeAfter)) {
      m_.delivered.Inc();
      SendFrame(session, DeliverFrame{missed});
    }
  }
}

void Server::HandlePublish(const SessionPtr& session, const PublishFrame& pub) {
  const obs::TraceKey traceKey{pub.pubId.clientHash, pub.pubId.counter};
  tracer_.Begin(traceKey);

  const std::uint32_t group = cache_.GroupOf(pub.topic);
  const auto pos = sequencer_.Assign(group, pub.topic);
  if (!pos) {
    tracer_.Discard(traceKey);
    if (pub.wantAck) SendFrame(session, PubAckFrame{pub.pubId, false});
    return;
  }
  tracer_.Stamp(traceKey, obs::Stage::kSequenced);

  Message msg;
  msg.topic = pub.topic;
  msg.payload = pub.payload;
  msg.epoch = pos->epoch;
  msg.seq = pos->seq;
  msg.pubId = pub.pubId;
  msg.publishTs = pub.publishTs;
  cache_.Append(msg, RealClock::Instance().Now());
  tracer_.Stamp(traceKey, obs::Stage::kCached);
  m_.published.Inc();

  // Acknowledge after the message is durably cached (single-node guarantee;
  // the cluster version acks after replication to 2 servers — see
  // src/cluster).
  if (pub.wantAck) SendFrame(session, PubAckFrame{pub.pubId, true});

  // Fan-out: grab the topic's CoW subscriber snapshot (lock-brief shared_ptr
  // copy), resolve handles through the sharded session table, and group the
  // live targets by their IoThread.
  const SubscriberSnapshot subscribers = registry_.Snapshot(pub.topic);
  if (!subscribers || subscribers->empty()) {
    tracer_.Discard(traceKey);
    return;
  }

  const Frame deliver{DeliverFrame{std::move(msg)}};

  std::vector<std::vector<SessionPtr>> byIo(ioThreads_.size());
  std::size_t live = 0;
  for (const ClientHandle h : *subscribers) {
    SessionPtr target = FindSession(h);
    if (!target || !target->open.load(std::memory_order_relaxed)) continue;
    byIo[target->ioIndex].push_back(std::move(target));
    ++live;
  }
  if (live == 0) {
    tracer_.Discard(traceKey);  // every subscriber already closed
    return;
  }

  tracer_.Stamp(traceKey, obs::Stage::kFannedOut);

  std::shared_ptr<const Message> sharedMsg;
  if (cfg_.enableConflation) {
    // Conflation works on messages, so encoding happens per emission (the
    // delivered counter advances there as suppressed duplicates are
    // intentionally never delivered).
    sharedMsg = std::make_shared<const Message>(std::get<DeliverFrame>(deliver).msg);
  }
  if (cfg_.fanoutBatching) {
    FanOutBatched(std::move(byIo), deliver, sharedMsg, traceKey);
  } else {
    FanOutPerSubscriber(byIo, deliver, sharedMsg, traceKey);
  }
}

void Server::FanOutBatched(std::vector<std::vector<SessionPtr>>&& byIo,
                           const Frame& deliver,
                           const std::shared_ptr<const Message>& sharedMsg,
                           obs::TraceKey traceKey) {
  // Encode once per transport flavour present among the targets; the fixed
  // array (indexed by Session::Mode) is shared across every IoThread batch.
  std::array<std::shared_ptr<const Bytes>, Session::kModeCount> wires{};

  bool traceAttached = false;
  for (std::size_t io = 0; io < byIo.size(); ++io) {
    std::vector<SessionPtr>& targets = byIo[io];
    if (targets.empty()) continue;
    EpollLoop* loop = ioThreads_[io]->loop.get();

    if (sharedMsg) {
      // Conflated delivery: one task per loop offering the message to each
      // target's conflator (traces are discarded below, as on the per-
      // subscriber path — conflation decouples emission from this publish).
      loop->Post([this, targets = std::move(targets), sharedMsg] {
        for (const SessionPtr& s : targets) OfferConflatedOnLoop(s, *sharedMsg);
      });
      continue;
    }

    for (const SessionPtr& target : targets) {
      const auto modeKey = static_cast<std::size_t>(target->CurrentMode());
      std::shared_ptr<const Bytes>& wire = wires[modeKey];
      if (!wire) {
        auto bytes = std::make_shared<Bytes>();
        EncodeForMode(deliver, static_cast<std::uint8_t>(modeKey), *bytes);
        wire = std::move(bytes);
      }
      m_.delivered.Inc();
    }

    // The first live socket write finalizes the trace (first-subscriber
    // latency); only the first batch carries the key.
    const std::optional<obs::TraceKey> trace =
        traceAttached ? std::nullopt : std::optional<obs::TraceKey>(traceKey);
    traceAttached = true;
    loop->Post([this, targets = std::move(targets), wires, trace] {
      bool stamped = false;
      for (const SessionPtr& s : targets) {
        if (!s->open.load(std::memory_order_relaxed)) continue;
        const auto& wire = wires[static_cast<std::size_t>(s->CurrentMode())];
        if (!wire) continue;
        WriteOut(s, BytesView(*wire));
        if (trace && !stamped) {
          tracer_.Stamp(*trace, obs::Stage::kSocketWritten);
          stamped = true;
        }
      }
      if (trace && !stamped) tracer_.Discard(*trace);  // all closed meanwhile
    });
  }
  if (!traceAttached) tracer_.Discard(traceKey);  // conflated fan-out
}

void Server::FanOutPerSubscriber(const std::vector<std::vector<SessionPtr>>& byIo,
                                 const Frame& deliver,
                                 const std::shared_ptr<const Message>& sharedMsg,
                                 obs::TraceKey traceKey) {
  // Pre-batching path: one posted closure (and eventfd wakeup) per
  // subscriber. Kept behind ServerConfig::fanoutBatching=false so the
  // bench_fanout ablation can measure exactly what batching buys.
  std::array<std::shared_ptr<const Bytes>, Session::kModeCount> wires{};
  bool traced = false;
  for (const std::vector<SessionPtr>& targets : byIo) {
    for (const SessionPtr& target : targets) {
      if (sharedMsg) {
        SendDeliverConflated(target, sharedMsg);
        continue;
      }
      const auto modeKey = static_cast<std::size_t>(target->CurrentMode());
      std::shared_ptr<const Bytes>& wire = wires[modeKey];
      if (!wire) {
        auto bytes = std::make_shared<Bytes>();
        EncodeForMode(deliver, static_cast<std::uint8_t>(modeKey), *bytes);
        wire = std::move(bytes);
      }
      m_.delivered.Inc();
      SendEncoded(target, wire, traced ? std::nullopt
                                       : std::optional<obs::TraceKey>(traceKey));
      traced = true;
    }
  }
  if (!traced) tracer_.Discard(traceKey);  // conflated fan-out
}

void Server::DropSession(const SessionPtr& session) {
  registry_.DropClient(session->handle);
  SessionShard& shard = ShardOf(session->handle);
  std::lock_guard lock(shard.mutex);
  shard.map.erase(session->handle);
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void Server::SendFrame(const SessionPtr& session, const Frame& frame) {
  auto wire = std::make_shared<Bytes>();
  EncodeForMode(frame, static_cast<std::uint8_t>(session->CurrentMode()), *wire);
  SendEncoded(session, wire);
}

void Server::SendEncoded(const SessionPtr& session,
                         const std::shared_ptr<const Bytes>& wire,
                         std::optional<obs::TraceKey> trace) {
  // All writes funnel through the session's IoThread: the connection, the
  // batcher and the conflator are only ever touched there.
  session->loop->Post([this, session, wire, trace] {
    if (!session->open.load(std::memory_order_relaxed)) {
      if (trace) tracer_.Discard(*trace);
      return;
    }
    WriteOut(session, BytesView(*wire));
    if (trace) tracer_.Stamp(*trace, obs::Stage::kSocketWritten);
  });
}

void Server::WriteOut(const SessionPtr& session, BytesView wire) {
  if (session->batcher) {
    session->batcher->Enqueue(wire, session->loop->Now());
    if (!session->flushTimerArmed && session->batcher->PendingBytes() > 0) {
      session->flushTimerArmed = true;
      session->loop->ScheduleTimer(cfg_.batch.maxDelay,
                                   [this, session] { FlushBatch(session); });
    }
  } else {
    m_.bytesOut.Inc(wire.size());
    (void)session->conn->Send(wire);
  }
}

void Server::SendDeliverConflated(const SessionPtr& session,
                                  const std::shared_ptr<const Message>& msg) {
  session->loop->Post(
      [this, session, msg] { OfferConflatedOnLoop(session, *msg); });
}

void Server::OfferConflatedOnLoop(const SessionPtr& session, const Message& msg) {
  if (!session->open.load(std::memory_order_relaxed) || !session->conflator) {
    return;
  }
  session->conflator->Offer(msg, session->loop->Now());
  if (!session->conflateTimerArmed) {
    session->conflateTimerArmed = true;
    session->loop->ScheduleTimer(cfg_.conflate.interval,
                                 [this, session] { FlushConflator(session); });
  }
}

void Server::FlushConflator(const SessionPtr& session) {
  session->conflateTimerArmed = false;
  if (!session->open.load(std::memory_order_relaxed) || !session->conflator) return;
  session->conflator->OnTime(session->loop->Now());
  if (const auto deadline = session->conflator->Deadline()) {
    session->conflateTimerArmed = true;
    session->loop->ScheduleTimer(*deadline - session->loop->Now(),
                                 [this, session] { FlushConflator(session); });
  }
}

void Server::FlushBatch(const SessionPtr& session) {
  session->flushTimerArmed = false;
  if (!session->open.load(std::memory_order_relaxed) || !session->batcher) return;
  session->batcher->OnTime(session->loop->Now());
  if (const auto deadline = session->batcher->Deadline()) {
    session->flushTimerArmed = true;
    session->loop->ScheduleTimer(*deadline - session->loop->Now(),
                                 [this, session] { FlushBatch(session); });
  }
}

}  // namespace md::core
