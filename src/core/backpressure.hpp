// Slow-consumer overflow policy (paper §4: a handful of stalled clients must
// not consume unbounded server memory).
//
// The transport enforces the mechanical bound (src/transport/transport.hpp
// Watermarks: soft = advisory kCapacity, hard = append rejected), and the
// embedding server chooses what to do with a session that crossed the soft
// mark. Shared between the single-node engine (core::Server) and the cluster
// hosts (tcp_host / sim_cluster) so both delivery paths obey one policy.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "transport/transport.hpp"

namespace md::core {

enum class OverflowPolicy : std::uint8_t {
  /// Default: evict the session (kCapacity close reason). At-least-once
  /// clients recover by reconnecting and resuming from their last position —
  /// the cache/cursor path replays everything missed, in order.
  kDisconnect,
  /// Route the session's topics through the Conflator while it is over the
  /// soft mark: it keeps receiving the newest value per topic at a bounded
  /// rate instead of an ever-growing backlog ("current value" streams).
  kConflate,
  /// At-most-once sessions: silently drop new deliveries while over the soft
  /// mark (counted in md_slow_consumer_dropped_total).
  kDropNewest,
};

struct BackpressureConfig {
  std::size_t softWatermark = 1 * 1024 * 1024;
  std::size_t hardWatermark = 4 * 1024 * 1024;
  /// Drained notification threshold (recovery from an excursion).
  std::size_t lowWatermark = 128 * 1024;
  OverflowPolicy policy = OverflowPolicy::kDisconnect;
  /// kDisconnect evicts only if the session is still over the soft mark this
  /// long after first crossing it — a healthy client absorbing a burst
  /// drains within the grace and survives; a stalled one does not.
  Duration evictGrace = 250 * kMillisecond;

  [[nodiscard]] Watermarks ToWatermarks() const {
    return Watermarks{softWatermark, hardWatermark, lowWatermark};
  }
};

}  // namespace md::core
