// Batching and conflation (paper §4).
//
// Batching collects encoded frames for a client until a byte budget or a
// time budget is reached, then emits them as a single I/O operation.
// Conflation aggregates messages per topic over an interval and emits only
// the newest message of each topic — appropriate for "current value" streams
// (prices, scores) updated at high frequency.
//
// Both are deterministic, clock-driven components owned per client; the
// embedding server drives time via Deadline()/OnDeadline().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "proto/message.hpp"

namespace md::core {

struct BatchConfig {
  Duration maxDelay = 10 * kMillisecond;  // flush at latest this long after 1st frame
  std::size_t maxBytes = 64 * 1024;       // flush when this much is pending
};

/// Byte-level batcher: accumulates already-encoded frames.
class Batcher {
 public:
  using FlushFn = std::function<void(BytesView)>;

  Batcher(BatchConfig cfg, FlushFn flush)
      : cfg_(cfg), flush_(std::move(flush)) {}

  /// Adds one encoded frame; may trigger an immediate size-based flush.
  void Enqueue(BytesView frameBytes, TimePoint now) {
    if (pending_.empty()) firstEnqueued_ = now;
    pending_.insert(pending_.end(), frameBytes.begin(), frameBytes.end());
    if (pending_.size() >= cfg_.maxBytes) Flush();
  }

  /// Earliest time a time-based flush is due (nullopt when nothing pending).
  [[nodiscard]] std::optional<TimePoint> Deadline() const {
    if (pending_.empty()) return std::nullopt;
    return firstEnqueued_ + cfg_.maxDelay;
  }

  /// Flushes if the deadline has passed.
  void OnTime(TimePoint now) {
    if (!pending_.empty() && now >= firstEnqueued_ + cfg_.maxDelay) Flush();
  }

  void Flush() {
    if (pending_.empty()) return;
    ++flushCount_;
    flushedBytes_ += pending_.size();
    flush_(BytesView(pending_));
    pending_.clear();
  }

  [[nodiscard]] std::size_t PendingBytes() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t FlushCount() const noexcept { return flushCount_; }
  [[nodiscard]] std::uint64_t FlushedBytes() const noexcept { return flushedBytes_; }

 private:
  BatchConfig cfg_;
  FlushFn flush_;
  Bytes pending_;
  TimePoint firstEnqueued_ = 0;
  std::uint64_t flushCount_ = 0;
  std::uint64_t flushedBytes_ = 0;
};

struct ConflateConfig {
  Duration interval = 100 * kMillisecond;  // aggregation window
};

/// Message-level conflator: within a window, only the newest message per
/// topic survives. Emission preserves topic first-arrival order.
class Conflator {
 public:
  using EmitFn = std::function<void(const Message&)>;

  Conflator(ConflateConfig cfg, EmitFn emit)
      : cfg_(cfg), emit_(std::move(emit)) {}

  void Offer(const Message& msg, TimePoint now) {
    if (slots_.empty()) windowStart_ = now;
    ++offered_;
    const auto it = bySlot_.find(msg.topic);
    if (it == bySlot_.end()) {
      bySlot_[msg.topic] = slots_.size();
      slots_.push_back(msg);
    } else {
      slots_[it->second] = msg;  // newest wins
    }
  }

  [[nodiscard]] std::optional<TimePoint> Deadline() const {
    if (slots_.empty()) return std::nullopt;
    return windowStart_ + cfg_.interval;
  }

  void OnTime(TimePoint now) {
    if (!slots_.empty() && now >= windowStart_ + cfg_.interval) Flush();
  }

  void Flush() {
    if (slots_.empty()) return;
    for (const Message& m : slots_) {
      ++emitted_;
      emit_(m);
    }
    slots_.clear();
    bySlot_.clear();
  }

  [[nodiscard]] std::uint64_t OfferedCount() const noexcept { return offered_; }
  [[nodiscard]] std::uint64_t EmittedCount() const noexcept { return emitted_; }

 private:
  ConflateConfig cfg_;
  EmitFn emit_;
  std::vector<Message> slots_;
  std::map<std::string, std::size_t> bySlot_;
  TimePoint windowStart_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace md::core
