// Batching and conflation (paper §4).
//
// Batching collects encoded frames for a client until a byte budget or a
// time budget is reached, then emits them as a single I/O operation.
// Conflation aggregates messages per topic over an interval and emits only
// the newest message of each topic — appropriate for "current value" streams
// (prices, scores) updated at high frequency.
//
// Both are deterministic, clock-driven components owned per client; the
// embedding server drives time via Deadline()/OnDeadline().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/flat_map.hpp"
#include "common/hash.hpp"
#include "common/time.hpp"
#include "common/topic_intern.hpp"
#include "proto/message.hpp"

namespace md::core {

struct BatchConfig {
  Duration maxDelay = 10 * kMillisecond;  // flush at latest this long after 1st frame
  std::size_t maxBytes = 64 * 1024;       // flush when this much is pending
};

/// Byte-level batcher: accumulates already-encoded frames.
class Batcher {
 public:
  using FlushFn = std::function<void(BytesView)>;

  Batcher(BatchConfig cfg, FlushFn flush)
      : cfg_(cfg), flush_(std::move(flush)) {}

  /// Adds one encoded frame; may trigger an immediate size-based flush.
  void Enqueue(BytesView frameBytes, TimePoint now) {
    if (pending_.empty()) firstEnqueued_ = now;
    pending_.insert(pending_.end(), frameBytes.begin(), frameBytes.end());
    if (pending_.size() >= cfg_.maxBytes) Flush();
  }

  /// Earliest time a time-based flush is due (nullopt when nothing pending).
  [[nodiscard]] std::optional<TimePoint> Deadline() const {
    if (pending_.empty()) return std::nullopt;
    return firstEnqueued_ + cfg_.maxDelay;
  }

  /// Flushes if the deadline has passed.
  void OnTime(TimePoint now) {
    if (!pending_.empty() && now >= firstEnqueued_ + cfg_.maxDelay) Flush();
  }

  void Flush() {
    if (pending_.empty()) return;
    ++flushCount_;
    flushedBytes_ += pending_.size();
    flush_(BytesView(pending_));
    // clear() keeps the allocation, so the steady state refills the same
    // buffer with zero reallocations window after window. Only a
    // pathological burst far beyond the size budget releases memory.
    pending_.clear();
    if (pending_.capacity() > ShrinkThreshold()) Bytes().swap(pending_);
  }

  [[nodiscard]] std::size_t PendingBytes() const noexcept { return pending_.size(); }
  /// Retained buffer capacity (tests assert no-realloc steady state).
  [[nodiscard]] std::size_t BufferCapacity() const noexcept {
    return pending_.capacity();
  }
  /// Capacity above which Flush releases the buffer instead of retaining it.
  [[nodiscard]] std::size_t ShrinkThreshold() const noexcept {
    return 4 * cfg_.maxBytes + 64 * 1024;
  }
  [[nodiscard]] std::uint64_t FlushCount() const noexcept { return flushCount_; }
  [[nodiscard]] std::uint64_t FlushedBytes() const noexcept { return flushedBytes_; }

 private:
  BatchConfig cfg_;
  FlushFn flush_;
  Bytes pending_;
  TimePoint firstEnqueued_ = 0;
  std::uint64_t flushCount_ = 0;
  std::uint64_t flushedBytes_ = 0;
};

struct ConflateConfig {
  Duration interval = 100 * kMillisecond;  // aggregation window
};

/// Message-level conflator: within a window, only the newest message per
/// topic survives. Emission preserves topic first-arrival order.
class Conflator {
 public:
  using EmitFn = std::function<void(const Message&)>;

  Conflator(ConflateConfig cfg, EmitFn emit)
      : cfg_(cfg), emit_(std::move(emit)) {}

  void Offer(const Message& msg, TimePoint now) {
    if (slots_.empty()) windowStart_ = now;
    ++offered_;
    // Slots are keyed by interned topic id: a 12-byte FlatMap entry per
    // live topic instead of a string-keyed hash node (DESIGN.md §15).
    const TopicId id = TopicTable::Default().Intern(msg.topic);
    if (auto* slot = bySlot_.Find(id)) {
      slots_[*slot] = msg;  // newest wins
    } else {
      bySlot_[id] = slots_.size();
      slots_.push_back(msg);
    }
  }

  [[nodiscard]] std::optional<TimePoint> Deadline() const {
    if (slots_.empty()) return std::nullopt;
    return windowStart_ + cfg_.interval;
  }

  void OnTime(TimePoint now) {
    if (!slots_.empty() && now >= windowStart_ + cfg_.interval) Flush();
  }

  void Flush() {
    if (slots_.empty()) return;
    for (const Message& m : slots_) {
      ++emitted_;
      emit_(m);
    }
    // Both containers keep their allocations across windows (vector clear()
    // retains capacity; unordered_map clear() retains its bucket array), so
    // a steady per-window topic set never reallocates. A one-off burst far
    // above the steady state releases the slot storage.
    slots_.clear();
    if (slots_.capacity() > kShrinkSlots) {
      std::vector<Message>().swap(slots_);
      slots_.reserve(kShrinkSlots / 4);
    }
    bySlot_.Clear();
  }

  /// Pre-sizes both containers for an expected per-window topic count.
  void Reserve(std::size_t topics) {
    slots_.reserve(topics);
    bySlot_.Reserve(topics);
  }

  [[nodiscard]] std::uint64_t OfferedCount() const noexcept { return offered_; }
  [[nodiscard]] std::uint64_t EmittedCount() const noexcept { return emitted_; }
  /// Retained slot capacity (tests assert no-realloc steady state).
  [[nodiscard]] std::size_t SlotCapacity() const noexcept {
    return slots_.capacity();
  }
  [[nodiscard]] std::size_t SlotBuckets() const noexcept {
    return bySlot_.capacity();
  }

  static constexpr std::size_t kShrinkSlots = 4096;

 private:
  ConflateConfig cfg_;
  EmitFn emit_;
  std::vector<Message> slots_;
  md::FlatMap<TopicId, std::size_t> bySlot_;
  TimePoint windowStart_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace md::core
