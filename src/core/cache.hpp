// Topic-history cache (paper §4).
//
// Maintains, per topic, the recent messages needed for (a) subscriber
// recovery after reconnection and (b) server cache reconstruction after a
// crash or partition. Topics are grouped into topic groups by hashing their
// name; each group's data structure is locked independently ("cache data
// structures for each group are locked independently"), which keeps writes
// mostly uncontended because each cluster member coordinates a distinct
// subset of groups.
//
// Footprint (DESIGN.md §15): inside a shard, histories are keyed by interned
// TopicId in a FlatMap (no per-topic string copies, no map nodes) and entry
// deques draw their blocks from the slab arena. Group assignment stays the
// FNV-1a hash of the topic NAME — ids are local and never affect which group
// (and therefore which cluster coordinator / WAL stream) a topic belongs to.
//
// Retention is bounded per topic (count) — production deployments bound by
// time as well; both knobs exist here.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/hash.hpp"
#include "common/slab.hpp"
#include "common/time.hpp"
#include "common/topic_intern.hpp"
#include "proto/message.hpp"
#include "wal/log.hpp"

namespace md::core {

struct CacheConfig {
  std::uint32_t topicGroups = 100;       // paper: "typical installation uses 100"
  std::size_t maxMessagesPerTopic = 1000;
  Duration maxAge = 0;                   // 0 = no age-based eviction
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg = {});

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Routes every subsequent successful Append/Insert through `wal` (while
  /// the shard lock is held, so the WAL sees the cache's per-group order).
  /// Call before serving traffic; pass nullptr to detach. The Log must
  /// outlive the Cache.
  void AttachWal(wal::Log* wal) { wal_ = wal; }

  /// Appends a sequenced message to its topic's history. Out-of-date
  /// duplicates (pos <= last cached pos) are ignored; returns true if stored.
  bool Append(const Message& msg, TimePoint now = 0);

  /// Sorted insert for recovery merges: unlike Append, accepts messages
  /// older than the newest cached position and backfills them in order
  /// (duplicates still ignored). O(n) in the topic history — recovery only.
  bool Insert(const Message& msg, TimePoint now = 0);

  /// Insert WITHOUT writing the WAL — the apply path of WAL recovery (the
  /// record is already durable; re-appending it would double it on disk).
  bool InsertRecovered(const Message& msg, TimePoint now = 0);

  /// Messages of `topic` strictly after `pos`, in (epoch, seq) order.
  [[nodiscard]] std::vector<Message> GetAfter(const std::string& topic,
                                              StreamPos pos,
                                              std::size_t maxCount = SIZE_MAX) const;

  /// Position of the newest cached message of `topic` (nullopt if none).
  [[nodiscard]] std::optional<StreamPos> LastPos(const std::string& topic) const;

  /// Every cached message of every topic in `group`, ordered per topic —
  /// used to serve CacheSyncReq from recovering peers (paper §5.2.2).
  [[nodiscard]] std::vector<Message> GroupSnapshot(std::uint32_t group) const;

  /// Newest position per topic within `group` (the "have" list of a
  /// CacheSyncReq).
  [[nodiscard]] std::vector<std::pair<std::string, StreamPos>> GroupPositions(
      std::uint32_t group) const;

  /// Last position of the longest contiguous PREFIX per topic in `group`
  /// (consecutive entries with the same epoch and seq+1 steps). A WAL-
  /// recovered history can have interior holes — corrupt records skipped,
  /// ENOSPC windows — and a sync "have" cursor past a hole would stop peers
  /// from ever refilling it; this cursor makes them resend the suspicious
  /// span instead (Insert dedups the overlap).
  [[nodiscard]] std::vector<std::pair<std::string, StreamPos>>
  GroupContiguousPositions(std::uint32_t group) const;

  /// Per topic in `group`: the OLDEST position still cached. Cache-sync
  /// requests send these as the `head` list so peers resend anything older
  /// they still hold — a hole that falls before the surviving history (bit
  /// flip or ENOSPC that took a topic's first records) is invisible to any
  /// forward cursor and can only be healed from this side.
  [[nodiscard]] std::vector<std::pair<std::string, StreamPos>>
  GroupEarliestPositions(std::uint32_t group) const;

  /// Drop entries older than `now - maxAge` (no-op when maxAge == 0).
  void EvictExpired(TimePoint now);

  /// Total cached messages (approximate under concurrency).
  [[nodiscard]] std::size_t TotalMessages() const;

  [[nodiscard]] std::uint32_t GroupOf(const std::string& topic) const noexcept {
    return TopicGroupOf(topic, cfg_.topicGroups);
  }
  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }

  void Clear();

 private:
  struct CachedMessage {
    Message msg;
    TimePoint storedAt;
  };

  struct TopicHistory {
    // Ordered by (epoch, seq); blocks come from the slab arena so history
    // churn does not fragment the general heap.
    std::deque<CachedMessage, SlabAllocator<CachedMessage>> entries;
  };

  struct Shard {
    mutable std::mutex mutex;
    md::FlatMap<TopicId, TopicHistory> topics;
  };

  [[nodiscard]] Shard& ShardFor(const std::string& topic) {
    return shards_[GroupOf(topic)];
  }
  [[nodiscard]] const Shard& ShardFor(const std::string& topic) const {
    return shards_[GroupOf(topic)];
  }

  bool InsertLocked(Shard& shard, const Message& msg, TimePoint now,
                    bool writeWal);

  /// Sorted-by-name (topic id, name) list of a shard's non-empty histories.
  /// Group outputs iterate this so their order matches the old
  /// std::map<std::string, ...> behavior deterministically.
  static std::vector<std::pair<TopicId, std::string_view>> SortedTopicsLocked(
      const Shard& shard);

  CacheConfig cfg_;
  std::vector<Shard> shards_;  // one per topic group
  wal::Log* wal_ = nullptr;    // optional durability hook
};

}  // namespace md::core
