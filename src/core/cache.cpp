#include "core/cache.hpp"

#include <algorithm>

namespace md::core {

namespace {

TopicTable& Topics() { return TopicTable::Default(); }

}  // namespace

Cache::Cache(CacheConfig cfg) : cfg_(cfg), shards_(cfg.topicGroups) {}

bool Cache::Append(const Message& msg, TimePoint now) {
  const TopicId id = Topics().Intern(msg.topic);
  if (id == kInvalidTopicId) return false;
  Shard& shard = ShardFor(msg.topic);
  std::lock_guard lock(shard.mutex);
  TopicHistory& history = shard.topics[id];

  if (!history.entries.empty()) {
    const StreamPos last = PosOf(history.entries.back().msg);
    if (PosOf(msg) <= last) return false;  // duplicate or stale
  }
  history.entries.push_back({msg, now});
  while (history.entries.size() > cfg_.maxMessagesPerTopic) {
    history.entries.pop_front();
  }
  // Under the shard lock so the WAL records a group's appends in cache
  // order; failures (ENOSPC) are counted by the Log, the in-memory cache
  // stays authoritative for serving either way.
  if (wal_ != nullptr) (void)wal_->Append(GroupOf(msg.topic), msg, now);
  return true;
}

bool Cache::Insert(const Message& msg, TimePoint now) {
  Shard& shard = ShardFor(msg.topic);
  std::lock_guard lock(shard.mutex);
  return InsertLocked(shard, msg, now, /*writeWal=*/true);
}

bool Cache::InsertRecovered(const Message& msg, TimePoint now) {
  Shard& shard = ShardFor(msg.topic);
  std::lock_guard lock(shard.mutex);
  return InsertLocked(shard, msg, now, /*writeWal=*/false);
}

bool Cache::InsertLocked(Shard& shard, const Message& msg, TimePoint now,
                         bool writeWal) {
  const TopicId id = Topics().Intern(msg.topic);
  if (id == kInvalidTopicId) return false;
  TopicHistory& history = shard.topics[id];
  auto& entries = history.entries;

  const auto it = std::lower_bound(
      entries.begin(), entries.end(), PosOf(msg),
      [](const CachedMessage& m, StreamPos p) { return PosOf(m.msg) < p; });
  if (it != entries.end() && PosOf(it->msg) == PosOf(msg)) return false;
  entries.insert(it, {msg, now});
  while (entries.size() > cfg_.maxMessagesPerTopic) entries.pop_front();
  if (writeWal && wal_ != nullptr) {
    (void)wal_->Append(GroupOf(msg.topic), msg, now);
  }
  return true;
}

std::vector<Message> Cache::GetAfter(const std::string& topic, StreamPos pos,
                                     std::size_t maxCount) const {
  const TopicId id = Topics().Find(topic);
  if (id == kInvalidTopicId) return {};
  const Shard& shard = ShardFor(topic);
  std::lock_guard lock(shard.mutex);
  std::vector<Message> out;
  const TopicHistory* history = shard.topics.Find(id);
  if (history == nullptr) return out;

  // Binary search: entries are ordered by (epoch, seq).
  const auto& entries = history->entries;
  auto first = std::upper_bound(
      entries.begin(), entries.end(), pos,
      [](StreamPos p, const CachedMessage& m) { return p < PosOf(m.msg); });
  for (; first != entries.end() && out.size() < maxCount; ++first) {
    out.push_back(first->msg);
  }
  return out;
}

std::optional<StreamPos> Cache::LastPos(const std::string& topic) const {
  const TopicId id = Topics().Find(topic);
  if (id == kInvalidTopicId) return std::nullopt;
  const Shard& shard = ShardFor(topic);
  std::lock_guard lock(shard.mutex);
  const TopicHistory* history = shard.topics.Find(id);
  if (history == nullptr || history->entries.empty()) return std::nullopt;
  return PosOf(history->entries.back().msg);
}

std::vector<std::pair<TopicId, std::string_view>> Cache::SortedTopicsLocked(
    const Shard& shard) {
  std::vector<std::pair<TopicId, std::string_view>> topics;
  topics.reserve(shard.topics.size());
  shard.topics.ForEach([&](TopicId id, const TopicHistory& history) {
    if (!history.entries.empty()) {
      topics.emplace_back(id, Topics().NameOf(id));
    }
  });
  std::sort(topics.begin(), topics.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return topics;
}

std::vector<Message> Cache::GroupSnapshot(std::uint32_t group) const {
  std::vector<Message> out;
  if (group >= shards_.size()) return out;
  const Shard& shard = shards_[group];
  std::lock_guard lock(shard.mutex);
  for (const auto& [id, name] : SortedTopicsLocked(shard)) {
    const TopicHistory* history = shard.topics.Find(id);
    for (const auto& cached : history->entries) out.push_back(cached.msg);
  }
  return out;
}

std::vector<std::pair<std::string, StreamPos>> Cache::GroupPositions(
    std::uint32_t group) const {
  std::vector<std::pair<std::string, StreamPos>> out;
  if (group >= shards_.size()) return out;
  const Shard& shard = shards_[group];
  std::lock_guard lock(shard.mutex);
  for (const auto& [id, name] : SortedTopicsLocked(shard)) {
    const TopicHistory* history = shard.topics.Find(id);
    out.emplace_back(std::string(name), PosOf(history->entries.back().msg));
  }
  return out;
}

std::vector<std::pair<std::string, StreamPos>> Cache::GroupEarliestPositions(
    std::uint32_t group) const {
  std::vector<std::pair<std::string, StreamPos>> out;
  if (group >= shards_.size()) return out;
  const Shard& shard = shards_[group];
  std::lock_guard lock(shard.mutex);
  for (const auto& [id, name] : SortedTopicsLocked(shard)) {
    const TopicHistory* history = shard.topics.Find(id);
    out.emplace_back(std::string(name), PosOf(history->entries.front().msg));
  }
  return out;
}

std::vector<std::pair<std::string, StreamPos>> Cache::GroupContiguousPositions(
    std::uint32_t group) const {
  std::vector<std::pair<std::string, StreamPos>> out;
  if (group >= shards_.size()) return out;
  const Shard& shard = shards_[group];
  std::lock_guard lock(shard.mutex);
  for (const auto& [id, name] : SortedTopicsLocked(shard)) {
    const auto& entries = shard.topics.Find(id)->entries;
    StreamPos last = PosOf(entries.front().msg);
    for (std::size_t i = 1; i < entries.size(); ++i) {
      const StreamPos next = PosOf(entries[i].msg);
      // Same contiguity rule as the live gap check: only a same-epoch +1
      // step is provably hole-free (epoch changes restart sequences).
      if (next.epoch != last.epoch || next.seq != last.seq + 1) break;
      last = next;
    }
    out.emplace_back(std::string(name), last);
  }
  return out;
}

void Cache::EvictExpired(TimePoint now) {
  if (cfg_.maxAge == 0) return;
  const TimePoint cutoff = now - cfg_.maxAge;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    std::vector<TopicId> emptied;
    shard.topics.ForEach([&](TopicId id, TopicHistory& history) {
      auto& entries = history.entries;
      while (!entries.empty() && entries.front().storedAt < cutoff) {
        entries.pop_front();
      }
      if (entries.empty()) emptied.push_back(id);
    });
    for (const TopicId id : emptied) shard.topics.Erase(id);
  }
}

std::size_t Cache::TotalMessages() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.topics.ForEach([&](TopicId, const TopicHistory& history) {
      total += history.entries.size();
    });
  }
  return total;
}

void Cache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.topics.Clear();
  }
}

}  // namespace md::core
