// Per-topic sequence assignment (coordinator role, paper §5.2.1).
//
// The coordinator of a topic group assigns each incoming publication a
// strictly increasing sequence number within the group's current epoch.
// Epochs rise when coordination moves to a new server, so (epoch, seq)
// totally orders a topic's stream across coordinator changes.
//
// Counters are keyed by interned TopicId (DESIGN.md §15): 12 bytes of
// FlatMap slot per actively-sequenced topic instead of a string-keyed map
// node. The epoch/seq values themselves are untouched — interning never
// leaks into the (epoch, seq) stream positions.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/flat_map.hpp"
#include "common/topic_intern.hpp"
#include "proto/message.hpp"

namespace md::core {

class Sequencer {
 public:
  /// Begin (or resume) sequencing a group at `epoch`. Existing per-topic
  /// counters are dropped — a new epoch restarts sequences from 1; a resumed
  /// epoch continues via PrimeTopic().
  void BeginEpoch(std::uint32_t group, std::uint32_t epoch) {
    std::lock_guard lock(mutex_);
    auto& g = groups_[group];
    g.epoch = epoch;
    g.nextSeq.Clear();
  }

  /// Seeds a topic's counter from the newest cached position (cache
  /// reconstruction: never reissue an already-used sequence number).
  void PrimeTopic(std::uint32_t group, const std::string& topic, StreamPos last) {
    std::lock_guard lock(mutex_);
    auto& g = groups_[group];
    if (last.epoch == g.epoch) {
      auto& next = g.nextSeq[TopicTable::Default().Intern(topic)];
      if (last.seq + 1 > next) next = last.seq + 1;
    }
  }

  /// Assigns the next (epoch, seq) for `topic`; nullopt if this server is not
  /// currently sequencing `group`.
  std::optional<StreamPos> Assign(std::uint32_t group, const std::string& topic) {
    std::lock_guard lock(mutex_);
    const auto it = groups_.find(group);
    if (it == groups_.end()) return std::nullopt;
    auto& next = it->second.nextSeq[TopicTable::Default().Intern(topic)];
    if (next == 0) next = 1;
    return StreamPos{it->second.epoch, next++};
  }

  /// Stop sequencing `group` (coordination lost/released).
  void EndEpoch(std::uint32_t group) {
    std::lock_guard lock(mutex_);
    groups_.erase(group);
  }

  [[nodiscard]] std::optional<std::uint32_t> EpochOf(std::uint32_t group) const {
    std::lock_guard lock(mutex_);
    const auto it = groups_.find(group);
    if (it == groups_.end()) return std::nullopt;
    return it->second.epoch;
  }

  [[nodiscard]] bool IsSequencing(std::uint32_t group) const {
    std::lock_guard lock(mutex_);
    return groups_.contains(group);
  }

 private:
  struct GroupState {
    std::uint32_t epoch = 0;
    md::FlatMap<TopicId, std::uint64_t> nextSeq;
  };

  mutable std::mutex mutex_;
  // Few groups per node (≤ topicGroups, paper default 100): a std::map is
  // fine here; the per-TOPIC fan-out below it is what had to shrink.
  std::map<std::uint32_t, GroupState> groups_;
};

}  // namespace md::core
