// Per-connection session state + the sharded live-session table.
//
// Extracted from Server's internals (DESIGN.md §15) so that (a) the
// footprint bench can allocate REAL sessions — same struct, same allocator,
// same table — instead of a model, and (b) the byte budget is auditable in
// one place: sizeof(Session) plus its slab slot are what the
// md_core_bytes_per_session gauge and bench_c10m's budget gate measure.
//
// Sessions are allocated with std::allocate_shared + SlabAllocator, which
// places the control block and the Session in ONE slab slot: connect/
// disconnect churn recycles freelist slots and performs zero heap
// allocations in steady state.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/slab.hpp"
#include "core/batcher.hpp"
#include "core/registry.hpp"
#include "transport/transport.hpp"

namespace md::core {

struct Session : std::enable_shared_from_this<Session> {
  ClientHandle handle = 0;
  std::size_t ioIndex = 0;
  std::size_t workerIndex = 0;
  ConnectionPtr conn;
  NetLoop* loop = nullptr;

  // Protocol mode, auto-detected from the first bytes. Written only on the
  // session's IoThread (during the handshake, before any frame reaches a
  // Worker); read by Workers on the fan-out encode path, hence atomic.
  enum class Mode : std::uint8_t {
    kDetect,
    kWsHandshake,
    kWs,
    kHttpHandshake,
    kHttp,
    kRaw,
  };
  static constexpr std::size_t kModeCount = 6;
  std::atomic<Mode> mode{Mode::kDetect};
  [[nodiscard]] Mode CurrentMode() const noexcept {
    return mode.load(std::memory_order_relaxed);
  }
  ByteQueue in;

  // Worker-thread state.
  std::string clientId;

  // IoThread-side outgoing batcher/conflator (nullptr when disabled).
  std::unique_ptr<Batcher> batcher;
  bool flushTimerArmed = false;
  std::unique_ptr<Conflator> conflator;
  bool conflateTimerArmed = false;

  // Backpressure state, owned by the session's IoThread (set on a kCapacity
  // Send result, cleared by the connection's drained callback).
  bool overSoft = false;
  bool evictTimerArmed = false;
  bool evicting = false;

  std::atomic<bool> open{true};
};

using SessionPtr = std::shared_ptr<Session>;

/// Allocates a Session through the slab arena: allocate_shared fuses the
/// shared_ptr control block with the object, so one slab slot holds both and
/// SlabArena::Stats() accounts the whole thing.
[[nodiscard]] inline SessionPtr MakeSession() {
  return std::allocate_shared<Session>(SlabAllocator<Session>{});
}

/// Live sessions (fan-out lookup by handle), sharded by a mixed handle hash
/// so concurrent Workers resolving fan-out targets never serialize on one
/// global mutex. Power-of-two count: shard selection is a mask.
class SessionTable {
 public:
  static constexpr std::size_t kShards = 16;
  static_assert((kShards & (kShards - 1)) == 0);

  void Insert(const SessionPtr& session) {
    Shard& shard = ShardOf(session->handle);
    std::lock_guard lock(shard.mutex);
    shard.map[session->handle] = session;
  }

  [[nodiscard]] SessionPtr Find(ClientHandle handle) const {
    const Shard& shard = ShardOf(handle);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.map.find(handle);
    return it == shard.map.end() ? nullptr : it->second;
  }

  void Erase(ClientHandle handle) {
    Shard& shard = ShardOf(handle);
    std::lock_guard lock(shard.mutex);
    shard.map.erase(handle);
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      shard.map.clear();
    }
  }

  [[nodiscard]] std::size_t Size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  /// Approximate bytes of the table itself (buckets + nodes), for the
  /// footprint accounting. The Sessions pointed to are slab-accounted.
  [[nodiscard]] std::size_t MemoryBytes() const {
    std::size_t total = sizeof(*this);
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      // libstdc++ node: key+value + hash-node header (~2 ptrs); buckets are
      // one pointer each.
      total += shard.map.bucket_count() * sizeof(void*) +
               shard.map.size() *
                   (sizeof(ClientHandle) + sizeof(SessionPtr) + 2 * sizeof(void*));
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<ClientHandle, SessionPtr> map;
  };

  [[nodiscard]] Shard& ShardOf(ClientHandle handle) {
    return shards_[MixU64(handle) & (kShards - 1)];
  }
  [[nodiscard]] const Shard& ShardOf(ClientHandle handle) const {
    return shards_[MixU64(handle) & (kShards - 1)];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace md::core
