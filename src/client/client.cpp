#include "client/client.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "proto/http_stream.hpp"

namespace md::client {

Client::Client(EventLoop& loop, ClientConfig cfg)
    : loop_(loop), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  clientHash_ = Fnv1a64(cfg_.clientId);
  if (cfg_.useWebSocket) cfg_.transport = Transport::kWebSocket;
}

Client::~Client() { Stop(); }

void Client::Start() {
  if (state_ != State::kIdle && state_ != State::kStopped) return;
  state_ = State::kIdle;
  ConnectToSomeServer();
}

void Client::Stop() {
  state_ = State::kStopped;
  for (auto& [counter, pending] : pendingPublishes_) {
    loop_.CancelTimer(pending.retryTimer);
    if (pending.onAck) pending.onAck(Err(ErrorCode::kClosed, "client stopped"));
  }
  pendingPublishes_.clear();
  if (conn_) {
    conn_->SetCloseHandler(nullptr);
    conn_->Close();
    conn_.reset();
  }
}

// ---------------------------------------------------------------------------
// Connection management
// ---------------------------------------------------------------------------

std::optional<std::size_t> Client::PickServer() {
  // A HANDOFF redirect names the new partition owner explicitly; honor it
  // once (even if blacklisted — the redirect is authoritative and fresher
  // than any blacklist entry), then fall back to weighted random.
  if (!handoffTargetId_.empty()) {
    const std::string target = std::move(handoffTargetId_);
    handoffTargetId_.clear();
    for (std::size_t i = 0; i < cfg_.servers.size(); ++i) {
      if (cfg_.servers[i].id == target) {
        blacklist_.erase(i);
        return i;
      }
    }
  }
  const TimePoint now = loop_.Now();
  // Expire blacklist entries ("previously-failed servers are periodically
  // removed from the client blacklist", §5.2.3).
  for (auto it = blacklist_.begin(); it != blacklist_.end();) {
    it = it->second <= now ? blacklist_.erase(it) : std::next(it);
  }

  double totalWeight = 0;
  for (std::size_t i = 0; i < cfg_.servers.size(); ++i) {
    if (!blacklist_.contains(i)) totalWeight += cfg_.servers[i].weight;
  }
  if (totalWeight <= 0) {
    // Everything blacklisted: clear and retry the full list rather than
    // stalling (a restarted server reuses its address, §5.1).
    blacklist_.clear();
    for (const auto& s : cfg_.servers) totalWeight += s.weight;
    if (totalWeight <= 0) return std::nullopt;
  }

  double pick = rng_.NextDouble() * totalWeight;
  for (std::size_t i = 0; i < cfg_.servers.size(); ++i) {
    if (blacklist_.contains(i)) continue;
    pick -= cfg_.servers[i].weight;
    if (pick <= 0) return i;
  }
  for (std::size_t i = cfg_.servers.size(); i-- > 0;) {
    if (!blacklist_.contains(i)) return i;
  }
  return std::nullopt;
}

void Client::ConnectToSomeServer() {
  if (state_ == State::kStopped) return;
  const auto pick = PickServer();
  if (!pick) {
    MD_WARN("client %s: no servers configured", cfg_.clientId.c_str());
    return;
  }
  currentServer_ = pick;
  state_ = State::kConnecting;
  const ServerAddress& addr = cfg_.servers[*pick];
  loop_.Connect(addr.host, addr.port, [this](Result<ConnectionPtr> r) {
    if (state_ == State::kStopped) return;
    if (!r.ok()) {
      OnConnectionLost();
      return;
    }
    OnConnected(std::move(r).value());
  });
}

void Client::OnConnected(ConnectionPtr conn) {
  conn_ = std::move(conn);
  in_.Clear();
  conn_->SetDataHandler([this](BytesView data) { OnData(data); });
  conn_->SetCloseHandler([this] { OnConnectionLost(); });
  // A paused client stays paused across reconnects (chaos fault windows span
  // the eviction + reconnect cycle they are meant to exercise).
  if (readPaused_) conn_->SetReadPaused(true);

  const ServerAddress& addr = cfg_.servers[*currentServer_];
  switch (cfg_.transport) {
    case Transport::kWebSocket: {
      state_ = State::kWsHandshake;
      wsKey_ = ws::GenerateKey(rng_);
      const std::string request = ws::BuildClientHandshake(
          addr.host + ":" + std::to_string(addr.port), "/", wsKey_);
      (void)conn_->Send(AsBytes(request));
      break;
    }
    case Transport::kHttpStream: {
      state_ = State::kHttpHandshake;
      const std::string request = http::BuildStreamRequest(
          addr.host + ":" + std::to_string(addr.port));
      (void)conn_->Send(AsBytes(request));
      break;
    }
    case Transport::kRawFraming:
      state_ = State::kEstablished;
      OnEstablished();
      break;
  }
}

void Client::OnConnectionLost() {
  if (state_ == State::kStopped) return;
  ++connGen_;
  awaitingPong_ = false;
  const bool wasEstablished = state_ == State::kEstablished;
  if (conn_) {
    conn_->SetCloseHandler(nullptr);
    conn_->Close();
    conn_.reset();
  }
  // Blacklist the failed server temporarily (§5.2.3).
  if (currentServer_ && cfg_.servers.size() > 1) {
    blacklist_[*currentServer_] = loop_.Now() + cfg_.blacklistTtl;
  }
  if (wasEstablished && connectionListener_) connectionListener_(false);
  state_ = State::kIdle;
  serverId_.clear();
  if (cfg_.autoReconnect) ScheduleReconnect();
}

Duration Client::ComputeReconnectDelay(const ClientConfig& cfg, int attempt,
                                       Rng& rng) {
  if (cfg.reconnectPolicy == ReconnectPolicy::kRandomWait) {
    // "a random wait between reconnection intervals" (§5.2.3).
    return static_cast<Duration>(
        rng.NextBelow(static_cast<std::uint64_t>(cfg.randomWaitMax)));
  }
  // "a truncated exponential back-off strategy" (§5.2.3), with full jitter.
  Duration ceiling = cfg.backoffBase;
  for (int i = 1; i < attempt && ceiling < cfg.backoffMax; ++i) ceiling *= 2;
  ceiling = std::min(ceiling, cfg.backoffMax);
  return static_cast<Duration>(
      rng.NextBelow(static_cast<std::uint64_t>(ceiling) + 1));
}

void Client::ScheduleReconnect() {
  ++reconnectAttempts_;
  ++stats_.reconnects;
  const Duration delay = ComputeReconnectDelay(cfg_, reconnectAttempts_, rng_);
  loop_.ScheduleTimer(delay, [this] {
    if (state_ == State::kIdle) ConnectToSomeServer();
  });
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

void Client::OnData(BytesView data) {
  in_.Append(data);

  if (state_ == State::kWsHandshake) {
    auto r = ws::ParseServerHandshakeResponse(in_, wsKey_);
    if (!r.status.ok()) {
      MD_WARN("client %s: websocket handshake failed: %s", cfg_.clientId.c_str(),
              r.status.ToString().c_str());
      OnConnectionLost();
      return;
    }
    if (!r.complete) return;
    state_ = State::kEstablished;
    OnEstablished();
  }

  if (state_ == State::kHttpHandshake) {
    auto r = http::ParseStreamResponse(in_);
    if (!r.status.ok()) {
      MD_WARN("client %s: http stream rejected: %s", cfg_.clientId.c_str(),
              r.status.ToString().c_str());
      OnConnectionLost();
      return;
    }
    if (!r.complete) return;
    state_ = State::kEstablished;
    OnEstablished();
  }

  while (state_ == State::kEstablished) {
    std::optional<Frame> frame;
    if (cfg_.transport == Transport::kWebSocket) {
      auto r = ws::ExtractWsFrame(in_, /*expectMasked=*/false);
      if (!r.status.ok()) {
        OnConnectionLost();
        return;
      }
      if (!r.frame) break;
      if (r.frame->opcode == ws::Opcode::kPing) {
        Bytes pong;
        ws::EncodeWsFrame(ws::Opcode::kPong, BytesView(r.frame->payload), pong,
                          rng_.Next() & 0xFFFFFFFF);
        (void)conn_->Send(BytesView(pong));
        continue;
      }
      if (r.frame->opcode == ws::Opcode::kClose) {
        OnConnectionLost();
        return;
      }
      if (r.frame->opcode != ws::Opcode::kBinary) continue;
      auto decoded = DecodeFrame(BytesView(r.frame->payload));
      if (!decoded.ok()) {
        OnConnectionLost();
        return;
      }
      frame = std::move(*decoded);
    } else if (cfg_.transport == Transport::kHttpStream) {
      auto r = http::ExtractChunk(in_);
      if (!r.status.ok() || r.endOfStream) {
        OnConnectionLost();
        return;
      }
      if (!r.payload) break;
      auto decoded = DecodeFrame(BytesView(*r.payload));
      if (!decoded.ok()) {
        OnConnectionLost();
        return;
      }
      frame = std::move(*decoded);
    } else {
      auto r = ExtractFrame(in_);
      if (!r.status.ok()) {
        OnConnectionLost();
        return;
      }
      if (!r.frame) break;
      frame = std::move(*r.frame);
    }
    HandleFrame(*frame);
  }
}

void Client::SendFrame(const Frame& frame) {
  if (!conn_ || state_ != State::kEstablished) return;
  Bytes wire;
  switch (cfg_.transport) {
    case Transport::kWebSocket: {
      Bytes body;
      EncodeFrame(frame, body);
      // Client-to-server frames must be masked (RFC 6455 §5.3).
      ws::EncodeWsFrame(ws::Opcode::kBinary, BytesView(body), wire,
                        static_cast<std::uint32_t>(rng_.Next()));
      break;
    }
    case Transport::kHttpStream: {
      Bytes body;
      EncodeFrame(frame, body);
      http::EncodeChunk(BytesView(body), wire);
      break;
    }
    case Transport::kRawFraming:
      EncodeFramed(frame, wire);
      break;
  }
  (void)conn_->Send(BytesView(wire));
}

void Client::OnEstablished() {
  reconnectAttempts_ = 0;
  ++connGen_;
  awaitingPong_ = false;
  if (cfg_.pingInterval > 0) SchedulePing();
  SendFrame(ConnectFrame{cfg_.clientId});
  // Re-subscribe everything, resuming after the last received position so
  // the server replays whatever we missed (§5.2.3).
  for (const auto& [topic, ts] : topics_) SendSubscribe(topic, ts);
  // Re-send unacknowledged publications (at-least-once).
  for (auto& [counter, pending] : pendingPublishes_) {
    SendPublish(pending);
    ++stats_.republishes;
  }
  if (connectionListener_) connectionListener_(true);
}

void Client::HandleFrame(const Frame& frame) {
  if (const auto* connAck = std::get_if<ConnAckFrame>(&frame)) {
    serverId_ = connAck->serverId;
    return;
  }
  if (const auto* deliver = std::get_if<DeliverFrame>(&frame)) {
    HandleDeliver(deliver->msg);
    return;
  }
  if (const auto* pubAck = std::get_if<PubAckFrame>(&frame)) {
    auto node = pendingPublishes_.extract(pubAck->pubId.counter);
    if (node.empty()) return;  // late/duplicate ack
    loop_.CancelTimer(node.mapped().retryTimer);
    if (pubAck->ok()) {
      if (node.mapped().onAck) node.mapped().onAck(OkStatus());
    } else if (pubAck->code == PubAckCode::kNoQuorum) {
      // Retryable rejection: the contact server sits in a partitioned
      // minority and refuses to sequence. Re-arm the ack timer without
      // resending — the retry lands after backoff, by which time the
      // partition has healed or reconnection moved us to the majority side.
      ++stats_.quorumRejects;
      PendingPublish pending = std::move(node.mapped());
      ArmAckTimer(pending);
      pendingPublishes_.emplace(pending.pubId.counter, std::move(pending));
    } else {
      // Publication failed (e.g. coordinator race, §5.2.2 footnote 3):
      // republish — guaranteed to eventually succeed via updated routing.
      PendingPublish pending = std::move(node.mapped());
      ++stats_.republishes;
      SendPublish(pending);
      ArmAckTimer(pending);
      pendingPublishes_.emplace(pending.pubId.counter, std::move(pending));
    }
    return;
  }
  if (const auto* handoff = std::get_if<HandoffFrame>(&frame)) {
    // Our subscriber partition moved. Adopt the transferred delivered-through
    // cursors for topics we hold no position on (our own lastPos is
    // authoritative when present — the server cursor can run ahead of bytes
    // dropped with the old connection, and skipping those would lose
    // messages), then reconnect straight to the new owner.
    ++stats_.handoffs;
    for (const auto& [topic, pos] : handoff->cursors) {
      const auto it = topics_.find(topic);
      if (it != topics_.end() && !it->second.lastPos) it->second.lastPos = pos;
    }
    handoffTargetId_ = handoff->targetServerId;
    if (handoffListener_) handoffListener_(*handoff);
    OnConnectionLost();
    return;
  }
  if (const auto* pong = std::get_if<PongFrame>(&frame)) {
    if (pong->nonce == pingNonce_) awaitingPong_ = false;
    return;
  }
  if (std::get_if<DisconnectFrame>(&frame) != nullptr) {
    // Server-initiated close (e.g. partition self-fencing): reconnect
    // elsewhere.
    OnConnectionLost();
    return;
  }
  if (const auto* subAck = std::get_if<SubAckFrame>(&frame)) {
    const auto it = topics_.find(subAck->topic);
    if (it != topics_.end() && subAck->ok && it->second.onSubscribed) {
      it->second.onSubscribed();
    }
    return;
  }
  // Pong and anything else: no action needed.
}

// ---------------------------------------------------------------------------
// Connection liveness (client-side failure detector, paper §5.2.3 / §6.2)
// ---------------------------------------------------------------------------

void Client::SchedulePing() {
  const std::uint64_t gen = connGen_;
  loop_.ScheduleTimer(cfg_.pingInterval, [this, gen] {
    if (gen != connGen_ || state_ != State::kEstablished) return;
    if (awaitingPong_) return;  // check timer already in flight
    awaitingPong_ = true;
    SendFrame(PingFrame{++pingNonce_});
    loop_.ScheduleTimer(cfg_.pongTimeout, [this, gen] {
      if (gen != connGen_ || state_ != State::kEstablished) return;
      if (awaitingPong_) {
        // Dead or unresponsive connection: force a reconnection elsewhere.
        MD_WARN("client %s: ping timeout, reconnecting", cfg_.clientId.c_str());
        OnConnectionLost();
        return;
      }
      SchedulePing();
    });
  });
}

// ---------------------------------------------------------------------------
// Subscribing
// ---------------------------------------------------------------------------

void Client::Subscribe(const std::string& topic, MessageHandler handler,
                       std::function<void()> onSubscribed) {
  TopicState& ts = topics_[topic];
  ts.handler = std::move(handler);
  ts.onSubscribed = std::move(onSubscribed);
  if (state_ == State::kEstablished) SendSubscribe(topic, ts);
}

void Client::SendSubscribe(const std::string& topic, const TopicState& ts) {
  SubscribeFrame sub;
  sub.topic = topic;
  if (ts.lastPos) {
    sub.hasResumePos = true;
    sub.resumeAfter = *ts.lastPos;
  }
  SendFrame(sub);
}

void Client::Unsubscribe(const std::string& topic) {
  if (topics_.erase(topic) > 0 && state_ == State::kEstablished) {
    SendFrame(UnsubscribeFrame{topic});
  }
}

bool Client::IsDuplicate(const Message& msg, TopicState& ts) {
  // Re-sequenced republications carry a fresh (epoch, seq) but the same
  // publication id — the id buffer catches those. A null id means the
  // origin did not stamp one; only position-based filtering applies then.
  if (msg.pubId != PublicationId{} && recentIds_.contains(msg.pubId)) return true;
  // Position-based filtering catches replayed prefixes after resume.
  if (ts.lastPos && PosOf(msg) <= *ts.lastPos) return true;
  return false;
}

void Client::RememberPubId(const PublicationId& id) {
  if (cfg_.dedupBufferSize == 0 || id == PublicationId{}) return;
  if (recentIds_.insert(id).second) {
    recentIdOrder_.push_back(id);
    while (recentIdOrder_.size() > cfg_.dedupBufferSize) {
      recentIds_.erase(recentIdOrder_.front());
      recentIdOrder_.pop_front();
    }
  }
}

void Client::HandleDeliver(const Message& msg) {
  auto it = topics_.find(msg.topic);
  if (it == topics_.end()) return;  // not subscribed (stale delivery)
  TopicState& ts = it->second;

  if (IsDuplicate(msg, ts)) {
    ++stats_.duplicatesFiltered;
    // A filtered duplicate is still a stream-position observation: a
    // re-sequenced duplicate occupies its own position, and the connection
    // delivers in order, so the cursor must advance past it — otherwise a
    // later resume (reconnect or hand-off) would fetch it yet again.
    if (!ts.lastPos || PosOf(msg) > *ts.lastPos) ts.lastPos = PosOf(msg);
    if (deliveryObserver_) deliveryObserver_(msg, /*duplicate=*/true);
    return;
  }
  RememberPubId(msg.pubId);
  if (ts.lastPos && msg.epoch == ts.lastPos->epoch &&
      msg.seq > ts.lastPos->seq + 1) {
    // A visible gap would mean the cache replay missed something; track it
    // as recovered-later when the missing piece arrives out of band. With
    // TCP ordering this should not occur; counted for observability.
    MD_DEBUG("client %s: gap on %s (%llu -> %llu)", cfg_.clientId.c_str(),
             msg.topic.c_str(),
             static_cast<unsigned long long>(ts.lastPos->seq),
             static_cast<unsigned long long>(msg.seq));
  }
  if (ts.lastPos && PosOf(msg) > *ts.lastPos && stats_.reconnects > 0 &&
      state_ == State::kEstablished) {
    // Heuristic: deliveries that advance past a pre-reconnect position right
    // after resume are recovered messages. Only counted, not acted upon.
  }
  ts.lastPos = PosOf(msg);
  ++stats_.messagesReceived;
  if (deliveryObserver_) deliveryObserver_(msg, /*duplicate=*/false);
  if (ts.handler) ts.handler(msg);
}

// ---------------------------------------------------------------------------
// Publishing
// ---------------------------------------------------------------------------

void Client::Publish(const std::string& topic, Bytes payload, AckHandler onAck) {
  PendingPublish pending;
  pending.topic = topic;
  pending.payload = std::move(payload);
  pending.pubId = {clientHash_, ++pubCounter_};
  pending.publishTs = loop_.Now();
  pending.onAck = std::move(onAck);

  SendPublish(pending);
  ArmAckTimer(pending);
  pendingPublishes_.emplace(pending.pubId.counter, std::move(pending));
}

void Client::PublishNoAck(const std::string& topic, Bytes payload) {
  PublishFrame pub;
  pub.topic = topic;
  pub.payload = std::move(payload);
  pub.pubId = {clientHash_, ++pubCounter_};
  pub.wantAck = false;
  pub.publishTs = loop_.Now();
  SendFrame(pub);
}

void Client::SendPublish(const PendingPublish& pending) {
  PublishFrame pub;
  pub.topic = pending.topic;
  pub.payload = pending.payload;
  pub.pubId = pending.pubId;
  pub.wantAck = true;
  pub.publishTs = pending.publishTs;
  SendFrame(pub);
}

void Client::ArmAckTimer(PendingPublish& pending) {
  const std::uint64_t counter = pending.pubId.counter;
  pending.retryTimer = loop_.ScheduleTimer(cfg_.ackTimeout, [this, counter] {
    const auto it = pendingPublishes_.find(counter);
    if (it == pendingPublishes_.end()) return;
    // No ack in time: republish (the service may deliver a duplicate, which
    // subscribers filter by publication id — §3).
    ++stats_.republishes;
    SendPublish(it->second);
    ArmAckTimer(it->second);
  });
}

}  // namespace md::client
