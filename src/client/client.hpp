// MigratoryData client library (paper §3, §5.2.3).
//
// A Client runs single-threaded on an EventLoop (epoll in production,
// in-process/simulated in tests) and provides:
//   - connection establishment over the raw framed protocol or WebSocket,
//   - client-side load balancing: the connection point is picked at
//     (weighted) random from a hard-coded server list,
//   - subscriber recovery: on reconnect it re-subscribes with the (epoch,
//     seq) of the last received message per topic and receives everything
//     missed, in order,
//   - duplicate filtering: per-topic position tracking plus a bounded
//     recent-publication-id buffer (at-least-once may re-sequence a
//     republished message, which position tracking alone cannot catch),
//   - at-least-once publishing: a publication is retried (same publication
//     id) until the service acknowledges it,
//   - failure handling: failed servers are blacklisted temporarily and
//     reconnection uses either a random wait or truncated exponential
//     backoff to avoid the herd effect.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "proto/codec.hpp"
#include "proto/websocket.hpp"
#include "transport/transport.hpp"

namespace md::client {

struct ServerAddress {
  std::string host;
  std::uint16_t port = 0;
  double weight = 1.0;  // heterogeneous deployments bias selection (paper §5.1)
  /// Cluster server id at this address (optional). When set, a HANDOFF
  /// redirect can be honored directly: the client reconnects to the named
  /// new owner instead of a random pick.
  std::string id;
};

/// Wire transport used toward the service (paper §3: "over WebSockets (or
/// HTTP)"; the raw framed protocol is what native SDKs would use).
enum class Transport : std::uint8_t {
  kRawFraming,
  kWebSocket,
  kHttpStream,
};

enum class ReconnectPolicy : std::uint8_t {
  kRandomWait,          // uniform random delay in [0, randomWaitMax)
  kExponentialBackoff,  // truncated exponential with jitter
};

struct ClientConfig {
  std::vector<ServerAddress> servers;
  std::string clientId = "client";
  Transport transport = Transport::kRawFraming;
  bool useWebSocket = false;  // legacy alias for transport = kWebSocket
  bool autoReconnect = true;
  ReconnectPolicy reconnectPolicy = ReconnectPolicy::kExponentialBackoff;
  Duration backoffBase = 100 * kMillisecond;
  Duration backoffMax = 5 * kSecond;
  Duration randomWaitMax = 1 * kSecond;
  Duration blacklistTtl = 30 * kSecond;  // failed servers retried after this
  Duration ackTimeout = 2 * kSecond;     // republish unacked publications
  /// Connection-liveness monitoring (paper §6.2: failover detection time
  /// depends on "the frequency of monitoring of the connection"). 0 = off.
  Duration pingInterval = 0;
  Duration pongTimeout = 2 * kSecond;
  std::size_t dedupBufferSize = 1024;
  std::uint64_t seed = 1;
};

struct ClientStats {
  std::uint64_t messagesReceived = 0;
  std::uint64_t duplicatesFiltered = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t republishes = 0;
  std::uint64_t recoveredMessages = 0;  // deliveries that filled a gap on resume
  std::uint64_t handoffs = 0;           // HANDOFF redirects followed
  std::uint64_t quorumRejects = 0;      // retryable no-quorum publish acks
};

class Client {
 public:
  using MessageHandler = std::function<void(const Message&)>;
  using AckHandler = std::function<void(Status)>;
  using ConnectionListener = std::function<void(bool connected)>;

  Client(EventLoop& loop, ClientConfig cfg);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Begins connecting. All callbacks fire on the loop thread.
  void Start();
  void Stop();

  /// Subscribes to `topic`; `handler` receives its messages in order.
  /// Safe before Start(); subscriptions persist across reconnects.
  /// `onSubscribed` (optional) fires each time the server confirms the
  /// subscription — including after reconnections.
  void Subscribe(const std::string& topic, MessageHandler handler,
                 std::function<void()> onSubscribed = {});

  /// Stops receiving `topic` and forgets its resume state.
  void Unsubscribe(const std::string& topic);

  /// Publishes with at-least-once semantics: retried (same publication id)
  /// until acknowledged. `onAck` fires once with the final status.
  void Publish(const std::string& topic, Bytes payload, AckHandler onAck = {});

  /// Fire-and-forget publish (at-most-once, QoS 0).
  void PublishNoAck(const std::string& topic, Bytes payload);

  void SetConnectionListener(ConnectionListener listener) {
    connectionListener_ = std::move(listener);
  }

  /// Observation tap for verification harnesses (chaos tests): fires for
  /// every DELIVER frame of a subscribed topic, with `duplicate` telling
  /// whether the client-side filter suppressed it. Calls with
  /// `duplicate == false` are exactly the application-visible stream, in
  /// delivery order. No protocol effect.
  using DeliveryObserver = std::function<void(const Message&, bool duplicate)>;
  void SetDeliveryObserver(DeliveryObserver observer) {
    deliveryObserver_ = std::move(observer);
  }

  /// Fires when the server hands this session off to a new partition owner
  /// (before the directed reconnect). Verification harnesses use it to mark
  /// the ownership boundary on each subscribed stream.
  using HandoffListener = std::function<void(const HandoffFrame&)>;
  void SetHandoffListener(HandoffListener listener) {
    handoffListener_ = std::move(listener);
  }

  /// Fault injection for chaos/backpressure tests: while paused the client's
  /// connection stops consuming inbound bytes (a stalled TCP reader), so the
  /// server's send queue toward this client backs up. Persists across
  /// reconnects until unpaused. Loop thread only.
  void PauseReads(bool paused) {
    readPaused_ = paused;
    if (conn_) conn_->SetReadPaused(paused);
  }

  /// The reconnect delay the library would pick for the given attempt
  /// number (1-based) — exposed so benchmarks/operators can study the herd
  /// behaviour of a policy with the exact production formula.
  static Duration ComputeReconnectDelay(const ClientConfig& cfg, int attempt,
                                        Rng& rng);

  [[nodiscard]] bool IsConnected() const noexcept { return state_ == State::kEstablished; }
  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::optional<std::size_t> CurrentServerIndex() const noexcept {
    return currentServer_;
  }
  [[nodiscard]] std::string ConnectedServerId() const { return serverId_; }

 private:
  enum class State : std::uint8_t {
    kIdle,
    kConnecting,
    kWsHandshake,
    kHttpHandshake,
    kEstablished,
    kStopped,
  };

  struct PendingPublish {
    std::string topic;
    Bytes payload;
    PublicationId pubId;
    std::int64_t publishTs = 0;
    AckHandler onAck;
    std::uint64_t retryTimer = 0;
  };

  struct TopicState {
    MessageHandler handler;
    std::function<void()> onSubscribed;
    std::optional<StreamPos> lastPos;  // newest received (for resume + dedup)
  };

  void ConnectToSomeServer();
  std::optional<std::size_t> PickServer();
  void OnConnected(ConnectionPtr conn);
  void OnConnectionLost();
  void ScheduleReconnect();
  void OnData(BytesView data);
  void HandleFrame(const Frame& frame);
  void OnEstablished();
  void SendFrame(const Frame& frame);
  void SendSubscribe(const std::string& topic, const TopicState& ts);
  void SendPublish(const PendingPublish& pending);
  void ArmAckTimer(PendingPublish& pending);
  void HandleDeliver(const Message& msg);
  void SchedulePing();
  [[nodiscard]] bool IsDuplicate(const Message& msg, TopicState& ts);
  void RememberPubId(const PublicationId& id);

  EventLoop& loop_;
  ClientConfig cfg_;
  Rng rng_;

  // Written only on the loop thread; atomic because IsConnected() is a
  // documented cross-thread poll for test/bench harnesses.
  std::atomic<State> state_{State::kIdle};
  bool readPaused_ = false;
  ConnectionPtr conn_;
  ByteQueue in_;
  std::string wsKey_;
  std::string serverId_;
  std::optional<std::size_t> currentServer_;
  int reconnectAttempts_ = 0;
  // Liveness monitoring. `connGen_` guards timers across reconnections.
  std::uint64_t connGen_ = 0;
  std::uint64_t pingNonce_ = 0;
  bool awaitingPong_ = false;
  std::map<std::size_t, TimePoint> blacklist_;  // server index -> expiry
  // One-shot directed reconnect target set by a HANDOFF redirect.
  std::string handoffTargetId_;

  std::map<std::string, TopicState> topics_;
  std::uint64_t pubCounter_ = 0;
  std::uint64_t clientHash_ = 0;
  std::map<std::uint64_t, PendingPublish> pendingPublishes_;  // by pubId.counter

  // Recent publication ids for duplicate filtering (insertion-ordered ring).
  std::set<PublicationId> recentIds_;
  std::deque<PublicationId> recentIdOrder_;

  ClientStats stats_;
  ConnectionListener connectionListener_;
  DeliveryObserver deliveryObserver_;
  HandoffListener handoffListener_;
};

}  // namespace md::client
