#include "transport/uring_loop.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>

#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "obs/families.hpp"
#include "transport/net_util.hpp"

namespace md {

namespace {

using net::Errno;
using net::PeerString;
using net::SetNonBlocking;
using net::SetTcpOptions;

// Mirrors the epoll backend: a connection whose queue crosses this inside one
// task batch submits its SENDMSG immediately instead of waiting for the
// batch-boundary flush pass.
constexpr std::size_t kInlineFlushBytes = 256 * 1024;

int UringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int UringEnter(int fd, unsigned toSubmit, unsigned minComplete, unsigned flags,
               const void* arg, std::size_t argSize) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, toSubmit,
                                    minComplete, flags, arg, argSize));
}

int UringRegister(int fd, unsigned opcode, void* arg, unsigned nrArgs) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nrArgs));
}

inline unsigned LoadAcquireU32(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
inline void StoreReleaseU32(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}
inline void StoreReleaseU16(std::uint16_t* p, std::uint16_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

// ---------------------------------------------------------------------------
// UringConnection
// ---------------------------------------------------------------------------

namespace detail {

UringConnection::UringConnection(UringLoop& loop, int fd, std::string peer,
                                 std::uint64_t id)
    : loop_(loop), fd_(fd), peer_(std::move(peer)), id_(id) {
  // Non-blocking for the direct ::send fast path; ring ops are async anyway.
  SetNonBlocking(fd_);
  SetTcpOptions(fd_);
}

UringConnection::~UringConnection() {
  if (fd_ >= 0) {
    if (auto* m = loop_.metrics(); m != nullptr && !out_.empty()) {
      m->sendQueueBytes.Add(-static_cast<std::int64_t>(out_.size()));
    }
    ::close(fd_);
  }
}

Status UringConnection::Send(BytesView data) {
  if (fd_ < 0 || closing_) return Err(ErrorCode::kClosed, "connection closed");

  // Hard watermark: whole-frame reject before anything is queued (identical
  // contract to the epoll backend — see TcpConnection::Send). As there, a
  // queue inflated only by deferred flushing gets a drain attempt before the
  // frame is refused.
  if (data.size() > wm_.hard - out_.size()) {
    DrainNow();
    if (fd_ < 0 || closing_) return Err(ErrorCode::kClosed, "write failed");
    if (data.size() > wm_.hard - out_.size()) {
      return Err(ErrorCode::kCapacity, "send rejected: over hard watermark");
    }
  }

  // Fast path: nothing buffered and no async write in flight — a direct
  // non-blocking send skips the ring round-trip entirely.
  std::size_t written = 0;
  if (out_.empty() && !sendInFlight_) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (auto* m = loop_.metrics()) m->syscallsSend.Inc();
    if (n > 0) {
      written = static_cast<std::size_t>(n);
      if (auto* m = loop_.metrics()) m->bytesWritten.Inc(written);
    } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      CloseNow();
      return Err(ErrorCode::kClosed, "write failed");
    }
  }
  if (written == data.size()) return OkStatus();

  out_.AppendCopy(data.subspan(written));
  if (auto* m = loop_.metrics()) m->copyBytes.Inc(data.size() - written);
  return FinishAppend(data.size() - written);
}

Status UringConnection::Send(std::shared_ptr<const Bytes> data) {
  if (fd_ < 0 || closing_) return Err(ErrorCode::kClosed, "connection closed");
  if (data == nullptr || data->empty()) return OkStatus();
  if (data->size() > wm_.hard - out_.size()) {
    DrainNow();
    if (fd_ < 0 || closing_) return Err(ErrorCode::kClosed, "write failed");
    if (data->size() > wm_.hard - out_.size()) {
      return Err(ErrorCode::kCapacity, "send rejected: over hard watermark");
    }
  }
  const std::size_t appended = data->size();
  out_.AppendShared(std::move(data));
  return FinishAppend(appended);
}

Status UringConnection::FinishAppend(std::size_t appended) {
  if (auto* m = loop_.metrics()) {
    m->sendQueueBytes.Add(static_cast<std::int64_t>(appended));
  }
  if (!sendInFlight_ && !flushQueued_) {
    if (out_.size() >= kInlineFlushBytes) {
      StartSend();  // submission is async; this just bounds deferral
    } else {
      RequestFlush();
    }
  }
  // Soft-mark crossings on lazily-deferred bytes would flag healthy sessions
  // as slow consumers; drain synchronously first (see TcpConnection).
  if (out_.size() > wm_.soft) {
    DrainNow();
    if (fd_ < 0 || closing_) return Err(ErrorCode::kClosed, "write failed");
  }
  if (out_.size() > wm_.soft) {
    overSoft_ = true;
    return Err(ErrorCode::kCapacity, "write buffer over soft watermark");
  }
  return OkStatus();
}

void UringConnection::DrainNow() {
  while (!sendInFlight_ && !out_.empty() && fd_ >= 0 && !closing_) {
    iovec iov[kMaxIov];
    const std::size_t iovCount = out_.FillIovecs(iov, kMaxIov);
    if (iovCount == 0) return;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovCount;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (auto* m = loop_.metrics()) m->syscallsSendmsg.Inc();
    if (n > 0) {
      out_.Consume(static_cast<std::size_t>(n));
      if (auto* m = loop_.metrics()) {
        m->bytesWritten.Inc(static_cast<std::size_t>(n));
        m->sendQueueBytes.Add(-static_cast<std::int64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      StartSend();  // kernel buffer full: let the async path finish the drain
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseNow();
    return;
  }
  AfterDrainCheck();
}

void UringConnection::RequestFlush() {
  if (flushQueued_) return;
  flushQueued_ = true;
  loop_.QueueFlush(shared_from_this());
}

void UringConnection::StartSend() {
  if (sendInFlight_ || closing_ || fd_ < 0 || out_.empty()) return;
  // Freeze the coalescing tail: the kernel may read these iovecs until the
  // CQE arrives, so the buffer under them must never reallocate.
  out_.FreezeTail();
  inflightRefs_.clear();
  const std::size_t iovCount = out_.FillIovecs(iov_, kMaxIov, &inflightRefs_);
  if (iovCount == 0) return;
  std::memset(&msg_, 0, sizeof(msg_));
  msg_.msg_iov = iov_;
  msg_.msg_iovlen = iovCount;

  io_uring_sqe* sqe = loop_.GetSqe();
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd_;
  sqe->addr = reinterpret_cast<std::uint64_t>(&msg_);
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = UringLoop::Encode(UringLoop::OpKind::kSend, id_);
  sendInFlight_ = true;
  ++pendingOps_;
  if (auto* m = loop_.metrics()) m->syscallsSendmsg.Inc();
}

void UringConnection::OnSendComplete(int res) {
  if (res > 0) {
    out_.Consume(static_cast<std::size_t>(res));
    if (auto* m = loop_.metrics()) {
      m->bytesWritten.Inc(static_cast<std::size_t>(res));
      m->sendQueueBytes.Add(-static_cast<std::int64_t>(res));
    }
    AfterDrainCheck();
    if (closing_ || fd_ < 0) return;  // drained handler closed us
    if (!out_.empty()) StartSend();
    return;
  }
  if (res == -EAGAIN || res == -EINTR) {
    StartSend();
    return;
  }
  CloseNow();
}

void UringConnection::AfterDrainCheck() {
  if (overSoft_ && out_.size() <= wm_.low) {
    overSoft_ = false;
    if (drainedHandler_) {
      // Copy before invoking: the handler may replace itself (or Close()).
      auto handler = drainedHandler_;
      handler();
    }
  }
  if (fd_ >= 0 && !closing_ && closeAfterFlush_ && out_.empty()) CloseNow();
}

void UringConnection::OnRecv(BytesView data) {
  if (dataHandler_) dataHandler_(data);
}

void UringConnection::Close() { CloseNow(); }

void UringConnection::CloseAfterFlush() {
  if (fd_ < 0 || closing_) return;
  if (out_.empty() && !sendInFlight_) {
    CloseNow();
    return;
  }
  if (closeAfterFlush_) return;
  closeAfterFlush_ = true;
  auto self = shared_from_this();
  loop_.ScheduleTimer(kCloseFlushGrace, [self] {
    if (self->fd_ >= 0 && !self->closing_) self->CloseNow();
  });
}

void UringConnection::SetReadPaused(bool paused) {
  if (readPaused_ == paused) return;
  readPaused_ = paused;
  if (fd_ < 0 || closing_) return;
  if (paused) {
    // Multishot recv can't be paused in place; cancel it. The terminal CQE
    // (-ECANCELED) clears recvArmed_ and skips the re-arm while paused.
    if (recvArmed_) {
      loop_.SubmitCancelUserData(
          UringLoop::Encode(UringLoop::OpKind::kRecv, id_));
    }
  } else if (!recvArmed_) {
    loop_.ArmRecv(*this);
  }
}

void UringConnection::CloseNow() {
  if (fd_ < 0 || closing_) return;
  closing_ = true;
  if (auto* m = loop_.metrics(); m != nullptr && !out_.empty()) {
    m->sendQueueBytes.Add(-static_cast<std::int64_t>(out_.size()));
  }
  // Safe even with a sendmsg in flight: inflightRefs_ pins the buffers the
  // kernel is still reading.
  out_.Clear();
  auto self = shared_from_this();
  loop_.connections_.erase(id_);
  if (pendingOps_ > 0) {
    // The fd must stay open until every in-flight op completes (a recycled
    // fd number would receive someone else's operations). Park in the
    // closing map; the last CQE triggers FinishClose.
    loop_.closingConns_[id_] = self;
    loop_.SubmitCancelFd(fd_);
  } else {
    FinishClose();
  }
}

void UringConnection::FinishClose() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  inflightRefs_.clear();
  // Same deferred-notification dance as the epoll backend: the close may
  // originate inside the data handler, and destroying an executing
  // std::function is UB — release handlers from a posted task.
  auto self = shared_from_this();
  loop_.closing_.push_back(self);
  loop_.Post([self] {
    auto handler = std::move(self->closeHandler_);
    self->closeHandler_ = nullptr;
    if (handler) handler();
    self->DetachHandlers();
    std::erase_if(self->loop_.closing_,
                  [&self](const auto& p) { return p.get() == self.get(); });
  });
  loop_.closingConns_.erase(id_);
}

// ---------------------------------------------------------------------------
// UringListener
// ---------------------------------------------------------------------------

UringListener::UringListener(UringLoop& loop, int fd, std::uint16_t port,
                             std::uint64_t id)
    : loop_(loop), fd_(fd), port_(port), id_(id) {}

UringListener::~UringListener() { Close(); }

void UringListener::Close() {
  if (fd_ < 0) return;
  // CloseListener touches the submission ring and the listener maps — both
  // single-writer, owned by the loop thread. Off-thread closes (a listener
  // destroyed by its owner while the loop runs) marshal the call onto the
  // loop and block until it lands; `this` stays alive for the loop side
  // because we don't return (and the destructor can't proceed) until then.
  if (loop_.OnLoopThread() || !loop_.LoopActive()) {
    loop_.CloseListener(*this);
    return;
  }
  std::promise<void> done;
  auto closed = done.get_future();
  if (loop_.PostIfAccepting([this, &done] {
        loop_.CloseListener(*this);
        done.set_value();
      })) {
    closed.wait();
    return;
  }
  // The loop finished its final task drain concurrently; wait for Run() to
  // fully exit, then close directly — no other ring writer remains.
  while (loop_.LoopActive()) std::this_thread::yield();
  loop_.CloseListener(*this);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// UringLoop — setup / teardown
// ---------------------------------------------------------------------------

Result<std::unique_ptr<UringLoop>> UringLoop::Create() {
  auto loop = std::unique_ptr<UringLoop>(new UringLoop());
  if (Status s = loop->Init(); !s.ok()) return s;
  return loop;
}

Status UringLoop::Init() {
  io_uring_params params{};
  ringFd_ = UringSetup(256, &params);
  if (ringFd_ < 0) {
    return Err(ErrorCode::kUnavailable,
               Format("io_uring_setup: %s", std::strerror(errno)));
  }
  if ((params.features & IORING_FEAT_EXT_ARG) == 0) {
    return Err(ErrorCode::kUnavailable,
               "kernel io_uring lacks IORING_FEAT_EXT_ARG (timed waits)");
  }
  sqEntries_ = params.sq_entries;
  cqEntries_ = params.cq_entries;

  sqSize_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cqSize_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  singleMmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (singleMmap_) sqSize_ = cqSize_ = std::max(sqSize_, cqSize_);

  sqPtr_ = ::mmap(nullptr, sqSize_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_POPULATE, ringFd_, IORING_OFF_SQ_RING);
  if (sqPtr_ == MAP_FAILED) {
    sqPtr_ = nullptr;
    return Err(ErrorCode::kUnavailable,
               Format("mmap sq ring: %s", std::strerror(errno)));
  }
  if (singleMmap_) {
    cqPtr_ = sqPtr_;
  } else {
    cqPtr_ = ::mmap(nullptr, cqSize_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ringFd_, IORING_OFF_CQ_RING);
    if (cqPtr_ == MAP_FAILED) {
      cqPtr_ = nullptr;
      return Err(ErrorCode::kUnavailable,
                 Format("mmap cq ring: %s", std::strerror(errno)));
    }
  }
  sqesSize_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqesSize_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ringFd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return Err(ErrorCode::kUnavailable,
               Format("mmap sqes: %s", std::strerror(errno)));
  }

  auto* sqBase = static_cast<std::uint8_t*>(sqPtr_);
  auto* cqBase = static_cast<std::uint8_t*>(cqPtr_);
  sqHead_ = reinterpret_cast<unsigned*>(sqBase + params.sq_off.head);
  sqTail_ = reinterpret_cast<unsigned*>(sqBase + params.sq_off.tail);
  sqMask_ = *reinterpret_cast<unsigned*>(sqBase + params.sq_off.ring_mask);
  sqArray_ = reinterpret_cast<unsigned*>(sqBase + params.sq_off.array);
  cqHead_ = reinterpret_cast<unsigned*>(cqBase + params.cq_off.head);
  cqTail_ = reinterpret_cast<unsigned*>(cqBase + params.cq_off.tail);
  cqMask_ = *reinterpret_cast<unsigned*>(cqBase + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cqBase + params.cq_off.cqes);
  sqTailLocal_ = *sqTail_;

  // Provided-buffer ring for multishot recv: the kernel picks a buffer per
  // arriving chunk, we hand it back after the data handler runs.
  bufRingSize_ = kBufCount * sizeof(io_uring_buf);
  bufRing_ = static_cast<io_uring_buf_ring*>(
      ::mmap(nullptr, bufRingSize_, PROT_READ | PROT_WRITE,
             MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (bufRing_ == MAP_FAILED) {
    bufRing_ = nullptr;
    return Err(ErrorCode::kUnavailable,
               Format("mmap buf ring: %s", std::strerror(errno)));
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(bufRing_);
  reg.ring_entries = kBufCount;
  reg.bgid = 0;
  if (UringRegister(ringFd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    return Err(ErrorCode::kUnavailable,
               Format("IORING_REGISTER_PBUF_RING: %s", std::strerror(errno)));
  }
  bufAreaSize_ = static_cast<std::size_t>(kBufCount) * kBufSize;
  bufBase_ = static_cast<std::uint8_t*>(
      ::mmap(nullptr, bufAreaSize_, PROT_READ | PROT_WRITE,
             MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (bufBase_ == MAP_FAILED) {
    bufBase_ = nullptr;
    return Err(ErrorCode::kUnavailable,
               Format("mmap recv buffers: %s", std::strerror(errno)));
  }
  bufRingTailLocal_ = 0;
  for (unsigned bid = 0; bid < kBufCount; ++bid) {
    RecycleBuffer(static_cast<std::uint16_t>(bid));
  }

  wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeFd_ < 0) {
    return Err(ErrorCode::kUnavailable,
               Format("eventfd: %s", std::strerror(errno)));
  }
  return OkStatus();
}

UringLoop::~UringLoop() {
  // Same teardown rule as the epoll backend: break handler reference cycles
  // before the connection shared_ptrs unwind. fds close here because the
  // ring (and every op in it) dies with ringFd_.
  auto conns = std::move(connections_);
  connections_.clear();
  for (auto& [id, conn] : conns) conn->DetachHandlers();
  auto parked = std::move(closingConns_);
  closingConns_.clear();
  for (auto& [id, conn] : parked) conn->DetachHandlers();
  auto closing = std::move(closing_);
  closing_.clear();
  for (auto& conn : closing) conn->DetachHandlers();
  for (auto& [id, fd] : closingListeners_) ::close(fd);
  for (auto& [id, pending] : connecting_) ::close(pending.fd);

  if (bufBase_ != nullptr) ::munmap(bufBase_, bufAreaSize_);
  if (bufRing_ != nullptr) ::munmap(bufRing_, bufRingSize_);
  if (sqes_ != nullptr) ::munmap(sqes_, sqesSize_);
  if (cqPtr_ != nullptr && !singleMmap_) ::munmap(cqPtr_, cqSize_);
  if (sqPtr_ != nullptr) ::munmap(sqPtr_, sqSize_);
  if (wakeFd_ >= 0) ::close(wakeFd_);
  if (ringFd_ >= 0) ::close(ringFd_);
}

// ---------------------------------------------------------------------------
// UringLoop — ring plumbing
// ---------------------------------------------------------------------------

io_uring_sqe* UringLoop::GetSqe() {
  if (sqTailLocal_ - LoadAcquireU32(sqHead_) >= sqEntries_) {
    SubmitNow();  // ring full: push what we have to free slots
  }
  const unsigned idx = sqTailLocal_ & sqMask_;
  io_uring_sqe* sqe = &sqes_[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqArray_[idx] = idx;
  ++sqTailLocal_;
  ++toSubmit_;
  return sqe;
}

void UringLoop::SubmitNow() {
  StoreReleaseU32(sqTail_, sqTailLocal_);
  while (toSubmit_ > 0) {
    const int rc = UringEnter(ringFd_, toSubmit_, 0, 0, nullptr, 0);
    if (rc >= 0) {
      toSubmit_ -= std::min(toSubmit_, static_cast<unsigned>(rc));
      if (rc == 0) break;
    } else if (errno == EINTR) {
      continue;
    } else {
      MD_ERROR("io_uring_enter(submit): %s", std::strerror(errno));
      break;
    }
  }
}

int UringLoop::EnterAndWait(int timeoutMillis) {
  StoreReleaseU32(sqTail_, sqTailLocal_);
  struct timespec ts {};
  ts.tv_sec = timeoutMillis / 1000;
  ts.tv_nsec = static_cast<long>(timeoutMillis % 1000) * 1000000L;
  io_uring_getevents_arg arg{};
  arg.ts = reinterpret_cast<std::uint64_t>(&ts);
  const int rc =
      UringEnter(ringFd_, toSubmit_, 1,
                 IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
                 sizeof(arg));
  if (rc >= 0) {
    toSubmit_ -= std::min(toSubmit_, static_cast<unsigned>(rc));
    return 0;
  }
  if (errno == ETIME || errno == EINTR) return 0;
  MD_ERROR("io_uring_enter(wait): %s", std::strerror(errno));
  return -1;
}

void UringLoop::ProcessCompletions() {
  unsigned head = *cqHead_;
  while (head != LoadAcquireU32(cqTail_)) {
    // Copy before advancing: once the head moves the kernel may reuse the
    // slot, and handlers below can run for a while.
    const io_uring_cqe cqe = cqes_[head & cqMask_];
    ++head;
    StoreReleaseU32(cqHead_, head);
    HandleCqe(cqe);
  }
}

void UringLoop::RecycleBuffer(std::uint16_t bid) {
  // Index slots from the ring base, not through io_uring_buf_ring::bufs: the
  // kernel header declares bufs with __DECLARE_FLEX_ARRAY, whose leading
  // empty struct has size 1 in C++ — padding bufs[] to offset 8 and shifting
  // every slot off by 8 bytes from the kernel's view of the ring.
  auto* slots = reinterpret_cast<io_uring_buf*>(bufRing_);
  io_uring_buf* slot = &slots[bufRingTailLocal_ & (kBufCount - 1)];
  slot->addr = reinterpret_cast<std::uint64_t>(bufBase_ +
                                               static_cast<std::size_t>(bid) *
                                                   kBufSize);
  slot->len = kBufSize;
  slot->bid = bid;
  ++bufRingTailLocal_;
  StoreReleaseU16(&bufRing_->tail,
                  static_cast<std::uint16_t>(bufRingTailLocal_));
}

// ---------------------------------------------------------------------------
// UringLoop — op submission
// ---------------------------------------------------------------------------

void UringLoop::ArmWakePoll() {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = wakeFd_;
  sqe->poll32_events = POLLIN;
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->user_data = Encode(OpKind::kWakePoll, 0);
  wakePollArmed_ = true;
}

void UringLoop::ArmAccept(detail::UringListener& listener) {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = listener.fd_;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  sqe->user_data = Encode(OpKind::kAccept, listener.id_);
  listener.acceptArmed_ = true;
}

void UringLoop::ArmRecv(detail::UringConnection& conn) {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = conn.fd_;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  sqe->user_data = Encode(OpKind::kRecv, conn.id_);
  conn.recvArmed_ = true;
  ++conn.pendingOps_;
}

void UringLoop::SubmitCancelFd(int fd) {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = fd;
  sqe->cancel_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
  sqe->user_data = Encode(OpKind::kCancel, 0);
}

void UringLoop::SubmitCancelUserData(std::uint64_t userData) {
  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->addr = userData;
  sqe->user_data = Encode(OpKind::kCancel, 0);
}

// ---------------------------------------------------------------------------
// UringLoop — completion dispatch
// ---------------------------------------------------------------------------

std::shared_ptr<detail::UringConnection> UringLoop::FindConn(std::uint64_t id) {
  if (auto it = connections_.find(id); it != connections_.end()) {
    return it->second;
  }
  if (auto it = closingConns_.find(id); it != closingConns_.end()) {
    return it->second;
  }
  return nullptr;
}

void UringLoop::HandleCqe(const io_uring_cqe& cqe) {
  const auto kind = static_cast<OpKind>(cqe.user_data >> 56);
  const std::uint64_t id = cqe.user_data & ((1ULL << 56) - 1);
  switch (kind) {
    case OpKind::kWakePoll: {
      std::uint64_t drain = 0;
      while (::read(wakeFd_, &drain, sizeof(drain)) > 0) {
      }
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
        wakePollArmed_ = false;
        if (running_.load(std::memory_order_acquire)) ArmWakePoll();
      }
      break;
    }
    case OpKind::kAccept:
      HandleAcceptCqe(id, cqe);
      break;
    case OpKind::kRecv:
      HandleRecvCqe(id, cqe);
      break;
    case OpKind::kSend:
      HandleSendCqe(id, cqe);
      break;
    case OpKind::kConnect:
      HandleConnectCqe(id, cqe);
      break;
    case OpKind::kCancel:
      break;  // the cancelled op reports through its own CQE
  }
}

void UringLoop::HandleAcceptCqe(std::uint64_t id, const io_uring_cqe& cqe) {
  const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
  auto it = listeners_.find(id);
  if (it == listeners_.end()) {
    // Listener already closed: refuse late arrivals, reap the parked fd on
    // the terminal CQE.
    if (cqe.res >= 0) ::close(cqe.res);
    if (!more) {
      if (auto cit = closingListeners_.find(id); cit != closingListeners_.end()) {
        ::close(cit->second);
        closingListeners_.erase(cit);
      }
    }
    return;
  }
  detail::UringListener* listener = it->second;
  if (cqe.res >= 0) {
    const int clientFd = cqe.res;
    auto conn = std::make_shared<detail::UringConnection>(
        *this, clientFd, PeerString(clientFd), nextId_);
    connections_[nextId_] = conn;
    ++nextId_;
    ArmRecv(*conn);
    if (listener->acceptHandler_) listener->acceptHandler_(conn);
  } else if (cqe.res != -ECANCELED) {
    MD_WARN("accept failed: %s", std::strerror(-cqe.res));
  }
  if (!more) {
    listener->acceptArmed_ = false;
    if (listener->fd_ >= 0 && cqe.res != -ECANCELED) ArmAccept(*listener);
  }
}

void UringLoop::HandleRecvCqe(std::uint64_t id, const io_uring_cqe& cqe) {
  auto conn = FindConn(id);
  const bool more = (cqe.flags & IORING_CQE_F_MORE) != 0;
  const bool hasBuf = (cqe.flags & IORING_CQE_F_BUFFER) != 0;
  const std::uint16_t bid =
      static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);

  if (conn != nullptr && !conn->closing_ && cqe.res > 0 && hasBuf) {
    if (auto* m = metrics()) {
      m->syscallsRecv.Inc();
      m->bytesRead.Inc(static_cast<std::size_t>(cqe.res));
    }
    conn->OnRecv(BytesView(bufBase_ + static_cast<std::size_t>(bid) * kBufSize,
                           static_cast<std::size_t>(cqe.res)));
  }
  // Recycle unconditionally — even for a connection that died mid-flight the
  // kernel consumed a provided buffer and it must go back in the ring.
  if (hasBuf) RecycleBuffer(bid);

  if (more || conn == nullptr) return;
  conn->recvArmed_ = false;
  --conn->pendingOps_;
  if (conn->closing_) {
    if (conn->pendingOps_ == 0) conn->FinishClose();
    return;
  }
  if (cqe.res == 0 || (cqe.res < 0 && cqe.res != -ENOBUFS &&
                       cqe.res != -ECANCELED)) {
    conn->CloseNow();  // EOF or real error
    return;
  }
  if (cqe.res == -ECANCELED && !conn->readPaused_) {
    // Cancelled for a reason other than pausing (shouldn't happen while
    // open) — treat as re-armable.
  }
  if (conn->fd_ >= 0 && !conn->readPaused_) ArmRecv(*conn);
}

void UringLoop::HandleSendCqe(std::uint64_t id, const io_uring_cqe& cqe) {
  auto conn = FindConn(id);
  if (conn == nullptr) return;
  conn->sendInFlight_ = false;
  --conn->pendingOps_;
  conn->inflightRefs_.clear();
  if (conn->closing_) {
    if (conn->pendingOps_ == 0) conn->FinishClose();
    return;
  }
  conn->OnSendComplete(cqe.res);
}

void UringLoop::HandleConnectCqe(std::uint64_t id, const io_uring_cqe& cqe) {
  auto node = connecting_.extract(id);
  if (node.empty()) return;
  PendingConnect pending = std::move(node.mapped());
  if (cqe.res < 0) {
    ::close(pending.fd);
    pending.cb(Err(ErrorCode::kUnavailable,
                   Format("connect to %s: %s", pending.target.c_str(),
                          std::strerror(-cqe.res))));
    return;
  }
  auto conn = std::make_shared<detail::UringConnection>(
      *this, pending.fd, pending.target, nextId_);
  connections_[nextId_] = conn;
  ++nextId_;
  ArmRecv(*conn);
  pending.cb(ConnectionPtr(conn));
}

// ---------------------------------------------------------------------------
// UringLoop — EventLoop interface
// ---------------------------------------------------------------------------

void UringLoop::Run() {
  running_.store(true, std::memory_order_release);
  runThread_.store(std::this_thread::get_id(), std::memory_order_release);
  {
    std::lock_guard lock(postMutex_);
    acceptingTasks_ = true;
  }
  if (!wakePollArmed_) ArmWakePoll();
  while (running_.load(std::memory_order_acquire)) {
    DrainPostedTasks();
    FireDueTimers();
    // Adaptive flush, identical policy to the epoll backend: egress queued
    // by the tasks/timers above is submitted before we block.
    FlushPending();
    if (!running_.load(std::memory_order_acquire)) break;

    if (EnterAndWait(NextTimeoutMillis()) < 0) break;
    if (auto* m = metrics()) m->loopIterations.Inc();
    ProcessCompletions();
  }
  DrainPostedTasks();
  FlushPending();
  // Bounded grace so final frames (goodbyes) reach the kernel before the
  // ring is torn down; each pass reaps whatever completed.
  for (int i = 0; i < 10; ++i) {
    bool inflight = toSubmit_ > 0;
    for (const auto& [id, conn] : connections_) {
      if (conn->sendInFlight_) {
        inflight = true;
        break;
      }
    }
    if (!inflight && closingConns_.empty()) break;
    if (EnterAndWait(5) < 0) break;
    ProcessCompletions();
  }
  // Final drain with the accepting flag lowered under the same lock: anything
  // posted after this point is dropped, and PostIfAccepting callers learn it.
  {
    std::vector<TaskFn> rest;
    {
      std::lock_guard lock(postMutex_);
      acceptingTasks_ = false;
      rest.swap(posted_);
    }
    for (auto& task : rest) task();
  }
  runThread_.store(std::thread::id{}, std::memory_order_release);
}

bool UringLoop::OnLoopThread() const noexcept {
  return runThread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

bool UringLoop::LoopActive() const noexcept {
  return runThread_.load(std::memory_order_acquire) != std::thread::id{};
}

bool UringLoop::PostIfAccepting(TaskFn task) {
  bool needWake = false;
  {
    std::lock_guard lock(postMutex_);
    if (!acceptingTasks_) return false;
    needWake = posted_.empty();
    posted_.push_back(std::move(task));
  }
  if (needWake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  }
  return true;
}

void UringLoop::Stop() {
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

void UringLoop::Post(TaskFn task) {
  bool needWake = false;
  {
    std::lock_guard lock(postMutex_);
    needWake = posted_.empty();
    posted_.push_back(std::move(task));
  }
  if (auto* m = metrics()) m->tasksPosted.Inc();
  if (needWake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  }
}

void UringLoop::PostBatch(std::vector<TaskFn> tasks) {
  if (tasks.empty()) return;
  const std::uint64_t count = tasks.size();
  bool needWake = false;
  {
    std::lock_guard lock(postMutex_);
    needWake = posted_.empty();
    if (posted_.empty()) {
      posted_ = std::move(tasks);
    } else {
      posted_.insert(posted_.end(), std::make_move_iterator(tasks.begin()),
                     std::make_move_iterator(tasks.end()));
    }
  }
  if (auto* m = metrics()) m->tasksPosted.Inc(count);
  if (needWake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  }
}

void UringLoop::DrainPostedTasks() {
  std::vector<TaskFn> tasks;
  {
    std::lock_guard lock(postMutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void UringLoop::QueueFlush(std::shared_ptr<detail::UringConnection> conn) {
  flushPending_.push_back(std::move(conn));
}

void UringLoop::FlushPending() {
  // Unlike the epoll flush (which performs the syscall inline and may invoke
  // drained handlers), this only submits SQEs — handlers run at CQE time, so
  // one pass is quiescent by construction.
  auto pending = std::move(flushPending_);
  flushPending_.clear();
  for (auto& conn : pending) {
    conn->flushQueued_ = false;
    if (conn->fd_ >= 0 && !conn->closing_ && !conn->out_.empty() &&
        !conn->sendInFlight_) {
      conn->StartSend();
    }
  }
}

std::uint64_t UringLoop::ScheduleTimer(Duration delay, TaskFn task) {
  const std::uint64_t id = nextTimerId_++;
  timerHeap_.push({Now() + (delay > 0 ? delay : 0), id});
  timerTasks_[id] = std::move(task);
  return id;
}

void UringLoop::CancelTimer(std::uint64_t id) { timerTasks_.erase(id); }

TimePoint UringLoop::Now() const { return RealClock::Instance().Now(); }

void UringLoop::FireDueTimers() {
  const TimePoint now = Now();
  while (!timerHeap_.empty() && timerHeap_.top().when <= now) {
    const TimerEntry entry = timerHeap_.top();
    timerHeap_.pop();
    auto it = timerTasks_.find(entry.id);
    if (it == timerTasks_.end()) continue;  // cancelled
    TaskFn task = std::move(it->second);
    timerTasks_.erase(it);
    if (auto* m = metrics()) m->timersFired.Inc();
    task();
  }
}

int UringLoop::NextTimeoutMillis() const {
  if (timerHeap_.empty()) return 100;
  const Duration until = timerHeap_.top().when - Now();
  if (until <= 0) return 0;
  const auto ms = until / kMillisecond;
  return ms > 100 ? 100 : static_cast<int>(ms) + 1;
}

Result<ListenerPtr> UringLoop::Listen(std::uint16_t port) {
  auto sock = net::CreateListenSocket(port);
  if (!sock.ok()) return sock.status();
  auto listener = std::make_unique<detail::UringListener>(*this, sock->fd,
                                                          sock->port, nextId_);
  listeners_[nextId_] = listener.get();
  ++nextId_;
  ArmAccept(*listener);
  return ListenerPtr(std::move(listener));
}

void UringLoop::CloseListener(detail::UringListener& listener) {
  listeners_.erase(listener.id_);
  if (listener.acceptArmed_) {
    closingListeners_[listener.id_] = listener.fd_;
    SubmitCancelFd(listener.fd_);
  } else {
    ::close(listener.fd_);
  }
  listener.fd_ = -1;
}

void UringLoop::Connect(const std::string& host, std::uint16_t port,
                        ConnectCallback cb) {
  // Blocking socket on purpose: IORING_OP_CONNECT on a non-blocking socket
  // would complete instantly with EINPROGRESS; async context does the wait.
  // The connection constructor flips it to non-blocking afterwards.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    cb(Errno("socket"));
    return;
  }
  const std::uint64_t id = nextId_++;
  PendingConnect& pending = connecting_[id];
  pending.fd = fd;
  pending.cb = std::move(cb);
  pending.target = Format("%s:%u", host.c_str(), port);
  pending.addr = {};
  if (Status s = net::ResolveHost(host, port, pending.addr); !s.ok()) {
    ::close(fd);
    auto node = connecting_.extract(id);
    node.mapped().cb(std::move(s));
    return;
  }

  io_uring_sqe* sqe = GetSqe();
  sqe->opcode = IORING_OP_CONNECT;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(&pending.addr);
  sqe->off = sizeof(pending.addr);
  sqe->user_data = Encode(OpKind::kConnect, id);
  SubmitNow();  // don't wait for the loop iteration; peers may connect back
}

}  // namespace md
