// Real-network EventLoop backed by epoll (paper §4's asynchronous I/O layer).
//
// One EpollLoop per IoThread. Level-triggered epoll; non-blocking sockets;
// an eventfd wakes the loop for cross-thread Post(); timers live in a local
// min-heap (no timerfd per timer). Write path: buffered in a ByteQueue with
// EPOLLOUT armed only while data is pending; a high-water mark provides
// backpressure to the engine (slow-consumer handling).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "transport/transport.hpp"

namespace md {

namespace obs {
struct TransportMetrics;
}  // namespace obs

class EpollLoop;

namespace detail {

class TcpConnection final : public Connection,
                            public std::enable_shared_from_this<TcpConnection> {
 public:
  TcpConnection(EpollLoop& loop, int fd, std::string peer);
  ~TcpConnection() override;

  Status Send(BytesView data) override;
  void Close() override;
  void CloseAfterFlush() override;
  [[nodiscard]] bool IsOpen() const override { return fd_ >= 0; }
  [[nodiscard]] std::size_t PendingBytes() const override { return out_.size(); }
  [[nodiscard]] std::string PeerName() const override { return peer_; }
  /// Drops EPOLLIN interest while paused — the kernel receive buffer (and
  /// eventually the peer's send buffer) backs up exactly like a stalled
  /// reader. Loop thread only.
  void SetReadPaused(bool paused) override;

  // Loop-internal:
  void HandleReadable();
  void HandleWritable();
  void CloseNow();
  /// Drops all handlers. Handlers commonly capture the connection (or an
  /// owner that holds it) in a shared_ptr; releasing them breaks that
  /// reference cycle so closed connections can actually be freed.
  void DetachHandlers() noexcept {
    dataHandler_ = nullptr;
    closeHandler_ = nullptr;
    drainedHandler_ = nullptr;
  }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Graceful close that never flushes (dead peer) still closes after this.
  static constexpr Duration kCloseFlushGrace = 5 * kSecond;

 private:
  void UpdateEpollInterest();

  EpollLoop& loop_;
  int fd_;
  std::string peer_;
  ByteQueue out_;
  bool wantWrite_ = false;
  bool readPaused_ = false;
  bool closeAfterFlush_ = false;
};

class TcpListener final : public Listener {
 public:
  TcpListener(EpollLoop& loop, int fd, std::uint16_t port);
  ~TcpListener() override;

  void Close() override;
  [[nodiscard]] std::uint16_t Port() const override { return port_; }

  void HandleReadable();
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  EpollLoop& loop_;
  int fd_;
  std::uint16_t port_;
};

}  // namespace detail

class EpollLoop final : public EventLoop {
 public:
  EpollLoop();
  ~EpollLoop() override;

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  void Run() override;
  void Stop() override;
  void Post(TaskFn task) override;
  /// Enqueues several tasks with one lock acquisition and (at most) one
  /// eventfd wakeup — the cross-thread half of fan-out batching.
  void PostBatch(std::vector<TaskFn> tasks);
  std::uint64_t ScheduleTimer(Duration delay, TaskFn task) override;
  void CancelTimer(std::uint64_t id) override;
  [[nodiscard]] TimePoint Now() const override;
  Result<ListenerPtr> Listen(std::uint16_t port) override;
  void Connect(const std::string& host, std::uint16_t port,
               ConnectCallback cb) override;

  /// Optional instrumentation (wakeups, bytes, queue depth, timers). The
  /// bundle must outlive the loop; call before Run(). nullptr disables.
  void SetMetrics(obs::TransportMetrics* metrics) noexcept {
    metrics_ = metrics;
  }
  [[nodiscard]] obs::TransportMetrics* metrics() const noexcept {
    return metrics_;
  }

  // Internal plumbing for connections/listeners (dispatch is by fd).
  void Register(int fd, std::uint32_t events);
  void Modify(int fd, std::uint32_t events);
  void Deregister(int fd);
  void TrackConnection(const std::shared_ptr<detail::TcpConnection>& conn);
  void ForgetConnection(int fd);
  void TrackListener(detail::TcpListener* listener);
  void ForgetListener(detail::TcpListener* listener);
  /// EMFILE mitigation: accept+close pending connections via a reserved fd.
  void DrainAcceptBacklog(int listenFd);
  /// Closed connections await their deferred close-notification; track them
  /// so the loop can break handler cycles even if it stops first.
  void MarkClosing(std::shared_ptr<detail::TcpConnection> conn);
  void UnmarkClosing(const detail::TcpConnection* conn);

 private:
  struct PendingConnect {
    int fd;
    ConnectCallback cb;
    std::string target;
  };

  struct TimerEntry {
    TimePoint when;
    std::uint64_t id;
    bool operator>(const TimerEntry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void DrainPostedTasks();
  void FireDueTimers();
  [[nodiscard]] int NextTimeoutMillis() const;
  void HandleConnectReady(int fd);

  int epollFd_ = -1;
  int wakeFd_ = -1;
  int emergencyFd_ = -1;
  obs::TransportMetrics* metrics_ = nullptr;
  std::atomic<bool> running_{false};

  std::mutex postMutex_;
  std::vector<TaskFn> posted_;

  std::uint64_t nextTimerId_ = 1;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timerHeap_;
  std::unordered_map<std::uint64_t, TaskFn> timerTasks_;

  // Keep accepted/connected connections alive while registered with epoll.
  std::unordered_map<int, std::shared_ptr<detail::TcpConnection>> connections_;
  std::vector<std::shared_ptr<detail::TcpConnection>> closing_;
  std::unordered_map<int, PendingConnect> connecting_;
  std::vector<detail::TcpListener*> listeners_;
};

}  // namespace md
