// Real-network EventLoop backed by epoll (paper §4's asynchronous I/O layer).
//
// One EpollLoop per IoThread. Level-triggered epoll; non-blocking sockets;
// an eventfd wakes the loop for cross-thread Post(); timers live in a local
// min-heap (no timerfd per timer). Write path: refcounted (buffer, offset)
// nodes in a SendQueue (wire.hpp) drained with sendmsg scatter-gather;
// EPOLLOUT is armed only after the kernel pushes back (EAGAIN). Flushes are
// adaptive: Send() defers the syscall to a flush pass that runs after every
// task/timer/dispatch batch and before the loop blocks — immediate when the
// loop is idle, coalescing every frame queued in the same batch under load.
// A high-water mark provides backpressure to the engine (slow-consumer
// handling).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "transport/transport.hpp"
#include "transport/wire.hpp"

namespace md {

class EpollLoop;

namespace detail {

class TcpConnection final : public Connection,
                            public std::enable_shared_from_this<TcpConnection> {
 public:
  TcpConnection(EpollLoop& loop, int fd, std::string peer);
  ~TcpConnection() override;

  Status Send(BytesView data) override;
  Status Send(std::shared_ptr<const Bytes> data) override;
  void Close() override;
  void CloseAfterFlush() override;
  [[nodiscard]] bool IsOpen() const override { return fd_ >= 0; }
  [[nodiscard]] std::size_t PendingBytes() const override { return out_.size(); }
  [[nodiscard]] std::string PeerName() const override { return peer_; }
  /// Drops EPOLLIN interest while paused — the kernel receive buffer (and
  /// eventually the peer's send buffer) backs up exactly like a stalled
  /// reader. Loop thread only.
  void SetReadPaused(bool paused) override;

  // Loop-internal:
  void HandleReadable();
  void HandleWritable();
  /// Drains the send queue with sendmsg scatter-gather until empty or the
  /// kernel pushes back (then arms EPOLLOUT). Runs the drained / graceful-
  /// close follow-ups.
  void Flush();
  void CloseNow();
  /// Drops all handlers. Handlers commonly capture the connection (or an
  /// owner that holds it) in a shared_ptr; releasing them breaks that
  /// reference cycle so closed connections can actually be freed.
  void DetachHandlers() noexcept {
    dataHandler_ = nullptr;
    closeHandler_ = nullptr;
    drainedHandler_ = nullptr;
  }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Graceful close that never flushes (dead peer) still closes after this.
  static constexpr Duration kCloseFlushGrace = 5 * kSecond;

 private:
  friend class ::md::EpollLoop;

  void UpdateEpollInterest();
  /// Queues this connection for the loop's next flush pass (idempotent).
  void RequestFlush();
  /// Common post-append bookkeeping: gauge, flush scheduling, soft check.
  Status FinishAppend(std::size_t appended);

  EpollLoop& loop_;
  int fd_;
  std::string peer_;
  SendQueue out_;
  bool wantWrite_ = false;
  bool readPaused_ = false;
  bool closeAfterFlush_ = false;
  bool flushQueued_ = false;  // in the loop's pending-flush list
};

class TcpListener final : public Listener {
 public:
  TcpListener(EpollLoop& loop, int fd, std::uint16_t port);
  ~TcpListener() override;

  void Close() override;
  [[nodiscard]] std::uint16_t Port() const override { return port_; }

  void HandleReadable();
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  EpollLoop& loop_;
  int fd_;
  std::uint16_t port_;
};

}  // namespace detail

class EpollLoop final : public NetLoop {
 public:
  EpollLoop();
  ~EpollLoop() override;

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  void Run() override;
  void Stop() override;
  void Post(TaskFn task) override;
  /// One lock acquisition and (at most) one eventfd wakeup for the batch.
  void PostBatch(std::vector<TaskFn> tasks) override;
  std::uint64_t ScheduleTimer(Duration delay, TaskFn task) override;
  void CancelTimer(std::uint64_t id) override;
  [[nodiscard]] TimePoint Now() const override;
  Result<ListenerPtr> Listen(std::uint16_t port) override;
  void Connect(const std::string& host, std::uint16_t port,
               ConnectCallback cb) override;

  // Internal plumbing for connections/listeners (dispatch is by fd).
  void Register(int fd, std::uint32_t events);
  void Modify(int fd, std::uint32_t events);
  void Deregister(int fd);
  void TrackConnection(const std::shared_ptr<detail::TcpConnection>& conn);
  void ForgetConnection(int fd);
  void TrackListener(detail::TcpListener* listener);
  void ForgetListener(detail::TcpListener* listener);
  /// EMFILE mitigation: accept+close pending connections via a reserved fd.
  void DrainAcceptBacklog(int listenFd);
  /// Closed connections await their deferred close-notification; track them
  /// so the loop can break handler cycles even if it stops first.
  void MarkClosing(std::shared_ptr<detail::TcpConnection> conn);
  void UnmarkClosing(const detail::TcpConnection* conn);
  /// Adaptive flush: connections with freshly-queued egress, flushed in one
  /// pass after each task/timer/dispatch batch, before the loop blocks.
  void QueueFlush(std::shared_ptr<detail::TcpConnection> conn);
  /// One reusable inbound read buffer per loop (HandleReadable is
  /// loop-thread only, so a single buffer serves every connection).
  [[nodiscard]] std::uint8_t* readBuffer() noexcept { return readBuf_.data(); }
  [[nodiscard]] std::size_t readBufferSize() const noexcept {
    return readBuf_.size();
  }

 private:
  struct PendingConnect {
    int fd;
    ConnectCallback cb;
    std::string target;
  };

  struct TimerEntry {
    TimePoint when;
    std::uint64_t id;
    bool operator>(const TimerEntry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void DrainPostedTasks();
  void FireDueTimers();
  void FlushPending();
  [[nodiscard]] int NextTimeoutMillis() const;
  void HandleConnectReady(int fd);

  int epollFd_ = -1;
  int wakeFd_ = -1;
  int emergencyFd_ = -1;
  std::atomic<bool> running_{false};
  std::vector<std::uint8_t> readBuf_ = std::vector<std::uint8_t>(64 * 1024);
  std::vector<std::shared_ptr<detail::TcpConnection>> flushPending_;

  std::mutex postMutex_;
  std::vector<TaskFn> posted_;

  std::uint64_t nextTimerId_ = 1;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timerHeap_;
  std::unordered_map<std::uint64_t, TaskFn> timerTasks_;

  // Keep accepted/connected connections alive while registered with epoll.
  std::unordered_map<int, std::shared_ptr<detail::TcpConnection>> connections_;
  std::vector<std::shared_ptr<detail::TcpConnection>> closing_;
  std::unordered_map<int, PendingConnect> connecting_;
  std::vector<detail::TcpListener*> listeners_;
};

}  // namespace md
