// Real-network EventLoop backed by io_uring (kernel >= 5.19 feature set).
//
// Same contract as EpollLoop, different engine: instead of readiness
// (epoll_wait then one syscall per ready socket), the loop posts operations
// into a shared submission ring and reaps completions — one io_uring_enter
// per iteration submits every queued accept/recv/sendmsg and waits. Inbound
// uses multishot recv with a registered provided-buffer ring (the kernel
// picks a buffer per datagram, we recycle it after the data handler runs);
// accept is multishot per listener; egress reuses the SendQueue from the
// epoll path with one async SENDMSG in flight per connection.
//
// Lifetime rule that epoll doesn't have: an fd with operations in flight
// must not be ::close()d (the kernel would act on a recycled fd number).
// Connections therefore carry a pending-op count and closing defers the
// ::close until the cancel CQEs drain. user_data carries a monotonic
// connection id — never an fd — so stale completions can't misroute.
//
// Capability probing: IoUringAvailable() (transport.hpp) must pass;
// construction throws Status via Create() otherwise. RLIMIT/seccomp-denied
// environments degrade gracefully to epoll through CreateNetLoop().
#pragma once

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "transport/transport.hpp"
#include "transport/wire.hpp"

namespace md {

class UringLoop;

namespace detail {

class UringConnection final
    : public Connection,
      public std::enable_shared_from_this<UringConnection> {
 public:
  UringConnection(UringLoop& loop, int fd, std::string peer, std::uint64_t id);
  ~UringConnection() override;

  Status Send(BytesView data) override;
  Status Send(std::shared_ptr<const Bytes> data) override;
  void Close() override;
  void CloseAfterFlush() override;
  [[nodiscard]] bool IsOpen() const override { return fd_ >= 0 && !closing_; }
  [[nodiscard]] std::size_t PendingBytes() const override { return out_.size(); }
  [[nodiscard]] std::string PeerName() const override { return peer_; }
  void SetReadPaused(bool paused) override;

  void DetachHandlers() noexcept {
    dataHandler_ = nullptr;
    closeHandler_ = nullptr;
    drainedHandler_ = nullptr;
  }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  static constexpr Duration kCloseFlushGrace = 5 * kSecond;

 private:
  friend class ::md::UringLoop;

  Status FinishAppend(std::size_t appended);
  void RequestFlush();
  /// Submits one async SENDMSG covering the queue front (if none in flight).
  void StartSend();
  /// Synchronous best-effort drain for watermark checks: deferred bytes must
  /// not read as backpressure. No-op while an async send is in flight (the
  /// kernel owns the queue front then — and a drain is already underway).
  void DrainNow();
  /// Send-completion bookkeeping; re-submits while data remains.
  void OnSendComplete(int res);
  void OnRecv(BytesView data);
  void AfterDrainCheck();
  void CloseNow();
  /// ::close + deferred close notification once in-flight ops drained.
  void FinishClose();

  UringLoop& loop_;
  int fd_;
  std::string peer_;
  std::uint64_t id_;
  SendQueue out_;

  // One in-flight async sendmsg; iovecs/msghdr must stay stable until its
  // CQE arrives (the kernel may read them after submit returns). The pinned
  // refs keep the spanned buffers alive even if CloseNow clears the queue
  // mid-flight — the use-after-free ASan hunts for.
  static constexpr std::size_t kMaxIov = 64;
  struct iovec iov_[kMaxIov];
  struct msghdr msg_ {};
  std::vector<std::shared_ptr<const Bytes>> inflightRefs_;
  bool sendInFlight_ = false;
  bool recvArmed_ = false;
  bool readPaused_ = false;
  bool flushQueued_ = false;
  bool closeAfterFlush_ = false;
  bool closing_ = false;
  int pendingOps_ = 0;  // CQEs we still owe the kernel for this fd
};

class UringListener final : public Listener {
 public:
  UringListener(UringLoop& loop, int fd, std::uint16_t port, std::uint64_t id);
  ~UringListener() override;

  void Close() override;
  [[nodiscard]] std::uint16_t Port() const override { return port_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  friend class ::md::UringLoop;

  UringLoop& loop_;
  int fd_;
  std::uint16_t port_;
  std::uint64_t id_;
  bool acceptArmed_ = false;
};

}  // namespace detail

class UringLoop final : public NetLoop {
 public:
  /// Fails (kUnavailable) when the kernel lacks io_uring or the required
  /// features — callers fall back to EpollLoop (see CreateNetLoop).
  static Result<std::unique_ptr<UringLoop>> Create();
  ~UringLoop() override;

  UringLoop(const UringLoop&) = delete;
  UringLoop& operator=(const UringLoop&) = delete;

  void Run() override;
  void Stop() override;
  void Post(TaskFn task) override;
  void PostBatch(std::vector<TaskFn> tasks) override;
  std::uint64_t ScheduleTimer(Duration delay, TaskFn task) override;
  void CancelTimer(std::uint64_t id) override;
  [[nodiscard]] TimePoint Now() const override;
  Result<ListenerPtr> Listen(std::uint16_t port) override;
  void Connect(const std::string& host, std::uint16_t port,
               ConnectCallback cb) override;

 private:
  friend class detail::UringConnection;
  friend class detail::UringListener;

  // user_data = kind<<56 | id. Ids are monotonic per loop, never reused.
  enum class OpKind : std::uint8_t {
    kWakePoll = 1,
    kAccept,
    kRecv,
    kSend,
    kConnect,
    kCancel,
  };
  static constexpr std::uint64_t Encode(OpKind kind, std::uint64_t id) {
    return (static_cast<std::uint64_t>(kind) << 56) | id;
  }

  struct PendingConnect {
    int fd;
    ConnectCallback cb;
    std::string target;
    // CONNECT reads the sockaddr asynchronously; it must outlive the SQE.
    struct sockaddr_in addr;
  };

  struct TimerEntry {
    TimePoint when;
    std::uint64_t id;
    bool operator>(const TimerEntry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  UringLoop() = default;
  Status Init();

  void DrainPostedTasks();
  void FireDueTimers();
  void FlushPending();
  [[nodiscard]] int NextTimeoutMillis() const;

  // Submission-ring plumbing.
  io_uring_sqe* GetSqe();
  void SubmitNow();                     // flush SQ without waiting
  int EnterAndWait(int timeoutMillis);  // submit + wait for >=1 CQE
  void ProcessCompletions();
  void HandleCqe(const io_uring_cqe& cqe);

  // The SQ ring is single-writer: only the thread inside Run() may touch it.
  // Listener close from another thread is marshaled onto the loop via
  // PostIfAccepting; these helpers decide which side executes.
  [[nodiscard]] bool OnLoopThread() const noexcept;
  [[nodiscard]] bool LoopActive() const noexcept;
  bool PostIfAccepting(TaskFn task);

  void ArmWakePoll();
  void ArmAccept(detail::UringListener& listener);
  void ArmRecv(detail::UringConnection& conn);
  /// Loop-thread only (or loop not running): cancels/closes the listening fd
  /// and marks the listener closed.
  void CloseListener(detail::UringListener& listener);
  void SubmitCancelFd(int fd);
  void SubmitCancelUserData(std::uint64_t userData);
  void RecycleBuffer(std::uint16_t bid);
  void QueueFlush(std::shared_ptr<detail::UringConnection> conn);

  void HandleAcceptCqe(std::uint64_t id, const io_uring_cqe& cqe);
  void HandleRecvCqe(std::uint64_t id, const io_uring_cqe& cqe);
  void HandleSendCqe(std::uint64_t id, const io_uring_cqe& cqe);
  void HandleConnectCqe(std::uint64_t id, const io_uring_cqe& cqe);

  std::shared_ptr<detail::UringConnection> FindConn(std::uint64_t id);

  // Ring state.
  int ringFd_ = -1;
  unsigned sqEntries_ = 0;
  unsigned cqEntries_ = 0;
  void* sqPtr_ = nullptr;
  std::size_t sqSize_ = 0;
  void* cqPtr_ = nullptr;
  std::size_t cqSize_ = 0;
  bool singleMmap_ = false;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqesSize_ = 0;
  unsigned* sqHead_ = nullptr;
  unsigned* sqTail_ = nullptr;
  unsigned sqMask_ = 0;
  unsigned* sqArray_ = nullptr;
  unsigned* cqHead_ = nullptr;
  unsigned* cqTail_ = nullptr;
  unsigned cqMask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned sqTailLocal_ = 0;
  unsigned toSubmit_ = 0;

  // Provided-buffer ring for multishot recv.
  static constexpr unsigned kBufCount = 64;  // power of two
  static constexpr std::size_t kBufSize = 32 * 1024;
  io_uring_buf_ring* bufRing_ = nullptr;
  std::size_t bufRingSize_ = 0;
  std::uint8_t* bufBase_ = nullptr;
  std::size_t bufAreaSize_ = 0;
  unsigned bufRingTailLocal_ = 0;

  int wakeFd_ = -1;
  bool wakePollArmed_ = false;
  std::atomic<bool> running_{false};
  // Identity of the thread currently inside Run(); empty when the loop is
  // not running. Lets off-thread callers (listener Close) marshal safely.
  std::atomic<std::thread::id> runThread_{};

  std::mutex postMutex_;
  std::vector<TaskFn> posted_;
  // Flipped false (under postMutex_) at Run() exit after the final drain, so
  // PostIfAccepting callers know their task would never execute.
  bool acceptingTasks_ = true;

  std::uint64_t nextTimerId_ = 1;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>>
      timerHeap_;
  std::unordered_map<std::uint64_t, TaskFn> timerTasks_;

  std::uint64_t nextId_ = 1;  // connections, listeners, connects
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::UringConnection>>
      connections_;
  // Closing connections: kept routable until their in-flight ops drain.
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::UringConnection>>
      closingConns_;
  std::vector<std::shared_ptr<detail::UringConnection>> closing_;
  std::unordered_map<std::uint64_t, PendingConnect> connecting_;
  std::unordered_map<std::uint64_t, detail::UringListener*> listeners_;
  // Listener fds whose multishot accept is still in flight after Close();
  // ::close()d when the terminal accept CQE lands.
  std::unordered_map<std::uint64_t, int> closingListeners_;
  std::vector<std::shared_ptr<detail::UringConnection>> flushPending_;
};

}  // namespace md
