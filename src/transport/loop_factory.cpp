// Backend selection for the real-network event loop: parses the
// --event-loop flag value, probes the running kernel for the io_uring
// features UringLoop needs, and constructs the chosen backend with a
// graceful fallback to epoll.

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "transport/epoll_loop.hpp"
#include "transport/transport.hpp"
#include "transport/uring_loop.hpp"

namespace md {

namespace {

// One-shot kernel probe: set up a tiny ring, verify the feature bits and the
// provided-buffer-ring registration the UringLoop depends on, tear down.
// Failure reasons are kept for the warning CreateNetLoop emits.
struct UringProbe {
  bool available = false;
  std::string whyNot;
};

UringProbe RunUringProbe() {
  UringProbe probe;
  io_uring_params params{};
  const int fd = static_cast<int>(::syscall(__NR_io_uring_setup, 4, &params));
  if (fd < 0) {
    probe.whyNot = Format("io_uring_setup failed: %s (kernel too old or "
                          "io_uring disabled)",
                          std::strerror(errno));
    return probe;
  }
  if ((params.features & IORING_FEAT_EXT_ARG) == 0) {
    probe.whyNot = "kernel lacks IORING_FEAT_EXT_ARG (needs >= 5.11)";
    ::close(fd);
    return probe;
  }
  // Multishot recv needs a registered provided-buffer ring (>= 5.19).
  void* ring = ::mmap(nullptr, 8 * sizeof(io_uring_buf), PROT_READ | PROT_WRITE,
                      MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (ring == MAP_FAILED) {
    probe.whyNot = Format("mmap: %s", std::strerror(errno));
    ::close(fd);
    return probe;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(ring);
  reg.ring_entries = 8;
  reg.bgid = 0;
  const int rc = static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, IORING_REGISTER_PBUF_RING, &reg, 1));
  if (rc < 0) {
    probe.whyNot = Format("provided buffer rings unsupported: %s (needs "
                          ">= 5.19)",
                          std::strerror(errno));
  } else {
    probe.available = true;
  }
  ::munmap(ring, 8 * sizeof(io_uring_buf));
  ::close(fd);
  return probe;
}

const UringProbe& CachedProbe() {
  static const UringProbe probe = RunUringProbe();
  return probe;
}

}  // namespace

std::optional<LoopKind> ParseLoopKind(std::string_view name) {
  if (name == "epoll") return LoopKind::kEpoll;
  if (name == "io_uring" || name == "uring") return LoopKind::kIoUring;
  return std::nullopt;
}

const char* LoopKindName(LoopKind kind) noexcept {
  switch (kind) {
    case LoopKind::kEpoll:
      return "epoll";
    case LoopKind::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

bool IoUringAvailable(std::string* whyNot) {
  const UringProbe& probe = CachedProbe();
  if (!probe.available && whyNot != nullptr) *whyNot = probe.whyNot;
  return probe.available;
}

std::unique_ptr<NetLoop> CreateNetLoop(LoopKind kind) {
  if (kind == LoopKind::kIoUring) {
    std::string whyNot;
    if (!IoUringAvailable(&whyNot)) {
      MD_WARN("io_uring requested but unavailable (%s); falling back to epoll",
              whyNot.c_str());
      return std::make_unique<EpollLoop>();
    }
    auto loop = UringLoop::Create();
    if (loop.ok()) return std::move(*loop);
    MD_WARN("io_uring init failed (%s); falling back to epoll",
            loop.status().message().c_str());
    return std::make_unique<EpollLoop>();
  }
  return std::make_unique<EpollLoop>();
}

}  // namespace md
