#include "transport/epoll_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "obs/families.hpp"
#include "transport/net_util.hpp"

namespace md {

namespace {

using net::Errno;
using net::PeerString;
using net::SetNonBlocking;
using net::SetTcpOptions;

// Scatter-gather width per sendmsg. Comfortably under IOV_MAX (1024) — past
// a few dozen frames per syscall the marginal saving is noise and the iovec
// array stays stack-friendly.
constexpr std::size_t kMaxIov = 64;

// A connection accumulating this much in one task batch is flushed inline
// rather than waiting for the batch boundary: bounds the deferred-flush
// memory and overlaps the kernel's work with the rest of the batch.
constexpr std::size_t kInlineFlushBytes = 256 * 1024;

}  // namespace

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------

namespace detail {

TcpConnection::TcpConnection(EpollLoop& loop, int fd, std::string peer)
    : loop_(loop), fd_(fd), peer_(std::move(peer)) {
  SetNonBlocking(fd_);
  SetTcpOptions(fd_);
}

TcpConnection::~TcpConnection() {
  // A connection torn down without CloseNow (loop destruction) still owes
  // the gauge its buffered bytes back.
  if (fd_ >= 0) {
    if (auto* m = loop_.metrics(); m != nullptr && !out_.empty()) {
      m->sendQueueBytes.Add(-static_cast<std::int64_t>(out_.size()));
    }
    ::close(fd_);
  }
}

Status TcpConnection::Send(BytesView data) {
  if (fd_ < 0) return Err(ErrorCode::kClosed, "connection closed");

  // Hard watermark: reject the whole frame up front. Checking before the
  // direct write keeps frames atomic — a partially-written frame whose tail
  // was refused would corrupt the stream. (out_.size() <= wm_.hard holds by
  // induction, so the subtraction cannot underflow.)
  if (data.size() > wm_.hard - out_.size()) {
    // Same flush-before-reject as the zero-copy flavor: a deferred queue is
    // not kernel backpressure until a drain attempt fails.
    if (!wantWrite_) {
      Flush();
      if (fd_ < 0) return Err(ErrorCode::kClosed, "write failed");
    }
    if (data.size() > wm_.hard - out_.size()) {
      return Err(ErrorCode::kCapacity, "send rejected: over hard watermark");
    }
  }

  // Fast path: nothing buffered — try a direct write first.
  std::size_t written = 0;
  if (out_.empty()) {
    // MSG_NOSIGNAL: writing into a connection the peer already closed must
    // surface as an error, not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (auto* m = loop_.metrics()) m->syscallsSend.Inc();
    if (n > 0) {
      written = static_cast<std::size_t>(n);
      if (auto* m = loop_.metrics()) m->bytesWritten.Inc(written);
    } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      CloseNow();
      return Err(ErrorCode::kClosed, "write failed");
    }
    if (written < data.size()) {
      // The kernel pushed back mid-frame: queue the remainder and let
      // EPOLLOUT drive the drain, exactly like the historical path.
      if (!wantWrite_) {
        wantWrite_ = true;
        UpdateEpollInterest();
      }
    }
  }
  if (written == data.size()) return OkStatus();

  out_.AppendCopy(data.subspan(written));
  if (auto* m = loop_.metrics()) {
    m->copyBytes.Inc(data.size() - written);
  }
  return FinishAppend(data.size() - written);
}

Status TcpConnection::Send(std::shared_ptr<const Bytes> data) {
  if (fd_ < 0) return Err(ErrorCode::kClosed, "connection closed");
  if (data == nullptr || data->empty()) return OkStatus();
  if (data->size() > wm_.hard - out_.size()) {
    // The queue may be large only because the deferred flush hasn't run yet
    // this batch — watermarks must measure kernel backpressure, not flush
    // latency. Drain first; reject only if the kernel really won't take it.
    if (!wantWrite_) {
      Flush();
      if (fd_ < 0) return Err(ErrorCode::kClosed, "write failed");
    }
    if (data->size() > wm_.hard - out_.size()) {
      return Err(ErrorCode::kCapacity, "send rejected: over hard watermark");
    }
  }
  // Zero-copy: queue a reference and defer the syscall to the loop's flush
  // pass (adaptive flush). When the loop is idle the pass runs immediately
  // after the current task batch; under load every frame queued in the same
  // batch coalesces into one sendmsg.
  const std::size_t appended = data->size();
  out_.AppendShared(std::move(data));
  return FinishAppend(appended);
}

Status TcpConnection::FinishAppend(std::size_t appended) {
  if (auto* m = loop_.metrics()) {
    m->sendQueueBytes.Add(static_cast<std::int64_t>(appended));
  }
  if (!wantWrite_ && !flushQueued_) {
    if (out_.size() >= kInlineFlushBytes) {
      Flush();  // bound deferred memory; may close the connection
      if (fd_ < 0) return Err(ErrorCode::kClosed, "write failed");
    } else {
      RequestFlush();
    }
  }
  // Crossing the soft mark on lazily-deferred bytes would flag a healthy
  // session as a slow consumer; flush first so the advisory only fires when
  // the kernel is genuinely not keeping up.
  if (out_.size() > wm_.soft && !wantWrite_) {
    Flush();
    if (fd_ < 0) return Err(ErrorCode::kClosed, "write failed");
  }
  if (out_.size() > wm_.soft) {
    overSoft_ = true;
    return Err(ErrorCode::kCapacity, "write buffer over soft watermark");
  }
  return OkStatus();
}

void TcpConnection::RequestFlush() {
  if (flushQueued_) return;
  flushQueued_ = true;
  loop_.QueueFlush(shared_from_this());
}

void TcpConnection::Close() {
  CloseNow();
}

void TcpConnection::CloseAfterFlush() {
  if (fd_ < 0) return;
  if (out_.empty()) {
    CloseNow();
    return;
  }
  if (closeAfterFlush_) return;
  closeAfterFlush_ = true;
  // A peer that never drains (the very consumer being evicted) must not pin
  // the fd forever; reap after a bounded grace.
  auto self = shared_from_this();
  loop_.ScheduleTimer(kCloseFlushGrace, [self] {
    if (self->fd_ >= 0) self->CloseNow();
  });
}

void TcpConnection::SetReadPaused(bool paused) {
  if (readPaused_ == paused) return;
  readPaused_ = paused;
  if (fd_ >= 0) UpdateEpollInterest();
}

void TcpConnection::CloseNow() {
  if (fd_ < 0) return;
  loop_.Deregister(fd_);
  ::close(fd_);
  const int fd = fd_;
  fd_ = -1;
  if (auto* m = loop_.metrics(); m != nullptr && !out_.empty()) {
    m->sendQueueBytes.Add(-static_cast<std::int64_t>(out_.size()));
  }
  out_.Clear();
  // Run the close notification after unwinding (the caller may be inside
  // HandleReadable), then release both handlers: they often capture this
  // connection in a shared_ptr and would otherwise form a reference cycle.
  // Releasing is deferred too — Close() may have been called from *inside*
  // the data handler, and destroying an executing std::function is UB. The
  // loop tracks the connection until then so ~EpollLoop can break the cycle
  // even when it stops before the deferred task runs.
  auto self = shared_from_this();
  loop_.MarkClosing(self);
  loop_.Post([self] {
    auto handler = std::move(self->closeHandler_);
    self->closeHandler_ = nullptr;
    if (handler) handler();
    self->DetachHandlers();
    self->loop_.UnmarkClosing(self.get());
  });
  loop_.ForgetConnection(fd);
}

void TcpConnection::HandleReadable() {
  // Read until EAGAIN (level-triggered, but draining avoids extra wakeups).
  // The buffer is per-loop, not per-call: HandleReadable only runs on the
  // loop thread and data handlers never re-enter the read path, so one
  // 64 KiB buffer serves every connection without a stack splash each call.
  std::uint8_t* buf = loop_.readBuffer();
  const std::size_t cap = loop_.readBufferSize();
  while (fd_ >= 0) {
    iovec iov{buf, cap};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (auto* m = loop_.metrics()) m->syscallsRecv.Inc();
    if (n > 0) {
      if (auto* m = loop_.metrics()) m->bytesRead.Inc(static_cast<std::size_t>(n));
      if (dataHandler_) dataHandler_(BytesView(buf, static_cast<std::size_t>(n)));
      if (n < static_cast<ssize_t>(cap)) break;
    } else if (n == 0) {
      CloseNow();
      return;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseNow();
      return;
    }
  }
}

void TcpConnection::HandleWritable() { Flush(); }

void TcpConnection::Flush() {
  while (!out_.empty() && fd_ >= 0) {
    // Scatter-gather: one syscall moves up to kMaxIov queued frames.
    iovec iov[kMaxIov];
    const std::size_t iovCount = out_.FillIovecs(iov, kMaxIov);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovCount;
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (auto* m = loop_.metrics()) m->syscallsSendmsg.Inc();
    if (n > 0) {
      out_.Consume(static_cast<std::size_t>(n));
      if (auto* m = loop_.metrics()) {
        m->bytesWritten.Inc(static_cast<std::size_t>(n));
        m->sendQueueBytes.Add(-static_cast<std::int64_t>(n));
      }
    } else if (n == 0) {
      // Defensive: zero-length progress — re-arm and retry on EPOLLOUT.
      if (!wantWrite_) {
        wantWrite_ = true;
        UpdateEpollInterest();
      }
      return;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: let EPOLLOUT drive the rest of the drain.
        if (!wantWrite_) {
          wantWrite_ = true;
          UpdateEpollInterest();
        }
        return;
      }
      if (errno == EINTR) continue;
      CloseNow();
      return;
    }
  }
  if (out_.empty() && wantWrite_ && fd_ >= 0) {
    wantWrite_ = false;
    UpdateEpollInterest();
  }
  if (fd_ >= 0 && overSoft_ && out_.size() <= wm_.low) {
    overSoft_ = false;
    if (drainedHandler_) {
      // Copy before invoking: the handler may replace itself (or Close()).
      auto handler = drainedHandler_;
      handler();
    }
  }
  if (fd_ >= 0 && closeAfterFlush_ && out_.empty()) CloseNow();
}

void TcpConnection::UpdateEpollInterest() {
  loop_.Modify(fd_, (readPaused_ ? 0u : EPOLLIN) | (wantWrite_ ? EPOLLOUT : 0u));
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(EpollLoop& loop, int fd, std::uint16_t port)
    : loop_(loop), fd_(fd), port_(port) {
  loop_.TrackListener(this);
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ < 0) return;
  loop_.Deregister(fd_);
  loop_.ForgetListener(this);
  ::close(fd_);
  fd_ = -1;
}

void TcpListener::HandleReadable() {
  while (true) {
    const int clientFd = ::accept(fd_, nullptr, nullptr);
    if (clientFd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: with level-triggered epoll the pending backlog
        // would re-fire forever. Drain it with the classic reserved-fd
        // trick — momentarily release the emergency fd, accept, close.
        loop_.DrainAcceptBacklog(fd_);
        return;
      }
      MD_WARN("accept failed: %s", std::strerror(errno));
      return;
    }
    auto conn = std::make_shared<TcpConnection>(loop_, clientFd, PeerString(clientFd));
    loop_.TrackConnection(conn);
    loop_.Register(clientFd, EPOLLIN);
    if (acceptHandler_) acceptHandler_(conn);
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// EpollLoop
// ---------------------------------------------------------------------------

EpollLoop::EpollLoop() {
  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  wakeFd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  emergencyFd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  Register(wakeFd_, EPOLLIN);
}

void EpollLoop::DrainAcceptBacklog(int listenFd) {
  if (emergencyFd_ < 0) return;
  MD_WARN("fd limit reached; refusing pending connections");
  ::close(emergencyFd_);
  // Accept+close a batch of pending connections so the backlog drains and
  // peers see a clean RST/close instead of a hung connect.
  for (int i = 0; i < 128; ++i) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) break;
    ::close(fd);
  }
  emergencyFd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

EpollLoop::~EpollLoop() {
  // Connections still alive at teardown may hold self-referencing handlers;
  // detach them so the shared_ptrs can unwind. Covers both still-open
  // connections and closed ones whose deferred cleanup never ran.
  auto conns = std::move(connections_);
  connections_.clear();
  for (auto& [fd, conn] : conns) conn->DetachHandlers();
  auto closing = std::move(closing_);
  closing_.clear();
  for (auto& conn : closing) conn->DetachHandlers();
  if (emergencyFd_ >= 0) ::close(emergencyFd_);
  if (wakeFd_ >= 0) ::close(wakeFd_);
  if (epollFd_ >= 0) ::close(epollFd_);
}

void EpollLoop::Run() {
  running_.store(true, std::memory_order_release);
  epoll_event events[256];
  while (running_.load(std::memory_order_acquire)) {
    DrainPostedTasks();
    FireDueTimers();
    // Adaptive flush: everything queued by the tasks/timers above (and by
    // the previous dispatch round) goes to the kernel before we block —
    // idle loops flush immediately, busy loops coalesce whole batches.
    FlushPending();
    if (!running_.load(std::memory_order_acquire)) break;

    const int n = epoll_wait(epollFd_, events, 256, NextTimeoutMillis());
    if (n < 0) {
      if (errno == EINTR) continue;
      MD_ERROR("epoll_wait: %s", std::strerror(errno));
      break;
    }
    if (auto* m = metrics()) m->loopIterations.Inc();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;

      if (fd == wakeFd_) {
        std::uint64_t drain = 0;
        while (::read(wakeFd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }

      if (auto cit = connecting_.find(fd); cit != connecting_.end()) {
        HandleConnectReady(fd);
        continue;
      }

      if (auto it = connections_.find(fd); it != connections_.end()) {
        // Hold a reference: handlers may close/erase the connection.
        auto conn = it->second;
        if (ev & (EPOLLHUP | EPOLLERR)) {
          conn->CloseNow();
          continue;
        }
        if (ev & EPOLLIN) conn->HandleReadable();
        if ((ev & EPOLLOUT) && conn->IsOpen()) conn->HandleWritable();
        continue;
      }

      for (auto* listener : listeners_) {
        if (listener->fd() == fd) {
          listener->HandleReadable();
          break;
        }
      }
    }
  }
  DrainPostedTasks();
  FlushPending();  // final tasks may have queued egress (e.g. goodbyes)
}

void EpollLoop::Stop() {
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

void EpollLoop::Post(TaskFn task) {
  bool needWake = false;
  {
    std::lock_guard lock(postMutex_);
    // Coalesced wakeup: tasks landing behind an undrained one ride its
    // pending eventfd signal — the loop drains the whole vector per wake.
    needWake = posted_.empty();
    posted_.push_back(std::move(task));
  }
  if (auto* m = metrics()) m->tasksPosted.Inc();
  if (needWake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  }
}

void EpollLoop::PostBatch(std::vector<TaskFn> tasks) {
  if (tasks.empty()) return;
  const std::uint64_t count = tasks.size();
  bool needWake = false;
  {
    std::lock_guard lock(postMutex_);
    needWake = posted_.empty();
    if (posted_.empty()) {
      posted_ = std::move(tasks);
    } else {
      posted_.insert(posted_.end(), std::make_move_iterator(tasks.begin()),
                     std::make_move_iterator(tasks.end()));
    }
  }
  if (auto* m = metrics()) m->tasksPosted.Inc(count);
  if (needWake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  }
}

void EpollLoop::DrainPostedTasks() {
  std::vector<TaskFn> tasks;
  {
    std::lock_guard lock(postMutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EpollLoop::QueueFlush(std::shared_ptr<detail::TcpConnection> conn) {
  flushPending_.push_back(std::move(conn));
}

void EpollLoop::FlushPending() {
  // Flush side effects (drained handlers re-sending) may queue more; loop
  // until quiescent. Termination: a re-queued connection either drains or
  // hits EAGAIN, and EAGAIN hands the drain to EPOLLOUT instead of this
  // list.
  while (!flushPending_.empty()) {
    auto pending = std::move(flushPending_);
    flushPending_.clear();
    for (auto& conn : pending) {
      conn->flushQueued_ = false;  // before Flush: re-sends must re-queue
      if (conn->fd_ >= 0 && !conn->out_.empty() && !conn->wantWrite_) {
        conn->Flush();
      }
    }
  }
}

std::uint64_t EpollLoop::ScheduleTimer(Duration delay, TaskFn task) {
  const std::uint64_t id = nextTimerId_++;
  timerHeap_.push({Now() + (delay > 0 ? delay : 0), id});
  timerTasks_[id] = std::move(task);
  return id;
}

void EpollLoop::CancelTimer(std::uint64_t id) { timerTasks_.erase(id); }

TimePoint EpollLoop::Now() const { return RealClock::Instance().Now(); }

void EpollLoop::FireDueTimers() {
  const TimePoint now = Now();
  while (!timerHeap_.empty() && timerHeap_.top().when <= now) {
    const TimerEntry entry = timerHeap_.top();
    timerHeap_.pop();
    auto it = timerTasks_.find(entry.id);
    if (it == timerTasks_.end()) continue;  // cancelled
    TaskFn task = std::move(it->second);
    timerTasks_.erase(it);
    if (auto* m = metrics()) m->timersFired.Inc();
    task();
  }
}

int EpollLoop::NextTimeoutMillis() const {
  if (timerHeap_.empty()) return 100;
  const Duration until = timerHeap_.top().when - Now();
  if (until <= 0) return 0;
  const auto ms = until / kMillisecond;
  return ms > 100 ? 100 : static_cast<int>(ms) + 1;
}

Result<ListenerPtr> EpollLoop::Listen(std::uint16_t port) {
  auto sock = net::CreateListenSocket(port);
  if (!sock.ok()) return sock.status();
  auto listener = std::make_unique<detail::TcpListener>(*this, sock->fd, sock->port);
  Register(sock->fd, EPOLLIN);
  return ListenerPtr(std::move(listener));
}

void EpollLoop::Connect(const std::string& host, std::uint16_t port,
                        ConnectCallback cb) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    cb(Errno("socket"));
    return;
  }
  sockaddr_in addr{};
  if (Status s = net::ResolveHost(host, port, addr); !s.ok()) {
    ::close(fd);
    cb(std::move(s));
    return;
  }

  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    connecting_[fd] = PendingConnect{fd, std::move(cb), Format("%s:%u", host.c_str(), port)};
    Register(fd, EPOLLOUT);
    return;
  }
  ::close(fd);
  cb(Errno("connect"));
}

void EpollLoop::HandleConnectReady(int fd) {
  auto node = connecting_.extract(fd);
  if (node.empty()) return;
  PendingConnect pending = std::move(node.mapped());
  Deregister(fd);

  int err = 0;
  socklen_t len = sizeof(err);
  getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    ::close(fd);
    pending.cb(Err(ErrorCode::kUnavailable,
                   Format("connect to %s: %s", pending.target.c_str(),
                          std::strerror(err))));
    return;
  }

  auto conn = std::make_shared<detail::TcpConnection>(*this, fd, pending.target);
  TrackConnection(conn);
  Register(fd, EPOLLIN);
  pending.cb(ConnectionPtr(conn));
}

void EpollLoop::Register(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
}

void EpollLoop::Modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
}

void EpollLoop::Deregister(int fd) {
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EpollLoop::TrackConnection(const std::shared_ptr<detail::TcpConnection>& conn) {
  connections_[conn->fd()] = conn;
}

void EpollLoop::ForgetConnection(int fd) { connections_.erase(fd); }

void EpollLoop::MarkClosing(std::shared_ptr<detail::TcpConnection> conn) {
  closing_.push_back(std::move(conn));
}

void EpollLoop::UnmarkClosing(const detail::TcpConnection* conn) {
  std::erase_if(closing_, [conn](const auto& p) { return p.get() == conn; });
}

void EpollLoop::TrackListener(detail::TcpListener* listener) {
  listeners_.push_back(listener);
}

void EpollLoop::ForgetListener(detail::TcpListener* listener) {
  std::erase(listeners_, listener);
}

}  // namespace md
