// Transport abstraction.
//
// The engine, the cluster protocol, and the client library talk to byte
// streams through these interfaces. Two implementations exist:
//   - EpollLoop (epoll_loop.hpp): real non-blocking TCP sockets, one loop per
//     IoThread — the production path (paper §4's I/O layer).
//   - InprocTransport (inproc.hpp): deterministic in-process pipes for unit
//     and integration tests.
//
// Contract: handlers are invoked on the owning loop's thread; Send() may be
// called from the loop thread only (cross-thread senders use Post()). Data
// arrives in order and without duplication (TCP semantics).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace md {

class Connection {
 public:
  using DataHandler = std::function<void(BytesView)>;
  using CloseHandler = std::function<void()>;

  virtual ~Connection() = default;

  /// Buffered, non-blocking send. Returns kCapacity if the write buffer is
  /// over its high-water mark (caller should throttle), kClosed if closed.
  virtual Status Send(BytesView data) = 0;

  /// Initiates close. The close handler fires (once) when fully closed.
  virtual void Close() = 0;

  [[nodiscard]] virtual bool IsOpen() const = 0;

  /// Bytes currently buffered but not yet written to the peer.
  [[nodiscard]] virtual std::size_t PendingBytes() const = 0;

  [[nodiscard]] virtual std::string PeerName() const = 0;

  void SetDataHandler(DataHandler h) { dataHandler_ = std::move(h); }
  void SetCloseHandler(CloseHandler h) { closeHandler_ = std::move(h); }

 protected:
  DataHandler dataHandler_;
  CloseHandler closeHandler_;
};

using ConnectionPtr = std::shared_ptr<Connection>;

class Listener {
 public:
  using AcceptHandler = std::function<void(ConnectionPtr)>;

  virtual ~Listener() = default;
  virtual void Close() = 0;
  [[nodiscard]] virtual std::uint16_t Port() const = 0;

  void SetAcceptHandler(AcceptHandler h) { acceptHandler_ = std::move(h); }

 protected:
  AcceptHandler acceptHandler_;
};

using ListenerPtr = std::unique_ptr<Listener>;

/// Event loop: owns connections, timers and deferred tasks for one thread.
class EventLoop {
 public:
  using TaskFn = std::function<void()>;
  using ConnectCallback = std::function<void(Result<ConnectionPtr>)>;

  virtual ~EventLoop() = default;

  /// Runs until Stop(). Must be called from the loop's designated thread.
  virtual void Run() = 0;
  virtual void Stop() = 0;

  /// Thread-safe: enqueue a task to run on the loop thread.
  virtual void Post(TaskFn task) = 0;

  /// Timers run on the loop thread. Returns an id usable with CancelTimer.
  virtual std::uint64_t ScheduleTimer(Duration delay, TaskFn task) = 0;
  virtual void CancelTimer(std::uint64_t id) = 0;

  [[nodiscard]] virtual TimePoint Now() const = 0;

  /// Opens a listening socket on `port` (0 = ephemeral).
  virtual Result<ListenerPtr> Listen(std::uint16_t port) = 0;

  /// Asynchronously connect to host:port; callback fires on the loop thread.
  virtual void Connect(const std::string& host, std::uint16_t port,
                       ConnectCallback cb) = 0;
};

}  // namespace md
