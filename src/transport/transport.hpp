// Transport abstraction.
//
// The engine, the cluster protocol, and the client library talk to byte
// streams through these interfaces. Two implementations exist:
//   - EpollLoop (epoll_loop.hpp): real non-blocking TCP sockets, one loop per
//     IoThread — the production path (paper §4's I/O layer).
//   - InprocTransport (inproc.hpp): deterministic in-process pipes for unit
//     and integration tests.
//
// Contract: handlers are invoked on the owning loop's thread; Send() may be
// called from the loop thread only (cross-thread senders use Post()). Data
// arrives in order and without duplication (TCP semantics).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace md {

namespace obs {
struct TransportMetrics;
}  // namespace obs

/// Send-buffer watermarks (slow-consumer backpressure).
///
///   - soft: Send() still accepts the bytes but returns kCapacity so the
///     caller can apply its overflow policy (throttle, conflate, evict).
///   - hard: Send() rejects the append outright — kCapacity with nothing
///     buffered — so PendingBytes() is bounded by `hard` no matter how the
///     caller reacts. Rejection is all-or-nothing per call: a frame that
///     does not fit is never partially queued (that would tear the stream).
///   - low: once the buffer was over `soft`, the drained handler fires when
///     PendingBytes() falls back to <= low.
///
/// Defaults preserve the historical behaviour (8 MiB advisory mark, no hard
/// rejection, no drain notifications); client-facing owners are expected to
/// configure real limits per deployment.
struct Watermarks {
  std::size_t soft = 8 * 1024 * 1024;
  std::size_t hard = SIZE_MAX;
  std::size_t low = 0;
};

class Connection {
 public:
  using DataHandler = std::function<void(BytesView)>;
  using CloseHandler = std::function<void()>;
  using DrainedHandler = std::function<void()>;

  virtual ~Connection() = default;

  /// Buffered, non-blocking send. Returns kCapacity when the write buffer is
  /// over the soft watermark (bytes accepted; caller should throttle) or when
  /// the append would exceed the hard watermark (bytes rejected — the caller
  /// can distinguish the two by comparing PendingBytes() across the call),
  /// kClosed if closed.
  virtual Status Send(BytesView data) = 0;

  /// Zero-copy variant: queues a *reference* to the (immutable) buffer
  /// instead of copying its bytes — the fan-out path shares one encoded
  /// frame across every subscriber on the loop. Watermark semantics are
  /// identical to Send(BytesView). Implementations that don't support
  /// refcounted queues fall back to the copying path.
  virtual Status Send(std::shared_ptr<const Bytes> data) {
    return Send(BytesView(*data));
  }

  /// Initiates close. The close handler fires (once) when fully closed.
  /// Bytes still buffered are discarded.
  virtual void Close() = 0;

  /// Graceful variant: lets already-buffered bytes flush to the peer first
  /// (implementations bound the wait). Default = immediate Close().
  virtual void CloseAfterFlush() { Close(); }

  [[nodiscard]] virtual bool IsOpen() const = 0;

  /// Bytes currently buffered but not yet written to the peer.
  [[nodiscard]] virtual std::size_t PendingBytes() const = 0;

  [[nodiscard]] virtual std::string PeerName() const = 0;

  /// Test/fault-injection hook: a paused connection stops consuming inbound
  /// bytes (models a stalled reader / zero receive window), so the *peer's*
  /// send buffer backs up. Default no-op for transports without the concept.
  virtual void SetReadPaused(bool /*paused*/) {}

  void SetDataHandler(DataHandler h) { dataHandler_ = std::move(h); }
  void SetCloseHandler(CloseHandler h) { closeHandler_ = std::move(h); }

  /// Loop-thread only, like Send().
  void SetWatermarks(const Watermarks& wm) { wm_ = wm; }
  [[nodiscard]] const Watermarks& watermarks() const noexcept { return wm_; }

  /// Fires on the loop thread when the buffer recovers from above-soft to
  /// <= low (see Watermarks). At most once per soft-mark excursion.
  void SetDrainedHandler(DrainedHandler h) { drainedHandler_ = std::move(h); }

 protected:
  DataHandler dataHandler_;
  CloseHandler closeHandler_;
  DrainedHandler drainedHandler_;
  Watermarks wm_;
  bool overSoft_ = false;  // excursion state for the drained notification
};

using ConnectionPtr = std::shared_ptr<Connection>;

class Listener {
 public:
  using AcceptHandler = std::function<void(ConnectionPtr)>;

  virtual ~Listener() = default;
  virtual void Close() = 0;
  [[nodiscard]] virtual std::uint16_t Port() const = 0;

  void SetAcceptHandler(AcceptHandler h) { acceptHandler_ = std::move(h); }

 protected:
  AcceptHandler acceptHandler_;
};

using ListenerPtr = std::unique_ptr<Listener>;

/// Event loop: owns connections, timers and deferred tasks for one thread.
class EventLoop {
 public:
  using TaskFn = std::function<void()>;
  using ConnectCallback = std::function<void(Result<ConnectionPtr>)>;

  virtual ~EventLoop() = default;

  /// Runs until Stop(). Must be called from the loop's designated thread.
  virtual void Run() = 0;
  virtual void Stop() = 0;

  /// Thread-safe: enqueue a task to run on the loop thread.
  virtual void Post(TaskFn task) = 0;

  /// Timers run on the loop thread. Returns an id usable with CancelTimer.
  virtual std::uint64_t ScheduleTimer(Duration delay, TaskFn task) = 0;
  virtual void CancelTimer(std::uint64_t id) = 0;

  [[nodiscard]] virtual TimePoint Now() const = 0;

  /// Opens a listening socket on `port` (0 = ephemeral).
  virtual Result<ListenerPtr> Listen(std::uint16_t port) = 0;

  /// Asynchronously connect to host:port; callback fires on the loop thread.
  virtual void Connect(const std::string& host, std::uint16_t port,
                       ConnectCallback cb) = 0;
};

/// Real-network event loop: what the server/cluster hosts program against so
/// the epoll and io_uring backends are interchangeable. Adds the batch post
/// used by fan-out and the metrics bundle both backends feed.
class NetLoop : public EventLoop {
 public:
  /// Enqueues several tasks with one lock acquisition and (at most) one
  /// wakeup — the cross-thread half of fan-out batching. Default loops
  /// Post(); both real backends override with a coalesced wake.
  virtual void PostBatch(std::vector<TaskFn> tasks) {
    for (auto& task : tasks) Post(std::move(task));
  }

  /// Optional instrumentation (wakeups, bytes, syscalls, queue depth). The
  /// bundle must outlive the loop; call before Run(). nullptr disables.
  /// Atomic because Post()/PostBatch() (any thread) count into the bundle
  /// while the owner may still be installing it.
  void SetMetrics(obs::TransportMetrics* metrics) noexcept {
    metrics_.store(metrics, std::memory_order_release);
  }
  [[nodiscard]] obs::TransportMetrics* metrics() const noexcept {
    return metrics_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<obs::TransportMetrics*> metrics_{nullptr};
};

/// Which real-network backend to run.
enum class LoopKind : std::uint8_t { kEpoll, kIoUring };

/// "epoll" / "io_uring" (also accepts "uring"); nullopt on anything else.
[[nodiscard]] std::optional<LoopKind> ParseLoopKind(std::string_view name);
[[nodiscard]] const char* LoopKindName(LoopKind kind) noexcept;

/// Probes the running kernel once: io_uring must exist and support the
/// features the UringLoop needs (EXT_ARG timed waits). `whyNot` (optional)
/// receives a human-readable reason when unavailable.
[[nodiscard]] bool IoUringAvailable(std::string* whyNot = nullptr);

/// Creates the requested backend, falling back to epoll (with a warning)
/// when io_uring is requested but the kernel can't run it.
[[nodiscard]] std::unique_ptr<NetLoop> CreateNetLoop(LoopKind kind);

}  // namespace md
