// Zero-copy egress building blocks.
//
// A publish is encoded once per protocol mode into a refcounted wire buffer
// (`std::shared_ptr<const Bytes>`); every subscriber's connection queues a
// *reference* to it instead of copying the bytes into a per-session buffer.
// The queue remembers (buffer, offset) pairs so partial writes resume
// mid-buffer without ever tearing a frame, and a scatter-gather flush moves
// many frames per syscall.
//
// Buffer lifetime rule: a wire buffer is immutable from the moment it is
// handed to any SendQueue. The queue keeps its reference until the last byte
// is written (or the connection dies), so a session closing mid-flush cannot
// free bytes another session still points at — the shared_ptr is the
// ownership token.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"

struct iovec;  // <sys/uio.h>

namespace md {

/// Immutable, shareable wire bytes.
using WireBuffer = std::shared_ptr<const Bytes>;

/// Acquires a reusable Bytes from a process-wide pool (empty, capacity
/// retained from its previous life). When the last reference drops the
/// buffer returns to the pool instead of being freed, so steady-state
/// fan-out encodes into warm allocations. Callers fill it, then share it as
/// a WireBuffer (shared_ptr<Bytes> converts implicitly).
[[nodiscard]] std::shared_ptr<Bytes> AcquireWireBuffer();

/// Pool introspection for tests.
[[nodiscard]] std::size_t WireBufferPoolSize();

/// Outbound byte queue holding (buffer-ref, offset) nodes.
///
/// Two append flavours:
///   - AppendShared: zero-copy; the node references the caller's buffer.
///   - AppendCopy: copies into a mutable tail buffer that coalesces
///     consecutive copied appends (handshakes, acks — small control frames),
///     so tiny writes don't each allocate a node + buffer.
///
/// Consume() advances byte-wise across node boundaries, exactly like the
/// flat ByteQueue it replaces, so short writes at any offset preserve frame
/// boundaries by construction: bytes are only ever removed from the front in
/// write order.
class SendQueue {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return totalBytes_; }
  [[nodiscard]] bool empty() const noexcept { return totalBytes_ == 0; }

  void AppendShared(WireBuffer buf) {
    if (!buf || buf->empty()) return;
    totalBytes_ += buf->size();
    nodes_.push_back(Node{std::move(buf), 0});
    tail_ = nullptr;  // shared node ends any coalescing run
  }

  void AppendCopy(BytesView data) {
    if (data.empty()) return;
    totalBytes_ += data.size();
    if (tail_ == nullptr) {
      auto buf = AcquireWireBuffer();
      tail_ = buf.get();
      nodes_.push_back(Node{std::move(buf), 0});
    }
    tail_->insert(tail_->end(), data.begin(), data.end());
  }

  /// Ends the current coalescing run: later AppendCopy calls start a fresh
  /// tail buffer. Required before handing iovecs to an asynchronous writer
  /// (io_uring): an in-flight iovec must not be invalidated by a tail
  /// reallocation.
  void FreezeTail() noexcept { tail_ = nullptr; }

  /// Fills up to `maxIov` iovecs from the front of the queue. Returns the
  /// number filled. Pointers stay valid until Consume/Append/Clear. An
  /// asynchronous writer (io_uring) passes `pins`: it receives a reference
  /// to every spanned buffer so the iovec targets survive even if the queue
  /// is cleared while the kernel still reads them.
  std::size_t FillIovecs(struct iovec* iov, std::size_t maxIov,
                         std::vector<std::shared_ptr<const Bytes>>* pins =
                             nullptr) const;

  /// Drops `n` bytes from the front (n <= size()). Fully-consumed nodes
  /// release their buffer references immediately.
  void Consume(std::size_t n) {
    totalBytes_ -= n;
    while (n > 0) {
      Node& front = nodes_.front();
      const std::size_t remain = front.buf->size() - front.offset;
      if (n < remain) {
        front.offset += n;
        return;
      }
      n -= remain;
      if (front.buf.get() == tail_) tail_ = nullptr;
      nodes_.pop_front();
    }
  }

  void Clear() noexcept {
    nodes_.clear();
    tail_ = nullptr;
    totalBytes_ = 0;
  }

 private:
  struct Node {
    std::shared_ptr<const Bytes> buf;
    std::size_t offset;
  };

  // Mutable alias of the last node's buffer while it is still a coalescing
  // tail this queue owns exclusively (created by AppendCopy, never shared).
  Bytes* tail_ = nullptr;
  std::deque<Node> nodes_;
  std::size_t totalBytes_ = 0;
};

}  // namespace md
