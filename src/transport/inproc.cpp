#include "transport/inproc.hpp"

#include "common/strutil.hpp"

namespace md {

namespace detail {

InprocConnection::InprocConnection(InprocLoop& loop, std::string peerName)
    : loop_(loop), peerName_(std::move(peerName)) {}

Status InprocConnection::Send(BytesView data) {
  if (!open_) return Err(ErrorCode::kClosed, "connection closed");
  auto peer = peer_.lock();
  if (!peer) return Err(ErrorCode::kClosed, "peer gone");
  // Same watermark contract as TcpConnection: whole-frame hard rejection
  // first (outPending_ <= wm_.hard by induction), soft advisory after the
  // bytes are accepted.
  if (data.size() > wm_.hard - outPending_) {
    return Err(ErrorCode::kCapacity, "send rejected: over hard watermark");
  }
  outPending_ += data.size();
  Bytes copy(data.begin(), data.end());
  loop_.scheduler().Schedule(
      loop_.deliveryDelay(),
      [peer, copy = std::move(copy)]() mutable { peer->DeliverData(std::move(copy)); });
  if (outPending_ > wm_.soft) {
    overSoft_ = true;
    return Err(ErrorCode::kCapacity, "write buffer over soft watermark");
  }
  return OkStatus();
}

Status InprocConnection::Send(std::shared_ptr<const Bytes> data) {
  if (!open_) return Err(ErrorCode::kClosed, "connection closed");
  if (data == nullptr || data->empty()) return OkStatus();
  auto peer = peer_.lock();
  if (!peer) return Err(ErrorCode::kClosed, "peer gone");
  if (data->size() > wm_.hard - outPending_) {
    return Err(ErrorCode::kCapacity, "send rejected: over hard watermark");
  }
  outPending_ += data->size();
  // Zero-copy: the event carries a reference; the buffer stays alive (and
  // immutable) until every receiver on every loop has consumed it.
  loop_.scheduler().Schedule(
      loop_.deliveryDelay(),
      [peer, data = std::move(data)] { peer->DeliverShared(data); });
  if (outPending_ > wm_.soft) {
    overSoft_ = true;
    return Err(ErrorCode::kCapacity, "write buffer over soft watermark");
  }
  return OkStatus();
}

void InprocConnection::Close() {
  if (!open_) return;
  open_ = false;
  // Parked-but-never-consumed bytes must not leak the sender's accounting.
  if (!parked_.empty()) {
    std::size_t parkedBytes = 0;
    for (const Bytes& b : parked_) parkedBytes += b.size();
    parked_.clear();
    if (auto peer = peer_.lock()) peer->OnPeerConsumed(parkedBytes);
  }
  if (auto peer = peer_.lock()) {
    loop_.scheduler().Schedule(loop_.deliveryDelay(),
                               [peer] { peer->DeliverClose(); });
  }
  // Notify, then release the handlers (they may capture this connection in
  // a shared_ptr — a reference cycle). Deferred: Close() may be running
  // inside the data handler, which must not destroy itself mid-execution.
  // The loop tracks the connection until then (see ~InprocLoop).
  auto self = shared_from_this();
  loop_.MarkClosing(self);
  loop_.scheduler().Schedule(0, [self, loop = &loop_] {
    auto handler = std::move(self->closeHandler_);
    self->closeHandler_ = nullptr;
    if (handler) handler();
    self->DetachHandlers();
    loop->UnmarkClosing(self.get());
  });
}

void InprocConnection::DeliverData(Bytes data) {
  if (!open_) {
    // Receiver already closed: bytes are discarded (as a dead TCP peer
    // would), but the sender's pending accounting must not leak.
    if (auto peer = peer_.lock()) peer->OnPeerConsumed(data.size());
    return;
  }
  if (readPaused_ || !parked_.empty()) {
    parked_.push_back(std::move(data));
    return;
  }
  Consume(std::move(data));
}

void InprocConnection::DeliverShared(const std::shared_ptr<const Bytes>& data) {
  if (!open_) {
    if (auto peer = peer_.lock()) peer->OnPeerConsumed(data->size());
    return;
  }
  if (readPaused_ || !parked_.empty()) {
    // Parking needs owned bytes (the deque outlives this event); the paused
    // path is the exception, so the copy lives here and nowhere else.
    parked_.emplace_back(data->begin(), data->end());
    return;
  }
  const std::size_t n = data->size();
  if (dataHandler_) dataHandler_(BytesView(*data));
  if (auto peer = peer_.lock()) peer->OnPeerConsumed(n);
}

void InprocConnection::Consume(Bytes data) {
  const std::size_t n = data.size();
  if (dataHandler_) dataHandler_(BytesView(data));
  if (auto peer = peer_.lock()) peer->OnPeerConsumed(n);
}

void InprocConnection::OnPeerConsumed(std::size_t n) {
  outPending_ -= n < outPending_ ? n : outPending_;
  if (overSoft_ && outPending_ <= wm_.low) {
    overSoft_ = false;
    if (drainedHandler_) {
      auto handler = drainedHandler_;  // may replace itself / close
      handler();
    }
  }
}

void InprocConnection::SetReadPaused(bool paused) {
  readPaused_ = paused;
  if (paused) return;
  // Drain the parked backlog in arrival order; a handler may re-pause.
  while (!readPaused_ && open_ && !parked_.empty()) {
    Bytes data = std::move(parked_.front());
    parked_.pop_front();
    Consume(std::move(data));
  }
  if (open_ && !readPaused_ && parked_.empty() && pendingClose_) {
    pendingClose_ = false;
    DeliverClose();
  }
}

void InprocConnection::DeliverClose() {
  if (!open_) return;
  if (readPaused_ || !parked_.empty()) {
    // The close arrived behind parked data: a real socket delivers the
    // ordered bytes first, then EOF. Resume replays them, then closes.
    pendingClose_ = true;
    return;
  }
  open_ = false;
  // Scheduler events are sequential, so no handler is mid-execution here.
  dataHandler_ = nullptr;
  auto handler = std::move(closeHandler_);
  closeHandler_ = nullptr;
  if (handler) handler();
}

void InprocListener::Close() {
  if (closed_) return;
  closed_ = true;
  loop_.RemoveListener(port_);
}

}  // namespace detail

InprocLoop::~InprocLoop() {
  // Break handler cycles of connections whose deferred cleanup never ran
  // (e.g. the test ended without pumping the scheduler).
  auto closing = std::move(closing_);
  closing_.clear();
  for (auto& conn : closing) conn->DetachHandlers();
}

Result<ListenerPtr> InprocLoop::Listen(std::uint16_t port) {
  if (port == 0) port = nextEphemeral_++;
  if (listeners_.contains(port)) {
    return Err(ErrorCode::kAlreadyExists, Format("port %u in use", port));
  }
  auto listener = std::make_unique<detail::InprocListener>(*this, port);
  listeners_[port] = listener.get();
  return ListenerPtr(std::move(listener));
}

void InprocLoop::Connect(const std::string& host, std::uint16_t port,
                         ConnectCallback cb) {
  sched_.Schedule(deliveryDelay_, [this, host, port, cb = std::move(cb)] {
    const auto it = listeners_.find(port);
    if (it == listeners_.end()) {
      cb(Err(ErrorCode::kUnavailable,
             Format("connection refused: %s:%u", host.c_str(), port)));
      return;
    }
    auto clientSide = std::make_shared<detail::InprocConnection>(
        *this, Format("%s:%u", host.c_str(), port));
    auto serverSide = std::make_shared<detail::InprocConnection>(
        *this, Format("client->%u", port));
    clientSide->BindPeer(serverSide);
    serverSide->BindPeer(clientSide);
    it->second->Accept(serverSide);
    cb(ConnectionPtr(clientSide));
  });
}

}  // namespace md
