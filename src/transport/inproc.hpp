// Deterministic in-process transport over the simulation scheduler.
//
// Implements the same EventLoop/Connection/Listener contract as EpollLoop,
// but every byte transfer is an event on a sim::Scheduler with a configurable
// delivery delay. Single-threaded: tests pump the scheduler and observe fully
// reproducible interleavings. This is the harness under which the engine and
// cluster protocol are unit/integration/property tested.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "simnet/scheduler.hpp"
#include "transport/transport.hpp"

namespace md {

class InprocLoop;

namespace detail {

class InprocConnection final
    : public Connection,
      public std::enable_shared_from_this<InprocConnection> {
 public:
  InprocConnection(InprocLoop& loop, std::string peerName);

  Status Send(BytesView data) override;
  Status Send(std::shared_ptr<const Bytes> data) override;
  void Close() override;
  [[nodiscard]] bool IsOpen() const override { return open_; }
  /// Bytes sent but not yet consumed by the peer's data handler — in-flight
  /// scheduler events plus anything parked at a read-paused peer. This is
  /// the inproc analogue of TCP's unwritten send buffer, so simnet tests see
  /// real backpressure instead of a hard-coded 0.
  [[nodiscard]] std::size_t PendingBytes() const override { return outPending_; }
  [[nodiscard]] std::string PeerName() const override { return peerName_; }
  /// While paused, inbound deliveries park in arrival order (the peer's
  /// PendingBytes keeps counting them); Resume drains the backlog in order,
  /// then any deferred close.
  void SetReadPaused(bool paused) override;

  void BindPeer(std::shared_ptr<InprocConnection> peer) { peer_ = std::move(peer); }

  // Called via scheduler events.
  void DeliverData(Bytes data);
  /// Zero-copy delivery: the handler reads straight from the shared buffer.
  /// Parks a copy only when the reader is paused (the rare path).
  void DeliverShared(const std::shared_ptr<const Bytes>& data);
  void DeliverClose();
  /// Peer-side acknowledgement that `n` sent bytes were consumed.
  void OnPeerConsumed(std::size_t n);
  void DetachHandlers() noexcept {
    dataHandler_ = nullptr;
    closeHandler_ = nullptr;
    drainedHandler_ = nullptr;
  }

 private:
  void Consume(Bytes data);

  InprocLoop& loop_;
  std::string peerName_;
  std::weak_ptr<InprocConnection> peer_;
  bool open_ = true;
  std::size_t outPending_ = 0;
  std::deque<Bytes> parked_;
  bool readPaused_ = false;
  bool pendingClose_ = false;
};

class InprocListener final : public Listener {
 public:
  InprocListener(InprocLoop& loop, std::uint16_t port)
      : loop_(loop), port_(port) {}
  ~InprocListener() override { Close(); }

  void Close() override;
  [[nodiscard]] std::uint16_t Port() const override { return port_; }

  void Accept(ConnectionPtr conn) {
    if (acceptHandler_) acceptHandler_(std::move(conn));
  }

 private:
  InprocLoop& loop_;
  std::uint16_t port_;
  bool closed_ = false;
};

}  // namespace detail

class InprocLoop final : public EventLoop {
 public:
  explicit InprocLoop(sim::Scheduler& sched, Duration deliveryDelay = 0)
      : sched_(sched), deliveryDelay_(deliveryDelay) {}

  // EventLoop: Run/Stop map onto the shared scheduler.
  void Run() override { sched_.Run(); }
  void Stop() override {}
  void Post(TaskFn task) override { sched_.Schedule(0, std::move(task)); }
  std::uint64_t ScheduleTimer(Duration delay, TaskFn task) override {
    return sched_.Schedule(delay, std::move(task));
  }
  void CancelTimer(std::uint64_t id) override { sched_.Cancel(id); }
  [[nodiscard]] TimePoint Now() const override { return sched_.Now(); }

  Result<ListenerPtr> Listen(std::uint16_t port) override;
  void Connect(const std::string& host, std::uint16_t port,
               ConnectCallback cb) override;

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] Duration deliveryDelay() const noexcept { return deliveryDelay_; }

  // Internal.
  void RemoveListener(std::uint16_t port) { listeners_.erase(port); }
  void MarkClosing(std::shared_ptr<detail::InprocConnection> conn) {
    closing_.push_back(std::move(conn));
  }
  void UnmarkClosing(const detail::InprocConnection* conn) {
    std::erase_if(closing_, [conn](const auto& p) { return p.get() == conn; });
  }
  ~InprocLoop();

 private:
  sim::Scheduler& sched_;
  Duration deliveryDelay_;
  std::vector<std::shared_ptr<detail::InprocConnection>> closing_;
  std::map<std::uint16_t, detail::InprocListener*> listeners_;
  std::uint16_t nextEphemeral_ = 50000;
};

}  // namespace md
