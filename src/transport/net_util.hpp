// Socket plumbing shared by the epoll and io_uring backends.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/status.hpp"
#include "common/strutil.hpp"

namespace md::net {

inline Status Errno(const char* what) {
  return Err(ErrorCode::kInternal, Format("%s: %s", what, std::strerror(errno)));
}

inline void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

inline void SetTcpOptions(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline std::string PeerString(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    char buf[INET_ADDRSTRLEN];
    inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
    return Format("%s:%u", buf, static_cast<unsigned>(ntohs(addr.sin_port)));
  }
  return "unknown";
}

/// Binds + listens a loopback listener socket; fills `actualPort` (resolves
/// port 0 to the kernel-assigned ephemeral port). Returns the fd or a
/// negative errno-style failure via the status.
struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

inline Result<ListenSocket> CreateListenSocket(std::uint16_t port,
                                               bool nonBlocking = true) {
  const int fd = ::socket(
      AF_INET, SOCK_STREAM | (nonBlocking ? SOCK_NONBLOCK : 0) | SOCK_CLOEXEC,
      0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // SO_REUSEPORT lets every IoThread bind its own listener on the same port;
  // the kernel spreads incoming connections across them (paper §4: clients
  // are equally partitioned among the IoThreads).
  setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Errno("bind");
  }
  if (::listen(fd, 1024) < 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return ListenSocket{fd, ntohs(addr.sin_port)};
}

/// Resolves `host` into `addr` (numeric IPv4, or "localhost").
inline Status ResolveHost(const std::string& host, std::uint16_t port,
                          sockaddr_in& addr) {
  addr = sockaddr_in{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Only "localhost" is resolved by name — evaluation runs on loopback.
    if (host != "localhost") {
      return Err(ErrorCode::kInvalidArgument, "unresolvable host: " + host);
    }
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  return OkStatus();
}

}  // namespace md::net
