#include "transport/wire.hpp"

#include <sys/uio.h>

#include <algorithm>

namespace md {

namespace {

// Process-wide buffer pool. Bounded so a fan-out burst can't pin memory
// forever: at most kMaxPooled buffers are retained, and a buffer that grew
// past kMaxRetainedCapacity is freed rather than pooled (one giant frame
// must not turn into a permanently giant pool slot). Leaky singleton: the
// pool must outlive every connection, including ones torn down during
// static destruction.
constexpr std::size_t kMaxPooled = 128;
constexpr std::size_t kMaxRetainedCapacity = 256 * 1024;

struct BufferPool {
  std::mutex mutex;
  std::vector<std::unique_ptr<Bytes>> free;

  std::unique_ptr<Bytes> Take() {
    std::lock_guard lock(mutex);
    if (free.empty()) return nullptr;
    auto buf = std::move(free.back());
    free.pop_back();
    return buf;
  }

  void Put(std::unique_ptr<Bytes> buf) {
    buf->clear();
    if (buf->capacity() > kMaxRetainedCapacity) return;  // let it free
    std::lock_guard lock(mutex);
    if (free.size() >= kMaxPooled) return;
    free.push_back(std::move(buf));
  }

  std::size_t Size() {
    std::lock_guard lock(mutex);
    return free.size();
  }
};

BufferPool& Pool() {
  static auto* pool = new BufferPool();
  return *pool;
}

}  // namespace

std::shared_ptr<Bytes> AcquireWireBuffer() {
  auto buf = Pool().Take();
  if (!buf) buf = std::make_unique<Bytes>();
  // The deleter recycles the allocation; shared_ptr's control block keeps
  // the raw pointer alive until the last queue node releases it.
  return {buf.release(),
          [](Bytes* b) { Pool().Put(std::unique_ptr<Bytes>(b)); }};
}

std::size_t WireBufferPoolSize() { return Pool().Size(); }

std::size_t SendQueue::FillIovecs(
    struct iovec* iov, std::size_t maxIov,
    std::vector<std::shared_ptr<const Bytes>>* pins) const {
  std::size_t count = 0;
  for (const Node& node : nodes_) {
    if (count == maxIov) break;
    const std::size_t remain = node.buf->size() - node.offset;
    if (remain == 0) continue;  // freshly-created empty tail
    iov[count].iov_base =
        const_cast<std::uint8_t*>(node.buf->data() + node.offset);
    iov[count].iov_len = remain;
    if (pins != nullptr) pins->push_back(node.buf);
    ++count;
  }
  return count;
}

}  // namespace md
