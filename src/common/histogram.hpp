// Log-linear latency histogram (HDR-histogram style).
//
// Values are bucketed with ~1.6% relative precision across a 1 ns .. ~2^62 ns
// range using (exponent, 64 linear sub-buckets) buckets. Supports the exact
// statistics the paper's tables report: median, mean, stddev, P90, P95, P99.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace md {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets / octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 50;       // covers > 10^15 ns
  static constexpr int kBucketCount = kOctaves * kSubBuckets;

  void Record(std::int64_t value) noexcept { RecordN(value, 1); }

  void RecordN(std::int64_t value, std::uint64_t count) noexcept {
    if (value < 0) value = 0;
    const int idx = IndexFor(static_cast<std::uint64_t>(value));
    counts_[static_cast<std::size_t>(idx)] += count;
    total_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
    sumSquares_ += static_cast<double>(value) * static_cast<double>(value) *
                   static_cast<double>(count);
    if (value > max_) max_ = value;
    if (total_ == count || value < min_) min_ = value;
  }

  void Merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    sumSquares_ += other.sumSquares_;
    if (other.total_ > 0) {
      if (other.max_ > max_) max_ = other.max_;
      if (total_ == other.total_ || other.min_ < min_) min_ = other.min_;
    }
  }

  [[nodiscard]] std::uint64_t Count() const noexcept { return total_; }
  [[nodiscard]] std::int64_t Min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] std::int64_t Max() const noexcept { return max_; }

  [[nodiscard]] double Mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  [[nodiscard]] double StdDev() const noexcept {
    if (total_ == 0) return 0.0;
    const double mean = Mean();
    const double variance =
        sumSquares_ / static_cast<double>(total_) - mean * mean;
    return variance > 0.0 ? std::sqrt(variance) : 0.0;
  }

  /// Value at quantile q in [0, 1]; returns a representative value of the
  /// containing bucket (its midpoint).
  [[nodiscard]] std::int64_t Percentile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target && counts_[i] > 0) {
        return BucketMidpoint(static_cast<int>(i));
      }
    }
    return max_;
  }

  [[nodiscard]] std::int64_t Median() const noexcept { return Percentile(0.5); }

  /// Recorded values at or below `value` (bucket-granular: a bucket counts
  /// once its upper edge is <= value). Drives cumulative `le` buckets in the
  /// Prometheus exposition (src/obs).
  [[nodiscard]] std::uint64_t CountAtOrBelow(std::int64_t value) const noexcept {
    if (value < 0 || total_ == 0) return 0;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (BucketUpperBound(static_cast<int>(i)) > value) break;
      seen += counts_[i];
    }
    return seen;
  }

  void Reset() noexcept {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0.0;
    sumSquares_ = 0.0;
    min_ = 0;
    max_ = 0;
  }

 private:
  static int IndexFor(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<int>(value);
    // Position of the highest set bit above the sub-bucket resolution.
    const int msb = 63 - __builtin_clzll(value);
    const int octave = msb - kSubBucketBits + 1;
    const int sub =
        static_cast<int>((value >> (octave)) & (kSubBuckets / 2 - 1)) +
        kSubBuckets / 2;
    // Layout: octave 0 holds values [0, 64); each further octave holds 32
    // sub-buckets covering one power of two.
    const int idx = kSubBuckets + (octave - 1) * (kSubBuckets / 2) +
                    (sub - kSubBuckets / 2);
    return idx < kBucketCount ? idx : kBucketCount - 1;
  }

  /// Largest value mapping into bucket idx (inclusive). Monotonic in idx.
  static std::int64_t BucketUpperBound(int idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const int rel = idx - kSubBuckets;
    const int octave = rel / (kSubBuckets / 2) + 1;
    const int sub = rel % (kSubBuckets / 2) + kSubBuckets / 2;
    const std::uint64_t base = static_cast<std::uint64_t>(sub) << octave;
    const std::uint64_t width = 1ULL << octave;
    return static_cast<std::int64_t>(base + width - 1);
  }

  static std::int64_t BucketMidpoint(int idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const int rel = idx - kSubBuckets;
    const int octave = rel / (kSubBuckets / 2) + 1;
    const int sub = rel % (kSubBuckets / 2) + kSubBuckets / 2;
    const std::uint64_t base = static_cast<std::uint64_t>(sub) << octave;
    const std::uint64_t width = 1ULL << octave;
    return static_cast<std::int64_t>(base + width / 2);
  }

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double sumSquares_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Summary snapshot in milliseconds, shaped like the paper's table rows.
struct LatencySummary {
  double medianMs = 0;
  double meanMs = 0;
  double stdDevMs = 0;
  double p90Ms = 0;
  double p95Ms = 0;
  double p99Ms = 0;
  std::uint64_t count = 0;
};

LatencySummary SummarizeNanos(const Histogram& h) noexcept;

}  // namespace md
