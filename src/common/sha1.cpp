#include "common/sha1.hpp"

#include <cstring>

namespace md {

namespace {

constexpr std::uint32_t Rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

void ProcessBlock(const std::uint8_t* block, std::uint32_t h[5]) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = temp;
  }

  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
}

}  // namespace

std::array<std::uint8_t, 20> Sha1(std::string_view data) {
  std::uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                        0xC3D2E1F0};

  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t len = data.size();
  while (len >= 64) {
    ProcessBlock(bytes, h);
    bytes += 64;
    len -= 64;
  }

  // Final block(s) with padding and 64-bit big-endian bit length.
  std::uint8_t tail[128] = {};
  std::memcpy(tail, bytes, len);
  tail[len] = 0x80;
  const std::size_t tailBlocks = (len + 1 + 8 > 64) ? 2 : 1;
  const std::uint64_t bitLen = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tailBlocks * 64 - 1 - i] = static_cast<std::uint8_t>(bitLen >> (8 * i));
  }
  ProcessBlock(tail, h);
  if (tailBlocks == 2) ProcessBlock(tail + 64, h);

  std::array<std::uint8_t, 20> digest{};
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(h[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(h[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(h[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(h[i]);
  }
  return digest;
}

std::string Sha1String(std::string_view data) {
  const auto digest = Sha1(data);
  return std::string(reinterpret_cast<const char*>(digest.data()), digest.size());
}

}  // namespace md
