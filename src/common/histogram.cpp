#include "common/histogram.hpp"

#include "common/time.hpp"

namespace md {

LatencySummary SummarizeNanos(const Histogram& h) noexcept {
  LatencySummary s;
  s.count = h.Count();
  s.medianMs = ToMillis(h.Median());
  s.meanMs = h.Mean() / static_cast<double>(kMillisecond);
  s.stdDevMs = h.StdDev() / static_cast<double>(kMillisecond);
  s.p90Ms = ToMillis(h.Percentile(0.90));
  s.p95Ms = ToMillis(h.Percentile(0.95));
  s.p99Ms = ToMillis(h.Percentile(0.99));
  return s;
}

}  // namespace md
