#include "common/slab.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

#if defined(__SANITIZE_ADDRESS__)
#define MD_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MD_ASAN 1
#endif
#endif
#if defined(MD_ASAN)
#include <sanitizer/asan_interface.h>
#define MD_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define MD_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define MD_POISON(p, n) ((void)0)
#define MD_UNPOISON(p, n) ((void)0)
#endif

namespace md {

namespace {

// Slot sizes chosen for the structures that dominate at scale: Session +
// shared_ptr control block (~320–512), deque blocks (~512–4K), FlatMap
// arrays (powers of two), small strings and queue nodes (16–128). Fine
// granularity below 512 B keeps per-session rounding waste low.
constexpr std::array<std::size_t, 20> kClassSizes = {
    16,  32,  48,   64,   80,   96,   112,  128,  160,  192,
    256, 320, 384,  512,  768,  1024, 1536, 2048, 4096, 8192};

static_assert(kClassSizes.back() == SlabArena::kMaxSlotBytes);

}  // namespace

SlabArena::~SlabArena() {
  for (Pool& pool : pools_) {
    for (void* chunk : pool.chunks) {
      MD_UNPOISON(chunk, kChunkBytes);
      ::operator delete(chunk);
    }
  }
}

SlabArena& SlabArena::Default() {
  // Leaked on purpose (like the wire-buffer pool): sessions and cache nodes
  // may outlive any static destruction order.
  static SlabArena* arena = new SlabArena();
  return *arena;
}

int SlabArena::ClassIndexFor(std::size_t bytes) noexcept {
  if (bytes > kMaxSlotBytes) return -1;
  const auto it = std::lower_bound(kClassSizes.begin(), kClassSizes.end(),
                                   std::max<std::size_t>(bytes, 1));
  return static_cast<int>(it - kClassSizes.begin());
}

std::size_t SlabArena::SlotSizeFor(std::size_t bytes) noexcept {
  const int idx = ClassIndexFor(bytes);
  return idx < 0 ? bytes : kClassSizes[static_cast<std::size_t>(idx)];
}

void* SlabArena::Allocate(std::size_t bytes) {
  const int idx = ClassIndexFor(bytes);
  if (idx < 0) {
    void* p = ::operator new(bytes);
    std::lock_guard lock(oversizeMutex_);
    ++oversize_;
    oversizeBytes_ += bytes;
    return p;
  }
  Pool& pool = pools_[idx];
  const std::size_t slot = kClassSizes[static_cast<std::size_t>(idx)];
  std::lock_guard lock(pool.mutex);
  pool.slotBytes = slot;
  if (pool.freelist == nullptr) {
    // Grow: carve a fresh chunk into slots, push them all on the freelist.
    void* chunk = ::operator new(kChunkBytes);
    pool.chunks.push_back(chunk);
    auto* base = static_cast<std::uint8_t*>(chunk);
    const std::size_t slots = kChunkBytes / slot;
    for (std::size_t i = slots; i > 0; --i) {
      auto* node = reinterpret_cast<FreeNode*>(base + (i - 1) * slot);
      node->next = pool.freelist;
      pool.freelist = node;
    }
  }
  FreeNode* node = pool.freelist;
  MD_UNPOISON(node, slot);
  pool.freelist = node->next;
  ++pool.slotsInUse;
  return node;
}

void SlabArena::Free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  const int idx = ClassIndexFor(bytes);
  if (idx < 0) {
    ::operator delete(p);
    std::lock_guard lock(oversizeMutex_);
    --oversize_;
    oversizeBytes_ -= bytes;
    return;
  }
  Pool& pool = pools_[idx];
  [[maybe_unused]] const std::size_t slot =
      kClassSizes[static_cast<std::size_t>(idx)];
  std::lock_guard lock(pool.mutex);
  auto* node = static_cast<FreeNode*>(p);
  node->next = pool.freelist;
  pool.freelist = node;
  --pool.slotsInUse;
  // Poison everything past the embedded freelist link: a use-after-free of a
  // recycled Session reads deep into the slot and trips ASan immediately.
  MD_POISON(static_cast<std::uint8_t*>(p) + sizeof(FreeNode),
            slot - sizeof(FreeNode));
}

SlabStats SlabArena::Stats() const {
  SlabStats s;
  for (const Pool& pool : pools_) {
    std::lock_guard lock(pool.mutex);
    s.slotsInUse += pool.slotsInUse;
    s.bytesInUse += pool.slotsInUse * pool.slotBytes;
    s.chunks += pool.chunks.size();
    s.bytesReserved += pool.chunks.size() * kChunkBytes;
  }
  std::lock_guard lock(oversizeMutex_);
  s.oversize = oversize_;
  s.oversizeBytes = oversizeBytes_;
  s.bytesInUse += oversizeBytes_;
  s.bytesReserved += oversizeBytes_;
  return s;
}

}  // namespace md
