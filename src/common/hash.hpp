// Hashing utilities: FNV-1a for strings (topic → group mapping, client → worker
// assignment) and mixers for integer keys. Hash choice is part of the wire
// behaviour (group assignment must agree across servers), so these are fixed
// and covered by golden tests.
#pragma once

#include <cstdint>
#include <string_view>

namespace md {

/// FNV-1a 64-bit. Stable across platforms; used for topic-group assignment.
constexpr std::uint64_t Fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Finalizer from MurmurHash3 — good avalanche for integer keys.
constexpr std::uint64_t MixU64(std::uint64_t key) noexcept {
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDULL;
  key ^= key >> 33;
  key *= 0xC4CEB9FE1A85EC53ULL;
  key ^= key >> 33;
  return key;
}

/// Map a topic name to one of `group_count` topic groups (paper §4, §5.2.1).
constexpr std::uint32_t TopicGroupOf(std::string_view topic,
                                     std::uint32_t group_count) noexcept {
  return static_cast<std::uint32_t>(Fnv1a64(topic) % group_count);
}

}  // namespace md
