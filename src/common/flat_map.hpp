// Open-addressing robin-hood hash map for integer keys (DESIGN.md §15).
//
// The node-based std::map / std::unordered_map that used to key the
// subscription registry, cache and sequencer cost ~48–64 bytes of node and
// allocator overhead PER ENTRY — ruinous at millions of sessions. FlatMap
// stores keys, values and probe distances in three parallel arrays (one
// allocation each, drawn from the slab arena), giving per-entry overhead of
// sizeof(K)+1 bytes amortized over a 0.75 max load factor, cache-line
// friendly probes, and backward-shift deletion so churn leaves no
// tombstones.
//
// Scope: single-writer-per-instance (external locking, exactly like the maps
// it replaces), keys are trivially copyable integers, values move freely.
// Iteration order is the probe order — deterministic for a given insertion
// history, NOT sorted; callers that need name order sort on the way out.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>

#include "common/hash.hpp"
#include "common/slab.hpp"

namespace md {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K>);

 public:
  FlatMap() = default;
  ~FlatMap() { Reset(); }

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  FlatMap(FlatMap&& other) noexcept { MoveFrom(other); }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Bytes held by the three arrays — the footprint accounting the
  /// bytes-per-session gauge sums.
  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return capacity_ * (sizeof(K) + sizeof(V) + 1);
  }

  [[nodiscard]] V* Find(K key) noexcept {
    if (capacity_ == 0) return nullptr;
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash(key) & mask;
    std::uint8_t dist = 1;
    while (true) {
      if (dist_[i] == 0) return nullptr;
      if (dist_[i] < dist) return nullptr;  // robin hood: would have evicted
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask;
      if (dist < kMaxDist) ++dist;
    }
  }
  [[nodiscard]] const V* Find(K key) const noexcept {
    return const_cast<FlatMap*>(this)->Find(key);
  }
  [[nodiscard]] bool Contains(K key) const noexcept {
    return Find(key) != nullptr;
  }

  /// Returns the value for `key`, default-constructing it on first sight.
  V& operator[](K key) {
    if (V* v = Find(key)) return *v;
    if ((size_ + 1) * 4 > capacity_ * 3) Grow();
    ++size_;
    return *InsertFresh(key, V{});
  }

  /// Removes `key`; returns false if absent. Backward-shift deletion keeps
  /// probe chains tombstone-free.
  bool Erase(K key) noexcept {
    if (capacity_ == 0) return false;
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash(key) & mask;
    std::uint8_t dist = 1;
    while (true) {
      if (dist_[i] == 0 || dist_[i] < dist) return false;
      if (keys_[i] == key) break;
      i = (i + 1) & mask;
      if (dist < kMaxDist) ++dist;
    }
    // Shift successors whose probe distance is > 1 back by one slot.
    std::size_t next = (i + 1) & mask;
    while (dist_[next] > 1) {
      keys_[i] = keys_[next];
      values_[i] = std::move(values_[next]);
      dist_[i] = static_cast<std::uint8_t>(
          dist_[next] == kMaxDist ? kMaxDist : dist_[next] - 1);
      i = next;
      next = (next + 1) & mask;
    }
    values_[i] = V{};  // release held resources
    dist_[i] = 0;
    --size_;
    return true;
  }

  void Clear() noexcept {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) {
        values_[i].~V();
        dist_[i] = 0;
      }
    }
    for (std::size_t i = 0; i < capacity_; ++i) new (&values_[i]) V();
    size_ = 0;
  }

  void Reserve(std::size_t entries) {
    std::size_t want = kMinCapacity;
    while (want * 3 < entries * 4) want <<= 1;
    if (want > capacity_) Rehash(want);
  }

  /// Visits every (key, value&) pair; mutation of the map during the visit
  /// is not allowed.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) fn(keys_[i], const_cast<const V&>(values_[i]));
    }
  }

 private:
  // Probe distances saturate at 255; correctness only needs "never reads an
  // entry as closer than it is", and saturated chains stay contiguous.
  static constexpr std::uint8_t kMaxDist = 255;
  static constexpr std::size_t kMinCapacity = 8;

  static std::size_t Hash(K key) noexcept {
    return static_cast<std::size_t>(MixU64(static_cast<std::uint64_t>(key)));
  }

  void MoveFrom(FlatMap& other) noexcept {
    keys_ = other.keys_;
    values_ = other.values_;
    dist_ = other.dist_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.keys_ = nullptr;
    other.values_ = nullptr;
    other.dist_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }

  void Reset() noexcept {
    if (capacity_ == 0) return;
    for (std::size_t i = 0; i < capacity_; ++i) values_[i].~V();
    SlabArena::Default().Free(keys_, capacity_ * sizeof(K));
    SlabArena::Default().Free(values_, capacity_ * sizeof(V));
    SlabArena::Default().Free(dist_, capacity_);
    keys_ = nullptr;
    values_ = nullptr;
    dist_ = nullptr;
    size_ = capacity_ = 0;
  }

  void Grow() { Rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2); }

  void Rehash(std::size_t newCapacity) {
    K* oldKeys = keys_;
    V* oldValues = values_;
    std::uint8_t* oldDist = dist_;
    const std::size_t oldCapacity = capacity_;

    SlabArena& arena = SlabArena::Default();
    keys_ = static_cast<K*>(arena.Allocate(newCapacity * sizeof(K)));
    values_ = static_cast<V*>(arena.Allocate(newCapacity * sizeof(V)));
    dist_ = static_cast<std::uint8_t*>(arena.Allocate(newCapacity));
    capacity_ = newCapacity;
    std::memset(dist_, 0, newCapacity);
    for (std::size_t i = 0; i < newCapacity; ++i) new (&values_[i]) V();

    for (std::size_t i = 0; i < oldCapacity; ++i) {
      if (oldDist[i] != 0) {
        InsertFresh(oldKeys[i], std::move(oldValues[i]));
        oldValues[i].~V();
      } else {
        oldValues[i].~V();
      }
    }
    if (oldCapacity != 0) {
      arena.Free(oldKeys, oldCapacity * sizeof(K));
      arena.Free(oldValues, oldCapacity * sizeof(V));
      arena.Free(oldDist, oldCapacity);
    }
  }

  /// Inserts a key known to be absent; returns the slot the VALUE for `key`
  /// finally lives in (robin-hood displacement may move other entries).
  V* InsertFresh(K key, V&& value) {
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash(key) & mask;
    std::uint8_t dist = 1;
    K curKey = key;
    V curVal = std::move(value);
    V* result = nullptr;
    while (true) {
      if (dist_[i] == 0) {
        keys_[i] = curKey;
        values_[i] = std::move(curVal);
        dist_[i] = dist;
        return result == nullptr ? &values_[i] : result;
      }
      if (dist_[i] < dist) {
        // Rob the rich: displace the closer-to-home entry and keep probing
        // with it.
        std::swap(curKey, keys_[i]);
        std::swap(curVal, values_[i]);
        std::swap(dist, dist_[i]);
        if (result == nullptr && keys_[i] == key) result = &values_[i];
      }
      if (result == nullptr && dist_[i] != 0 && keys_[i] == key &&
          curKey != key) {
        result = &values_[i];
      }
      i = (i + 1) & mask;
      if (dist < kMaxDist) ++dist;
    }
  }

  K* keys_ = nullptr;
  V* values_ = nullptr;
  std::uint8_t* dist_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace md
