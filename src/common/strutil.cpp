#include "common/strutil.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace md {

std::vector<std::string_view> SplitView(std::string_view input, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= input.size()) {
    const std::size_t end = input.find(sep, start);
    if (end == std::string_view::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string_view TrimView(std::string_view input) noexcept {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list argsCopy;
  va_copy(argsCopy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, argsCopy);
  }
  va_end(argsCopy);
  return out;
}

std::string WithThousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string Base64Encode(std::string_view data) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (static_cast<std::uint8_t>(data[i]) << 16) |
                            (static_cast<std::uint8_t>(data[i + 1]) << 8) |
                            static_cast<std::uint8_t>(data[i + 2]);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint8_t>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint8_t>(data[i]) << 16) |
                            (static_cast<std::uint8_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

}  // namespace md
