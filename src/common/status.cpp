#include "common/status.hpp"

namespace md {

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kClosed: return "CLOSED";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kCapacity: return "CAPACITY";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kNotLeader: return "NOT_LEADER";
    case ErrorCode::kConflict: return "CONFLICT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace md
