// SHA-1, implemented from scratch (FIPS 180-1).
//
// Used solely for the RFC 6455 WebSocket handshake accept key
// (Sec-WebSocket-Accept = base64(SHA1(key || GUID))) — not for security.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace md {

/// Returns the 20-byte SHA-1 digest of `data`.
std::array<std::uint8_t, 20> Sha1(std::string_view data);

/// Digest as a raw 20-char binary string (convenient for base64).
std::string Sha1String(std::string_view data);

}  // namespace md
