// Slab allocation for the millions-of-sessions footprint budget (DESIGN.md
// §15).
//
// At C10M scale the binding constraint is bytes per session, and general-
// purpose malloc is the wrong tool: every Session, cache node and queue node
// pays allocator metadata, fragments its size class, and churns the heap on
// connect/disconnect. A SlabArena carves fixed-size slots out of large
// chunks, keyed by size class, and recycles freed slots through a freelist —
// steady-state session churn performs ZERO heap allocations, and the arena's
// accounting (bytes in use / reserved, slots in use) is exact, which is what
// the md_core_bytes_per_session gauge and the bench_c10m budget gate read.
//
// Freed slots are poisoned under AddressSanitizer so a dangling Session
// pointer faults instead of silently reading a recycled slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace md {

/// Exact allocation accounting, readable at any time (each field is
/// internally consistent; the struct as a whole is a best-effort snapshot
/// under concurrency, like every other gauge).
struct SlabStats {
  std::uint64_t bytesInUse = 0;    // slot bytes currently handed out
  std::uint64_t bytesReserved = 0; // chunk bytes acquired from the OS
  std::uint64_t slotsInUse = 0;
  std::uint64_t chunks = 0;
  std::uint64_t oversize = 0;      // live allocations above the largest class
  std::uint64_t oversizeBytes = 0;
};

/// Size-class slab allocator: fixed-size chunks, per-class freelists, O(1)
/// allocate/free, no per-object heap churn after warm-up. Thread-safe (one
/// mutex per size class; allocation is the accept path, not the fan-out hot
/// path). Allocations above the largest class fall through to operator new
/// and are counted separately — the footprint bench asserts the session path
/// never takes that branch.
class SlabArena {
 public:
  SlabArena() = default;
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Process-wide arena: sessions, registry nodes and cache nodes all draw
  /// from it so one accounting covers the whole per-session footprint.
  static SlabArena& Default();

  void* Allocate(std::size_t bytes);
  void Free(void* p, std::size_t bytes) noexcept;

  [[nodiscard]] SlabStats Stats() const;

  /// The slot size `bytes` would be served from (rounded up to its size
  /// class), or `bytes` itself when oversize. Exposed so tests can assert
  /// budget math against the real class table.
  [[nodiscard]] static std::size_t SlotSizeFor(std::size_t bytes) noexcept;

  /// Largest slab-served allocation; above this operator new takes over.
  static constexpr std::size_t kMaxSlotBytes = 8192;
  /// Chunk payload size: 64 KiB of slots per chunk keeps chunk count small
  /// at 10M sessions while bounding warm-up overshoot for rare classes.
  static constexpr std::size_t kChunkBytes = 64 * 1024;

 private:
  struct FreeNode {
    FreeNode* next;
  };

  struct Pool {
    mutable std::mutex mutex;
    FreeNode* freelist = nullptr;
    std::vector<void*> chunks;        // owned raw chunk allocations
    std::size_t slotBytes = 0;
    std::uint64_t slotsInUse = 0;
  };

  static int ClassIndexFor(std::size_t bytes) noexcept;

  // Size classes: 16..128 step 16, 160..512 step 32/64, then doubling to 8K.
  // Declared in slab.cpp; kClassCount must match its table.
  static constexpr int kClassCount = 20;
  Pool pools_[kClassCount];

  mutable std::mutex oversizeMutex_;
  std::uint64_t oversize_ = 0;
  std::uint64_t oversizeBytes_ = 0;
};

/// Standard-allocator adaptor over SlabArena: drop-in for allocate_shared,
/// std::deque, std::vector. Default-constructed instances use the process
/// arena, so containers stay effectively stateless and interoperable.
template <typename T>
class SlabAllocator {
 public:
  using value_type = T;

  SlabAllocator() noexcept : arena_(&SlabArena::Default()) {}
  explicit SlabAllocator(SlabArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    arena_->Free(p, n * sizeof(T));
  }

  [[nodiscard]] SlabArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const SlabAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  SlabArena* arena_;
};

}  // namespace md
