#include "common/topic_intern.hpp"

namespace md {

TopicTable::~TopicTable() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

TopicTable& TopicTable::Default() {
  // Leaked singleton, same rationale as SlabArena::Default(): interned names
  // are referenced from structures with unknowable destruction order.
  static TopicTable* table = new TopicTable();
  return *table;
}

TopicId TopicTable::Intern(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (auto it = index_.find(name); it != index_.end()) return it->second;

  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  const std::size_t chunkIdx = id / kChunkTopics;
  const std::size_t slotIdx = id % kChunkTopics;
  if (chunkIdx >= kMaxChunks) return kInvalidTopicId;  // table full (16.7M)

  Chunk* chunk = chunks_[chunkIdx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    // Release so a NameOf that observed the bumped count also sees the
    // chunk pointer and the string contents written below.
    chunks_[chunkIdx].store(chunk, std::memory_order_release);
  }
  chunk->names[slotIdx].assign(name.data(), name.size());
  nameBytes_ += name.size();
  index_.emplace(std::string_view(chunk->names[slotIdx]), id);
  // Publish: NameOf readers acquire on count_, pairing with this release,
  // which makes the string write above visible before the id is considered
  // valid.
  count_.store(id + 1, std::memory_order_release);
  return id;
}

TopicId TopicTable::Find(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidTopicId : it->second;
}

std::string_view TopicTable::NameOf(TopicId id) const {
  if (id >= count_.load(std::memory_order_acquire)) return {};
  const Chunk* chunk =
      chunks_[id / kChunkTopics].load(std::memory_order_acquire);
  if (chunk == nullptr) return {};
  return chunk->names[id % kChunkTopics];
}

std::size_t TopicTable::MemoryBytes() const {
  std::lock_guard lock(mutex_);
  const std::size_t n = count_.load(std::memory_order_relaxed);
  const std::size_t chunkCount = (n + kChunkTopics - 1) / kChunkTopics;
  return nameBytes_ + chunkCount * sizeof(Chunk) +
         index_.size() * (sizeof(std::string_view) + sizeof(TopicId) +
                          2 * sizeof(void*));
}

}  // namespace md
