// Thread-safe queues used between the I/O layer and the Worker layer
// (paper §4: "Workers and IoThreads communicate using efficient thread-safe
// queues").
//
// MpscQueue: multi-producer single-consumer, bounded, blocking or polling
// consumption. SpscRing: lock-free single-producer single-consumer ring for
// the per-connection fast path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace md {

/// Bounded multi-producer queue with a single blocking consumer.
/// Push fails with kCapacity when full (backpressure, never unbounded growth).
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity = 65536) : capacity_(capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  Status TryPush(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return Err(ErrorCode::kClosed, "queue closed");
      if (items_.size() >= capacity_) return Err(ErrorCode::kCapacity, "queue full");
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return OkStatus();
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Drain up to `max` items into `out`; returns the number drained.
  /// Batching amortizes lock acquisition on the consumer side.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max) {
    std::lock_guard lock(mutex_);
    std::size_t n = 0;
    while (n < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    return n;
  }

  /// Blocking variant of PopBatch: waits for at least one item or close.
  std::size_t PopBatchBlocking(std::vector<T>& out, std::size_t max) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    std::size_t n = 0;
    while (n < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    return n;
  }

  void Close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Lock-free bounded SPSC ring buffer. Capacity is rounded up to a power of
/// two; one slot is sacrificed to distinguish full from empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacityPow2 = 1024)
      : buffer_(RoundUpPow2(capacityPow2)), mask_(buffer_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool TryPush(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    buffer_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> TryPop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  [[nodiscard]] bool Empty() const noexcept {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t RoundUpPow2(std::size_t n) noexcept {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace md
