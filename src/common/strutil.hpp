// Small string helpers shared across modules (HTTP header parsing for the
// WebSocket handshake, config parsing, table formatting).
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace md {

std::vector<std::string_view> SplitView(std::string_view input, char sep);
std::string_view TrimView(std::string_view input) noexcept;
bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept;
bool StartsWith(std::string_view s, std::string_view prefix) noexcept;

/// printf-style into std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// 12345678 -> "12,345,678" (table output).
std::string WithThousands(std::uint64_t value);

/// Base64 (standard alphabet, padded) — needed for the WebSocket accept key.
std::string Base64Encode(std::string_view data);

}  // namespace md
