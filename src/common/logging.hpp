// Minimal leveled logging to stderr.
//
// Printf-style formatting (std::format is unavailable in gcc 12). Log calls
// below the active level cost a single atomic load. Thread-safe: each line is
// formatted into a local buffer and written with one fwrite.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>

namespace md {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_internal {
extern std::atomic<LogLevel> g_level;
void Write(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));
}  // namespace log_internal

inline void SetLogLevel(LogLevel level) noexcept {
  log_internal::g_level.store(level, std::memory_order_relaxed);
}
inline LogLevel GetLogLevel() noexcept {
  return log_internal::g_level.load(std::memory_order_relaxed);
}
inline bool LogEnabled(LogLevel level) noexcept { return level >= GetLogLevel(); }

#define MD_LOG_IMPL(level, ...)                                              \
  do {                                                                       \
    if (::md::LogEnabled(level)) {                                           \
      ::md::log_internal::Write(level, __FILE__, __LINE__, __VA_ARGS__);     \
    }                                                                        \
  } while (0)

#define MD_TRACE(...) MD_LOG_IMPL(::md::LogLevel::kTrace, __VA_ARGS__)
#define MD_DEBUG(...) MD_LOG_IMPL(::md::LogLevel::kDebug, __VA_ARGS__)
#define MD_INFO(...) MD_LOG_IMPL(::md::LogLevel::kInfo, __VA_ARGS__)
#define MD_WARN(...) MD_LOG_IMPL(::md::LogLevel::kWarn, __VA_ARGS__)
#define MD_ERROR(...) MD_LOG_IMPL(::md::LogLevel::kError, __VA_ARGS__)

}  // namespace md
