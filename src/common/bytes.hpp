// Byte-buffer primitives for wire encoding and socket I/O.
//
// ByteWriter appends to a caller-owned std::vector<uint8_t>; ByteReader is a
// non-owning cursor over a span of bytes and reports truncation/overflow as
// Status instead of throwing (decode runs on untrusted network input).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace md {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline BytesView AsBytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::string_view AsStringView(BytesView b) noexcept {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Appends fixed-width little-endian integers, varints and length-prefixed
/// blobs to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) noexcept : out_(out) {}

  void WriteU8(std::uint8_t v) { out_.push_back(v); }

  void WriteU16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void WriteU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void WriteU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// LEB128 unsigned varint (1–10 bytes).
  void WriteVarint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void WriteBytes(BytesView data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  /// Varint length prefix followed by the raw bytes.
  void WriteLengthPrefixed(BytesView data) {
    WriteVarint(data.size());
    WriteBytes(data);
  }

  void WriteString(std::string_view s) { WriteLengthPrefixed(AsBytes(s)); }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  Bytes& out_;
};

/// Cursor over immutable bytes; every read checks bounds.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }

  Status ReadU8(std::uint8_t& out) noexcept {
    if (remaining() < 1) return Truncated();
    out = data_[pos_++];
    return OkStatus();
  }

  Status ReadU16(std::uint16_t& out) noexcept {
    if (remaining() < 2) return Truncated();
    out = static_cast<std::uint16_t>(data_[pos_] |
                                     (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return OkStatus();
  }

  Status ReadU32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return Truncated();
    out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return OkStatus();
  }

  Status ReadU64(std::uint64_t& out) noexcept {
    if (remaining() < 8) return Truncated();
    out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return OkStatus();
  }

  Status ReadVarint(std::uint64_t& out) noexcept {
    out = 0;
    int shift = 0;
    while (true) {
      if (remaining() < 1) return Truncated();
      if (shift >= 64) return Err(ErrorCode::kProtocol, "varint too long");
      const std::uint8_t byte = data_[pos_++];
      // Guard against bits shifted past 64 in the final byte.
      if (shift == 63 && (byte & 0x7E) != 0) {
        return Err(ErrorCode::kProtocol, "varint overflow");
      }
      out |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return OkStatus();
      shift += 7;
    }
  }

  Status ReadBytes(std::size_t n, BytesView& out) noexcept {
    if (remaining() < n) return Truncated();
    out = data_.subspan(pos_, n);
    pos_ += n;
    return OkStatus();
  }

  Status ReadLengthPrefixed(BytesView& out) noexcept {
    std::uint64_t len = 0;
    if (Status s = ReadVarint(len); !s.ok()) return s;
    if (len > remaining()) return Truncated();
    return ReadBytes(static_cast<std::size_t>(len), out);
  }

  Status ReadString(std::string& out) {
    BytesView view;
    if (Status s = ReadLengthPrefixed(view); !s.ok()) return s;
    out.assign(AsStringView(view));
    return OkStatus();
  }

  Status Skip(std::size_t n) noexcept {
    if (remaining() < n) return Truncated();
    pos_ += n;
    return OkStatus();
  }

 private:
  static Status Truncated() { return Err(ErrorCode::kProtocol, "truncated input"); }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Growable FIFO of bytes used for socket read/write buffering. Amortizes
/// front-consumption by tracking a read offset and compacting lazily.
class ByteQueue {
 public:
  void Append(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void Append(std::string_view data) { Append(AsBytes(data)); }

  [[nodiscard]] BytesView Peek() const noexcept {
    return BytesView(buf_).subspan(head_);
  }

  void Consume(std::size_t n) noexcept {
    head_ += n;
    // Compact when the dead prefix dominates to keep memory bounded.
    if (head_ > 4096 && head_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size() - head_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  void Clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

 private:
  Bytes buf_;
  std::size_t head_ = 0;
};

}  // namespace md
