// Time abstractions.
//
// All protocol and engine code takes time from a Clock interface so the same
// logic can run against the wall clock (real deployments, examples) or a
// manually-advanced clock (simulation, deterministic tests).
#pragma once

#include <chrono>
#include <cstdint>

namespace md {

/// Nanoseconds since an arbitrary (per-clock) epoch. Signed so durations and
/// differences are safe to compute.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;
constexpr Duration kMinute = 60 * kSecond;

constexpr double ToMillis(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToSeconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint Now() const noexcept = 0;
};

/// Wall/monotonic clock backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  [[nodiscard]] TimePoint Now() const noexcept override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance (clocks are stateless).
  static RealClock& Instance() noexcept {
    static RealClock clock;
    return clock;
  }
};

/// Manually-advanced clock for tests and simulation drivers.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) noexcept : now_(start) {}

  [[nodiscard]] TimePoint Now() const noexcept override { return now_; }
  void Advance(Duration delta) noexcept { now_ += delta; }
  void Set(TimePoint t) noexcept { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace md
