#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace md::log_internal {

namespace {

// MD_LOG_LEVEL=trace|debug|info|warn|error|off overrides the default so test
// binaries can be re-run verbosely without a rebuild.
LogLevel InitialLevel() noexcept {
  const char* env = std::getenv("MD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace

std::atomic<LogLevel> g_level{InitialLevel()};

namespace {

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

const char* Basename(const char* path) noexcept {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void Write(LogLevel level, const char* file, int line, const char* fmt, ...) {
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);

  char lineBuf[1280];
  std::snprintf(lineBuf, sizeof(lineBuf),
                "%02d:%02d:%02d.%03ld %s %s:%d] %s\n", tm.tm_hour, tm.tm_min,
                tm.tm_sec, ts.tv_nsec / 1000000, LevelTag(level),
                Basename(file), line, body);
  std::fwrite(lineBuf, 1, std::strlen(lineBuf), stderr);
}

}  // namespace md::log_internal
