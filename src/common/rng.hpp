// Deterministic pseudo-random number generation.
//
// Simulation and property tests need reproducible randomness under a seed;
// std::mt19937 is heavyweight and its distributions are not portable across
// standard library implementations, so we implement splitmix64 (seeding) and
// xoshiro256** (generation) plus the distributions we actually use.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace md {

/// splitmix64 step — used to expand a single seed into generator state.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return Next(); }

  std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded sampling (bias negligible for our
    // use; acceptable for simulation workloads).
    const unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBelow(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool NextBool(double p) noexcept { return NextDouble() < p; }

  /// Exponentially distributed sample with the given mean (> 0).
  double NextExponential(double mean) noexcept {
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call, cached pair dropped
  /// for simplicity; fine for non-hot paths).
  double NextNormal(double mean, double stddev) noexcept {
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    return mean + stddev * r * std::cos(theta);
  }

  /// Derive an independent child generator (for per-entity streams).
  Rng Fork() noexcept { return Rng(Next()); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace md
