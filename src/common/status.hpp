// Lightweight error handling primitives used across the code base.
//
// We deliberately avoid exceptions on hot paths (decode, I/O, queue ops)
// and return Status / Result<T> instead, following the "errors are values"
// style. Exceptions remain for constructor failures and programming errors.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace md {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnavailable,       // transient: peer down, no quorum, not connected
  kTimeout,
  kClosed,            // connection or component shut down
  kProtocol,          // malformed wire data
  kCapacity,          // queue/buffer full, backpressure
  kInternal,
  kNotLeader,         // coordination: request must go to the leader
  kConflict,          // version / atomic-create conflict
};

/// Human-readable name for an ErrorCode (stable, for logs and tests).
std::string_view ErrorCodeName(ErrorCode code) noexcept;

/// A Status is either OK or an error code with an optional message.
class Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(ErrorCode code) : code_(code) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<code>: <message>" — for logging.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status Err(ErrorCode code, std::string message = {}) {
  return Status(code, std::move(message));
}

/// Result<T> is a value or a Status error. `T` must not be Status itself.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(storage_).ok() && "Result error must be non-OK");
  }
  Result(ErrorCode code, std::string message = {})
      : storage_(Status(code, std::move(message))) {}

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }
  [[nodiscard]] ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : std::get<Status>(storage_).code();
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// value() if ok, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace md
