// Topic-name interning: string ↔ dense u32 id (DESIGN.md §15).
//
// Every layer that keys state by topic — registry shards, cache shards,
// sequencer, conflator, per-client subscription sets — used to hold its own
// std::string copies and node-based string-keyed maps. Interning assigns
// each distinct topic name a dense uint32 TopicId once, process-wide; after
// that, per-session and per-topic state is 4 bytes per reference and hashes/
// compares as an integer.
//
// Ids are strictly local: they never appear on the wire, in the WAL, or in
// cluster messages, and topic→group assignment stays the FNV-1a hash of the
// NAME (TopicGroupOf), so restart/rejoin behavior is unchanged no matter
// what order topics were first seen in.
//
// Concurrency: Intern/Find serialize on a mutex (subscribe path — cold).
// NameOf is lock-free: names live in append-only chunks published through an
// atomic count with release/acquire ordering, so fan-out threads resolve
// id→name with zero contention and TSan-clean.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace md {

using TopicId = std::uint32_t;

inline constexpr TopicId kInvalidTopicId = 0xFFFFFFFFu;

class TopicTable {
 public:
  TopicTable() = default;
  ~TopicTable();

  TopicTable(const TopicTable&) = delete;
  TopicTable& operator=(const TopicTable&) = delete;

  /// Process-wide table shared by registry, cache, sequencer and conflator —
  /// one id space, so ids can cross component boundaries.
  static TopicTable& Default();

  /// Returns the id for `name`, assigning the next dense id on first sight.
  TopicId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidTopicId if never interned. Read
  /// paths (publish to unknown topic, metrics scrape) use this so they never
  /// grow the table.
  [[nodiscard]] TopicId Find(std::string_view name) const;

  /// Resolves an id back to its name. Lock-free; safe concurrently with
  /// Intern. The returned view lives as long as the table (names are never
  /// freed — the table is append-only by design).
  [[nodiscard]] std::string_view NameOf(TopicId id) const;

  /// Number of interned topics (ids are 0..Size()-1).
  [[nodiscard]] std::size_t Size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Approximate bytes held by the table (names + index), for footprint
  /// accounting.
  [[nodiscard]] std::size_t MemoryBytes() const;

  static constexpr std::size_t kChunkTopics = 4096;
  static constexpr std::size_t kMaxChunks = 4096;  // 16.7M distinct topics

 private:
  struct Chunk {
    std::array<std::string, kChunkTopics> names;
  };

  mutable std::mutex mutex_;
  // Keys are views into the chunk-stored strings, which never move or die.
  std::unordered_map<std::string_view, TopicId> index_;
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> count_{0};
  std::size_t nameBytes_ = 0;  // guarded by mutex_
};

}  // namespace md
