// Inline small vector for trivially copyable elements (DESIGN.md §15).
//
// Most sessions subscribe to a handful of topics and most topics have a
// handful of members. A std::set node per element costs ~64 bytes; a
// SmallVector keeps the first N elements inline in the owning struct (zero
// extra allocations for the common case) and spills to a single slab-backed
// array past that. The registry keeps these sorted, so membership tests are
// binary searches and snapshots copy out already ordered.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/slab.hpp"

namespace md {

template <typename T, std::size_t InlineN>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(InlineN >= 1);

 public:
  SmallVector() = default;
  ~SmallVector() { Reset(); }

  SmallVector(const SmallVector& other) { CopyFrom(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      Reset();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] T* data() noexcept {
    return capacity_ > InlineN ? heap_ : inline_;
  }
  [[nodiscard]] const T* data() const noexcept {
    return capacity_ > InlineN ? heap_ : inline_;
  }

  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size_; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }

  [[nodiscard]] std::size_t HeapBytes() const noexcept {
    return capacity_ > InlineN ? capacity_ * sizeof(T) : 0;
  }

  void PushBack(T value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = value;
  }

  void Clear() noexcept { size_ = 0; }

  /// Inserts `value` keeping ascending order; returns false (no change) if
  /// already present. The registry's set semantics in one call.
  bool InsertSorted(T value) {
    T* base = data();
    T* pos = std::lower_bound(base, base + size_, value);
    if (pos != base + size_ && *pos == value) return false;
    const std::size_t offset = static_cast<std::size_t>(pos - base);
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
      base = data();
      pos = base + offset;
    }
    std::memmove(pos + 1, pos, (size_ - offset) * sizeof(T));
    *pos = value;
    ++size_;
    return true;
  }

  /// Removes `value` from a sorted vector; returns false if absent.
  bool EraseSorted(T value) noexcept {
    T* base = data();
    T* pos = std::lower_bound(base, base + size_, value);
    if (pos == base + size_ || *pos != value) return false;
    std::memmove(pos, pos + 1,
                 (size_ - static_cast<std::size_t>(pos - base) - 1) *
                     sizeof(T));
    --size_;
    return true;
  }

  [[nodiscard]] bool ContainsSorted(T value) const noexcept {
    const T* base = data();
    return std::binary_search(base, base + size_, value);
  }

 private:
  void Grow(std::size_t want) {
    const std::size_t newCapacity = std::max<std::size_t>(want, InlineN * 2);
    T* fresh = static_cast<T*>(
        SlabArena::Default().Allocate(newCapacity * sizeof(T)));
    std::memcpy(fresh, data(), size_ * sizeof(T));
    if (capacity_ > InlineN) {
      SlabArena::Default().Free(heap_, capacity_ * sizeof(T));
    }
    heap_ = fresh;
    capacity_ = newCapacity;
  }

  void Reset() noexcept {
    if (capacity_ > InlineN) {
      SlabArena::Default().Free(heap_, capacity_ * sizeof(T));
    }
    heap_ = nullptr;
    size_ = 0;
    capacity_ = InlineN;
  }

  void CopyFrom(const SmallVector& other) {
    if (other.size_ > InlineN) Grow(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void MoveFrom(SmallVector& other) noexcept {
    if (other.capacity_ > InlineN) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = InlineN;
      other.size_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  union {
    T inline_[InlineN];
    T* heap_;
  };
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = InlineN;
};

}  // namespace md
