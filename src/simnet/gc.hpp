// GC pause schedule generators for the JVM ablation experiment.
//
// The paper's supplementary material compares the stock JVM (stop-the-world
// collections: mean latency 61 ms, P99 585 ms in the C10M scenario) against
// the Zing JVM's C4 concurrent collector (13.2 ms / 24.4 ms). We reproduce
// the *mechanism*: periodic global pauses whose length scales with heap
// pressure vs a pause-free collector with tiny constant overhead.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "simnet/cpu.hpp"

namespace md::sim {

struct GcProfile {
  // Mean interval between collections (exponential).
  Duration meanInterval = 4 * kSecond;
  // Pause duration: normal(mean, stddev), clamped at >= 1ms.
  Duration pauseMean = 200 * kMillisecond;
  Duration pauseStdDev = 120 * kMillisecond;
};

/// Generates a deterministic stop-the-world pause schedule covering
/// [0, horizon).
inline std::unique_ptr<StopTheWorldPauses> GenerateStwSchedule(
    const GcProfile& profile, Duration horizon, Rng rng) {
  std::vector<StopTheWorldPauses::Pause> pauses;
  TimePoint t = 0;
  while (t < horizon) {
    t += static_cast<Duration>(
        rng.NextExponential(static_cast<double>(profile.meanInterval)));
    if (t >= horizon) break;
    auto len = static_cast<Duration>(
        rng.NextNormal(static_cast<double>(profile.pauseMean),
                       static_cast<double>(profile.pauseStdDev)));
    if (len < kMillisecond) len = kMillisecond;
    pauses.push_back({t, t + len});
    t += len;
  }
  return std::make_unique<StopTheWorldPauses>(std::move(pauses));
}

}  // namespace md::sim
