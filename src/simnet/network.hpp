// Simulated network: hosts, point-to-point links with latency / jitter /
// bandwidth / loss, fail-stop crashes and network partitions.
//
// Deliveries preserve per-(src,dst) FIFO order — matching TCP's in-order
// guarantee that the real transport provides — by serializing each directed
// link: a message may not be delivered before a previously-sent one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "simnet/scheduler.hpp"

namespace md::sim {

using HostId = std::uint32_t;

struct LinkParams {
  Duration latency = 200 * kMicrosecond;  // one-way propagation
  Duration jitter = 50 * kMicrosecond;    // uniform [0, jitter)
  double lossProb = 0.0;                  // applies to non-TCP-modelled links
  double bandwidthBytesPerSec = 1.25e9;   // 10 GbE
  // Message-level fault injection (chaos harness). All three are driven by
  // the network's seeded Rng, so fault schedules replay exactly under a seed.
  double duplicateProb = 0.0;     // deliver the message a second time
  double reorderProb = 0.0;       // message escapes per-link FIFO ordering
  Duration reorderDelayMax = 2 * kMillisecond;  // extra delay of a reordered msg
};

/// Counters for injected message-level faults (deterministic under a seed).
struct LinkFaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t flaps = 0;
};

class SimNetwork {
 public:
  SimNetwork(Scheduler& sched, Rng rng, LinkParams defaults = {})
      : sched_(sched), rng_(rng), defaults_(defaults) {}

  HostId AddHost(std::string name) {
    hosts_.push_back(HostState{std::move(name), true});
    return static_cast<HostId>(hosts_.size() - 1);
  }

  [[nodiscard]] const std::string& HostName(HostId id) const {
    return hosts_.at(id).name;
  }
  [[nodiscard]] std::size_t HostCount() const noexcept { return hosts_.size(); }
  [[nodiscard]] bool IsUp(HostId id) const { return hosts_.at(id).up; }

  /// Fail-stop crash: in-flight messages to/from the host are dropped at
  /// delivery time; nothing new can be sent.
  void SetHostUp(HostId id, bool up) { hosts_.at(id).up = up; }

  /// Symmetric partition between two hosts.
  void Partition(HostId a, HostId b) { partitioned_.insert(Key(a, b)); }
  void Heal(HostId a, HostId b) { partitioned_.erase(Key(a, b)); }
  [[nodiscard]] bool ArePartitioned(HostId a, HostId b) const {
    return partitioned_.contains(Key(a, b));
  }

  /// Isolate `a` from every other host (the paper's fault model: "network
  /// partition of one server from other servers").
  void Isolate(HostId a) {
    for (HostId b = 0; b < hosts_.size(); ++b) {
      if (b != a) Partition(a, b);
    }
  }
  void HealAll(HostId a) {
    for (HostId b = 0; b < hosts_.size(); ++b) Heal(a, b);
  }

  void SetLink(HostId a, HostId b, LinkParams params) {
    linkOverride_[Key(a, b)] = params;
  }

  /// Timed link flap: cut the a<->b pair now, heal it `downFor` later.
  /// Healing is unconditional — callers must not interleave a flap with a
  /// longer-lived Partition() of the same pair.
  void FlapLink(HostId a, HostId b, Duration downFor) {
    Partition(a, b);
    ++faultStats_.flaps;
    sched_.Schedule(downFor, [this, a, b] { Heal(a, b); });
  }

  [[nodiscard]] const LinkFaultStats& faultStats() const noexcept {
    return faultStats_;
  }

  /// Send `sizeBytes` from `from` to `to`; `deliver` runs at delivery time
  /// unless either end is down or the pair is partitioned *at that moment*
  /// (checked again on delivery — a partition can cut in-flight traffic).
  void Send(HostId from, HostId to, std::size_t sizeBytes,
            std::function<void()> deliver) {
    if (!hosts_.at(from).up) return;
    const LinkParams& link = ParamsFor(from, to);
    if (link.lossProb > 0.0 && rng_.NextBool(link.lossProb)) {
      ++faultStats_.dropped;
      return;
    }

    // Serialize on the directed link's transmit queue (bandwidth model).
    const Duration txTime = link.bandwidthBytesPerSec > 0
        ? static_cast<Duration>(static_cast<double>(sizeBytes) * 1e9 /
                                link.bandwidthBytesPerSec)
        : 0;
    TimePoint& txFree = txFreeAt_[DirKey(from, to)];
    const TimePoint txStart = std::max(sched_.Now(), txFree);
    txFree = txStart + txTime;

    const Duration jitter = link.jitter > 0
        ? static_cast<Duration>(rng_.NextBelow(static_cast<std::uint64_t>(link.jitter)))
        : 0;
    TimePoint deliverAt = txFree + link.latency + jitter;

    // Enforce per-directed-link FIFO (TCP ordering): never deliver before a
    // previously-sent message on the same link.
    TimePoint& lastDelivery = lastDeliveryAt_[DirKey(from, to)];
    if (deliverAt <= lastDelivery) deliverAt = lastDelivery + 1;
    lastDelivery = deliverAt;

    // A reordered message is held back past its FIFO slot; later sends keep
    // the original slot as their floor, so they can overtake it.
    if (link.reorderProb > 0.0 && rng_.NextBool(link.reorderProb)) {
      ++faultStats_.reordered;
      deliverAt += 1 + static_cast<Duration>(rng_.NextBelow(
          static_cast<std::uint64_t>(link.reorderDelayMax) + 1));
    }

    ScheduleDelivery(deliverAt, from, to, deliver);
    if (link.duplicateProb > 0.0 && rng_.NextBool(link.duplicateProb)) {
      ++faultStats_.duplicated;
      const Duration dupDelay = 1 + static_cast<Duration>(rng_.NextBelow(
          static_cast<std::uint64_t>(link.latency) + 1));
      ScheduleDelivery(deliverAt + dupDelay, from, to, deliver);
    }
  }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return sched_; }

 private:
  struct HostState {
    std::string name;
    bool up;
  };

  static std::pair<HostId, HostId> Key(HostId a, HostId b) noexcept {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  static std::pair<HostId, HostId> DirKey(HostId a, HostId b) noexcept {
    return {a, b};
  }

  [[nodiscard]] const LinkParams& ParamsFor(HostId a, HostId b) const {
    const auto it = linkOverride_.find(Key(a, b));
    return it != linkOverride_.end() ? it->second : defaults_;
  }

  void ScheduleDelivery(TimePoint at, HostId from, HostId to,
                        const std::function<void()>& deliver) {
    sched_.ScheduleAt(at, [this, from, to, fn = deliver] {
      if (!hosts_.at(from).up || !hosts_.at(to).up) return;
      if (ArePartitioned(from, to)) return;
      fn();
    });
  }

  Scheduler& sched_;
  Rng rng_;
  LinkParams defaults_;
  std::vector<HostState> hosts_;
  std::set<std::pair<HostId, HostId>> partitioned_;
  std::map<std::pair<HostId, HostId>, LinkParams> linkOverride_;
  std::map<std::pair<HostId, HostId>, TimePoint> txFreeAt_;
  std::map<std::pair<HostId, HostId>, TimePoint> lastDeliveryAt_;
  LinkFaultStats faultStats_;
};

}  // namespace md::sim
