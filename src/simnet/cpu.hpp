// Multi-core CPU cost model for simulated hosts.
//
// Work items are charged to the earliest-available core (the paper's engine
// balances clients across IoThreads/Workers pinned to CPUs, so
// earliest-available is a faithful abstraction of a balanced system). The
// model yields both completion times (queueing delay emerges when offered
// load approaches capacity) and utilization (CPU% columns of Tables 1 & 2).
//
// An optional PauseModel injects JVM garbage-collection pauses: work that
// would complete inside a pause window is pushed past it (stop-the-world) or
// slightly inflated (concurrent collector).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"

namespace md::sim {

/// Injects collector pauses into CPU completion times.
class PauseModel {
 public:
  virtual ~PauseModel() = default;
  /// Returns the adjusted completion time for work finishing at `t`.
  [[nodiscard]] virtual TimePoint Adjust(TimePoint t) const noexcept = 0;
};

/// Pre-generated stop-the-world pause schedule: during [start, end) nothing
/// completes; completion times inside a pause are pushed to its end.
class StopTheWorldPauses final : public PauseModel {
 public:
  struct Pause {
    TimePoint start;
    TimePoint end;
  };

  explicit StopTheWorldPauses(std::vector<Pause> pauses)
      : pauses_(std::move(pauses)) {}

  [[nodiscard]] TimePoint Adjust(TimePoint t) const noexcept override {
    // Pauses are sorted and non-overlapping; find the first pause ending
    // after t and check containment.
    auto it = std::upper_bound(
        pauses_.begin(), pauses_.end(), t,
        [](TimePoint v, const Pause& p) { return v < p.end; });
    if (it != pauses_.end() && t >= it->start) return it->end;
    return t;
  }

  [[nodiscard]] const std::vector<Pause>& pauses() const noexcept { return pauses_; }

 private:
  std::vector<Pause> pauses_;
};

/// Concurrent collector (C4-style): no global stops, only a small constant
/// per-operation overhead factor.
class ConcurrentCollector final : public PauseModel {
 public:
  explicit ConcurrentCollector(Duration jitterCeiling) noexcept
      : jitterCeiling_(jitterCeiling) {}

  [[nodiscard]] TimePoint Adjust(TimePoint t) const noexcept override {
    // Deterministic sub-millisecond smear derived from the completion time
    // itself (no shared RNG: Adjust must be pure).
    const auto h = static_cast<std::uint64_t>(t) * 0x9E3779B97F4A7C15ULL;
    return t + static_cast<Duration>(h % static_cast<std::uint64_t>(jitterCeiling_ + 1));
  }

 private:
  Duration jitterCeiling_;
};

class SimCpu {
 public:
  explicit SimCpu(int cores) : coreFree_(static_cast<std::size_t>(cores), 0) {}

  /// Work interval on a core: [start, done).
  struct Span {
    TimePoint start;
    TimePoint done;
  };

  /// Charge `cost` of CPU work arriving at `now`; returns completion time.
  TimePoint Charge(TimePoint now, Duration cost) noexcept {
    return ChargeSpan(now, cost).done;
  }

  /// Like Charge, but also reports when the work actually started (after
  /// queueing behind earlier work) — needed to place individual deliveries
  /// within a fan-out batch.
  Span ChargeSpan(TimePoint now, Duration cost) noexcept {
    // Pick the earliest-available core.
    auto it = std::min_element(coreFree_.begin(), coreFree_.end());
    const TimePoint start = std::max(now, *it);
    TimePoint done = start + cost;
    if (pauses_ != nullptr) done = pauses_->Adjust(done);
    *it = done;
    busy_ += done - start;
    return {start, done};
  }

  /// Attach a GC pause model (nullptr clears it).
  void SetPauseModel(const PauseModel* pauses) noexcept { pauses_ = pauses; }

  /// Fraction of total core-time spent busy in [windowStart, windowEnd].
  /// Uses cumulative busy time; callers snapshot BusyTime() at window edges.
  [[nodiscard]] Duration BusyTime() const noexcept { return busy_; }

  [[nodiscard]] int cores() const noexcept {
    return static_cast<int>(coreFree_.size());
  }

  /// Earliest time any core is free — a view of current backlog.
  [[nodiscard]] TimePoint EarliestFree() const noexcept {
    return *std::min_element(coreFree_.begin(), coreFree_.end());
  }

  /// Drop all queued work (crash / restart).
  void Reset(TimePoint now) noexcept {
    for (auto& f : coreFree_) f = now;
  }

  static double Utilization(Duration busyDelta, Duration window, int cores) noexcept {
    if (window <= 0 || cores <= 0) return 0.0;
    const double u = static_cast<double>(busyDelta) /
                     (static_cast<double>(window) * static_cast<double>(cores));
    // Overload charges work past the window end; physically the machine was
    // simply pegged for the whole window.
    return u > 1.0 ? 1.0 : u;
  }

 private:
  std::vector<TimePoint> coreFree_;
  Duration busy_ = 0;
  const PauseModel* pauses_ = nullptr;
};

}  // namespace md::sim
