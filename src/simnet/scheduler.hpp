// Discrete-event scheduler: the heart of the simulation substrate.
//
// Events run in strictly non-decreasing virtual time; ties are broken by
// insertion order so runs are fully deterministic under a fixed seed. The
// cluster protocol state machines are driven either by this scheduler
// (benchmarks, property tests) or by real time + epoll (examples), through
// the same callback-style interfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace md::sim {

using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint Now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` from now (clamped to now if negative).
  TimerId Schedule(Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  TimerId ScheduleAt(TimePoint when, std::function<void()> fn) {
    const TimerId id = ++nextId_;
    queue_.push(Event{when < now_ ? now_ : when, ++nextSeq_, id, std::move(fn)});
    ++pending_;
    return id;
  }

  /// Cancel a scheduled event. Safe to call with an already-fired id.
  void Cancel(TimerId id) {
    if (id != kInvalidTimer) cancelled_.insert(id);
  }

  /// Runs the next event. Returns false if the queue is empty.
  bool Step() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      --pending_;
      if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = ev.when;
      ev.fn();
      ++executed_;
      return true;
    }
    return false;
  }

  /// Run until the queue drains.
  void Run() {
    while (Step()) {
    }
  }

  /// Run all events with time <= deadline; afterwards Now() == deadline.
  void RunUntil(TimePoint deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) {
      if (!Step()) break;
    }
    if (now_ < deadline) now_ = deadline;
  }

  void RunFor(Duration d) { RunUntil(now_ + d); }

  [[nodiscard]] std::size_t PendingEvents() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t ExecutedEvents() const noexcept { return executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    TimerId id;
    std::function<void()> fn;

    bool operator>(const Event& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t nextSeq_ = 0;
  TimerId nextId_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<TimerId> cancelled_;
};

/// Adapter exposing the scheduler's virtual time as a Clock.
class SimClock final : public Clock {
 public:
  explicit SimClock(const Scheduler& sched) noexcept : sched_(sched) {}
  [[nodiscard]] TimePoint Now() const noexcept override { return sched_.Now(); }

 private:
  const Scheduler& sched_;
};

}  // namespace md::sim
