#include "cluster/tcp_host.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace md::cluster {

namespace {
constexpr std::size_t kMaxBacklogFrames = 4096;
}

// ---------------------------------------------------------------------------
// Environments
// ---------------------------------------------------------------------------

class TcpClusterHost::NodeEnv final : public ClusterEnv {
 public:
  NodeEnv(TcpClusterHost& host, std::uint64_t seed) : host_(host), rng_(seed) {}

  void SendToPeer(const std::string& serverId, const Frame& frame) override {
    host_.SendPeerFrame(serverId, frame);
  }

  void SendToClient(ClientHandle client, const Frame& frame) override {
    const auto it = host_.clients_.find(client);
    if (it == host_.clients_.end()) return;
    Observe(client, frame);
    Bytes wire;
    EncodeFramed(frame, wire);
    (void)host_.SendClientWire(client, it->second, BytesView(wire));
  }

  void SendToClients(const std::vector<ClientHandle>& clients,
                     const Frame& frame) override {
    // Fan-out fast path: encode once into a pooled refcounted buffer and
    // share it across every target's send queue — N subscribers cost one
    // encode and zero per-subscriber copies. Each write still goes through
    // the watermark-checked path, so one stalled subscriber in the batch
    // cannot buffer the host to death.
    std::shared_ptr<Bytes> wire;
    for (const ClientHandle client : clients) {
      const auto it = host_.clients_.find(client);
      if (it == host_.clients_.end()) continue;
      Observe(client, frame);
      if (!wire) {
        wire = AcquireWireBuffer();
        EncodeFramed(frame, *wire);
      }
      const std::shared_ptr<const Bytes> shared = wire;
      (void)host_.SendClientWire(client, it->second, BytesView(*wire), &shared);
    }
  }

  void CloseClient(ClientHandle client) override {
    auto node = host_.clients_.extract(client);
    if (!node.empty()) node.mapped()->conn->Close();
  }

  std::uint64_t Schedule(Duration delay, std::function<void()> fn) override {
    return host_.loop_->ScheduleTimer(delay, std::move(fn));
  }
  void Cancel(std::uint64_t timerId) override { host_.loop_->CancelTimer(timerId); }
  [[nodiscard]] TimePoint Now() const override { return host_.loop_->Now(); }
  std::uint64_t Random() override { return rng_.Next(); }

 private:
  // Runtime verification tap: every DELIVER the node emits toward a client
  // passes through here, on the loop thread, in emission order.
  void Observe(ClientHandle client, const Frame& frame) {
    verify::Monitor* monitor = host_.monitor_.get();
    if (monitor == nullptr) return;
    if (const auto* deliver = std::get_if<DeliverFrame>(&frame)) {
      monitor->OnDelivery(client, deliver->msg.topic, PosOf(deliver->msg),
                          deliver->msg.pubId);
    }
  }

  TcpClusterHost& host_;
  Rng rng_;
};

class TcpClusterHost::CoordEnv final : public coord::Env {
 public:
  CoordEnv(TcpClusterHost& host, std::uint64_t seed) : host_(host), rng_(seed) {}

  void Send(coord::NodeId to, const coord::CoordMsg& msg) override {
    host_.SendCoordMsg(to, msg);
  }
  std::uint64_t Schedule(Duration delay, std::function<void()> fn) override {
    return host_.loop_->ScheduleTimer(delay, std::move(fn));
  }
  void Cancel(std::uint64_t timerId) override { host_.loop_->CancelTimer(timerId); }
  [[nodiscard]] TimePoint Now() const override { return host_.loop_->Now(); }
  std::uint64_t Random() override { return rng_.Next(); }

 private:
  TcpClusterHost& host_;
  Rng rng_;
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

TcpClusterHost::TcpClusterHost(TcpHostConfig cfg)
    : cfg_(std::move(cfg)),
      scm_(cfg_.cluster.metrics != nullptr ? *cfg_.cluster.metrics
                                           : obs::MetricsRegistry::Default(),
           obs::ServerLabel(cfg_.serverId)) {
  if (cfg_.runtimeVerify) {
    if (cfg_.verifyConfig.scope.empty()) cfg_.verifyConfig.scope = cfg_.serverId;
    monitor_ = std::make_unique<verify::Monitor>(
        cfg_.cluster.metrics != nullptr ? *cfg_.cluster.metrics
                                        : obs::MetricsRegistry::Default(),
        cfg_.verifyConfig);
  }
  loop_ = CreateNetLoop(cfg_.eventLoop);
  nodeEnv_ = std::make_unique<NodeEnv>(*this, cfg_.seed);
  coordEnv_ = std::make_unique<CoordEnv>(*this, cfg_.seed + 1);

  std::vector<coord::NodeId> members{cfg_.nodeId};
  std::vector<std::string> peerIds;
  for (const auto& peer : cfg_.peers) {
    members.push_back(peer.nodeId);
    peerIds.push_back(peer.serverId);
  }
  std::sort(members.begin(), members.end());

  coordNode_ = std::make_unique<coord::CoordNode>(cfg_.nodeId, members,
                                                  *coordEnv_, cfg_.coord);
  ClusterConfig clusterCfg = cfg_.cluster;
  clusterCfg.serverId = cfg_.serverId;
  node_ = std::make_unique<ClusterNode>(clusterCfg, *nodeEnv_, *coordNode_,
                                        peerIds);
}

TcpClusterHost::~TcpClusterHost() { Stop(); }

Status TcpClusterHost::Start() {
  if (running_.exchange(true)) return Err(ErrorCode::kAlreadyExists, "running");

  auto bind = [&](std::uint16_t port, ListenerPtr& out,
                  std::uint16_t& actual) -> Status {
    auto listener = loop_->Listen(port);
    if (!listener.ok()) return listener.status();
    out = std::move(*listener);
    actual = out->Port();
    return OkStatus();
  };
  if (Status s = bind(cfg_.clientPort, clientListener_, clientPort_); !s.ok()) return s;
  if (Status s = bind(cfg_.peerPort, peerListener_, peerPort_); !s.ok()) return s;
  if (Status s = bind(cfg_.coordPort, coordListener_, coordPort_); !s.ok()) return s;

  clientListener_->SetAcceptHandler(
      [this](ConnectionPtr conn) { OnClientAccept(std::move(conn)); });
  peerListener_->SetAcceptHandler(
      [this](ConnectionPtr conn) { OnPeerAccept(std::move(conn)); });
  coordListener_->SetAcceptHandler(
      [this](ConnectionPtr conn) { OnCoordAccept(std::move(conn)); });

  thread_ = std::thread([this] { loop_->Run(); });
  loop_->Post([this] {
    coordNode_->Start();
    node_->Start();
    RetryLinks();
  });
  MD_INFO("%s: cluster host up (client %u, peer %u, coord %u)",
          cfg_.serverId.c_str(), clientPort_, peerPort_, coordPort_);
  return OkStatus();
}

void TcpClusterHost::Stop() {
  if (!running_.exchange(false)) return;
  loop_->Post([this] {
    node_->Crash();
    coordNode_->Crash();
    for (auto& [handle, client] : clients_) client->conn->Close();
    clients_.clear();
    for (auto& [id, link] : peerLinks_) {
      if (link.conn) link.conn->Close();
    }
    peerLinks_.clear();
    for (auto& [id, link] : coordLinks_) {
      if (link.conn) link.conn->Close();
    }
    coordLinks_.clear();
    clientListener_.reset();
    peerListener_.reset();
    coordListener_.reset();
  });
  loop_->Stop();
  if (thread_.joinable()) thread_.join();
}

void TcpClusterHost::WithNode(const std::function<void(ClusterNode&)>& fn) {
  std::atomic<bool> done{false};
  loop_->Post([&] {
    fn(*node_);
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
}

void TcpClusterHost::WithCoord(const std::function<void(coord::CoordNode&)>& fn) {
  std::atomic<bool> done{false};
  loop_->Post([&] {
    fn(*coordNode_);
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

void TcpClusterHost::OnClientAccept(ConnectionPtr conn) {
  const ClientHandle handle = nextHandle_++;
  auto client = std::make_shared<ClientConn>();
  client->conn = conn;
  clients_[handle] = client;

  conn->SetWatermarks(cfg_.clientBackpressure.ToWatermarks());
  conn->SetDrainedHandler([this, client] {
    if (!client->overSoft) return;
    client->overSoft = false;
    scm_.sessionsOverSoft.Add(-1);
  });

  conn->SetDataHandler([this, handle, client](BytesView data) {
    client->in.Append(data);
    while (true) {
      auto r = ExtractFrame(client->in);
      if (!r.status.ok()) {
        client->conn->Close();
        clients_.erase(handle);
        node_->OnClientDisconnect(handle);
        return;
      }
      if (!r.frame) return;
      node_->OnClientFrame(handle, *r.frame);
    }
  });
  conn->SetCloseHandler([this, handle, client] {
    if (client->overSoft) {
      client->overSoft = false;
      scm_.sessionsOverSoft.Add(-1);
    }
    clients_.erase(handle);
    node_->OnClientDisconnect(handle);
  });
}

// ---------------------------------------------------------------------------
// Peer (cluster-frame) links
// ---------------------------------------------------------------------------

const TcpPeerAddress* TcpClusterHost::PeerById(const std::string& serverId) const {
  for (const auto& peer : cfg_.peers) {
    if (peer.serverId == serverId) return &peer;
  }
  return nullptr;
}

const TcpPeerAddress* TcpClusterHost::PeerByNode(coord::NodeId nodeId) const {
  for (const auto& peer : cfg_.peers) {
    if (peer.nodeId == nodeId) return &peer;
  }
  return nullptr;
}

void TcpClusterHost::OnPeerAccept(ConnectionPtr conn) {
  // Identity arrives with the first frame (HELLO).
  auto inbox = std::make_shared<ByteQueue>();
  auto identified = std::make_shared<bool>(false);
  conn->SetDataHandler([this, conn, inbox, identified](BytesView data) {
    inbox->Append(data);
    while (true) {
      auto r = ExtractFrame(*inbox);
      if (!r.status.ok()) {
        conn->Close();
        return;
      }
      if (!r.frame) return;
      if (!*identified) {
        const auto* hello = std::get_if<HelloFrame>(&*r.frame);
        if (hello == nullptr) {
          conn->Close();
          return;
        }
        *identified = true;
        AdoptPeerConnection(hello->serverId, conn);
        continue;
      }
      // Already identified: find who this connection belongs to.
      for (auto& [serverId, link] : peerLinks_) {
        if (link.conn == conn) {
          node_->OnPeerFrame(serverId, *r.frame);
          break;
        }
      }
    }
  });
}

void TcpClusterHost::AdoptPeerConnection(const std::string& serverId,
                                         ConnectionPtr conn) {
  PeerLink& link = peerLinks_[serverId];
  if (link.conn && link.conn != conn) link.conn->Close();
  link.conn = conn;
  link.connecting = false;
  conn->SetCloseHandler([this, serverId] {
    auto it = peerLinks_.find(serverId);
    if (it != peerLinks_.end()) it->second.conn.reset();
  });
  // Flush anything queued while the link was down.
  for (const Bytes& wire : link.backlog) (void)conn->Send(BytesView(wire));
  link.backlog.clear();
  // Link recovery: incremental cache sync against this peer (§5.2.2).
  node_->SyncFromPeer(serverId);
}

void TcpClusterHost::EnsurePeerLink(const std::string& serverId) {
  PeerLink& link = peerLinks_[serverId];
  if (link.conn || link.connecting) return;
  const TcpPeerAddress* peer = PeerById(serverId);
  if (peer == nullptr || peer->peerPort == 0) return;
  link.connecting = true;
  loop_->Connect(peer->host, peer->peerPort, [this, serverId](Result<ConnectionPtr> r) {
    PeerLink& link = peerLinks_[serverId];
    link.connecting = false;
    if (!r.ok()) return;  // retry timer will try again
    ConnectionPtr conn = std::move(r).value();
    // Identify ourselves, then adopt.
    Bytes hello;
    EncodeFramed(Frame(HelloFrame{cfg_.serverId}), hello);
    (void)conn->Send(BytesView(hello));
    // Incoming frames on an outgoing connection are peer frames directly.
    auto inbox = std::make_shared<ByteQueue>();
    conn->SetDataHandler([this, serverId, conn, inbox](BytesView data) {
      inbox->Append(data);
      while (true) {
        auto fr = ExtractFrame(*inbox);
        if (!fr.status.ok()) {
          conn->Close();
          return;
        }
        if (!fr.frame) return;
        node_->OnPeerFrame(serverId, *fr.frame);
      }
    });
    AdoptPeerConnection(serverId, conn);
  });
}

void TcpClusterHost::SendPeerFrame(const std::string& serverId, const Frame& frame) {
  Bytes wire;
  EncodeFramed(frame, wire);
  PeerLink& link = peerLinks_[serverId];
  if (link.conn && link.conn->IsOpen()) {
    (void)link.conn->Send(BytesView(wire));
    return;
  }
  if (link.backlog.size() < kMaxBacklogFrames) link.backlog.push_back(std::move(wire));
  EnsurePeerLink(serverId);
}

// ---------------------------------------------------------------------------
// Coordination links
// ---------------------------------------------------------------------------

void TcpClusterHost::OnCoordAccept(ConnectionPtr conn) {
  auto inbox = std::make_shared<ByteQueue>();
  auto fromNode = std::make_shared<coord::NodeId>(0);
  conn->SetDataHandler([this, conn, inbox, fromNode](BytesView data) {
    inbox->Append(data);
    if (*fromNode == 0) {
      // Varint node-id preamble.
      ByteReader r(inbox->Peek());
      std::uint64_t id = 0;
      if (!r.ReadVarint(id).ok()) return;  // need more bytes
      inbox->Consume(r.position());
      *fromNode = static_cast<coord::NodeId>(id);
    }
    while (true) {
      auto r = coord::ExtractCoordMsg(*inbox);
      if (!r.status.ok()) {
        conn->Close();
        return;
      }
      if (!r.msg) return;
      coordNode_->HandleMessage(*fromNode, *r.msg);
    }
  });
}

void TcpClusterHost::EnsureCoordLink(coord::NodeId nodeId) {
  CoordLink& link = coordLinks_[nodeId];
  if (link.conn || link.connecting) return;
  const TcpPeerAddress* peer = PeerByNode(nodeId);
  if (peer == nullptr || peer->coordPort == 0) return;
  link.connecting = true;
  loop_->Connect(peer->host, peer->coordPort, [this, nodeId](Result<ConnectionPtr> r) {
    CoordLink& link = coordLinks_[nodeId];
    link.connecting = false;
    if (!r.ok()) return;
    link.conn = std::move(r).value();
    link.conn->SetCloseHandler([this, nodeId] {
      auto it = coordLinks_.find(nodeId);
      if (it != coordLinks_.end()) it->second.conn.reset();
    });
    // Preamble: who we are.
    Bytes preamble;
    ByteWriter w(preamble);
    w.WriteVarint(cfg_.nodeId);
    (void)link.conn->Send(BytesView(preamble));
    for (const Bytes& wire : link.backlog) (void)link.conn->Send(BytesView(wire));
    link.backlog.clear();
  });
}

void TcpClusterHost::SendCoordMsg(coord::NodeId to, const coord::CoordMsg& msg) {
  Bytes wire;
  coord::EncodeCoordFramed(msg, wire);
  CoordLink& link = coordLinks_[to];
  if (link.conn && link.conn->IsOpen()) {
    (void)link.conn->Send(BytesView(wire));
    return;
  }
  if (link.backlog.size() < kMaxBacklogFrames) link.backlog.push_back(std::move(wire));
  EnsureCoordLink(to);
}

bool TcpClusterHost::SendClientWire(ClientHandle handle,
                                    const std::shared_ptr<ClientConn>& client,
                                    BytesView wire,
                                    const std::shared_ptr<const Bytes>* shared) {
  if (client->evicting || !client->conn->IsOpen()) return false;
  const std::size_t before = client->conn->PendingBytes();
  const Status st =
      shared != nullptr ? client->conn->Send(*shared) : client->conn->Send(wire);
  if (st.ok()) return true;
  if (st.code() != ErrorCode::kCapacity) return false;
  // kCapacity: bytes were accepted iff PendingBytes moved (soft overflow);
  // otherwise the whole frame was rejected at the hard mark.
  const bool accepted = client->conn->PendingBytes() > before;
  if (!client->overSoft) {
    client->overSoft = true;
    scm_.softOverflows.Inc();
    scm_.sessionsOverSoft.Add(1);
    scm_.queueDepthBytes.Record(
        static_cast<std::int64_t>(client->conn->PendingBytes()));
  }
  if (monitor_) {
    monitor_->OnBackpressure(handle, client->conn->PendingBytes(),
                             cfg_.clientBackpressure.hardWatermark);
  }
  if (!accepted) {
    // The stream now has a gap; eviction forces the reconnect + resume path,
    // which backfills everything the client missed.
    EvictSlowClient(handle, client);
    return false;
  }
  if (!client->evictTimerArmed) {
    client->evictTimerArmed = true;
    loop_->ScheduleTimer(
        cfg_.clientBackpressure.evictGrace, [this, handle, client] {
          client->evictTimerArmed = false;
          if (client->overSoft && !client->evicting && client->conn->IsOpen()) {
            EvictSlowClient(handle, client);
          }
        });
  }
  return true;
}

void TcpClusterHost::EvictSlowClient(ClientHandle handle,
                                     const std::shared_ptr<ClientConn>& client) {
  if (client->evicting) return;
  client->evicting = true;
  scm_.disconnects.Inc();
  MD_INFO("%s: evicting slow client %llu (%zu bytes pending)",
          cfg_.serverId.c_str(), static_cast<unsigned long long>(handle),
          client->conn->PendingBytes());
  Bytes notice;
  EncodeFramed(Frame(DisconnectFrame{"slow consumer: send queue overflow"}),
               notice);
  (void)client->conn->Send(BytesView(notice));
  client->conn->CloseAfterFlush();
}

void TcpClusterHost::RetryLinks() {
  if (!running_.load(std::memory_order_relaxed)) return;
  for (const auto& peer : cfg_.peers) {
    EnsurePeerLink(peer.serverId);
    EnsureCoordLink(peer.nodeId);
  }
  loop_->ScheduleTimer(cfg_.peerRetryInterval, [this] { RetryLinks(); });
}

}  // namespace md::cluster
