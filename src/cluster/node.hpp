// Multi-server MigratoryData protocol (paper §5): subscriber partitioning,
// coordinator-per-topic-group sequencing through MiniZK, gossip-based
// coordinator lookup, replication broadcast with ack-after-two-copies, cache
// reconstruction after crash/partition, and partition self-fencing.
//
// ClusterNode is a deterministic, single-threaded state machine. All I/O is
// delegated to a ClusterEnv so the same code runs under the simulation
// harness (tests, failover benchmarks) and under a real event loop.
//
// Protocol walk-through (paper §5.2.2):
//   - A publication arrives at its publisher's *contact server*.
//   - If the contact server coordinates the topic's group, it assigns
//     (epoch, seq) and broadcasts; it acknowledges the publisher after the
//     first replication confirmation (two copies exist).
//   - Otherwise it forwards to the coordinator from its gossip map, or — if
//     the group is unassigned — to a uniformly random peer, which attempts
//     to become coordinator via an atomic MiniZK create. The contact server
//     acknowledges its publisher when the sequenced broadcast arrives back
//     (it then holds the second copy).
//   - A node that fails to win the coordinator race rejects the forward; the
//     contact server answers "failed" and the publisher republishes.
//   - Coordinator failure deletes its ephemeral mapping; watchers race to
//     take over, the winner bumping the group's epoch (a linearized MiniZK
//     version) so streams across coordinators stay totally ordered.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.hpp"
#include "obs/families.hpp"
#include "coord/node.hpp"
#include "core/cache.hpp"
#include "core/registry.hpp"
#include "core/sequencer.hpp"
#include "proto/frames.hpp"

namespace md::cluster {

using core::ClientHandle;

struct ClusterConfig {
  std::string serverId;
  std::uint32_t topicGroups = 100;
  core::CacheConfig cache;  // cache.topicGroups is overwritten by topicGroups
  /// Contact server gives up on a forwarded publication after this long and
  /// answers the publisher "failed" (it republishes).
  Duration forwardTimeout = 2 * kSecond;
  /// Period of the partition self-fencing check (paper §5.2.2).
  Duration fenceCheckInterval = 200 * kMillisecond;
  /// Peers answer cache-sync requests in chunks of this many messages.
  std::size_t cacheSyncChunk = 512;
  /// A topic whose broadcast stream shows a sequence gap stalls local fan-out
  /// while the backfill sync runs; after this long it resumes with whatever
  /// the cache holds (the syncing peer may have crashed mid-answer).
  Duration gapSyncTimeout = kSecond;
  /// Copies that must exist before a publication is acknowledged (paper
  /// §5.2: default 2 = contact + coordinator, tolerating one fault; raising
  /// it tolerates more concurrent faults at higher ack latency — the
  /// extension the paper sketches). Must be <= cluster size.
  std::size_t ackCopies = 2;
  /// Metrics destination; nullptr uses the process-wide default registry.
  /// The registry must outlive the node.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Legacy plain-struct view of the node's counters, built from the metrics
/// registry on demand (kept so existing callers read `.stats().field`).
struct ClusterNodeStats {
  std::uint64_t published = 0;        // publications sequenced by this node
  std::uint64_t forwarded = 0;        // publications forwarded to coordinators
  std::uint64_t delivered = 0;        // notifications sent to local subscribers
  std::uint64_t rejects = 0;          // coordinator races lost
  std::uint64_t takeovers = 0;        // successful coordinator acquisitions
  std::uint64_t fences = 0;           // partition self-fencing events
  std::uint64_t recoveredMessages = 0;  // messages pulled during cache sync
};

/// Host environment: client/peer I/O, timers, randomness.
class ClusterEnv {
 public:
  virtual ~ClusterEnv() = default;
  virtual void SendToPeer(const std::string& serverId, const Frame& frame) = 0;
  virtual void SendToClient(ClientHandle client, const Frame& frame) = 0;
  /// Batched fan-out: one frame to many clients. Hosts override this to
  /// encode the wire bytes once and share them across every socket write
  /// (the local-delivery cursor path hands whole subscriber snapshots here);
  /// the default preserves per-client semantics exactly.
  virtual void SendToClients(const std::vector<ClientHandle>& clients,
                             const Frame& frame) {
    for (const ClientHandle client : clients) SendToClient(client, frame);
  }
  /// Forcibly close a client connection (self-fencing).
  virtual void CloseClient(ClientHandle client) = 0;
  virtual std::uint64_t Schedule(Duration delay, std::function<void()> fn) = 0;
  virtual void Cancel(std::uint64_t timerId) = 0;
  [[nodiscard]] virtual TimePoint Now() const = 0;
  virtual std::uint64_t Random() = 0;
};

class ClusterNode {
 public:
  ClusterNode(ClusterConfig cfg, ClusterEnv& env, coord::CoordNode& coord,
              std::vector<std::string> peerIds);

  // --- lifecycle -------------------------------------------------------------
  void Start();
  void Crash();    // fail-stop: drops all volatile state (incl. cache)
  void Restart();  // rejoin and reconstruct the cache from peers
  [[nodiscard]] bool IsCrashed() const noexcept { return crashed_; }
  [[nodiscard]] bool IsFenced() const noexcept { return fenced_; }

  // --- client-side events (invoked by the host) ------------------------------
  void OnClientConnect(ClientHandle client, const std::string& clientId);
  void OnClientFrame(ClientHandle client, const Frame& frame);
  void OnClientDisconnect(ClientHandle client);

  // --- peer events ------------------------------------------------------------
  void OnPeerFrame(const std::string& fromServerId, const Frame& frame);

  /// Incremental cache sync against one peer — invoked by the host when an
  /// inter-server connection is (re)established (paper §5.2.2).
  void SyncFromPeer(const std::string& peerId);

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const std::string& serverId() const noexcept { return cfg_.serverId; }
  [[nodiscard]] ClusterNodeStats stats() const;
  [[nodiscard]] const obs::ClusterMetrics& metrics() const noexcept { return cm_; }
  [[nodiscard]] const core::Cache& cache() const noexcept { return cache_; }
  [[nodiscard]] std::size_t LocalClientCount() const noexcept { return clients_.size(); }
  [[nodiscard]] bool CoordinatesGroup(std::uint32_t group) const {
    return myGroups_.contains(group);
  }
  [[nodiscard]] std::optional<std::pair<std::string, std::uint32_t>> GossipEntry(
      std::uint32_t group) const {
    const auto it = gossip_.find(group);
    if (it == gossip_.end()) return std::nullopt;
    return std::make_pair(it->second.serverId, it->second.epoch);
  }

  /// Instrumentation tap: invoked once per message as it becomes available
  /// for local fan-out on this server (used by the failover benchmark to
  /// attach a modeled subscriber population; no protocol effect).
  void SetLocalDeliveryHook(std::function<void(const Message&)> hook) {
    deliveryHook_ = std::move(hook);
  }

 private:
  struct GossipEntryState {
    std::string serverId;
    std::uint32_t epoch = 0;
  };

  /// Publication waiting at the contact server for its second copy.
  struct PendingContact {
    ClientHandle publisher = 0;
    std::string topic;
    std::uint64_t timeoutTimer = 0;
  };

  /// Publication sequenced here, waiting for replication confirmations.
  /// Keyed by (topic, epoch, seq) — what BroadcastAck frames carry.
  struct PendingCoord {
    ClientHandle publisher = 0;      // publisher connected to this server, or 0
    std::string originServerId;      // contact server awaiting a notice, or ""
    PublicationId pubId;
    std::size_t acksReceived = 0;
    TimePoint start = 0;             // broadcast time, for replication-ack latency
  };
  using CoordAckKey = std::tuple<std::string, std::uint32_t, std::uint64_t>;

  /// Publication parked while a coordinator election for its group runs.
  struct ParkedPublication {
    std::string topic;
    Bytes payload;
    PublicationId pubId;
    std::int64_t publishTs = 0;
    std::string originServerId;  // empty: local client publication
    ClientHandle publisher = 0;
  };

  // Client protocol.
  void HandlePublish(ClientHandle client, const PublishFrame& pub);
  void HandleSubscribe(ClientHandle client, const SubscribeFrame& sub);

  // Publication routing.
  void RoutePublication(ParkedPublication pub);
  void SequenceAndBroadcast(const ParkedPublication& pub);
  void AttemptTakeover(std::uint32_t group);
  void FinishTakeover(std::uint32_t group, std::uint32_t epoch);
  void DrainParked(std::uint32_t group);
  void RejectParked(std::uint32_t group);

  // Peer protocol.
  void OnBroadcast(const std::string& from, const BroadcastFrame& bcast);
  void OnBroadcastAck(const std::string& from, const BroadcastAckFrame& ack);
  void OnForwardPub(const std::string& from, const ForwardPubFrame& fwd);
  void OnForwardReject(const ForwardRejectFrame& reject);
  void OnReplicatedNotice(const ReplicatedNoticeFrame& notice);
  void OnGossipAnnounce(const GossipAnnounceFrame& announce);
  void OnCacheSyncReq(const std::string& from, const CacheSyncReqFrame& req);
  void OnCacheSyncResp(const CacheSyncRespFrame& resp);

  // Reliability machinery.
  void SetupWatches();
  void CheckFence();
  void Fence();
  void Unfence();
  void StartCacheReconstruction();
  void DeliverToLocalSubscribers(const Message& msg);
  void DeliverInOrder(const std::string& topic);
  void StallDelivery(const std::string& topic);
  void AckContactPending(const PublicationId& pubId, bool ok);

  [[nodiscard]] std::uint32_t GroupOf(const std::string& topic) const noexcept {
    return TopicGroupOf(topic, cfg_.topicGroups);
  }
  [[nodiscard]] std::string GroupKey(std::uint32_t group) const {
    return "group/" + std::to_string(group);
  }
  [[nodiscard]] std::string EpochKey(std::uint32_t group) const {
    return "epoch/" + std::to_string(group);
  }

  ClusterConfig cfg_;
  ClusterEnv& env_;
  coord::CoordNode& coord_;
  std::vector<std::string> peers_;  // other servers' ids

  bool started_ = false;
  bool crashed_ = false;
  bool fenced_ = false;
  bool watchesInstalled_ = false;
  std::uint64_t fenceTimer_ = 0;

  core::SubscriptionRegistry registry_;
  core::Cache cache_;
  core::Sequencer sequencer_;

  std::set<ClientHandle> clients_;
  std::map<std::uint32_t, GossipEntryState> gossip_;
  std::set<std::uint32_t> myGroups_;
  std::set<std::uint32_t> electing_;  // takeover in flight
  std::map<std::uint32_t, std::deque<ParkedPublication>> parked_;
  std::map<PublicationId, PendingContact> pendingContact_;
  std::map<CoordAckKey, PendingCoord> pendingCoord_;
  std::set<std::uint32_t> syncing_;  // groups with cache sync outstanding
  /// In-order local fan-out: per topic, the last position handed to local
  /// subscribers. Live broadcasts advance it through the cache so a backfilled
  /// gap is delivered before anything sequenced after it.
  std::map<std::string, StreamPos> deliveryCursor_;
  std::map<std::string, std::uint64_t> gapStalled_;  // topic -> timeout timer
  std::function<void(const Message&)> deliveryHook_;

  obs::ClusterMetrics cm_;
  TimePoint fenceStart_ = -1;  // Now() at the last Fence(); -1 = not fenced
};

}  // namespace md::cluster
