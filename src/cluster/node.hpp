// Multi-server MigratoryData protocol (paper §5): subscriber partitioning,
// coordinator-per-topic-group sequencing through MiniZK, gossip-based
// coordinator lookup, replication broadcast with ack-after-two-copies, cache
// reconstruction after crash/partition, and partition self-fencing.
//
// ClusterNode is a deterministic, single-threaded state machine. All I/O is
// delegated to a ClusterEnv so the same code runs under the simulation
// harness (tests, failover benchmarks) and under a real event loop.
//
// Protocol walk-through (paper §5.2.2):
//   - A publication arrives at its publisher's *contact server*.
//   - If the contact server coordinates the topic's group, it assigns
//     (epoch, seq) and broadcasts; it acknowledges the publisher after the
//     first replication confirmation (two copies exist).
//   - Otherwise it forwards to the coordinator from its gossip map, or — if
//     the group is unassigned — to a uniformly random peer, which attempts
//     to become coordinator via an atomic MiniZK create. The contact server
//     acknowledges its publisher when the sequenced broadcast arrives back
//     (it then holds the second copy).
//   - A node that fails to win the coordinator race rejects the forward; the
//     contact server answers "failed" and the publisher republishes.
//   - Coordinator failure deletes its ephemeral mapping; watchers race to
//     take over, the winner bumping the group's epoch (a linearized MiniZK
//     version) so streams across coordinators stay totally ordered.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.hpp"
#include "obs/families.hpp"
#include "cluster/quorum.hpp"
#include "cluster/rebalance.hpp"
#include "coord/assign.hpp"
#include "coord/node.hpp"
#include "core/cache.hpp"
#include "core/registry.hpp"
#include "core/sequencer.hpp"
#include "proto/frames.hpp"
#include "wal/env.hpp"
#include "wal/log.hpp"

namespace md::cluster {

using core::ClientHandle;

struct ClusterConfig {
  std::string serverId;
  std::uint32_t topicGroups = 100;
  core::CacheConfig cache;  // cache.topicGroups is overwritten by topicGroups
  /// Contact server gives up on a forwarded publication after this long and
  /// answers the publisher "failed" (it republishes).
  Duration forwardTimeout = 2 * kSecond;
  /// Period of the partition self-fencing check (paper §5.2.2).
  Duration fenceCheckInterval = 200 * kMillisecond;
  /// Peers answer cache-sync requests in chunks of this many messages.
  std::size_t cacheSyncChunk = 512;
  /// A topic whose broadcast stream shows a sequence gap stalls local fan-out
  /// while the backfill sync runs; after this long it resumes with whatever
  /// the cache holds (the syncing peer may have crashed mid-answer).
  Duration gapSyncTimeout = kSecond;
  /// Copies that must exist before a publication is acknowledged (paper
  /// §5.2: default 2 = contact + coordinator, tolerating one fault; raising
  /// it tolerates more concurrent faults at higher ack latency — the
  /// extension the paper sketches). Must be <= cluster size.
  std::size_t ackCopies = 2;
  /// Metrics destination; nullptr uses the process-wide default registry.
  /// The registry must outlive the node.
  obs::MetricsRegistry* metrics = nullptr;

  // --- elastic membership (DESIGN.md §12) -----------------------------------
  /// Opt-in: register an ephemeral members/ znode, watch the membership, and
  /// rebalance subscriber partitions across live members on join/leave with a
  /// coordinated hand-off per moved partition. Off = fixed membership,
  /// byte-identical behavior to the pre-elastic cluster.
  bool elastic = false;
  /// Opt-in (requires elastic): refuse to sequence publications while a
  /// majority of the messaging membership is unreachable from this node's
  /// vantage. Local publishers get a retryable kNoQuorum ack; forwarded
  /// publications bounce back to their contact server. Prevents a partitioned
  /// minority from split-braining a stream.
  bool quorumGate = false;
  /// Subscriber partitions for the rendezvous session assignment.
  std::uint32_t subscriberPartitions = 16;
  /// Membership events are debounced this long before recomputing the
  /// assignment, so a rolling join/leave wave coalesces into one hand-off set.
  Duration rebalanceDebounce = 100 * kMillisecond;
  /// Old owner aborts a hand-off (unfreezes the slice and catches it up from
  /// the cache) if the new owner's ack does not arrive within this window.
  Duration handoffAckTimeout = kSecond;
  /// Explicit quorum-vote threshold; 0 derives majority from the vote total.
  std::uint32_t minQuorumVotes = 0;

  // --- durable topic cache (DESIGN.md §13) ----------------------------------
  /// Segmented WAL underneath the cache. wal.dir empty = no WAL (volatile
  /// cache, pre-durability behavior). A crash-restarted node then replays
  /// its local WAL first and asks peers only for the delta.
  wal::WalConfig wal;
  /// Storage backing the WAL. nullptr = PosixEnv (real files); the sim
  /// cluster passes a MemEnv with crash/disk-fault injection. Must outlive
  /// the node.
  wal::Env* walEnv = nullptr;
};

/// Legacy plain-struct view of the node's counters, built from the metrics
/// registry on demand (kept so existing callers read `.stats().field`).
struct ClusterNodeStats {
  std::uint64_t published = 0;        // publications sequenced by this node
  std::uint64_t forwarded = 0;        // publications forwarded to coordinators
  std::uint64_t delivered = 0;        // notifications sent to local subscribers
  std::uint64_t rejects = 0;          // coordinator races lost
  std::uint64_t takeovers = 0;        // successful coordinator acquisitions
  std::uint64_t fences = 0;           // partition self-fencing events
  std::uint64_t recoveredMessages = 0;  // messages pulled during cache sync
  std::uint64_t handoffs = 0;         // partition hand-offs initiated
  std::uint64_t handoffAborts = 0;    // hand-offs aborted (timeout / nack)
  std::uint64_t quorumRejects = 0;    // publications refused for lost quorum
  std::uint64_t fenceRefusals = 0;    // stale-epoch peer writes refused
  std::uint64_t rebalances = 0;       // assignment recomputations applied
};

/// Host environment: client/peer I/O, timers, randomness.
class ClusterEnv {
 public:
  virtual ~ClusterEnv() = default;
  virtual void SendToPeer(const std::string& serverId, const Frame& frame) = 0;
  virtual void SendToClient(ClientHandle client, const Frame& frame) = 0;
  /// Batched fan-out: one frame to many clients. Hosts override this to
  /// encode the wire bytes once and share them across every socket write
  /// (the local-delivery cursor path hands whole subscriber snapshots here);
  /// the default preserves per-client semantics exactly.
  virtual void SendToClients(const std::vector<ClientHandle>& clients,
                             const Frame& frame) {
    for (const ClientHandle client : clients) SendToClient(client, frame);
  }
  /// Forcibly close a client connection (self-fencing).
  virtual void CloseClient(ClientHandle client) = 0;
  virtual std::uint64_t Schedule(Duration delay, std::function<void()> fn) = 0;
  virtual void Cancel(std::uint64_t timerId) = 0;
  [[nodiscard]] virtual TimePoint Now() const = 0;
  virtual std::uint64_t Random() = 0;
};

class ClusterNode {
 public:
  ClusterNode(ClusterConfig cfg, ClusterEnv& env, coord::CoordNode& coord,
              std::vector<std::string> peerIds);

  // --- lifecycle -------------------------------------------------------------
  void Start();
  void Crash();    // fail-stop: drops all volatile state (incl. cache)
  /// Rejoin: replay the local WAL (if configured) into the cache, then ask
  /// peers only for the delta past the recovered per-topic cursors.
  void Restart();
  /// Graceful scale-in (elastic only): hand every locally hosted subscriber
  /// partition to its post-leave owner, deregister from the membership, then
  /// invoke `done`. Non-elastic nodes complete immediately.
  void Leave(std::function<void()> done = {});
  [[nodiscard]] bool IsCrashed() const noexcept { return crashed_; }
  [[nodiscard]] bool IsFenced() const noexcept { return fenced_; }
  [[nodiscard]] bool IsLeaving() const noexcept { return leaving_; }

  // --- client-side events (invoked by the host) ------------------------------
  void OnClientConnect(ClientHandle client, const std::string& clientId);
  void OnClientFrame(ClientHandle client, const Frame& frame);
  void OnClientDisconnect(ClientHandle client);

  // --- peer events ------------------------------------------------------------
  void OnPeerFrame(const std::string& fromServerId, const Frame& frame);

  /// Incremental cache sync against one peer — invoked by the host when an
  /// inter-server connection is (re)established (paper §5.2.2).
  void SyncFromPeer(const std::string& peerId);

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const std::string& serverId() const noexcept { return cfg_.serverId; }
  [[nodiscard]] ClusterNodeStats stats() const;
  [[nodiscard]] const obs::ClusterMetrics& metrics() const noexcept { return cm_; }
  [[nodiscard]] const core::Cache& cache() const noexcept { return cache_; }
  [[nodiscard]] std::size_t LocalClientCount() const noexcept { return clients_.size(); }
  [[nodiscard]] bool CoordinatesGroup(std::uint32_t group) const {
    return myGroups_.contains(group);
  }
  [[nodiscard]] std::optional<std::pair<std::string, std::uint32_t>> GossipEntry(
      std::uint32_t group) const {
    const auto it = gossip_.find(group);
    if (it == gossip_.end()) return std::nullopt;
    return std::make_pair(it->second.serverId, it->second.epoch);
  }
  /// This incarnation's membership fence epoch (0 until joined).
  [[nodiscard]] std::uint32_t FenceEpoch() const noexcept { return fenceEpoch_; }
  /// Current subscriber-partition assignment (empty until first rebalance).
  [[nodiscard]] const Assignment& assignment() const noexcept { return assignment_; }
  /// The data-plane quorum verdict this node gates publishes on. Always true
  /// when the quorum gate is off.
  [[nodiscard]] bool HasWriteQuorum() const {
    if (!cfg_.quorumGate) return true;
    return quorum_.Quorumed() && coord_.HasQuorumContact();
  }
  [[nodiscard]] const Quorum& quorum() const noexcept { return quorum_; }
  /// What the most recent WAL replay found (zeros when no WAL or no restart
  /// yet). Chaos/bench harnesses read this right after Restart().
  [[nodiscard]] const wal::RecoveryStats& lastWalRecovery() const noexcept {
    return lastRecovery_;
  }

  /// Instrumentation tap: invoked once per message as it becomes available
  /// for local fan-out on this server (used by the failover benchmark to
  /// attach a modeled subscriber population; no protocol effect).
  void SetLocalDeliveryHook(std::function<void(const Message&)> hook) {
    deliveryHook_ = std::move(hook);
  }

 private:
  struct GossipEntryState {
    std::string serverId;
    std::uint32_t epoch = 0;
  };

  /// Publication waiting at the contact server for its second copy.
  struct PendingContact {
    ClientHandle publisher = 0;
    std::string topic;
    std::uint64_t timeoutTimer = 0;
  };

  /// Publication sequenced here, waiting for replication confirmations.
  /// Keyed by (topic, epoch, seq) — what BroadcastAck frames carry.
  struct PendingCoord {
    ClientHandle publisher = 0;      // publisher connected to this server, or 0
    std::string originServerId;      // contact server awaiting a notice, or ""
    PublicationId pubId;
    std::size_t acksReceived = 0;
    TimePoint start = 0;             // broadcast time, for replication-ack latency
  };
  using CoordAckKey = std::tuple<std::string, std::uint32_t, std::uint64_t>;

  /// Outgoing partition hand-off awaiting the new owner's ack. Cursors are
  /// captured at freeze time — the exact delivered-through boundary — and are
  /// what both the Begin frame and the client redirect carry.
  struct PendingHandoff {
    std::uint32_t partition = 0;
    std::string target;
    std::vector<std::pair<ClientHandle, HandoffSession>> sessions;
    std::uint64_t timeoutTimer = 0;
  };

  /// Publication parked while a coordinator election for its group runs.
  struct ParkedPublication {
    std::string topic;
    Bytes payload;
    PublicationId pubId;
    std::int64_t publishTs = 0;
    std::string originServerId;  // empty: local client publication
    ClientHandle publisher = 0;
  };

  // Client protocol.
  void HandlePublish(ClientHandle client, const PublishFrame& pub);
  void HandleSubscribe(ClientHandle client, const SubscribeFrame& sub);

  // Publication routing.
  void RoutePublication(ParkedPublication pub);
  void SequenceAndBroadcast(const ParkedPublication& pub);
  void AttemptTakeover(std::uint32_t group);
  void FinishTakeover(std::uint32_t group, std::uint32_t epoch);
  void DrainParked(std::uint32_t group);
  void RejectParked(std::uint32_t group);

  // Peer protocol.
  void OnBroadcast(const std::string& from, const BroadcastFrame& bcast);
  void OnBroadcastAck(const std::string& from, const BroadcastAckFrame& ack);
  void OnForwardPub(const std::string& from, const ForwardPubFrame& fwd);
  void OnForwardReject(const ForwardRejectFrame& reject);
  void OnReplicatedNotice(const ReplicatedNoticeFrame& notice);
  void OnGossipAnnounce(const GossipAnnounceFrame& announce);
  void OnCacheSyncReq(const std::string& from, const CacheSyncReqFrame& req);
  void OnCacheSyncResp(const CacheSyncRespFrame& resp);

  // Elastic membership, rebalancing, hand-off (DESIGN.md §12).
  void JoinMembership();
  void RetryJoin();
  void RefreshMembershipFromStore();
  void OnMemberEvent(const std::string& memberId, const coord::WatchEvent& event);
  void ScheduleRebalance();
  void Rebalance();
  void StartHandoff(std::uint32_t partition, const std::string& target);
  void OnHandoffBegin(const std::string& from, const HandoffBeginFrame& begin);
  void OnHandoffAck(const HandoffAckFrame& ack);
  void AbortHandoff(std::uint64_t handoffId);
  void MaybeFinishLeave();
  [[nodiscard]] bool RefuseStaleEpoch(const std::string& senderId,
                                      std::uint32_t epoch);
  [[nodiscard]] std::uint32_t PartitionOfClient(const std::string& clientId) const {
    return Rebalancer::PartitionOf(clientId, cfg_.subscriberPartitions);
  }

  // Reliability machinery.
  void SetupWatches();
  void CheckFence();
  void Fence();
  void Unfence();
  void StartCacheReconstruction();
  void RecoverFromWal();
  void WalFlushTick();
  void DeliverToLocalSubscribers(const Message& msg);
  void DeliverInOrder(const std::string& topic);
  void StallDelivery(const std::string& topic);
  void AckContactPending(const PublicationId& pubId, bool ok);

  [[nodiscard]] std::uint32_t GroupOf(const std::string& topic) const noexcept {
    return TopicGroupOf(topic, cfg_.topicGroups);
  }
  [[nodiscard]] std::string GroupKey(std::uint32_t group) const {
    return "group/" + std::to_string(group);
  }
  [[nodiscard]] std::string EpochKey(std::uint32_t group) const {
    return "epoch/" + std::to_string(group);
  }

  ClusterConfig cfg_;
  ClusterEnv& env_;
  coord::CoordNode& coord_;
  std::vector<std::string> peers_;  // other servers' ids

  bool started_ = false;
  bool crashed_ = false;
  bool fenced_ = false;
  bool watchesInstalled_ = false;
  std::uint64_t fenceTimer_ = 0;

  core::SubscriptionRegistry registry_;
  core::Cache cache_;
  core::Sequencer sequencer_;

  std::set<ClientHandle> clients_;
  std::map<std::uint32_t, GossipEntryState> gossip_;
  std::set<std::uint32_t> myGroups_;
  std::set<std::uint32_t> electing_;  // takeover in flight
  std::map<std::uint32_t, std::deque<ParkedPublication>> parked_;
  std::map<PublicationId, PendingContact> pendingContact_;
  std::map<CoordAckKey, PendingCoord> pendingCoord_;
  std::set<std::uint32_t> syncing_;  // groups with cache sync outstanding
  /// In-order local fan-out: per topic, the last position handed to local
  /// subscribers. Live broadcasts advance it through the cache so a backfilled
  /// gap is delivered before anything sequenced after it.
  std::map<std::string, StreamPos> deliveryCursor_;
  std::map<std::string, std::uint64_t> gapStalled_;  // topic -> timeout timer
  std::function<void(const Message&)> deliveryHook_;

  // --- elastic membership state (all volatile; rebuilt on rejoin) -----------
  Quorum quorum_;
  std::vector<std::string> memberUniverse_;  // peers_ + self, the voting set
  std::uint32_t fenceEpoch_ = 0;             // my incarnation's epoch
  std::map<std::string, std::uint32_t> memberEpoch_;     // last announced epoch
  std::map<std::string, std::uint32_t> peerEpochFloor_;  // min accepted epoch
  std::map<ClientHandle, std::string> clientIds_;        // connection -> app id
  Assignment assignment_;
  std::uint64_t rebalanceTimer_ = 0;
  std::uint64_t joinTimer_ = 0;
  std::uint64_t nextHandoffId_ = 1;
  std::map<std::uint64_t, PendingHandoff> outHandoffs_;
  /// New-owner side: transferred resume cursors awaiting the redirected
  /// client's reconnect, keyed by application client id. Consumed per topic
  /// by the first subscribe without its own resume position.
  std::map<std::string, std::vector<std::pair<std::string, StreamPos>>>
      pendingAttach_;
  bool leaving_ = false;
  std::function<void()> leaveDone_;

  obs::ClusterMetrics cm_;
  obs::WalMetrics wm_;
  TimePoint fenceStart_ = -1;  // Now() at the last Fence(); -1 = not fenced

  // --- durable cache state (survives Crash() by design) ---------------------
  std::unique_ptr<wal::Log> wal_;  // nullptr when cfg_.wal.dir is empty
  std::uint64_t walFlushTimer_ = 0;
  wal::RecoveryStats lastRecovery_;
};

}  // namespace md::cluster
