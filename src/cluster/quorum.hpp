// Vote-counting quorum gate for elastic cluster membership (modeled on the
// Red Hat cluster suite's Cluster/Node shape: named nodes with vote weights,
// an explicit or majority-derived minQuorum, and a quorumed() verdict —
// see SNIPPETS.md and /root/related/Moaaz-Ali__resour, cman/daemon).
//
// The data-plane quorum is deliberately separate from MiniZK's Raft quorum:
// coordination liveness (HasQuorumContact) says "my coord replica can commit",
// while this gate says "a majority of *messaging* members is reachable from
// my vantage". ClusterNode ANDs the two before sequencing a publication, so a
// partitioned minority rejects publishes with a retryable status instead of
// split-braining (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace md::cluster {

/// Tracks the voting membership of the cluster and answers "do the members I
/// can currently see hold a quorum of votes?". Not thread-safe; owned and
/// driven by the single-threaded ClusterNode state machine.
class Quorum {
 public:
  Quorum() = default;
  /// `minQuorum` = 0 derives the classic majority floor(total/2) + 1 from the
  /// registered vote total; nonzero pins an explicit threshold (two-node
  /// clusters with a tie-breaker, qdisk-style setups).
  explicit Quorum(std::uint32_t minQuorum) : explicitMinQuorum_(minQuorum) {}

  /// Registers (or re-weights) a voting member. Members start offline; votes
  /// always count toward the total, reachable or not — quorum is measured
  /// against the provisioned universe, never against whoever answered last.
  void AddNode(const std::string& name, std::uint32_t votes = 1) {
    nodes_[name].votes = votes;
  }

  /// Removes a member from the universe entirely (administrative removal,
  /// not a failure — failures just go offline and keep denying their votes).
  void RemoveNode(const std::string& name) { nodes_.erase(name); }

  /// Marks a member reachable/unreachable from this node's vantage.
  void SetOnline(const std::string& name, bool online) {
    const auto it = nodes_.find(name);
    if (it != nodes_.end()) it->second.online = online;
  }

  [[nodiscard]] bool Contains(const std::string& name) const {
    return nodes_.contains(name);
  }
  [[nodiscard]] bool IsOnline(const std::string& name) const {
    const auto it = nodes_.find(name);
    return it != nodes_.end() && it->second.online;
  }

  [[nodiscard]] std::size_t NodeCount() const noexcept { return nodes_.size(); }

  [[nodiscard]] std::uint32_t TotalVotes() const noexcept {
    std::uint32_t total = 0;
    for (const auto& [name, node] : nodes_) total += node.votes;
    return total;
  }

  [[nodiscard]] std::uint32_t OnlineVotes() const noexcept {
    std::uint32_t online = 0;
    for (const auto& [name, node] : nodes_) {
      if (node.online) online += node.votes;
    }
    return online;
  }

  /// The vote threshold for quorum: the explicit override when configured,
  /// otherwise majority = floor(total/2) + 1. An even split is *not* quorate
  /// (2 of 4 votes < 3): exactly the cman rule that makes a symmetric
  /// partition fence both halves rather than neither.
  [[nodiscard]] std::uint32_t MinQuorum() const noexcept {
    if (explicitMinQuorum_ > 0) return explicitMinQuorum_;
    return TotalVotes() / 2 + 1;
  }

  /// True when the reachable members hold at least MinQuorum() votes. An
  /// empty universe is not quorate — a node that has not learned membership
  /// yet must not sequence.
  [[nodiscard]] bool Quorumed() const noexcept {
    if (nodes_.empty()) return false;
    return OnlineVotes() >= MinQuorum();
  }

 private:
  struct Node {
    std::uint32_t votes = 1;
    bool online = false;
  };
  std::map<std::string, Node> nodes_;
  std::uint32_t explicitMinQuorum_ = 0;
};

}  // namespace md::cluster
