// Real-network cluster host: runs one MigratoryData ClusterNode and its
// co-located MiniZK CoordNode over epoll TCP.
//
// The same deterministic state machines exercised by the simulation harness
// are wired here to real sockets:
//   - a client listener speaking the framed client protocol,
//   - a peer listener carrying md::Frame cluster traffic (HELLO-identified),
//   - a coord listener carrying MiniZK messages (coord/codec.hpp), preceded
//     by a varint node-id preamble.
//
// Everything — node logic, timers, connection management — runs on a single
// EpollLoop thread (the nodes are single-strand state machines); Start()
// spawns that thread and Stop() joins it. Outgoing peer/coord connections
// are (re)established on demand with a retry timer; when a peer link comes
// back, the host triggers the paper's incremental cache sync (§5.2.2).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <thread>

#include "cluster/node.hpp"
#include "coord/codec.hpp"
#include "coord/node.hpp"
#include "core/backpressure.hpp"
#include "proto/codec.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"
#include "verify/monitor.hpp"

namespace md::cluster {

struct TcpPeerAddress {
  std::string serverId;
  coord::NodeId nodeId = 0;
  std::string host = "127.0.0.1";
  std::uint16_t peerPort = 0;
  std::uint16_t coordPort = 0;
};

struct TcpHostConfig {
  std::string serverId;
  coord::NodeId nodeId = 1;       // 1-based, unique in the cluster
  std::uint16_t clientPort = 0;   // 0 = ephemeral
  std::uint16_t peerPort = 0;
  std::uint16_t coordPort = 0;
  std::vector<TcpPeerAddress> peers;  // the other cluster members
  ClusterConfig cluster;              // serverId is overwritten
  coord::CoordConfig coord;
  std::uint64_t seed = 1;
  Duration peerRetryInterval = 500 * kMillisecond;
  /// Slow-consumer policy for client connections. Peer/coord links keep the
  /// transport defaults (effectively unbounded): dropping replication traffic
  /// to a peer would violate the cluster's delivery guarantees — peers are
  /// governed by the backlog cap + cache sync instead.
  core::BackpressureConfig clientBackpressure;
  /// Embed a verify::Monitor observing the loop-thread client sends and
  /// send-queue depths (DESIGN.md §11); exports through the cluster registry.
  bool runtimeVerify = false;
  verify::MonitorConfig verifyConfig;
  /// Event-loop backend for the host's sockets. io_uring falls back to epoll
  /// (with a warning) when the running kernel lacks the required features.
  LoopKind eventLoop = LoopKind::kEpoll;
};

class TcpClusterHost {
 public:
  explicit TcpClusterHost(TcpHostConfig cfg);
  ~TcpClusterHost();

  TcpClusterHost(const TcpClusterHost&) = delete;
  TcpClusterHost& operator=(const TcpClusterHost&) = delete;

  /// Binds the three listeners and starts the loop thread + both nodes.
  Status Start();
  void Stop();

  [[nodiscard]] std::uint16_t ClientPort() const noexcept { return clientPort_; }
  [[nodiscard]] std::uint16_t PeerPort() const noexcept { return peerPort_; }
  [[nodiscard]] std::uint16_t CoordPort() const noexcept { return coordPort_; }
  [[nodiscard]] const std::string& serverId() const noexcept {
    return cfg_.serverId;
  }

  /// Runs `fn(node)` on the loop thread and waits for it (introspection).
  void WithNode(const std::function<void(ClusterNode&)>& fn);
  void WithCoord(const std::function<void(coord::CoordNode&)>& fn);

  /// The embedded runtime monitor; nullptr unless cfg.runtimeVerify.
  [[nodiscard]] verify::Monitor* monitor() noexcept { return monitor_.get(); }

 private:
  struct ClientConn {
    ConnectionPtr conn;
    ByteQueue in;
    // Backpressure state (loop-thread only).
    bool overSoft = false;
    bool evictTimerArmed = false;
    bool evicting = false;
  };

  struct PeerLink {
    ConnectionPtr conn;          // established link (either direction)
    bool connecting = false;
    std::deque<Bytes> backlog;   // frames awaiting connection (bounded)
  };

  struct CoordLink {
    ConnectionPtr conn;
    bool connecting = false;
    std::deque<Bytes> backlog;
  };

  class NodeEnv;
  class CoordEnv;

  // All private methods run on the loop thread.
  void OnClientAccept(ConnectionPtr conn);
  void OnPeerAccept(ConnectionPtr conn);
  void OnCoordAccept(ConnectionPtr conn);
  void AdoptPeerConnection(const std::string& serverId, ConnectionPtr conn);
  void EnsurePeerLink(const std::string& serverId);
  void EnsureCoordLink(coord::NodeId nodeId);
  void SendPeerFrame(const std::string& serverId, const Frame& frame);
  void SendCoordMsg(coord::NodeId to, const coord::CoordMsg& msg);
  void RetryLinks();
  /// Status-checked client write applying `clientBackpressure` (loop thread):
  /// soft-accepted kCapacity arms the eviction grace timer, hard-rejected
  /// kCapacity (frame lost => stream gap) evicts immediately. When `shared`
  /// is non-null the bytes go out zero-copy (one encode shared across the
  /// fan-out); `wire` must view the same buffer either way.
  bool SendClientWire(ClientHandle handle,
                      const std::shared_ptr<ClientConn>& client, BytesView wire,
                      const std::shared_ptr<const Bytes>* shared = nullptr);
  void EvictSlowClient(ClientHandle handle,
                       const std::shared_ptr<ClientConn>& client);
  [[nodiscard]] const TcpPeerAddress* PeerById(const std::string& serverId) const;
  [[nodiscard]] const TcpPeerAddress* PeerByNode(coord::NodeId nodeId) const;

  TcpHostConfig cfg_;
  obs::SlowConsumerMetrics scm_;
  std::unique_ptr<verify::Monitor> monitor_;
  std::unique_ptr<NetLoop> loop_;
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::unique_ptr<NodeEnv> nodeEnv_;
  std::unique_ptr<CoordEnv> coordEnv_;
  std::unique_ptr<coord::CoordNode> coordNode_;
  std::unique_ptr<ClusterNode> node_;

  ListenerPtr clientListener_;
  ListenerPtr peerListener_;
  ListenerPtr coordListener_;
  std::uint16_t clientPort_ = 0;
  std::uint16_t peerPort_ = 0;
  std::uint16_t coordPort_ = 0;

  ClientHandle nextHandle_ = 1;
  std::map<ClientHandle, std::shared_ptr<ClientConn>> clients_;
  std::map<std::string, PeerLink> peerLinks_;
  std::map<coord::NodeId, CoordLink> coordLinks_;
};

}  // namespace md::cluster
