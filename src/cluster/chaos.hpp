// Deterministic chaos harness (FoundationDB-style simulation testing).
//
// From a single seed, FaultPlan::Generate derives a randomized schedule of
// serialized fault windows — server crashes (with restart), server partitions
// (with heal), inter-server link flaps, and slow subscribers (a client whose
// reads stall, backing up the server's send queue) — which ChaosDriver
// applies to a SimCluster while real client-library publishers and
// subscribers run traffic through it. An InvariantChecker observes every
// client's post-filter delivery stream and checks the paper's §5 guarantees:
//
//   [order]     per (subscriber, topic): strictly increasing (epoch, seq),
//   [dup]       per (subscriber, topic): no publication delivered twice,
//   [agreement] one publication per (topic, position) across all clients
//               (two subscribers never see different data at one position),
//   [loss]      every acked publication reaches every subscriber of its
//               topic (all runs fit inside the cache retention window),
//   [fence]     a server partitioned from its peers long enough to detect
//               quorum loss has self-fenced and closed its local clients,
//   [cache]     after heal + quiesce, every server's cache holds every
//               acked publication (replication + reconstruction, §5.2.2),
//   [backpressure] no client connection's pending bytes ever exceed the hard
//               watermark (sampled every 100ms of virtual time) — a stalled
//               subscriber is conflated/dropped/evicted, never buffered
//               without bound,
//   [quorum]    a minority-partitioned server does not claim write quorum at
//               the end of its window (elastic mode: its publishes bounce
//               with the retryable kNoQuorum status, DESIGN.md §12),
//
// Elastic mode (ChaosOptions::elastic) adds membership churn to the fault
// vocabulary — join:node@t (scale-out under load), leave:node@t (graceful
// scale-in with a hand-off wave) and part:minority@t+dur (quorum gating) —
// and, when a Monitor rides along, feeds every HANDOFF redirect into its
// [rebalance] continuity rule via OnHandoffResume.
//
// Durability mode (ChaosOptions::durability) puts a fault-injectable WAL
// (fsync=always) under every server's cache and extends the vocabulary with
// crash:all@t+dur (cluster-wide kill -9; at restart the union of the
// WAL-recovered caches must cover every publication acked before the outage
// — the [durability] invariant), flip:v@t / torn:v@t (latent bit flip /
// torn-tail damage a later crash must recover past) and full:v@t+dur
// (ENOSPC windows; the in-memory cache keeps serving and peers re-replicate
// after the next crash). See DESIGN.md §13.
//
// The fault windows are serialized (at most one server-level fault active at
// a time) to stay inside the paper's single-fault model; concurrent faults
// can legitimately lose messages. Everything — fault schedule, client
// randomness, link-level duplication — derives from the seed, so a run
// replays byte-identically: ChaosReport::trace is comparable across runs and
// any violation is reproducible from its `--seed N --events ...` line alone.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/client.hpp"
#include "cluster/sim_cluster.hpp"
#include "verify/invariants.hpp"
#include "verify/monitor.hpp"

namespace md::cluster {

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

struct FaultEvent {
  enum class Kind : std::uint8_t { kCrash, kPartition, kLinkFlap,
                                   kSlowSubscriber,
                                   // Elastic-membership events (DESIGN.md §12)
                                   kJoin, kLeave, kMinorityPartition,
                                   // Durability events (DESIGN.md §13):
                                   // cluster-wide outage + WAL disk faults
                                   kCrashAll, kWalBitFlip, kWalTornTail,
                                   kDiskFull };
  Kind kind = Kind::kCrash;
  /// Server index — except kSlowSubscriber, where it indexes the subscriber
  /// whose reads stall for the window, kMinorityPartition, where it is
  /// the SIZE of the partitioned minority (servers [0, victim)), and
  /// kCrashAll, where it is unused (every member crashes).
  std::size_t victim = 0;
  std::size_t peer = 0;     // second endpoint, kLinkFlap only
  Duration at = 0;          // offset from chaos start (ms granularity)
  Duration duration = 0;    // fault window; then restart / heal / resume
                            // (kJoin/kLeave/kWalBitFlip/kWalTornTail are
                            // one-way: duration stays 0)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

inline const char* FaultKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kPartition: return "part";
    case FaultEvent::Kind::kLinkFlap: return "flap";
    case FaultEvent::Kind::kSlowSubscriber: return "slow";
    case FaultEvent::Kind::kJoin: return "join";
    case FaultEvent::Kind::kLeave: return "leave";
    case FaultEvent::Kind::kMinorityPartition: return "part";
    case FaultEvent::Kind::kCrashAll: return "crash";
    case FaultEvent::Kind::kWalBitFlip: return "flip";
    case FaultEvent::Kind::kWalTornTail: return "torn";
    case FaultEvent::Kind::kDiskFull: return "full";
  }
  return "?";
}

struct FaultPlan {
  std::uint64_t seed = 0;
  std::size_t servers = 3;
  std::vector<FaultEvent> events;

  /// Randomized serialized fault windows. Partition windows are long enough
  /// for quorum-loss detection (so [fence] can be asserted); gaps between
  /// windows leave room for cache reconstruction, keeping the schedule
  /// inside the single-fault model. All times have millisecond granularity
  /// so ToString()/Parse() round-trip exactly.
  static FaultPlan Generate(std::uint64_t seed, std::size_t servers,
                            std::size_t minEvents,
                            std::size_t subscribers = 3) {
    FaultPlan plan;
    plan.seed = seed;
    plan.servers = servers;
    Rng rng(seed ^ 0x5DEECE66DULL);
    const std::size_t count = minEvents + rng.NextBelow(3);
    std::int64_t atMs = 1000 + static_cast<std::int64_t>(rng.NextBelow(1000));
    for (std::size_t i = 0; i < count; ++i) {
      FaultEvent ev;
      const std::uint64_t roll = rng.NextBelow(10);
      std::int64_t durMs = 0;
      if (roll < 3) {
        ev.kind = FaultEvent::Kind::kCrash;
        durMs = 2000 + static_cast<std::int64_t>(rng.NextBelow(2500));
      } else if (roll < 6 || servers < 2) {
        ev.kind = FaultEvent::Kind::kPartition;
        durMs = 5000 + static_cast<std::int64_t>(rng.NextBelow(2500));
      } else if (roll < 8 || subscribers == 0) {
        ev.kind = FaultEvent::Kind::kLinkFlap;
        durMs = 1000 + static_cast<std::int64_t>(rng.NextBelow(2000));
      } else {
        // Long enough to overrun the soft watermark + eviction grace, so the
        // overflow policy (not luck) is what bounds the send queue.
        ev.kind = FaultEvent::Kind::kSlowSubscriber;
        durMs = 4000 + static_cast<std::int64_t>(rng.NextBelow(4000));
      }
      ev.victim = ev.kind == FaultEvent::Kind::kSlowSubscriber
                      ? rng.NextBelow(subscribers)
                      : rng.NextBelow(servers);
      if (ev.kind == FaultEvent::Kind::kLinkFlap) {
        ev.peer = (ev.victim + 1 + rng.NextBelow(servers - 1)) % servers;
      }
      ev.at = atMs * kMillisecond;
      ev.duration = durMs * kMillisecond;
      plan.events.push_back(ev);
      atMs += durMs + 5000 + static_cast<std::int64_t>(rng.NextBelow(3000));
    }
    return plan;
  }

  /// Size of the strict minority cut by a kMinorityPartition event: always
  /// below half, and at least one.
  [[nodiscard]] static std::size_t MinoritySize(std::size_t servers) {
    return std::max<std::size_t>(1, (servers - 1) / 2);
  }

  /// Elastic-membership schedule: the provisioned-but-idle last server joins
  /// under load, a strict minority is partitioned long enough to observe
  /// quorum gating and fencing, and a random member (possibly the one that
  /// just joined) leaves gracefully at the end. Randomized flap / slow
  /// windows ride between — but no crashes: a crash stacked on the leave
  /// could push the live member count below the provisioned-universe quorum
  /// for the rest of the run. Windows are serialized like Generate(), and
  /// Generate() itself is untouched so legacy seeds replay byte-identically.
  static FaultPlan GenerateElastic(std::uint64_t seed, std::size_t servers,
                                   std::size_t minEvents,
                                   std::size_t subscribers = 3) {
    FaultPlan plan;
    plan.seed = seed;
    plan.servers = servers;
    Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);  // distinct stream from Generate()
    std::int64_t atMs = 1500 + static_cast<std::int64_t>(rng.NextBelow(1000));
    const auto push = [&plan, &atMs, &rng](FaultEvent ev, std::int64_t durMs) {
      ev.at = atMs * kMillisecond;
      ev.duration = durMs * kMillisecond;
      plan.events.push_back(ev);
      atMs += durMs + 5000 + static_cast<std::int64_t>(rng.NextBelow(3000));
    };

    FaultEvent join;
    join.kind = FaultEvent::Kind::kJoin;
    join.victim = servers - 1;
    push(join, 0);

    std::size_t fillers = (minEvents > 3 ? minEvents - 3 : 0) + rng.NextBelow(2);
    const std::size_t minorityAfter = rng.NextBelow(fillers + 1);
    const auto pushMinority = [&] {
      FaultEvent part;
      part.kind = FaultEvent::Kind::kMinorityPartition;
      part.victim = MinoritySize(servers);
      // Past ChaosDriver::kFenceObservable, so the window asserts both the
      // [fence] and [quorum] invariants on every minority member.
      push(part, 5500 + static_cast<std::int64_t>(rng.NextBelow(2000)));
    };
    for (std::size_t i = 0; i < fillers; ++i) {
      if (i == minorityAfter) pushMinority();
      FaultEvent ev;
      if (subscribers > 0 && rng.NextBelow(2) == 0) {
        ev.kind = FaultEvent::Kind::kSlowSubscriber;
        ev.victim = rng.NextBelow(subscribers);
        push(ev, 4000 + static_cast<std::int64_t>(rng.NextBelow(3000)));
      } else {
        ev.kind = FaultEvent::Kind::kLinkFlap;
        ev.victim = rng.NextBelow(servers);
        ev.peer = (ev.victim + 1 + rng.NextBelow(servers - 1)) % servers;
        push(ev, 1000 + static_cast<std::int64_t>(rng.NextBelow(2000)));
      }
    }
    if (minorityAfter >= fillers) pushMinority();

    FaultEvent leave;
    leave.kind = FaultEvent::Kind::kLeave;
    leave.victim = rng.NextBelow(servers);
    push(leave, 0);
    return plan;
  }

  /// Durability schedule (requires ChaosOptions::durability, so every server
  /// runs a fault-injectable WAL under its cache). Two per-seed modes:
  ///
  ///   mode A (~40%): one cluster-wide kill -9 (crash:all) somewhere in a
  ///   run of single crashes and flaps — NO disk faults, so the driver can
  ///   assert the strict union invariant: with fsync=always, the union of
  ///   the WAL-recovered caches right after restart covers every publication
  ///   acked before the outage (no peer had time to backfill anything).
  ///
  ///   mode B (~60%): latent disk damage exposed by a crash — a bit flip or
  ///   a torn tail lands on a victim's WAL, then that same victim is killed
  ///   and must recover past the damage (skip/truncate, never crash, then
  ///   refill the holes from peers); ENOSPC windows and flaps ride along.
  ///   No crash:all here: damaged disks can legitimately lose the only
  ///   on-disk copy of an acked record, so only the end-of-run [cache]
  ///   invariant (after peer backfill) is sound, not the union-at-restart.
  ///
  /// Windows are serialized like Generate(); no membership churn.
  static FaultPlan GenerateDurability(std::uint64_t seed, std::size_t servers,
                                      std::size_t minEvents,
                                      std::size_t subscribers = 3) {
    FaultPlan plan;
    plan.seed = seed;
    plan.servers = servers;
    Rng rng(seed ^ 0xD0BEFA17AB1E5ULL);  // distinct stream from Generate()
    std::int64_t atMs = 1000 + static_cast<std::int64_t>(rng.NextBelow(1000));
    const auto push = [&plan, &atMs, &rng](FaultEvent ev, std::int64_t durMs) {
      ev.at = atMs * kMillisecond;
      ev.duration = durMs * kMillisecond;
      plan.events.push_back(ev);
      atMs += durMs + 5000 + static_cast<std::int64_t>(rng.NextBelow(3000));
    };
    const auto pushFlap = [&] {
      FaultEvent ev;
      ev.kind = FaultEvent::Kind::kLinkFlap;
      ev.victim = rng.NextBelow(servers);
      ev.peer = (ev.victim + 1 + rng.NextBelow(servers - 1)) % servers;
      push(ev, 1000 + static_cast<std::int64_t>(rng.NextBelow(2000)));
    };
    const std::size_t count = minEvents + rng.NextBelow(3);
    if (rng.NextBelow(10) < 4 || servers < 2) {  // --- mode A ---
      const std::size_t outageAfter = rng.NextBelow(count);
      for (std::size_t i = 0; i < count; ++i) {
        if (i == outageAfter) {
          FaultEvent outage;
          outage.kind = FaultEvent::Kind::kCrashAll;
          push(outage, 2500 + static_cast<std::int64_t>(rng.NextBelow(2000)));
        }
        const std::uint64_t roll = rng.NextBelow(10);
        if (roll < 5 || servers < 2) {
          FaultEvent ev;
          ev.kind = FaultEvent::Kind::kCrash;
          ev.victim = rng.NextBelow(servers);
          push(ev, 2000 + static_cast<std::int64_t>(rng.NextBelow(2500)));
        } else if (roll < 8 || subscribers == 0) {
          pushFlap();
        } else {
          FaultEvent ev;
          ev.kind = FaultEvent::Kind::kSlowSubscriber;
          ev.victim = rng.NextBelow(subscribers);
          push(ev, 4000 + static_cast<std::int64_t>(rng.NextBelow(4000)));
        }
      }
    } else {  // --- mode B ---
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t roll = rng.NextBelow(10);
        if (roll < 6) {
          // Latent damage, then kill the same victim so recovery must walk
          // past it. The damage event is one-way; the crash that exposes it
          // lands in the next serialized window.
          FaultEvent hurt;
          hurt.kind = roll < 3 ? FaultEvent::Kind::kWalBitFlip
                               : FaultEvent::Kind::kWalTornTail;
          hurt.victim = rng.NextBelow(servers);
          push(hurt, 0);
          FaultEvent ev;
          ev.kind = FaultEvent::Kind::kCrash;
          ev.victim = hurt.victim;
          push(ev, 2000 + static_cast<std::int64_t>(rng.NextBelow(2500)));
        } else if (roll < 8) {
          FaultEvent ev;
          ev.kind = FaultEvent::Kind::kDiskFull;
          ev.victim = rng.NextBelow(servers);
          push(ev, 3000 + static_cast<std::int64_t>(rng.NextBelow(2000)));
        } else {
          pushFlap();
        }
      }
    }
    return plan;
  }

  /// Fault window horizon: when the last recovery action fires.
  [[nodiscard]] Duration Horizon() const {
    Duration h = 0;
    for (const auto& ev : events) h = std::max(h, ev.at + ev.duration);
    return h;
  }

  /// True for events that are instantaneous transitions (no recovery half,
  /// duration pinned to 0).
  [[nodiscard]] static bool IsOneWay(FaultEvent::Kind kind) {
    return kind == FaultEvent::Kind::kJoin ||
           kind == FaultEvent::Kind::kLeave ||
           kind == FaultEvent::Kind::kWalBitFlip ||
           kind == FaultEvent::Kind::kWalTornTail;
  }

  /// Compact repro form: "crash:1@3200+2500;flap:0-2@9900+1500;..."
  /// (victim[-peer]@startMs+durationMs). Elastic events render as
  /// "join:3@1500" / "leave:0@44200" (one-way, no duration) and
  /// "part:minority@9900+6000"; durability events as "crash:all@5000+3000",
  /// "flip:1@2000" / "torn:0@2000" (one-way latent damage) and
  /// "full:2@8000+3000".
  [[nodiscard]] std::string ToString() const {
    std::string out;
    for (const auto& ev : events) {
      if (!out.empty()) out += ';';
      out += FaultKindName(ev.kind);
      if (ev.kind == FaultEvent::Kind::kMinorityPartition) {
        out += ":minority";
      } else if (ev.kind == FaultEvent::Kind::kCrashAll) {
        out += ":all";
      } else {
        out += ':' + std::to_string(ev.victim);
      }
      if (ev.kind == FaultEvent::Kind::kLinkFlap) {
        out += '-' + std::to_string(ev.peer);
      }
      out += '@' + std::to_string(ev.at / kMillisecond);
      if (!IsOneWay(ev.kind)) {
        out += '+' + std::to_string(ev.duration / kMillisecond);
      }
    }
    return out;
  }

  /// Inverse of ToString(). Returns nullopt on malformed input. `subscribers`
  /// bounds the victim of "slow" events (a subscriber index, not a server).
  static std::optional<FaultPlan> Parse(const std::string& text,
                                        std::size_t servers = 3,
                                        std::size_t subscribers = 3) {
    FaultPlan plan;
    plan.servers = servers;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find(';', start);
      if (end == std::string::npos) end = text.size();
      const std::string item = text.substr(start, end - start);
      start = end + 1;
      if (item.empty()) continue;

      const auto colon = item.find(':');
      const auto atPos = item.find('@');
      const auto plus =
          atPos == std::string::npos ? std::string::npos : item.find('+', atPos);
      if (colon == std::string::npos || atPos == std::string::npos ||
          colon > atPos) {
        return std::nullopt;
      }
      FaultEvent ev;
      const std::string kind = item.substr(0, colon);
      if (kind == "crash") {
        ev.kind = FaultEvent::Kind::kCrash;
      } else if (kind == "part" || kind == "partition") {
        ev.kind = FaultEvent::Kind::kPartition;
      } else if (kind == "flap") {
        ev.kind = FaultEvent::Kind::kLinkFlap;
      } else if (kind == "slow") {
        ev.kind = FaultEvent::Kind::kSlowSubscriber;
      } else if (kind == "join") {
        ev.kind = FaultEvent::Kind::kJoin;
      } else if (kind == "leave") {
        ev.kind = FaultEvent::Kind::kLeave;
      } else if (kind == "flip") {
        ev.kind = FaultEvent::Kind::kWalBitFlip;
      } else if (kind == "torn") {
        ev.kind = FaultEvent::Kind::kWalTornTail;
      } else if (kind == "full") {
        ev.kind = FaultEvent::Kind::kDiskFull;
      } else {
        return std::nullopt;
      }
      const bool oneWay = IsOneWay(ev.kind);
      // One-way transitions (join/leave/flip/torn): "+duration" is optional
      // (and ignored); every windowed fault requires it.
      if (plus == std::string::npos && !oneWay) return std::nullopt;
      try {
        std::string who = item.substr(colon + 1, atPos - colon - 1);
        if (who == "minority" && ev.kind == FaultEvent::Kind::kPartition) {
          ev.kind = FaultEvent::Kind::kMinorityPartition;
          ev.victim = MinoritySize(servers);
        } else if (who == "all" && ev.kind == FaultEvent::Kind::kCrash) {
          ev.kind = FaultEvent::Kind::kCrashAll;
          ev.victim = 0;
        } else {
          const auto dash = who.find('-');
          if (dash != std::string::npos) {
            ev.peer = std::stoul(who.substr(dash + 1));
            who = who.substr(0, dash);
          } else if (ev.kind == FaultEvent::Kind::kLinkFlap) {
            return std::nullopt;
          }
          ev.victim = std::stoul(who);
        }
        if (plus == std::string::npos) {
          ev.at = std::stoll(item.substr(atPos + 1)) * kMillisecond;
        } else {
          ev.at =
              std::stoll(item.substr(atPos + 1, plus - atPos - 1)) * kMillisecond;
          ev.duration = std::stoll(item.substr(plus + 1)) * kMillisecond;
        }
        if (oneWay) ev.duration = 0;
      } catch (...) {
        return std::nullopt;
      }
      const std::size_t victimBound =
          ev.kind == FaultEvent::Kind::kSlowSubscriber ? subscribers : servers;
      if (ev.victim >= victimBound &&
          ev.kind != FaultEvent::Kind::kMinorityPartition &&
          ev.kind != FaultEvent::Kind::kCrashAll) {
        return std::nullopt;
      }
      if (ev.peer >= servers || ev.at < 0 || ev.duration < 0 ||
          (ev.duration == 0 && !oneWay)) {
        return std::nullopt;
      }
      plan.events.push_back(ev);
    }
    return plan;
  }
};

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

class InvariantChecker {
 public:
  /// Declare that `subscriber` subscribes to `topic` (before traffic starts);
  /// the [loss] check only covers declared subscriptions.
  void AddSubscription(const std::string& subscriber, const std::string& topic) {
    topicSubscribers_[topic].insert(subscriber);
  }

  /// Record a DELIVER observed at `subscriber` (duplicate = suppressed by the
  /// client-side filter; only post-filter deliveries enter the streams).
  void OnDelivery(const std::string& subscriber, const Message& m,
                  bool duplicate) {
    if (duplicate) {
      ++duplicatesFiltered_;
      return;
    }
    ++deliveries_;
    streams_[{subscriber, m.topic}].push_back({PosOf(m), m.pubId, m.payload});
  }

  /// Record a successful publish acknowledgement.
  void OnAck(const std::string& topic, const PublicationId& id) {
    ++acked_;
    ackedByTopic_[topic].push_back(id);
  }

  /// The acked set as of "now" — the driver captures it at the instant a
  /// cluster-wide crash fires, so the durability audit covers exactly the
  /// publications whose acks predate the outage.
  [[nodiscard]] std::map<std::string, std::vector<PublicationId>> AckedSnapshot()
      const {
    return ackedByTopic_;
  }

  /// Post-recovery durability audit: every publication of `topic` acked at
  /// crash time must be present in `recovered` (the union of the WAL-rebuilt
  /// caches, before any peer backfill). Returns the missing count so the
  /// driver can also feed the runtime monitor's [durability] rule.
  std::size_t OnDurabilityObservation(
      const std::string& context, const std::string& topic,
      const std::vector<PublicationId>& ackedAtCrash,
      const std::set<PublicationId>& recovered) {
    std::size_t missing = 0;
    for (const auto& id : ackedAtCrash) {
      if (!recovered.contains(id)) {
        ++missing;
        violations_.push_back("[durability] " + context +
                              ": acked publication " + IdStr(id) + " on " +
                              topic + " missing after recovery");
      }
    }
    return missing;
  }

  /// Fencing state of a partitioned server, sampled at the end of a
  /// partition window that exceeded the detection threshold.
  void OnPartitionObservation(std::size_t server, bool fenced,
                              std::size_t localClients) {
    partitionObs_.push_back({server, fenced, localClients});
  }

  /// Write-quorum verdict of a minority-partitioned server, sampled at the
  /// end of a partition window that exceeded the detection threshold: the
  /// quorum gate must deny, so publishes bounce with the retryable kNoQuorum
  /// status instead of split-braining (DESIGN.md §12).
  void OnQuorumObservation(std::size_t server, bool hasWriteQuorum) {
    if (hasWriteQuorum) {
      violations_.push_back("[quorum] minority server " +
                            std::to_string(server) +
                            " still claims write quorum at end of partition "
                            "window");
    }
  }

  /// Periodic sample of the largest client send-queue depth on one server.
  /// The transport's hard watermark is an all-or-nothing bound: a stalled
  /// subscriber may pin its queue *at* the mark, never past it.
  void OnPendingSample(std::size_t server, std::size_t pendingBytes,
                       std::size_t hardWatermark) {
    maxPendingObserved_ = std::max(maxPendingObserved_, pendingBytes);
    if (verify::ExceedsHardWatermark(pendingBytes, hardWatermark)) {
      violations_.push_back(verify::FormatBackpressureViolation(
          "server " + std::to_string(server), pendingBytes, hardWatermark));
    }
  }

  [[nodiscard]] std::size_t maxPendingObserved() const noexcept {
    return maxPendingObserved_;
  }

  /// Post-quiesce fencing state of every server (all faults healed).
  void OnFinalFenceState(std::size_t server, bool fenced) {
    if (fenced) {
      violations_.push_back("[fence] server " + std::to_string(server) +
                            " still fenced after all faults healed");
    }
  }

  /// Post-quiesce cache contents of one server for one topic.
  void OnFinalCache(std::size_t server, const std::string& topic,
                    std::set<PublicationId> ids) {
    finalCaches_[{server, topic}] = std::move(ids);
    haveFinalCaches_ = true;
  }

  /// Cluster-wide counter totals read from the metrics registry after
  /// quiesce, plus the fault-schedule context needed to bound them.
  struct MetricsTotals {
    std::uint64_t published = 0;   // md_cluster_published_total, summed
    std::uint64_t delivered = 0;   // md_cluster_delivered_total, summed
    std::uint64_t backfilled = 0;  // md_cluster_backfilled_total, summed
    std::uint64_t fences = 0;      // md_cluster_fences_total, summed
    std::uint64_t unfences = 0;    // md_cluster_unfences_total, summed
    std::uint64_t crashFaults = 0;    // crash windows in the fault plan
    std::size_t stillFenced = 0;      // servers fenced at observation time
    std::int64_t failoverMaxNs = 0;   // longest recorded fence→unfence span
    Duration failoverBound = 0;       // ceiling allowed for failoverMaxNs
    std::int64_t replicationPendingSum = 0;  // gauge total, all servers
  };

  /// Couples the registry's view of the run to the checker's own event
  /// counts — a metric that drifts from ground truth is a bug even when
  /// delivery invariants hold.
  void OnMetricsTotals(const MetricsTotals& totals) {
    metrics_ = totals;
  }

  [[nodiscard]] std::uint64_t deliveries() const noexcept { return deliveries_; }
  [[nodiscard]] std::uint64_t duplicatesFiltered() const noexcept {
    return duplicatesFiltered_;
  }
  [[nodiscard]] std::uint64_t acked() const noexcept { return acked_; }

  /// Runs every check; an empty result means all invariants held.
  [[nodiscard]] std::vector<std::string> Check() const {
    std::vector<std::string> out = violations_;

    // [order] + [dup] per (subscriber, topic) stream.
    std::map<std::pair<std::string, std::string>, std::set<PublicationId>>
        streamIds;
    for (const auto& [key, stream] : streams_) {
      auto& ids = streamIds[key];
      for (std::size_t i = 0; i < stream.size(); ++i) {
        // The rules themselves live in verify/invariants.hpp — the production
        // Monitor applies the same ones online, so a verdict here is a
        // verdict there (tests/verify/equivalence_test.cpp holds them to it).
        if (i > 0 && verify::ViolatesOrder(stream[i - 1].pos, stream[i].pos)) {
          out.push_back(verify::FormatOrderViolation(
              key.first + "/" + key.second, stream[i - 1].pos, stream[i].pos));
        }
        if (!ids.insert(stream[i].id).second) {
          out.push_back(verify::FormatDuplicateViolation(
              key.first + "/" + key.second, stream[i].id));
        }
      }
    }

    // [agreement] one publication (and payload) per (topic, position).
    std::map<std::pair<std::string, StreamPos>,
             std::pair<PublicationId, Bytes>> byPos;
    for (const auto& [key, stream] : streams_) {
      for (const auto& d : stream) {
        const auto [it, inserted] =
            byPos.try_emplace({key.second, d.pos}, d.id, d.payload);
        if (!inserted &&
            (it->second.first != d.id || it->second.second != d.payload)) {
          out.push_back("[agreement] " + key.second + " pos " + PosStr(d.pos) +
                        ": " + IdStr(it->second.first) + " vs " + IdStr(d.id));
        }
      }
    }

    // [loss] every acked publication reached every declared subscriber.
    for (const auto& [topic, ids] : ackedByTopic_) {
      const auto subsIt = topicSubscribers_.find(topic);
      if (subsIt == topicSubscribers_.end()) continue;
      for (const auto& sub : subsIt->second) {
        const auto streamIt = streamIds.find({sub, topic});
        for (const auto& id : ids) {
          if (streamIt == streamIds.end() || !streamIt->second.contains(id)) {
            out.push_back("[loss] acked publication " + IdStr(id) + " on " +
                          topic + " never delivered to " + sub);
          }
        }
      }
    }

    // [fence] partitioned minority servers self-fenced and shed clients.
    for (const auto& obs : partitionObs_) {
      if (!obs.fenced) {
        out.push_back("[fence] server " + std::to_string(obs.server) +
                      " not fenced at end of partition window");
      } else if (obs.localClients != 0) {
        out.push_back("[fence] server " + std::to_string(obs.server) +
                      " fenced but kept " + std::to_string(obs.localClients) +
                      " local clients");
      }
    }

    // [metrics] registry totals agree with the checker's ground truth.
    if (metrics_) {
      const MetricsTotals& t = *metrics_;
      // Every client-side receipt (post-filter delivery or filtered
      // duplicate) left some server as a counted delivery.
      if (t.delivered < deliveries_ + duplicatesFiltered_) {
        out.push_back("[metrics] cluster delivered counter " +
                      std::to_string(t.delivered) +
                      " below client-observed receipts " +
                      std::to_string(deliveries_ + duplicatesFiltered_));
      }
      // An ack is only sent after the publication was sequenced, which is
      // exactly when the published counter ticks.
      if (t.published < acked_) {
        out.push_back("[metrics] cluster published counter " +
                      std::to_string(t.published) + " below acked count " +
                      std::to_string(acked_));
      }
      // Every partition window observed as fenced incremented the counter.
      std::uint64_t observedFenced = 0;
      for (const auto& obs : partitionObs_) {
        if (obs.fenced) ++observedFenced;
      }
      if (t.fences < observedFenced) {
        out.push_back("[metrics] fence counter " + std::to_string(t.fences) +
                      " below observed fenced partitions " +
                      std::to_string(observedFenced));
      }
      // A fence span ends by exactly one of: unfence, crash (volatile state
      // lost) or still being fenced at observation time.
      if (t.unfences > t.fences) {
        out.push_back("[metrics] unfence counter " +
                      std::to_string(t.unfences) + " exceeds fence counter " +
                      std::to_string(t.fences));
      }
      if (t.fences > t.unfences + t.crashFaults + t.stillFenced) {
        out.push_back("[metrics] fence counter " + std::to_string(t.fences) +
                      " exceeds unfences+crashes+stillFenced " +
                      std::to_string(t.unfences + t.crashFaults +
                                     t.stillFenced));
      }
      // A failover span tracks its fault window: detection plus recovery
      // slack on top of the longest scheduled fault.
      if (t.failoverBound > 0 && t.failoverMaxNs > t.failoverBound) {
        out.push_back("[metrics] failover span " +
                      std::to_string(t.failoverMaxNs) + "ns exceeds bound " +
                      std::to_string(t.failoverBound) + "ns");
      }
      // The pending-replication gauge is balanced: every increment has a
      // matching decrement (ack, crash drain or fence drain).
      if (t.replicationPendingSum < 0) {
        out.push_back("[metrics] replication-pending gauge is negative: " +
                      std::to_string(t.replicationPendingSum));
      }
    }

    // [cache] every acked publication replicated into every final cache.
    if (haveFinalCaches_) {
      for (const auto& [key, ids] : finalCaches_) {
        const auto ackIt = ackedByTopic_.find(key.second);
        if (ackIt == ackedByTopic_.end()) continue;
        for (const auto& id : ackIt->second) {
          if (!ids.contains(id)) {
            out.push_back("[cache] server " + std::to_string(key.first) +
                          " missing acked publication " + IdStr(id) + " on " +
                          key.second);
          }
        }
      }
    }
    return out;
  }

 private:
  struct Delivery {
    StreamPos pos;
    PublicationId id;
    Bytes payload;
  };
  struct PartitionObs {
    std::size_t server = 0;
    bool fenced = false;
    std::size_t localClients = 0;
  };

  static std::string PosStr(StreamPos pos) { return verify::FormatPos(pos); }
  static std::string IdStr(const PublicationId& id) {
    return verify::FormatPubId(id);
  }

  std::map<std::pair<std::string, std::string>, std::vector<Delivery>> streams_;
  std::map<std::string, std::set<std::string>> topicSubscribers_;
  std::map<std::string, std::vector<PublicationId>> ackedByTopic_;
  std::vector<PartitionObs> partitionObs_;
  std::map<std::pair<std::size_t, std::string>, std::set<PublicationId>>
      finalCaches_;
  bool haveFinalCaches_ = false;
  std::optional<MetricsTotals> metrics_;
  std::vector<std::string> violations_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t duplicatesFiltered_ = 0;
  std::uint64_t acked_ = 0;
  std::size_t maxPendingObserved_ = 0;
};

// ---------------------------------------------------------------------------
// Chaos driver
// ---------------------------------------------------------------------------

struct ChaosOptions {
  std::uint64_t seed = 1;
  std::size_t servers = 3;
  std::size_t subscribers = 3;
  std::size_t publishers = 2;
  std::size_t topics = 2;
  std::size_t publicationsPerPublisher = 24;
  /// 0 = auto: spread the publications across the fault horizon.
  Duration publishInterval = 0;
  std::size_t minFaultEvents = 5;
  /// Elastic-membership mode: nodes run with live rebalancing + quorum
  /// gating, generated plans come from FaultPlan::GenerateElastic (join /
  /// graceful-leave / minority-partition churn), servers with a join event
  /// start deferred, and the final fence/cache sweep covers only the servers
  /// that are still members when the run ends.
  bool elastic = false;
  /// Durability mode: every server runs a fault-injectable WAL (fsync=always)
  /// under its cache, generated plans come from FaultPlan::GenerateDurability
  /// (cluster-wide kill -9 / WAL bit flips / torn tails / ENOSPC windows),
  /// and a cluster-wide crash asserts the [durability] union invariant at
  /// the restart instant. Mutually exclusive with `elastic`.
  bool durability = false;
  /// Message-level duplication on inter-server links (client dedup must
  /// absorb the resulting re-deliveries / re-sequencings).
  double peerDuplicateProb = 0.02;
  Duration quiesce = 12 * kSecond;
  bool checkCaches = true;
  /// Explicit schedule (repro / minimization); overrides generation.
  std::optional<FaultPlan> plan;
  /// Client-connection watermarks for the simulated servers. Chaos frames are
  /// tiny (~60 wire bytes), so the marks sit far below production defaults:
  /// a paused subscriber crosses soft within a few publications and the run
  /// actually exercises grace, eviction and reconnect-backfill. The grace
  /// (500ms) comfortably covers a healthy resume-backfill burst at the sim's
  /// 2ms client RTT.
  core::BackpressureConfig clientBackpressure{
      /*softWatermark=*/384, /*hardWatermark=*/16 * 1024,
      /*lowWatermark=*/128, core::OverflowPolicy::kDisconnect,
      /*evictGrace=*/500 * kMillisecond};
  /// Metrics destination for the simulated cluster; nullptr keeps each run
  /// on a private registry (seed sweeps must not share counters).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional runtime monitor riding along with the simulation: it is fed
  /// every subscriber's pre-filter delivery stream (keyed by connection
  /// generation), every backpressure sample and periodic registry snapshots —
  /// the same observation contract the production servers use. A clean seed
  /// must leave it at zero violations.
  verify::Monitor* monitor = nullptr;
  /// Deliberate one-shot fault to arm on `monitor` mid-run (self-test of the
  /// monitor's detection path; the simulated traffic itself stays clean).
  std::optional<verify::ViolationKind> inject;
  /// When to arm `inject`; 0 = auto (half the fault horizon, at least 2s).
  Duration injectAt = 0;
};

struct ChaosReport {
  FaultPlan plan;
  std::vector<std::string> violations;
  /// Deterministic event log: every fault application, ack and delivery with
  /// its virtual timestamp. Byte-identical across runs of the same options.
  std::vector<std::string> trace;
  std::uint64_t acked = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t duplicatesFiltered = 0;
  /// Post-quiesce registry snapshot (benches and tests read totals off it).
  obs::MetricsSnapshot metrics;

  [[nodiscard]] bool Passed() const noexcept { return violations.empty(); }
};

class ChaosDriver {
 public:
  /// Partition windows at least this long assert the [fence] invariant
  /// (quorum-loss detection needs session expiry + fence checks).
  static constexpr Duration kFenceObservable = 5 * kSecond;

  explicit ChaosDriver(ChaosOptions opts) : opts_(std::move(opts)) {}

  ChaosReport Run() {
    ChaosReport report;
    report.plan = opts_.plan ? *opts_.plan
                  : opts_.durability
                      ? FaultPlan::GenerateDurability(opts_.seed, opts_.servers,
                                                      opts_.minFaultEvents,
                                                      opts_.subscribers)
                  : opts_.elastic
                      ? FaultPlan::GenerateElastic(opts_.seed, opts_.servers,
                                                   opts_.minFaultEvents,
                                                   opts_.subscribers)
                      : FaultPlan::Generate(opts_.seed, opts_.servers,
                                            opts_.minFaultEvents,
                                            opts_.subscribers);
    const FaultPlan& plan = report.plan;
    InvariantChecker checker;
    // Disk damage (flip/torn/full) can destroy the only on-disk copy of an
    // acked record, so the strict union-at-restart audit after a crash:all
    // is only sound on damage-free plans; the end-of-run [cache] check
    // (after peer backfill) covers the rest.
    bool planHasDiskFaults = false;
    for (const auto& ev : plan.events) {
      if (ev.kind == FaultEvent::Kind::kWalBitFlip ||
          ev.kind == FaultEvent::Kind::kWalTornTail ||
          ev.kind == FaultEvent::Kind::kDiskFull) {
        planHasDiskFaults = true;
      }
    }

    sim::Scheduler sched;
    SimCluster::Options copts;
    copts.servers = opts_.servers;
    copts.seed = opts_.seed;
    copts.serverLinks.duplicateProb = opts_.peerDuplicateProb;
    copts.metrics = opts_.metrics;
    copts.clientBackpressure = opts_.clientBackpressure;
    if (opts_.durability) {
      // Fault-injectable MemEnv WAL on every server. fsync=always makes the
      // ack→durable implication exact; small segments exercise rotation and
      // a generous retention keeps pruning away from still-acked history.
      copts.durableCache = true;
      copts.nodeConfig.wal.fsync = wal::FsyncPolicy::kAlways;
      copts.nodeConfig.wal.segmentBytes = 64 * 1024;
      copts.nodeConfig.wal.retainSegments = 64;
    }
    // Membership over the run: joins start deferred and flip active; a
    // graceful leave flips inactive. The final fence/cache sweep covers only
    // members still in the cluster at the end.
    std::vector<bool> active(opts_.servers, true);
    if (opts_.elastic) {
      copts.nodeConfig.elastic = true;
      copts.nodeConfig.quorumGate = true;
      for (const auto& ev : plan.events) {
        if (ev.kind == FaultEvent::Kind::kJoin && ev.victim < opts_.servers) {
          copts.deferredStart.insert(ev.victim);
          active[ev.victim] = false;
        }
      }
    }
    SimCluster cluster(sched, copts);
    cluster.StartAll();
    sched.RunFor(2 * kSecond);

    auto trace = [&](std::string line) {
      line += " @" + std::to_string(sched.Now());
      report.trace.push_back(std::move(line));
    };

    std::vector<std::string> topics;
    for (std::size_t t = 0; t < opts_.topics; ++t) {
      topics.push_back("chaos-" + std::to_string(t));
    }

    auto makeClient = [&](const std::string& id) {
      client::ClientConfig cfg;
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        // The address list carries the cluster ids so a HANDOFF redirect can
        // be honored as a directed reconnect to the named new owner.
        cfg.servers.push_back({"server", cluster.ClientPort(i), 1.0,
                               "server-" + std::to_string(i + 1)});
      }
      cfg.clientId = id;
      cfg.seed = Fnv1a64(id) ^ opts_.seed;
      cfg.ackTimeout = 3 * kSecond;
      cfg.backoffBase = 50 * kMillisecond;
      cfg.backoffMax = 500 * kMillisecond;
      cfg.blacklistTtl = 5 * kSecond;
      auto c = std::make_unique<client::Client>(cluster.clientLoop(), cfg);
      return c;
    };

    verify::Monitor* monitor = opts_.monitor;
    std::vector<std::unique_ptr<client::Client>> subs;
    for (std::size_t i = 0; i < opts_.subscribers; ++i) {
      const std::string id = "sub-" + std::to_string(i);
      auto sub = makeClient(id);
      // The monitor observes the PRE-filter wire stream, keyed by connection
      // generation: each reconnect starts a fresh logical stream, so a
      // resume backfill re-sending positions the previous connection already
      // emitted is (correctly) not a violation. The post-filter stream the
      // checker records is a different vantage; both must end up clean.
      auto gen = std::make_shared<std::uint64_t>(0);
      sub->SetConnectionListener([gen](bool up) {
        if (up) ++*gen;
      });
      // A HANDOFF redirect closes this connection and re-attaches the session
      // to the new partition owner: seed the monitor's NEXT-generation stream
      // at the transferred cursor, so the first post-hand-off delivery is
      // checked with the strict [rebalance] continuity rule.
      sub->SetHandoffListener([&trace, id, monitor,
                               gen](const HandoffFrame& handoff) {
        trace("handoff " + id + " -> " + handoff.targetServerId + " (" +
              std::to_string(handoff.cursors.size()) + " cursors)");
        if (!monitor) return;
        const std::uint64_t next =
            MixU64(Fnv1a64(id) ^ ((*gen + 1) * 0x9E3779B97F4A7C15ULL));
        for (const auto& [topic, pos] : handoff.cursors) {
          monitor->OnHandoffResume(next, topic, pos);
        }
      });
      sub->SetDeliveryObserver([&checker, &trace, id, monitor,
                                gen](const Message& m, bool duplicate) {
        if (monitor) {
          monitor->OnDelivery(MixU64(Fnv1a64(id) ^
                                     (*gen * 0x9E3779B97F4A7C15ULL)),
                              m.topic, PosOf(m), m.pubId);
        }
        checker.OnDelivery(id, m, duplicate);
        trace((duplicate ? "drop " : "recv ") + id + " " + m.topic + " " +
              std::to_string(m.epoch) + ":" + std::to_string(m.seq) + " pub#" +
              std::to_string(m.pubId.counter));
      });
      for (const auto& topic : topics) {
        sub->Subscribe(topic, [](const Message&) {});
        checker.AddSubscription(id, topic);
      }
      sub->Start();
      subs.push_back(std::move(sub));
    }

    std::vector<std::unique_ptr<client::Client>> pubs;
    for (std::size_t j = 0; j < opts_.publishers; ++j) {
      auto pub = makeClient("pub-" + std::to_string(j));
      pub->Start();
      pubs.push_back(std::move(pub));
    }
    sched.RunFor(kSecond);  // let everyone connect

    // --- primer publications -----------------------------------------------
    // One message per topic before any fault fires, so every subscriber holds
    // a resume position on every stream. A client that first hears of a topic
    // while its server is fenced subscribes "from now" — the protocol owes it
    // no history, and the loss invariant must not pretend otherwise.
    auto primer = makeClient("primer");
    primer->Start();
    sched.RunFor(200 * kMillisecond);
    const std::uint64_t primerHash = Fnv1a64("primer");
    for (std::size_t t = 0; t < topics.size(); ++t) {
      const std::string& topic = topics[t];
      const PublicationId pubId{primerHash, t + 1};
      trace("pub primer#" + std::to_string(t + 1) + " " + topic);
      primer->Publish(topic, Bytes{0xEE, static_cast<std::uint8_t>(t)},
                      [&checker, &trace, t, topic, pubId](Status s) {
        if (s.ok()) {
          checker.OnAck(topic, pubId);
          trace("ack primer#" + std::to_string(t + 1) + " " + topic);
        } else {
          trace("nack primer#" + std::to_string(t + 1) + " " + topic);
        }
      });
    }
    sched.RunFor(kSecond);  // primer acks + deliveries settle
    primer->Stop();

    // --- fault schedule (offsets are relative to now) ----------------------
    // The acked set frozen at the instant a crash:all fires; the union audit
    // at restart compares the recovered caches against exactly this.
    std::map<std::string, std::vector<PublicationId>> ackedAtOutage;
    for (const auto& ev : plan.events) {
      sched.Schedule(ev.at, [&, ev] {
        switch (ev.kind) {
          case FaultEvent::Kind::kCrash:
            trace("fault crash server-" + std::to_string(ev.victim));
            cluster.CrashServer(ev.victim);
            break;
          case FaultEvent::Kind::kPartition:
            trace("fault partition server-" + std::to_string(ev.victim));
            cluster.PartitionServer(ev.victim);
            break;
          case FaultEvent::Kind::kLinkFlap:
            trace("fault flap server-" + std::to_string(ev.victim) +
                  "<->server-" + std::to_string(ev.peer));
            cluster.network().FlapLink(cluster.HostOf(ev.victim),
                                       cluster.HostOf(ev.peer), ev.duration);
            break;
          case FaultEvent::Kind::kSlowSubscriber:
            trace("fault slow sub-" + std::to_string(ev.victim));
            if (ev.victim < subs.size()) subs[ev.victim]->PauseReads(true);
            break;
          case FaultEvent::Kind::kJoin:
            trace("fault join server-" + std::to_string(ev.victim));
            active[ev.victim] = true;
            cluster.JoinServer(ev.victim);
            break;
          case FaultEvent::Kind::kLeave:
            trace("fault leave server-" + std::to_string(ev.victim));
            active[ev.victim] = false;
            cluster.LeaveServer(ev.victim, [&trace, v = ev.victim] {
              trace("leave-done server-" + std::to_string(v));
            });
            break;
          case FaultEvent::Kind::kMinorityPartition:
            trace("fault partition minority(" + std::to_string(ev.victim) +
                  ")");
            cluster.PartitionMinority(ev.victim);
            break;
          case FaultEvent::Kind::kCrashAll:
            trace("fault crash all");
            ackedAtOutage = checker.AckedSnapshot();
            for (std::size_t i = 0; i < cluster.size(); ++i) {
              if (active[i]) cluster.CrashServer(i);
            }
            break;
          case FaultEvent::Kind::kWalBitFlip:
            trace("fault wal-flip server-" + std::to_string(ev.victim));
            cluster.FlipWalBit(ev.victim, static_cast<std::uint64_t>(ev.at));
            break;
          case FaultEvent::Kind::kWalTornTail:
            trace("fault wal-torn server-" + std::to_string(ev.victim));
            cluster.TearWalTail(ev.victim, static_cast<std::uint64_t>(ev.at));
            break;
          case FaultEvent::Kind::kDiskFull:
            trace("fault wal-full server-" + std::to_string(ev.victim));
            cluster.SetWalFull(ev.victim, true);
            break;
        }
      });
      sched.Schedule(ev.at + ev.duration, [&, ev] {
        switch (ev.kind) {
          case FaultEvent::Kind::kCrash:
            trace("recover restart server-" + std::to_string(ev.victim));
            cluster.RestartServer(ev.victim);
            break;
          case FaultEvent::Kind::kPartition: {
            // A single-member cluster is its own quorum: cutting its (zero)
            // peer links can never cost it quorum contact, so fencing is not
            // expected there.
            if (ev.duration >= kFenceObservable && cluster.size() >= 2) {
              const bool fenced = cluster.node(ev.victim).IsFenced();
              const std::size_t local =
                  cluster.node(ev.victim).LocalClientCount();
              checker.OnPartitionObservation(ev.victim, fenced, local);
              trace("observe server-" + std::to_string(ev.victim) +
                    " fenced=" + std::to_string(fenced ? 1 : 0) +
                    " clients=" + std::to_string(local));
            }
            trace("recover heal server-" + std::to_string(ev.victim));
            cluster.HealServer(ev.victim);
            break;
          }
          case FaultEvent::Kind::kLinkFlap:
            // FlapLink's own heal fires at this same timestamp but after this
            // event (insertion order); heal explicitly so the TCP-style
            // recovery sync below runs against an open link.
            trace("recover flap-end server-" + std::to_string(ev.victim) +
                  "<->server-" + std::to_string(ev.peer));
            cluster.network().Heal(cluster.HostOf(ev.victim),
                                   cluster.HostOf(ev.peer));
            cluster.ResyncLink(ev.victim, ev.peer);
            break;
          case FaultEvent::Kind::kSlowSubscriber:
            // Resume drains the parked backlog (and any eviction close) in
            // order; the client then reconnects and backfills from its
            // resume position — [loss]/[order]/[dup] verify convergence.
            trace("recover slow-end sub-" + std::to_string(ev.victim));
            if (ev.victim < subs.size()) subs[ev.victim]->PauseReads(false);
            break;
          case FaultEvent::Kind::kJoin:
          case FaultEvent::Kind::kLeave:
            break;  // one-way transitions: nothing to recover
          case FaultEvent::Kind::kMinorityPartition: {
            // Long windows assert the elastic contract on every minority
            // member: quorum gate denied (publishes bounced with kNoQuorum)
            // and self-fenced with its clients shed.
            if (ev.duration >= kFenceObservable) {
              for (std::size_t i = 0; i < ev.victim && i < cluster.size();
                   ++i) {
                if (!active[i]) continue;
                const bool quorum = cluster.node(i).HasWriteQuorum();
                const bool fenced = cluster.node(i).IsFenced();
                const std::size_t local = cluster.node(i).LocalClientCount();
                checker.OnQuorumObservation(i, quorum);
                checker.OnPartitionObservation(i, fenced, local);
                trace("observe minority server-" + std::to_string(i) +
                      " quorum=" + std::to_string(quorum ? 1 : 0) +
                      " fenced=" + std::to_string(fenced ? 1 : 0) +
                      " clients=" + std::to_string(local));
              }
            }
            trace("recover heal minority(" + std::to_string(ev.victim) + ")");
            cluster.HealMinority(ev.victim);
            break;
          }
          case FaultEvent::Kind::kCrashAll: {
            trace("recover restart all");
            for (std::size_t i = 0; i < cluster.size(); ++i) {
              if (active[i]) cluster.RestartServer(i);
            }
            // Union audit at the restart instant: recovery is synchronous in
            // Restart(), and no peer backfill or client republish has had a
            // tick yet, so everything in the caches came off local WALs.
            // With fsync=always on undamaged disks the union must cover the
            // acked set frozen when the outage hit.
            if (cluster.HasDurableCache() && !planHasDiskFaults) {
              for (const auto& [topic, ids] : ackedAtOutage) {
                std::set<PublicationId> recovered;
                for (std::size_t i = 0; i < cluster.size(); ++i) {
                  if (!active[i]) continue;
                  for (const auto& m :
                       cluster.node(i).cache().GetAfter(topic, {0, 0})) {
                    recovered.insert(m.pubId);
                  }
                }
                const std::size_t missing = checker.OnDurabilityObservation(
                    "cluster", topic, ids, recovered);
                if (monitor) monitor->OnRecoveryAudit("cluster/" + topic,
                                                      missing);
                trace("observe durability " + topic +
                      " acked=" + std::to_string(ids.size()) +
                      " missing=" + std::to_string(missing));
              }
            }
            break;
          }
          case FaultEvent::Kind::kWalBitFlip:
          case FaultEvent::Kind::kWalTornTail:
            break;  // latent damage: exposed by the next crash, nothing heals
          case FaultEvent::Kind::kDiskFull:
            trace("recover wal-full-end server-" + std::to_string(ev.victim));
            cluster.SetWalFull(ev.victim, false);
            break;
        }
      });
    }

    // --- backpressure sampler ----------------------------------------------
    // Every 100ms of virtual time, record the deepest client send queue per
    // server; the [backpressure] invariant bounds it by the hard watermark.
    const std::size_t hardMark = opts_.clientBackpressure.hardWatermark;
    auto sampler = std::make_shared<std::function<void()>>();
    // Weak self-reference: the local shared_ptr owns the function for the
    // whole run; a by-value capture would be a shared_ptr cycle (leak).
    *sampler = [&checker, &cluster, &sched, hardMark, monitor,
                weak = std::weak_ptr<std::function<void()>>(sampler)] {
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        const std::size_t pending = cluster.MaxClientPending(i);
        checker.OnPendingSample(i, pending, hardMark);
        if (monitor) monitor->OnBackpressure(i, pending, hardMark);
      }
      if (auto self = weak.lock()) sched.Schedule(100 * kMillisecond, *self);
    };
    sched.Schedule(100 * kMillisecond, *sampler);

    // --- monitor feed: snapshots + deliberate injection --------------------
    const Duration horizon = plan.Horizon();
    if (monitor) {
      // Early baseline snapshot so the counter-monotonicity rule has a
      // previous sample per series; the final snapshot after quiesce closes
      // the pair.
      sched.Schedule(1500 * kMillisecond, [&cluster, monitor] {
        monitor->OnMetricsSnapshot(cluster.metrics().Snapshot());
      });
      if (opts_.inject) {
        const Duration when =
            opts_.injectAt > 0 ? opts_.injectAt
                               : std::max<Duration>(horizon / 2, 2 * kSecond);
        sched.Schedule(when, [monitor, &trace, kind = *opts_.inject] {
          trace(std::string("inject ") + verify::ViolationKindName(kind));
          monitor->InjectFault(kind);
        });
      }
    }

    // --- publish traffic ---------------------------------------------------
    Duration interval = opts_.publishInterval;
    if (interval <= 0) {
      interval = std::max<Duration>(
          200 * kMillisecond,
          horizon / static_cast<Duration>(
                        std::max<std::size_t>(1, opts_.publicationsPerPublisher)));
    }
    const Duration stagger =
        interval / static_cast<Duration>(std::max<std::size_t>(1, opts_.publishers));
    for (std::size_t j = 0; j < opts_.publishers; ++j) {
      const std::string id = "pub-" + std::to_string(j);
      const std::uint64_t clientHash = Fnv1a64(id);
      for (std::size_t k = 0; k < opts_.publicationsPerPublisher; ++k) {
        const Duration when =
            static_cast<Duration>(k) * interval + static_cast<Duration>(j) * stagger;
        const std::string& topic = topics[(j + k) % topics.size()];
        // Client::Publish assigns pubId {hash(clientId), n} for the n-th
        // publication, so the ack can be tied back without a protocol hook.
        const PublicationId pubId{clientHash, k + 1};
        sched.Schedule(when, [&, j, k, topic, id, pubId] {
          trace("pub " + id + "#" + std::to_string(k + 1) + " " + topic);
          Bytes payload{static_cast<std::uint8_t>(j),
                        static_cast<std::uint8_t>(k & 0xFF),
                        static_cast<std::uint8_t>(k >> 8)};
          pubs[j]->Publish(topic, std::move(payload),
                           [&checker, &trace, id, k, topic, pubId](Status s) {
            if (s.ok()) {
              checker.OnAck(topic, pubId);
              trace("ack " + id + "#" + std::to_string(k + 1) + " " + topic);
            } else {
              trace("nack " + id + "#" + std::to_string(k + 1) + " " + topic);
            }
          });
        });
      }
    }

    const Duration trafficEnd =
        static_cast<Duration>(opts_.publicationsPerPublisher) * interval;
    sched.RunFor(std::max(horizon, trafficEnd) + opts_.quiesce);

    // --- final observations ------------------------------------------------
    // Only servers that are members at the end of the run: a gracefully left
    // server is inert (its cache owes nobody anything), a deferred server
    // that never joined holds no state.
    const auto ackedFinal = checker.AckedSnapshot();
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (!active[i]) continue;
      checker.OnFinalFenceState(i, cluster.node(i).IsFenced());
      if (opts_.checkCaches) {
        // The monitor gets the same audit as the checker's [cache] rule: how
        // many acked publications this server's post-quiesce cache is
        // missing. Clean runs report zero — which is exactly the eligible
        // observation a one-shot `--inject durability` needs to fire on.
        std::size_t monitorMissing = 0;
        for (const auto& topic : topics) {
          std::set<PublicationId> ids;
          for (const auto& m : cluster.node(i).cache().GetAfter(topic, {0, 0})) {
            ids.insert(m.pubId);
          }
          if (monitor) {
            const auto ackIt = ackedFinal.find(topic);
            if (ackIt != ackedFinal.end()) {
              for (const auto& id : ackIt->second) {
                if (!ids.contains(id)) ++monitorMissing;
              }
            }
          }
          checker.OnFinalCache(i, topic, std::move(ids));
        }
        if (monitor) {
          monitor->OnRecoveryAudit("server-" + std::to_string(i),
                                   monitorMissing);
        }
      }
    }

    // Couple the registry to the checker's ground truth ([metrics] checks).
    report.metrics = cluster.metrics().Snapshot();
    if (monitor) monitor->OnMetricsSnapshot(report.metrics);
    InvariantChecker::MetricsTotals totals;
    totals.published = static_cast<std::uint64_t>(
        report.metrics.Total("md_cluster_published_total"));
    totals.delivered = static_cast<std::uint64_t>(
        report.metrics.Total("md_cluster_delivered_total"));
    totals.backfilled = static_cast<std::uint64_t>(
        report.metrics.Total("md_cluster_backfilled_total"));
    totals.fences = static_cast<std::uint64_t>(
        report.metrics.Total("md_cluster_fences_total"));
    totals.unfences = static_cast<std::uint64_t>(
        report.metrics.Total("md_cluster_unfences_total"));
    totals.replicationPendingSum = static_cast<std::int64_t>(
        report.metrics.Total("md_cluster_replication_pending"));
    Duration maxFault = 0;
    for (const auto& ev : plan.events) {
      if (ev.kind == FaultEvent::Kind::kCrash) ++totals.crashFaults;
      maxFault = std::max(maxFault, ev.duration);
    }
    // Fault window plus quorum-loss detection and recovery slack.
    totals.failoverBound = maxFault + 15 * kSecond;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (active[i] && cluster.node(i).IsFenced()) ++totals.stillFenced;
    }
    if (const auto* fam = report.metrics.Family("md_cluster_failover_ns")) {
      for (const auto& sample : fam->samples) {
        if (sample.count > 0) {
          totals.failoverMaxNs = std::max(totals.failoverMaxNs, sample.max);
        }
      }
    }
    checker.OnMetricsTotals(totals);

    report.acked = checker.acked();
    report.deliveries = checker.deliveries();
    report.duplicatesFiltered = checker.duplicatesFiltered();
    trace("end acked=" + std::to_string(report.acked) +
          " deliveries=" + std::to_string(report.deliveries) +
          " dupsFiltered=" + std::to_string(report.duplicatesFiltered) +
          " fences=" + std::to_string(totals.fences) +
          " unfences=" + std::to_string(totals.unfences));
    report.violations = checker.Check();

    // Stop clients while the cluster still exists so teardown acks (kClosed)
    // fire now, not against a dead loop.
    for (auto& pub : pubs) pub->Stop();
    for (auto& sub : subs) sub->Stop();
    return report;
  }

 private:
  ChaosOptions opts_;
};

}  // namespace md::cluster
