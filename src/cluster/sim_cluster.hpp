// Deterministic full-cluster harness.
//
// Wires, on a single simulation scheduler:
//   - one SimNetwork host per MigratoryData server,
//   - a MiniZK node on each host (SimCoordCluster) — partitions and crashes
//     cut coordination traffic exactly like data traffic,
//   - a ClusterNode per server whose peer frames travel over SimNetwork
//     links (latency + bandwidth + partitions),
//   - an InprocLoop listener per server speaking the real byte protocol, so
//     tests attach the *real client library* (md::client::Client) and
//     exercise reconnection, resume and duplicate filtering end to end.
//
// Fault API: CrashServer / RestartServer (fail-stop; client connections are
// severed), PartitionServer / HealServer (server cut from its peers but NOT
// from its clients — the paper's fault model, which the node detects through
// MiniZK quorum loss and answers by self-fencing).
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "cluster/node.hpp"
#include "coord/sim_harness.hpp"
#include "core/backpressure.hpp"
#include "proto/codec.hpp"
#include "simnet/network.hpp"
#include "transport/inproc.hpp"
#include "wal/mem_env.hpp"

namespace md::cluster {

/// Rough wire size of a peer frame for the bandwidth model.
inline std::size_t EstimateFrameSize(const Frame& frame) {
  Bytes bytes;
  EncodeFrame(frame, bytes);
  return bytes.size() + 40;  // + TCP/IP framing overhead
}

class SimCluster {
 public:
  struct Options {
    std::size_t servers = 3;
    ClusterConfig nodeConfig;              // serverId is set per node
    coord::CoordConfig coordConfig;
    sim::LinkParams serverLinks;           // inter-server network
    Duration clientLinkDelay = 2 * kMillisecond;
    std::uint64_t seed = 42;
    /// Shared metrics registry for every node in the cluster; nullptr gives
    /// the cluster its own private registry (keeps repeated sim runs in one
    /// process from accumulating into the process-wide default).
    obs::MetricsRegistry* metrics = nullptr;
    /// Slow-consumer policy applied to every client connection. Defaults are
    /// generous relative to sim traffic (256 KiB soft / 1 MiB hard) so only
    /// tests that deliberately stall a client ever cross them.
    core::BackpressureConfig clientBackpressure{
        /*softWatermark=*/256 * 1024, /*hardWatermark=*/1024 * 1024,
        /*lowWatermark=*/64 * 1024, core::OverflowPolicy::kDisconnect,
        /*evictGrace=*/250 * kMillisecond};
    /// Servers whose ClusterNode does NOT start with StartAll() — elastic
    /// scale-out tests boot them later with JoinServer(). Their coordination
    /// replica runs from t=0: the coordination ensemble is provisioned
    /// statically, only the messaging membership is elastic.
    std::set<std::size_t> deferredStart;
    /// Give every server a MemEnv-backed WAL under its cache. CrashServer
    /// then tears the unsynced tail realistically and RestartServer replays
    /// the survivors before asking peers for the delta. nodeConfig.wal is
    /// used as the template (its dir is overridden per server; an empty dir
    /// gets a default).
    bool durableCache = false;
  };

  explicit SimCluster(sim::Scheduler& sched, Options options)
      : sched_(sched),
        opts_(options),
        net_(sched, Rng(options.seed), options.serverLinks),
        clientLoop_(sched, options.clientLinkDelay) {
    if (opts_.metrics == nullptr) {
      ownedRegistry_ = std::make_unique<obs::MetricsRegistry>();
      opts_.metrics = ownedRegistry_.get();
    }
    opts_.coordConfig.metrics = opts_.metrics;
    scm_ = std::make_unique<obs::SlowConsumerMetrics>(*opts_.metrics);
    std::vector<sim::HostId> hosts;
    for (std::size_t i = 0; i < opts_.servers; ++i) {
      hosts.push_back(net_.AddHost("server-" + std::to_string(i + 1)));
    }
    coordCluster_ = std::make_unique<coord::SimCoordCluster>(
        sched_, net_, hosts, opts_.coordConfig, opts_.seed);

    std::vector<std::string> ids;
    for (std::size_t i = 0; i < opts_.servers; ++i) {
      ids.push_back("server-" + std::to_string(i + 1));
    }
    for (std::size_t i = 0; i < opts_.servers; ++i) {
      auto server = std::make_unique<ServerHost>();
      server->index = i;
      server->id = ids[i];
      server->host = hosts[i];
      std::vector<std::string> peers;
      for (std::size_t j = 0; j < opts_.servers; ++j) {
        if (j != i) peers.push_back(ids[j]);
      }
      server->env = std::make_unique<NodeEnv>(*this, i, opts_.seed + 100 + i);
      ClusterConfig cfg = opts_.nodeConfig;
      cfg.serverId = ids[i];
      cfg.metrics = opts_.metrics;
      if (opts_.durableCache) {
        server->walEnv = std::make_unique<wal::MemEnv>();
        cfg.walEnv = server->walEnv.get();
        if (cfg.wal.dir.empty()) cfg.wal.dir = "wal/" + ids[i];
      } else {
        cfg.wal.dir.clear();  // no WAL without a fault-injectable env
      }
      server->node = std::make_unique<ClusterNode>(cfg, *server->env,
                                                   coordCluster_->node(i), peers);
      servers_.push_back(std::move(server));
    }
    for (auto& server : servers_) OpenListener(*server);
  }

  void StartAll() {
    coordCluster_->StartAll();
    for (auto& server : servers_) {
      if (!opts_.deferredStart.contains(server->index)) server->node->Start();
    }
  }

  /// Client port of server i (connect the real client library here).
  [[nodiscard]] std::uint16_t ClientPort(std::size_t i) const {
    return static_cast<std::uint16_t>(10000 + i);
  }
  [[nodiscard]] InprocLoop& clientLoop() noexcept { return clientLoop_; }
  [[nodiscard]] ClusterNode& node(std::size_t i) { return *servers_.at(i)->node; }
  [[nodiscard]] coord::CoordNode& coordNode(std::size_t i) {
    return coordCluster_->node(i);
  }
  [[nodiscard]] std::size_t size() const noexcept { return servers_.size(); }
  [[nodiscard]] sim::SimNetwork& network() noexcept { return net_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *opts_.metrics; }
  [[nodiscard]] sim::HostId HostOf(std::size_t i) const {
    return servers_.at(i)->host;
  }
  /// Largest send-queue depth among server i's client connections — the
  /// quantity the backpressure invariant bounds by the hard watermark.
  [[nodiscard]] std::size_t MaxClientPending(std::size_t i) const {
    std::size_t maxPending = 0;
    for (const auto& [handle, conn] : servers_.at(i)->connections) {
      maxPending = std::max(maxPending, conn->PendingBytes());
    }
    return maxPending;
  }
  [[nodiscard]] const obs::SlowConsumerMetrics& slowConsumerMetrics() const {
    return *scm_;
  }

  // --- faults ----------------------------------------------------------------

  void CrashServer(std::size_t i) {
    ServerHost& server = *servers_.at(i);
    coordCluster_->CrashNode(i);  // host goes down too
    server.node->Crash();  // abandons WAL handles (no final sync) first...
    if (server.walEnv) {
      // ...then the storage loses everything unsynced, keeping a random
      // prefix of each file's unsynced tail — the kill -9 torn-write shapes.
      server.walEnv->Crash(opts_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)) ^
                           ++server.walCrashes);
    }
    // TCP connections to a dead host break.
    server.listener.reset();
    auto conns = std::move(server.connections);
    server.connections.clear();
    for (auto& [handle, conn] : conns) conn->Close();
  }

  void RestartServer(std::size_t i) {
    ServerHost& server = *servers_.at(i);
    coordCluster_->RestartNode(i);
    OpenListener(server);
    server.node->Restart();
  }

  /// Cut server i from all *other servers* (clients stay connected).
  void PartitionServer(std::size_t i) {
    for (std::size_t j = 0; j < servers_.size(); ++j) {
      if (j != i) net_.Partition(servers_[i]->host, servers_[j]->host);
    }
  }

  void HealServer(std::size_t i) { net_.HealAll(servers_[i]->host); }

  // --- disk faults (durableCache only; no-ops otherwise) ---------------------

  [[nodiscard]] bool HasDurableCache() const noexcept {
    return opts_.durableCache;
  }

  /// Flips one random bit somewhere in server i's WAL; false if it has no
  /// WAL bytes yet.
  bool FlipWalBit(std::size_t i, std::uint64_t salt) {
    ServerHost& server = *servers_.at(i);
    if (!server.walEnv) return false;
    return server.walEnv->FlipRandomBit(opts_.seed ^ salt ^ (i * 0x5851F42DULL));
  }

  /// Truncates a random tail off one of server i's WAL files (latent torn
  /// write); returns bytes removed.
  std::size_t TearWalTail(std::size_t i, std::uint64_t salt) {
    ServerHost& server = *servers_.at(i);
    if (!server.walEnv) return 0;
    return server.walEnv->TruncateRandomTail(opts_.seed ^ salt ^
                                             (i * 0x2545F491ULL));
  }

  /// ENOSPC switch for server i's WAL device. While full, WAL appends fail
  /// (counted); the in-memory cache keeps serving.
  void SetWalFull(std::size_t i, bool full) {
    ServerHost& server = *servers_.at(i);
    if (server.walEnv) server.walEnv->SetFull(full);
  }

  [[nodiscard]] wal::MemEnv* WalEnv(std::size_t i) {
    return servers_.at(i)->walEnv.get();
  }

  // --- elastic membership ----------------------------------------------------

  /// Scale-out: boot server i's node mid-run. Restart (not Start) so the
  /// fresh member warms its cache from peers before it can own resumed
  /// sessions — the paper's §5.2.2 reconstruction, reused for joins.
  void JoinServer(std::size_t i) {
    ServerHost& server = *servers_.at(i);
    if (!server.listener) OpenListener(server);
    server.node->Restart();
  }

  /// Scale-in: graceful leave. The node drains its hand-off wave, sheds its
  /// coordinator roles and deregisters; then the harness severs whatever is
  /// left (clients with no hand-off target reconnect elsewhere) and runs
  /// `done`.
  void LeaveServer(std::size_t i, std::function<void()> done = {}) {
    servers_.at(i)->node->Leave([this, i, done = std::move(done)] {
      ServerHost& server = *servers_.at(i);
      server.listener.reset();
      auto conns = std::move(server.connections);
      server.connections.clear();
      server.inbox.clear();
      server.bp.clear();
      for (auto& [handle, conn] : conns) conn->Close();
      if (done) done();
    });
  }

  /// Cut servers [0, count) from servers [count, N) in both directions; the
  /// minority stays internally connected. This is the quorum-gate fault: the
  /// majority keeps sequencing while the minority must reject publishes with
  /// the retryable kNoQuorum status until healed.
  void PartitionMinority(std::size_t count) {
    for (std::size_t i = 0; i < count && i < servers_.size(); ++i) {
      for (std::size_t j = count; j < servers_.size(); ++j) {
        net_.Partition(servers_[i]->host, servers_[j]->host);
      }
    }
  }

  void HealMinority(std::size_t count) {
    for (std::size_t i = 0; i < count && i < servers_.size(); ++i) {
      net_.HealAll(servers_[i]->host);
    }
  }

  /// Link-recovery cache sync between two servers — what the real TCP host
  /// does when an inter-server connection re-establishes after a link fault
  /// (see TcpClusterHost). Call after healing a link flap: in-flight frames
  /// dropped by the flap model a broken TCP connection, and this models its
  /// recovery handshake.
  void ResyncLink(std::size_t i, std::size_t j) {
    servers_.at(i)->node->SyncFromPeer(servers_.at(j)->id);
    servers_.at(j)->node->SyncFromPeer(servers_.at(i)->id);
  }

 private:
  /// Per-client backpressure state (single-strand: scheduler events only).
  struct ClientState {
    bool overSoft = false;
    bool evictTimerArmed = false;
    bool evicting = false;
  };

  struct ServerHost {
    std::size_t index = 0;
    std::string id;
    sim::HostId host = 0;
    std::unique_ptr<ClusterEnv> env;
    std::unique_ptr<wal::MemEnv> walEnv;  // set when Options::durableCache
    std::uint64_t walCrashes = 0;         // crash-seed diversifier
    std::unique_ptr<ClusterNode> node;
    ListenerPtr listener;
    ClientHandle nextHandle = 1;
    std::map<ClientHandle, ConnectionPtr> connections;
    std::map<ClientHandle, std::shared_ptr<ByteQueue>> inbox;
    std::map<ClientHandle, std::shared_ptr<ClientState>> bp;
  };

  class NodeEnv final : public ClusterEnv {
   public:
    NodeEnv(SimCluster& cluster, std::size_t index, std::uint64_t seed)
        : cluster_(cluster), index_(index), rng_(seed) {}

    void SendToPeer(const std::string& serverId, const Frame& frame) override {
      const auto target = cluster_.IndexOf(serverId);
      if (!target) return;
      cluster_.net_.Send(
          cluster_.servers_[index_]->host, cluster_.servers_[*target]->host,
          EstimateFrameSize(frame),
          [&cluster = cluster_, from = cluster_.servers_[index_]->id,
           to = *target, frame] {
            cluster.servers_[to]->node->OnPeerFrame(from, frame);
          });
    }

    void SendToClient(ClientHandle client, const Frame& frame) override {
      ServerHost& server = *cluster_.servers_[index_];
      if (!server.connections.contains(client)) return;
      Bytes wire;
      EncodeFramed(frame, wire);
      (void)cluster_.SendClientWire(server, client, BytesView(wire));
    }

    void CloseClient(ClientHandle client) override {
      ServerHost& server = *cluster_.servers_[index_];
      auto node = server.connections.extract(client);
      server.inbox.erase(client);
      server.bp.erase(client);
      if (!node.empty()) node.mapped()->Close();
    }

    std::uint64_t Schedule(Duration delay, std::function<void()> fn) override {
      return cluster_.sched_.Schedule(delay, std::move(fn));
    }
    void Cancel(std::uint64_t timerId) override { cluster_.sched_.Cancel(timerId); }
    [[nodiscard]] TimePoint Now() const override { return cluster_.sched_.Now(); }
    std::uint64_t Random() override { return rng_.Next(); }

   private:
    SimCluster& cluster_;
    std::size_t index_;
    Rng rng_;
  };

  [[nodiscard]] std::optional<std::size_t> IndexOf(const std::string& serverId) const {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (servers_[i]->id == serverId) return i;
    }
    return std::nullopt;
  }

  void OpenListener(ServerHost& server) {
    auto listener = clientLoop_.Listen(ClientPort(server.index));
    if (!listener.ok()) return;
    server.listener = std::move(*listener);
    server.listener->SetAcceptHandler([this, &server](ConnectionPtr conn) {
      const ClientHandle handle = server.nextHandle++;
      server.connections[handle] = conn;
      auto inbox = std::make_shared<ByteQueue>();
      server.inbox[handle] = inbox;
      auto state = std::make_shared<ClientState>();
      server.bp[handle] = state;
      conn->SetWatermarks(opts_.clientBackpressure.ToWatermarks());
      conn->SetDrainedHandler([this, state] {
        if (!state->overSoft) return;
        state->overSoft = false;
        scm_->sessionsOverSoft.Add(-1);
      });
      conn->SetDataHandler([this, &server, handle, inbox](BytesView data) {
        inbox->Append(data);
        while (true) {
          auto r = ExtractFrame(*inbox);
          if (!r.status.ok()) {
            if (auto node = server.connections.extract(handle); !node.empty()) {
              node.mapped()->Close();
            }
            server.inbox.erase(handle);
            server.node->OnClientDisconnect(handle);
            return;
          }
          if (!r.frame) return;
          server.node->OnClientFrame(handle, *r.frame);
        }
      });
      conn->SetCloseHandler([this, &server, handle, state] {
        if (state->overSoft) {
          state->overSoft = false;
          scm_->sessionsOverSoft.Add(-1);
        }
        server.connections.erase(handle);
        server.inbox.erase(handle);
        server.bp.erase(handle);
        server.node->OnClientDisconnect(handle);
      });
    });
  }

  /// Status-checked client write applying Options::clientBackpressure: a
  /// soft-accepted kCapacity arms the eviction grace timer; a hard-rejected
  /// kCapacity (whole frame refused => stream gap) evicts immediately.
  bool SendClientWire(ServerHost& server, ClientHandle handle, BytesView wire) {
    const auto connIt = server.connections.find(handle);
    const auto bpIt = server.bp.find(handle);
    if (connIt == server.connections.end() || bpIt == server.bp.end()) {
      return false;
    }
    const ConnectionPtr& conn = connIt->second;
    const std::shared_ptr<ClientState>& state = bpIt->second;
    if (state->evicting || !conn->IsOpen()) return false;
    const std::size_t before = conn->PendingBytes();
    const Status st = conn->Send(wire);
    if (st.ok()) return true;
    if (st.code() != ErrorCode::kCapacity) return false;
    const bool accepted = conn->PendingBytes() > before;
    if (!state->overSoft) {
      state->overSoft = true;
      scm_->softOverflows.Inc();
      scm_->sessionsOverSoft.Add(1);
      scm_->queueDepthBytes.Record(
          static_cast<std::int64_t>(conn->PendingBytes()));
    }
    if (!accepted) {
      EvictSlowClient(server, handle);
      return false;
    }
    if (!state->evictTimerArmed) {
      state->evictTimerArmed = true;
      sched_.Schedule(
          opts_.clientBackpressure.evictGrace, [this, &server, handle, state] {
            state->evictTimerArmed = false;
            if (!state->overSoft || state->evicting) return;
            const auto it = server.connections.find(handle);
            if (it == server.connections.end() || !it->second->IsOpen()) return;
            EvictSlowClient(server, handle);
          });
    }
    return true;
  }

  void EvictSlowClient(ServerHost& server, ClientHandle handle) {
    const auto connIt = server.connections.find(handle);
    const auto bpIt = server.bp.find(handle);
    if (connIt == server.connections.end() || bpIt == server.bp.end()) return;
    if (bpIt->second->evicting) return;
    bpIt->second->evicting = true;
    scm_->disconnects.Inc();
    // Best-effort close notice, then close. The inproc transport delivers
    // parked bytes before the close, so a paused client that resumes sees
    // the whole backlog, then the DisconnectFrame, then EOF — same ordering
    // a real socket gives. The close handler notifies the node.
    Bytes notice;
    EncodeFramed(Frame(DisconnectFrame{"slow consumer: send queue overflow"}),
                 notice);
    (void)connIt->second->Send(BytesView(notice));
    connIt->second->CloseAfterFlush();
  }

  sim::Scheduler& sched_;
  Options opts_;
  std::unique_ptr<obs::MetricsRegistry> ownedRegistry_;
  std::unique_ptr<obs::SlowConsumerMetrics> scm_;
  sim::SimNetwork net_;
  InprocLoop clientLoop_;
  std::unique_ptr<coord::SimCoordCluster> coordCluster_;
  std::vector<std::unique_ptr<ServerHost>> servers_;
};

}  // namespace md::cluster
