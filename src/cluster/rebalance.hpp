// Subscriber-partition assignment for the elastic cluster (DESIGN.md §12).
//
// Sessions are bucketed into a fixed number of subscriber partitions by
// client-id hash; partitions are mapped onto the live members with rendezvous
// (highest-random-weight) hashing. Every node computes the same assignment
// from the same member set with no coordination round, and a join/leave moves
// only the partitions whose top-ranked owner changed — the minimal-movement
// property that keeps a hand-off wave proportional to the membership delta,
// not to the cluster size.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace md::cluster {

/// One computed partition -> owner map. Index = partition id.
struct Assignment {
  std::vector<std::string> owners;

  friend bool operator==(const Assignment&, const Assignment&) = default;

  [[nodiscard]] const std::string& OwnerOf(std::uint32_t partition) const {
    static const std::string kNone;
    return partition < owners.size() ? owners[partition] : kNone;
  }

  /// Partitions owned by `serverId` under this assignment.
  [[nodiscard]] std::vector<std::uint32_t> PartitionsOf(
      const std::string& serverId) const {
    std::vector<std::uint32_t> mine;
    for (std::uint32_t p = 0; p < owners.size(); ++p) {
      if (owners[p] == serverId) mine.push_back(p);
    }
    return mine;
  }
};

class Rebalancer {
 public:
  /// Which subscriber partition a client's sessions belong to.
  [[nodiscard]] static std::uint32_t PartitionOf(std::string_view clientId,
                                                 std::uint32_t partitions) {
    return partitions == 0
               ? 0
               : static_cast<std::uint32_t>(Fnv1a64(clientId) % partitions);
  }

  /// Rendezvous score of `member` for `partition`; the member with the
  /// highest score owns the partition. Mixing the two hashes keeps scores
  /// independent per (member, partition) pair.
  [[nodiscard]] static std::uint64_t Score(const std::string& member,
                                           std::uint32_t partition) {
    return MixU64(Fnv1a64(member) ^
                  MixU64(0x9E3779B97F4A7C15ULL * (partition + 1)));
  }

  /// The owner of `partition` among `members` (ties broken by name so the
  /// result is total even for adversarial hash collisions). Empty member set
  /// means no owner — the caller parks work until membership is known.
  [[nodiscard]] static std::string OwnerOf(
      std::uint32_t partition, const std::vector<std::string>& members) {
    std::string best;
    std::uint64_t bestScore = 0;
    for (const std::string& m : members) {
      const std::uint64_t score = Score(m, partition);
      if (best.empty() || score > bestScore ||
          (score == bestScore && m < best)) {
        best = m;
        bestScore = score;
      }
    }
    return best;
  }

  /// Full assignment of `partitions` partitions over `members`.
  [[nodiscard]] static Assignment Compute(
      std::uint32_t partitions, const std::vector<std::string>& members) {
    Assignment a;
    a.owners.resize(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p) {
      a.owners[p] = OwnerOf(p, members);
    }
    return a;
  }

  /// Partitions whose owner differs between two assignments (the hand-off
  /// set of a membership change).
  [[nodiscard]] static std::vector<std::uint32_t> Moved(const Assignment& from,
                                                        const Assignment& to) {
    std::vector<std::uint32_t> moved;
    const std::size_t n = std::max(from.owners.size(), to.owners.size());
    for (std::uint32_t p = 0; p < n; ++p) {
      if (from.OwnerOf(p) != to.OwnerOf(p)) moved.push_back(p);
    }
    return moved;
  }
};

}  // namespace md::cluster
