#include "cluster/node.hpp"

#include "common/logging.hpp"

namespace md::cluster {

ClusterNode::ClusterNode(ClusterConfig cfg, ClusterEnv& env,
                         coord::CoordNode& coord, std::vector<std::string> peerIds)
    : cfg_([&] {
        cfg.cache.topicGroups = cfg.topicGroups;
        return cfg;
      }()),
      env_(env),
      coord_(coord),
      peers_(std::move(peerIds)),
      cache_(cfg_.cache),
      cm_(cfg_.metrics != nullptr ? *cfg_.metrics
                                  : obs::MetricsRegistry::Default(),
          obs::ServerLabel(cfg_.serverId)) {}

ClusterNodeStats ClusterNode::stats() const {
  ClusterNodeStats s;
  s.published = cm_.published.Value();
  s.forwarded = cm_.forwarded.Value();
  s.delivered = cm_.delivered.Value();
  s.rejects = cm_.rejects.Value();
  s.takeovers = cm_.takeovers.Value();
  s.fences = cm_.fences.Value();
  s.recoveredMessages = cm_.backfilled.Value();
  return s;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void ClusterNode::Start() {
  started_ = true;
  crashed_ = false;
  fenced_ = false;
  SetupWatches();
  fenceTimer_ = env_.Schedule(cfg_.fenceCheckInterval, [this] { CheckFence(); });
}

void ClusterNode::Crash() {
  crashed_ = true;
  started_ = false;
  env_.Cancel(fenceTimer_);
  // Fail-stop: every piece of volatile state disappears.
  for (const ClientHandle client : clients_) registry_.DropClient(client);
  clients_.clear();
  cache_.Clear();
  gossip_.clear();
  for (const std::uint32_t g : myGroups_) sequencer_.EndEpoch(g);
  myGroups_.clear();
  electing_.clear();
  parked_.clear();
  pendingContact_.clear();
  cm_.replicationPending.Add(-static_cast<std::int64_t>(pendingCoord_.size()));
  pendingCoord_.clear();
  syncing_.clear();
  for (const auto& [topic, timer] : gapStalled_) env_.Cancel(timer);
  gapStalled_.clear();
  deliveryCursor_.clear();
  fenceStart_ = -1;  // a crash supersedes any open fence span
}

void ClusterNode::Restart() {
  Start();
  // Paper §5.2.2: "If a cluster member experiences a crash failure and
  // restarts, it reconstructs its cache by asking all members of the cluster
  // in parallel."
  StartCacheReconstruction();
}

void ClusterNode::SetupWatches() {
  if (watchesInstalled_) return;
  watchesInstalled_ = true;
  // Watch every group mapping: deletions signal coordinator failure and
  // trigger the takeover race (paper §5.2.1).
  for (std::uint32_t g = 0; g < cfg_.topicGroups; ++g) {
    coord_.Watch(GroupKey(g), [this, g](const coord::WatchEvent& event) {
      if (crashed_ || !started_) return;
      switch (event.type) {
        case coord::WatchEventType::kCreated:
        case coord::WatchEventType::kChanged:
          if (event.value != cfg_.serverId) {
            // Another server coordinates now; epoch arrives via gossip.
            myGroups_.erase(g);
            sequencer_.EndEpoch(g);
          }
          break;
        case coord::WatchEventType::kDeleted:
          myGroups_.erase(g);
          sequencer_.EndEpoch(g);
          gossip_.erase(g);
          // Race to take over groups we hold state for. Idle groups are
          // re-assigned lazily by the next publication.
          if (!cache_.GroupPositions(g).empty()) AttemptTakeover(g);
          break;
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Client events
// ---------------------------------------------------------------------------

void ClusterNode::OnClientConnect(ClientHandle client, const std::string&) {
  if (crashed_ || fenced_) {
    env_.CloseClient(client);
    return;
  }
  clients_.insert(client);
  env_.SendToClient(client, ConnAckFrame{cfg_.serverId});
}

void ClusterNode::OnClientDisconnect(ClientHandle client) {
  clients_.erase(client);
  registry_.DropClient(client);
}

void ClusterNode::OnClientFrame(ClientHandle client, const Frame& frame) {
  if (crashed_) return;
  if (const auto* connect = std::get_if<ConnectFrame>(&frame)) {
    OnClientConnect(client, connect->clientId);
    return;
  }
  if (const auto* sub = std::get_if<SubscribeFrame>(&frame)) {
    HandleSubscribe(client, *sub);
    return;
  }
  if (const auto* unsub = std::get_if<UnsubscribeFrame>(&frame)) {
    registry_.Unsubscribe(unsub->topic, client);
    return;
  }
  if (const auto* pub = std::get_if<PublishFrame>(&frame)) {
    HandlePublish(client, *pub);
    return;
  }
  if (const auto* ping = std::get_if<PingFrame>(&frame)) {
    env_.SendToClient(client, PongFrame{ping->nonce});
    return;
  }
  if (std::get_if<DisconnectFrame>(&frame) != nullptr) {
    env_.CloseClient(client);
    OnClientDisconnect(client);
    return;
  }
}

void ClusterNode::HandleSubscribe(ClientHandle client, const SubscribeFrame& sub) {
  registry_.Subscribe(sub.topic, client);
  env_.SendToClient(client, SubAckFrame{sub.topic, true});
  if (sub.hasResumePos) {
    for (const Message& missed : cache_.GetAfter(sub.topic, sub.resumeAfter)) {
      cm_.delivered.Inc();
      env_.SendToClient(client, DeliverFrame{missed});
    }
  }
}

void ClusterNode::HandlePublish(ClientHandle client, const PublishFrame& pub) {
  ParkedPublication p;
  p.topic = pub.topic;
  p.payload = pub.payload;
  p.pubId = pub.pubId;
  p.publishTs = pub.publishTs;
  p.publisher = pub.wantAck ? client : 0;
  RoutePublication(std::move(p));
}

// ---------------------------------------------------------------------------
// Publication routing (paper §5.2.2)
// ---------------------------------------------------------------------------

void ClusterNode::RoutePublication(ParkedPublication pub) {
  if (fenced_) {
    if (!pub.originServerId.empty()) {
      env_.SendToPeer(pub.originServerId, ForwardRejectFrame{pub.pubId, pub.topic});
    } else if (pub.publisher != 0) {
      env_.SendToClient(pub.publisher, PubAckFrame{pub.pubId, false});
    }
    return;
  }
  const std::uint32_t group = GroupOf(pub.topic);

  if (myGroups_.contains(group)) {
    SequenceAndBroadcast(pub);
    return;
  }

  if (electing_.contains(group)) {
    parked_[group].push_back(std::move(pub));  // takeover already running
    return;
  }

  // The contact server remembers the publication until the sequenced
  // broadcast comes back (the signal that two copies exist), then acks.
  if (pub.originServerId.empty() && pub.publisher != 0) {
    PendingContact pending;
    pending.publisher = pub.publisher;
    pending.topic = pub.topic;
    const PublicationId pubId = pub.pubId;
    pending.timeoutTimer = env_.Schedule(cfg_.forwardTimeout, [this, pubId] {
      AckContactPending(pubId, false);  // publisher will republish
    });
    pendingContact_[pub.pubId] = pending;
  }

  const auto it = gossip_.find(group);
  if (it != gossip_.end() && it->second.serverId != cfg_.serverId) {
    // Known coordinator: forward.
    cm_.forwarded.Inc();
    ForwardPubFrame fwd;
    fwd.topic = pub.topic;
    fwd.payload = pub.payload;
    fwd.pubId = pub.pubId;
    fwd.originServerId = cfg_.serverId;
    fwd.publishTs = pub.publishTs;
    fwd.electIfUnassigned = false;
    env_.SendToPeer(it->second.serverId, fwd);
    return;
  }

  // Unassigned group: delegate coordinator acquisition to a random server
  // (avoids a publisher's contact point accumulating every coordinator
  // role — paper footnote 2). The random pick may be ourselves.
  const std::size_t pick = env_.Random() % (peers_.size() + 1);
  if (pick == peers_.size()) {
    parked_[group].push_back(std::move(pub));
    AttemptTakeover(group);
  } else {
    cm_.forwarded.Inc();
    ForwardPubFrame fwd;
    fwd.topic = pub.topic;
    fwd.payload = pub.payload;
    fwd.pubId = pub.pubId;
    fwd.originServerId = cfg_.serverId;
    fwd.publishTs = pub.publishTs;
    fwd.electIfUnassigned = true;
    env_.SendToPeer(peers_[pick], fwd);
  }
}

void ClusterNode::SequenceAndBroadcast(const ParkedPublication& pub) {
  const std::uint32_t group = GroupOf(pub.topic);
  const auto pos = sequencer_.Assign(group, pub.topic);
  if (!pos) {
    // Lost coordination between routing and sequencing; retry routing.
    ParkedPublication copy = pub;
    RoutePublication(std::move(copy));
    return;
  }

  Message msg;
  msg.topic = pub.topic;
  msg.payload = pub.payload;
  msg.epoch = pos->epoch;
  msg.seq = pos->seq;
  msg.pubId = pub.pubId;
  msg.publishTs = pub.publishTs;

  if (!deliveryCursor_.contains(msg.topic)) {
    deliveryCursor_[msg.topic] = cache_.LastPos(msg.topic).value_or(StreamPos{});
  }
  cache_.Append(msg, env_.Now());
  cm_.published.Inc();

  // Track the pending ack. A local publisher is acknowledged after
  // ackCopies-1 replication confirmations. A forwarded publication is
  // acknowledged by its contact server — which, at the default two copies,
  // simply waits for the broadcast to arrive; with more copies it waits for
  // this coordinator's ReplicatedNotice, sent at the same threshold.
  if (pub.originServerId.empty() && pub.publisher != 0) {
    // The contact-side entry (registered before the coordinator was known)
    // is superseded: we became the coordinator ourselves.
    if (auto contact = pendingContact_.extract(pub.pubId); !contact.empty()) {
      env_.Cancel(contact.mapped().timeoutTimer);
    }
    pendingCoord_[{msg.topic, msg.epoch, msg.seq}] =
        PendingCoord{pub.publisher, {}, pub.pubId, 0, env_.Now()};
    cm_.replicationPending.Add(1);
  } else if (!pub.originServerId.empty() && cfg_.ackCopies > 2) {
    pendingCoord_[{msg.topic, msg.epoch, msg.seq}] =
        PendingCoord{0, pub.originServerId, pub.pubId, 0, env_.Now()};
    cm_.replicationPending.Add(1);
  }

  BroadcastFrame bcast;
  bcast.msg = msg;
  bcast.group = group;
  bcast.coordinatorId = cfg_.serverId;
  for (const std::string& peer : peers_) env_.SendToPeer(peer, bcast);

  DeliverInOrder(msg.topic);
}

void ClusterNode::AttemptTakeover(std::uint32_t group) {
  if (crashed_ || fenced_ || myGroups_.contains(group) || electing_.contains(group)) {
    return;
  }
  electing_.insert(group);
  // Atomic create in MiniZK: at most one server wins (paper §5.2.1).
  coord_.CreateEphemeral(
      GroupKey(group), cfg_.serverId, [this, group](Status s, std::uint64_t) {
        if (crashed_ || !started_) return;
        if (!s.ok()) {
          // Lost the race (or no quorum): unpark with a reject so
          // publishers republish toward the actual winner.
          electing_.erase(group);
          RejectParked(group);
          return;
        }
        // Won: derive the new epoch from a linearized counter — the version
        // of a persistent per-group key is strictly increasing across
        // takeovers, so each coordinator epoch supersedes its predecessors.
        coord_.Put(EpochKey(group), cfg_.serverId,
                   [this, group](Status ps, std::uint64_t version) {
                     if (crashed_ || !started_) return;
                     electing_.erase(group);
                     if (!ps.ok()) {
                       coord_.Delete(GroupKey(group), {});
                       RejectParked(group);
                       return;
                     }
                     FinishTakeover(group, static_cast<std::uint32_t>(version));
                   });
      });
}

void ClusterNode::FinishTakeover(std::uint32_t group, std::uint32_t epoch) {
  cm_.takeovers.Inc();
  myGroups_.insert(group);
  sequencer_.BeginEpoch(group, epoch);
  // Never reissue sequence numbers for positions already cached.
  for (const auto& [topic, pos] : cache_.GroupPositions(group)) {
    sequencer_.PrimeTopic(group, topic, pos);
  }
  gossip_[group] = {cfg_.serverId, epoch};
  MD_DEBUG("%s: coordinating group %u at epoch %u", cfg_.serverId.c_str(), group,
           epoch);

  // Populate peers' gossip maps (paper §5.2.1).
  const GossipAnnounceFrame announce{group, epoch, cfg_.serverId};
  for (const std::string& peer : peers_) env_.SendToPeer(peer, announce);

  DrainParked(group);
}

void ClusterNode::DrainParked(std::uint32_t group) {
  auto node = parked_.extract(group);
  if (node.empty()) return;
  for (ParkedPublication& pub : node.mapped()) {
    RoutePublication(std::move(pub));
  }
}

void ClusterNode::RejectParked(std::uint32_t group) {
  auto node = parked_.extract(group);
  if (node.empty()) return;
  for (const ParkedPublication& pub : node.mapped()) {
    cm_.rejects.Inc();
    if (!pub.originServerId.empty()) {
      env_.SendToPeer(pub.originServerId, ForwardRejectFrame{pub.pubId, pub.topic});
    } else if (pub.publisher != 0) {
      if (pendingContact_.contains(pub.pubId)) {
        AckContactPending(pub.pubId, false);
      } else {
        env_.SendToClient(pub.publisher, PubAckFrame{pub.pubId, false});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Peer events
// ---------------------------------------------------------------------------

void ClusterNode::OnPeerFrame(const std::string& from, const Frame& frame) {
  if (crashed_) return;
  if (const auto* bcast = std::get_if<BroadcastFrame>(&frame)) {
    OnBroadcast(from, *bcast);
    return;
  }
  if (const auto* ack = std::get_if<BroadcastAckFrame>(&frame)) {
    OnBroadcastAck(from, *ack);
    return;
  }
  if (const auto* fwd = std::get_if<ForwardPubFrame>(&frame)) {
    OnForwardPub(from, *fwd);
    return;
  }
  if (const auto* reject = std::get_if<ForwardRejectFrame>(&frame)) {
    OnForwardReject(*reject);
    return;
  }
  if (const auto* notice = std::get_if<ReplicatedNoticeFrame>(&frame)) {
    OnReplicatedNotice(*notice);
    return;
  }
  if (const auto* announce = std::get_if<GossipAnnounceFrame>(&frame)) {
    OnGossipAnnounce(*announce);
    return;
  }
  if (const auto* req = std::get_if<CacheSyncReqFrame>(&frame)) {
    OnCacheSyncReq(from, *req);
    return;
  }
  if (const auto* resp = std::get_if<CacheSyncRespFrame>(&frame)) {
    OnCacheSyncResp(*resp);
    return;
  }
}

void ClusterNode::OnBroadcast(const std::string& from, const BroadcastFrame& bcast) {
  // Refresh gossip from live traffic: broadcasts carry the coordinator.
  auto& entry = gossip_[bcast.group];
  if (bcast.msg.epoch >= entry.epoch) {
    entry = {bcast.coordinatorId, bcast.msg.epoch};
  }

  // The transport is FIFO, so a sequence gap means broadcasts were lost to a
  // connection break (partition, link fault). Appending past the gap would
  // bake a hole into the cache that reconstruction can no longer see — the
  // sync "have" positions report only the newest entry — so ask the
  // coordinator to backfill first (§5.2.2: "ask from the cache of the peer
  // the messages after the last sequence number it previously received").
  // An epoch jump is indistinguishable from a gap locally; sync then too
  // (the response is empty when nothing was missed).
  const auto last = cache_.LastPos(bcast.msg.topic);
  if (last && PosOf(bcast.msg) > *last &&
      (bcast.msg.epoch > last->epoch || bcast.msg.seq > last->seq + 1)) {
    CacheSyncReqFrame req;
    req.group = bcast.group;
    req.have = cache_.GroupPositions(bcast.group);
    env_.SendToPeer(from, req);
    // Local fan-out stalls until the backfill lands: subscribers must see the
    // hole's messages before anything sequenced after them. Replication and
    // publisher acks are not held up.
    StallDelivery(bcast.msg.topic);
  }
  if (!deliveryCursor_.contains(bcast.msg.topic)) {
    deliveryCursor_[bcast.msg.topic] = last.value_or(StreamPos{});
  }

  cache_.Append(bcast.msg, env_.Now());
  env_.SendToPeer(from, BroadcastAckFrame{bcast.group, bcast.msg.epoch,
                                          bcast.msg.seq, bcast.msg.topic});

  // If we forwarded this publication, the broadcast's arrival means two
  // copies exist (coordinator + us). At the default replication degree that
  // is the ack condition; with more copies we wait for the coordinator's
  // ReplicatedNotice instead.
  if (cfg_.ackCopies <= 2) AckContactPending(bcast.msg.pubId, true);

  DeliverInOrder(bcast.msg.topic);
}

void ClusterNode::OnBroadcastAck(const std::string&, const BroadcastAckFrame& ack) {
  // Replication confirmation for a message we sequenced. At the default
  // configuration one confirmation suffices (paper §5.2.2: "As soon as a
  // single confirmation is received, it can acknowledge the publisher");
  // with a higher replication degree we wait for ackCopies-1 distinct
  // confirmations before acknowledging or notifying the contact server.
  const auto it = pendingCoord_.find(CoordAckKey{ack.topic, ack.epoch, ack.seq});
  if (it == pendingCoord_.end()) return;
  PendingCoord& pending = it->second;
  ++pending.acksReceived;
  if (pending.acksReceived + 1 < cfg_.ackCopies) return;  // self counts as one

  if (pending.publisher != 0) {
    env_.SendToClient(pending.publisher, PubAckFrame{pending.pubId, true});
  } else if (!pending.originServerId.empty()) {
    env_.SendToPeer(pending.originServerId,
                    ReplicatedNoticeFrame{pending.pubId, ack.topic});
  }
  cm_.replicationAckNs.Record(env_.Now() - pending.start);
  cm_.replicationPending.Add(-1);
  pendingCoord_.erase(it);
}

void ClusterNode::OnReplicatedNotice(const ReplicatedNoticeFrame& notice) {
  // The coordinator confirms the configured replication degree was reached.
  AckContactPending(notice.pubId, true);
}

void ClusterNode::OnForwardPub(const std::string& from, const ForwardPubFrame& fwd) {
  if (fenced_) {
    // A fenced node cannot win elections or replicate; bounce immediately so
    // the publisher retries toward a healthy server.
    const std::string origin = fwd.originServerId.empty() ? from : fwd.originServerId;
    env_.SendToPeer(origin, ForwardRejectFrame{fwd.pubId, fwd.topic});
    return;
  }
  ParkedPublication pub;
  pub.topic = fwd.topic;
  pub.payload = fwd.payload;
  pub.pubId = fwd.pubId;
  pub.publishTs = fwd.publishTs;
  pub.originServerId = fwd.originServerId.empty() ? from : fwd.originServerId;

  const std::uint32_t group = GroupOf(pub.topic);
  if (myGroups_.contains(group)) {
    SequenceAndBroadcast(pub);
    return;
  }
  if (electing_.contains(group)) {
    parked_[group].push_back(std::move(pub));
    return;
  }
  // Not the coordinator. Whether designated for election or holding stale
  // gossip at the sender, the right move is to run for coordinator: the
  // MiniZK create arbitrates.
  parked_[group].push_back(std::move(pub));
  AttemptTakeover(group);
}

void ClusterNode::OnForwardReject(const ForwardRejectFrame& reject) {
  // Paper footnote 3: the designated node lost the race; tell the publisher
  // the publication failed so it republishes (by then gossip has the
  // winner).
  AckContactPending(reject.pubId, false);
  cm_.rejects.Inc();
}

void ClusterNode::OnGossipAnnounce(const GossipAnnounceFrame& announce) {
  auto& entry = gossip_[announce.group];
  if (announce.epoch >= entry.epoch) {
    entry = {announce.serverId, announce.epoch};
    if (announce.serverId != cfg_.serverId) {
      myGroups_.erase(announce.group);
      sequencer_.EndEpoch(announce.group);
    }
    DrainParked(announce.group);
  }
}

void ClusterNode::OnCacheSyncReq(const std::string& from, const CacheSyncReqFrame& req) {
  // Serve everything we hold for the group beyond the requester's positions.
  std::map<std::string, StreamPos> have(req.have.begin(), req.have.end());
  CacheSyncRespFrame resp;
  resp.group = req.group;
  for (const Message& msg : cache_.GroupSnapshot(req.group)) {
    const auto it = have.find(msg.topic);
    if (it != have.end() && PosOf(msg) <= it->second) continue;
    resp.messages.push_back(msg);
    if (resp.messages.size() >= cfg_.cacheSyncChunk) {
      resp.done = false;
      env_.SendToPeer(from, resp);
      resp.messages.clear();
      resp.done = true;
    }
  }
  env_.SendToPeer(from, resp);
}

void ClusterNode::OnCacheSyncResp(const CacheSyncRespFrame& resp) {
  for (const Message& msg : resp.messages) {
    if (cache_.Insert(msg, env_.Now())) cm_.backfilled.Inc();
  }
  if (!resp.done) return;
  syncing_.erase(resp.group);
  // A completed sync is the release condition for topics stalled behind a
  // sequence gap in this group.
  for (auto it = gapStalled_.begin(); it != gapStalled_.end();) {
    if (GroupOf(it->first) != resp.group) {
      ++it;
      continue;
    }
    env_.Cancel(it->second);
    it = gapStalled_.erase(it);
  }
  // Flush every live stream in the group past the backfill. This also covers
  // holes no broadcast ever exposed — a stream's tail lost to a link fault is
  // recovered by the reconnection sync, and subscribers must still see it.
  for (const auto& [topic, cursor] : deliveryCursor_) {
    if (GroupOf(topic) == resp.group) DeliverInOrder(topic);
  }
}

// ---------------------------------------------------------------------------
// Replication-confirmation bookkeeping
// ---------------------------------------------------------------------------

void ClusterNode::AckContactPending(const PublicationId& pubId, bool ok) {
  auto node = pendingContact_.extract(pubId);
  if (node.empty()) return;
  env_.Cancel(node.mapped().timeoutTimer);
  env_.SendToClient(node.mapped().publisher, PubAckFrame{pubId, ok});
}

// ---------------------------------------------------------------------------
// Fan-out
// ---------------------------------------------------------------------------

void ClusterNode::DeliverToLocalSubscribers(const Message& msg) {
  if (deliveryHook_) deliveryHook_(msg);
  // CoW snapshot + batched host delivery: the registry lock is held only for
  // a shared_ptr copy, and the env encodes the frame once for all targets.
  const core::SubscriberSnapshot subs = registry_.Snapshot(msg.topic);
  if (!subs || subs->empty()) return;
  cm_.delivered.Inc(subs->size());
  env_.SendToClients(*subs, DeliverFrame{msg});
}

void ClusterNode::DeliverInOrder(const std::string& topic) {
  if (gapStalled_.contains(topic)) return;
  StreamPos& cursor = deliveryCursor_[topic];
  for (const Message& msg : cache_.GetAfter(topic, cursor)) {
    cursor = PosOf(msg);
    DeliverToLocalSubscribers(msg);
  }
}

void ClusterNode::StallDelivery(const std::string& topic) {
  if (gapStalled_.contains(topic)) return;
  gapStalled_[topic] = env_.Schedule(cfg_.gapSyncTimeout, [this, topic] {
    // The backfill never completed (peer gone mid-sync). Resume with what the
    // cache holds rather than stalling the stream forever.
    gapStalled_.erase(topic);
    DeliverInOrder(topic);
  });
}

// ---------------------------------------------------------------------------
// Partition self-fencing (paper §5.2.2)
// ---------------------------------------------------------------------------

void ClusterNode::CheckFence() {
  if (crashed_ || !started_) return;
  fenceTimer_ = env_.Schedule(cfg_.fenceCheckInterval, [this] { CheckFence(); });

  const bool quorum = coord_.HasQuorumContact();
  if (!quorum && !fenced_) {
    Fence();
  } else if (quorum && fenced_) {
    Unfence();
  }
}

void ClusterNode::Fence() {
  // "The disconnected cluster member preventively closes the connections to
  // its local clients, and lets them reconnect to the other cluster
  // members."
  fenced_ = true;
  fenceStart_ = env_.Now();
  cm_.fences.Inc();
  MD_INFO("%s: lost quorum contact — fencing, closing %zu clients",
          cfg_.serverId.c_str(), clients_.size());
  const auto clients = clients_;  // CloseClient may reenter OnClientDisconnect
  for (const ClientHandle client : clients) {
    env_.SendToClient(client, DisconnectFrame{"server fenced: lost cluster quorum"});
    env_.CloseClient(client);
    registry_.DropClient(client);
  }
  clients_.clear();
  // Coordination roles are forfeited: the ephemerals will expire server-side.
  for (const std::uint32_t g : myGroups_) sequencer_.EndEpoch(g);
  myGroups_.clear();
  electing_.clear();
  // Parked and pending publications cannot complete.
  for (auto& [group, queue] : parked_) {
    for (const auto& pub : queue) {
      if (!pub.originServerId.empty()) continue;  // origin will time out
      if (pub.publisher != 0) cm_.rejects.Inc();
    }
  }
  parked_.clear();
  cm_.replicationPending.Add(-static_cast<std::int64_t>(pendingCoord_.size()));
  pendingCoord_.clear();
}

void ClusterNode::Unfence() {
  MD_INFO("%s: quorum contact restored — recovering", cfg_.serverId.c_str());
  fenced_ = false;
  cm_.unfences.Inc();
  if (fenceStart_ >= 0) {
    const Duration span = env_.Now() - fenceStart_;
    cm_.failoverLastNs.Set(span);
    cm_.failoverNs.Record(span);
    fenceStart_ = -1;
  }
  gossip_.clear();  // stale after the partition
  // "When the partition is restored, the server can recover following the
  // same procedure as for a crash failure."
  StartCacheReconstruction();
}

void ClusterNode::StartCacheReconstruction() {
  if (peers_.empty()) return;
  for (std::uint32_t g = 0; g < cfg_.topicGroups; ++g) {
    syncing_.insert(g);
    CacheSyncReqFrame req;
    req.group = g;
    req.have = cache_.GroupPositions(g);
    for (const std::string& peer : peers_) env_.SendToPeer(peer, req);
  }
}

void ClusterNode::SyncFromPeer(const std::string& peerId) {
  // Paper §5.2.2: after an inter-server connection recovers, "it is
  // sufficient for the current member to ask from the cache of the peer the
  // messages after the last sequence number it previously received".
  if (crashed_ || !started_) return;
  for (std::uint32_t g = 0; g < cfg_.topicGroups; ++g) {
    CacheSyncReqFrame req;
    req.group = g;
    req.have = cache_.GroupPositions(g);
    env_.SendToPeer(peerId, req);
  }
}

}  // namespace md::cluster
