#include "cluster/node.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"

namespace md::cluster {

ClusterNode::ClusterNode(ClusterConfig cfg, ClusterEnv& env,
                         coord::CoordNode& coord, std::vector<std::string> peerIds)
    : cfg_([&] {
        cfg.cache.topicGroups = cfg.topicGroups;
        return cfg;
      }()),
      env_(env),
      coord_(coord),
      peers_(std::move(peerIds)),
      cache_(cfg_.cache),
      cm_(cfg_.metrics != nullptr ? *cfg_.metrics
                                  : obs::MetricsRegistry::Default(),
          obs::ServerLabel(cfg_.serverId)),
      wm_(cfg_.metrics != nullptr ? *cfg_.metrics
                                  : obs::MetricsRegistry::Default(),
          obs::ServerLabel(cfg_.serverId)) {
  if (!cfg_.wal.dir.empty()) {
    wal::Env& env = cfg_.walEnv != nullptr
                        ? *cfg_.walEnv
                        : static_cast<wal::Env&>(wal::PosixEnv::Instance());
    wal_ = std::make_unique<wal::Log>(env, cfg_.wal, &wm_);
    cache_.AttachWal(wal_.get());
  }
  if (cfg_.elastic) {
    quorum_ = Quorum(cfg_.minQuorumVotes);
    memberUniverse_ = peers_;
    memberUniverse_.push_back(cfg_.serverId);
    std::sort(memberUniverse_.begin(), memberUniverse_.end());
    for (const std::string& id : memberUniverse_) quorum_.AddNode(id);
  }
}

ClusterNodeStats ClusterNode::stats() const {
  ClusterNodeStats s;
  s.published = cm_.published.Value();
  s.forwarded = cm_.forwarded.Value();
  s.delivered = cm_.delivered.Value();
  s.rejects = cm_.rejects.Value();
  s.takeovers = cm_.takeovers.Value();
  s.fences = cm_.fences.Value();
  s.recoveredMessages = cm_.backfilled.Value();
  s.handoffs = cm_.handoffs.Value();
  s.handoffAborts = cm_.handoffAborts.Value();
  s.quorumRejects = cm_.quorumRejects.Value();
  s.fenceRefusals = cm_.fenceRefusals.Value();
  s.rebalances = cm_.rebalances.Value();
  return s;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void ClusterNode::Start() {
  started_ = true;
  crashed_ = false;
  fenced_ = false;
  SetupWatches();
  fenceTimer_ = env_.Schedule(cfg_.fenceCheckInterval, [this] { CheckFence(); });
  if (wal_ && wal_->config().fsync == wal::FsyncPolicy::kGroupCommit) {
    walFlushTimer_ =
        env_.Schedule(wal_->config().flushInterval, [this] { WalFlushTick(); });
  }
  if (cfg_.elastic) JoinMembership();
}

void ClusterNode::Crash() {
  crashed_ = true;
  started_ = false;
  env_.Cancel(fenceTimer_);
  env_.Cancel(walFlushTimer_);
  walFlushTimer_ = 0;
  // kill -9 semantics for the WAL: drop open segment handles WITHOUT a final
  // sync. Whatever the fsync policy left unsynced is at the storage layer's
  // mercy (the sim's MemEnv then tears it realistically).
  if (wal_) wal_->Abandon();
  // Fail-stop: every piece of volatile state disappears.
  for (const ClientHandle client : clients_) registry_.DropClient(client);
  clients_.clear();
  cache_.Clear();
  gossip_.clear();
  for (const std::uint32_t g : myGroups_) sequencer_.EndEpoch(g);
  myGroups_.clear();
  electing_.clear();
  parked_.clear();
  pendingContact_.clear();
  cm_.replicationPending.Add(-static_cast<std::int64_t>(pendingCoord_.size()));
  pendingCoord_.clear();
  syncing_.clear();
  for (const auto& [topic, timer] : gapStalled_) env_.Cancel(timer);
  gapStalled_.clear();
  deliveryCursor_.clear();
  fenceStart_ = -1;  // a crash supersedes any open fence span
  // Elastic state is volatile too: the next incarnation rejoins with a fresh
  // fence epoch and rebuilds its membership view from the coordination store.
  env_.Cancel(rebalanceTimer_);
  rebalanceTimer_ = 0;
  env_.Cancel(joinTimer_);
  joinTimer_ = 0;
  for (auto& [id, handoff] : outHandoffs_) env_.Cancel(handoff.timeoutTimer);
  outHandoffs_.clear();
  pendingAttach_.clear();
  clientIds_.clear();
  memberEpoch_.clear();
  peerEpochFloor_.clear();
  assignment_ = {};
  leaving_ = false;
  leaveDone_ = nullptr;
  for (const std::string& id : memberUniverse_) quorum_.SetOnline(id, false);
}

void ClusterNode::Restart() {
  // Local WAL first: everything that survived on this node's own disk is
  // back in the cache before any peer is asked, so the CacheSyncReq cursors
  // describe the recovered state and peers only ship the delta.
  RecoverFromWal();
  Start();
  // Paper §5.2.2: "If a cluster member experiences a crash failure and
  // restarts, it reconstructs its cache by asking all members of the cluster
  // in parallel."
  StartCacheReconstruction();
}

void ClusterNode::RecoverFromWal() {
  if (!wal_) return;
  const TimePoint now = env_.Now();
  lastRecovery_ = wal_->Recover([this, now](Message&& msg) {
    // InsertRecovered: sorted + deduped, and does NOT re-append to the WAL.
    cache_.InsertRecovered(msg, now);
  });
  if (lastRecovery_.records > 0 || lastRecovery_.tornTails > 0 ||
      lastRecovery_.corruptSkipped > 0) {
    MD_INFO("%s: WAL replay: %llu records, %llu corrupt skipped, %llu torn "
            "tails, %llu bad segments",
            cfg_.serverId.c_str(),
            static_cast<unsigned long long>(lastRecovery_.records),
            static_cast<unsigned long long>(lastRecovery_.corruptSkipped),
            static_cast<unsigned long long>(lastRecovery_.tornTails),
            static_cast<unsigned long long>(lastRecovery_.badSegments));
  }
}

void ClusterNode::WalFlushTick() {
  if (crashed_ || !started_ || !wal_) return;
  wal_->Flush(env_.Now());
  walFlushTimer_ =
      env_.Schedule(wal_->config().flushInterval, [this] { WalFlushTick(); });
}

void ClusterNode::SetupWatches() {
  if (watchesInstalled_) return;
  watchesInstalled_ = true;
  // Watch every group mapping: deletions signal coordinator failure and
  // trigger the takeover race (paper §5.2.1).
  for (std::uint32_t g = 0; g < cfg_.topicGroups; ++g) {
    coord_.Watch(GroupKey(g), [this, g](const coord::WatchEvent& event) {
      if (crashed_ || !started_) return;
      switch (event.type) {
        case coord::WatchEventType::kCreated:
        case coord::WatchEventType::kChanged:
          if (event.value != cfg_.serverId) {
            // Another server coordinates now; epoch arrives via gossip.
            myGroups_.erase(g);
            sequencer_.EndEpoch(g);
          }
          break;
        case coord::WatchEventType::kDeleted:
          myGroups_.erase(g);
          sequencer_.EndEpoch(g);
          gossip_.erase(g);
          // Race to take over groups we hold state for. Idle groups are
          // re-assigned lazily by the next publication.
          if (!cache_.GroupPositions(g).empty()) AttemptTakeover(g);
          break;
      }
    });
  }
  if (!cfg_.elastic) return;
  // Membership watches: an ephemeral members/<id> appearing or vanishing is
  // the join/leave signal that drives the quorum view, the per-peer fence
  // floors, and the (debounced) rebalance.
  for (const std::string& id : memberUniverse_) {
    coord_.Watch(coord::MemberKey(id),
                 [this, id](const coord::WatchEvent& event) {
                   if (crashed_ || !started_) return;
                   OnMemberEvent(id, event);
                 });
  }
}

// ---------------------------------------------------------------------------
// Client events
// ---------------------------------------------------------------------------

void ClusterNode::OnClientConnect(ClientHandle client, const std::string& clientId) {
  // A node that has not joined yet (or is draining out) refuses new
  // sessions; the client library blacklists the address and picks another.
  if (crashed_ || fenced_ || !started_ || leaving_) {
    env_.CloseClient(client);
    return;
  }
  clients_.insert(client);
  if (!clientId.empty()) clientIds_[client] = clientId;
  env_.SendToClient(client, ConnAckFrame{cfg_.serverId});
}

void ClusterNode::OnClientDisconnect(ClientHandle client) {
  clients_.erase(client);
  clientIds_.erase(client);
  registry_.DropClient(client);
}

void ClusterNode::OnClientFrame(ClientHandle client, const Frame& frame) {
  if (crashed_) return;
  if (const auto* connect = std::get_if<ConnectFrame>(&frame)) {
    // Routed even when not (yet / any longer) serving: OnClientConnect
    // refuses by closing the connection, which is what tells the client to
    // black-list this address and fail over. Silently dropping the frame
    // would leave the client waiting on a CONNACK from a node that will
    // never answer — a deferred-start member must bounce, not absorb.
    OnClientConnect(client, connect->clientId);
    return;
  }
  if (!started_) return;
  if (const auto* sub = std::get_if<SubscribeFrame>(&frame)) {
    HandleSubscribe(client, *sub);
    return;
  }
  if (const auto* unsub = std::get_if<UnsubscribeFrame>(&frame)) {
    registry_.Unsubscribe(unsub->topic, client);
    return;
  }
  if (const auto* pub = std::get_if<PublishFrame>(&frame)) {
    HandlePublish(client, *pub);
    return;
  }
  if (const auto* ping = std::get_if<PingFrame>(&frame)) {
    env_.SendToClient(client, PongFrame{ping->nonce});
    return;
  }
  if (std::get_if<DisconnectFrame>(&frame) != nullptr) {
    env_.CloseClient(client);
    OnClientDisconnect(client);
    return;
  }
}

void ClusterNode::HandleSubscribe(ClientHandle client, const SubscribeFrame& sub) {
  registry_.Subscribe(sub.topic, client);
  env_.SendToClient(client, SubAckFrame{sub.topic, true});
  bool hasResume = sub.hasResumePos;
  StreamPos resumeAfter = sub.resumeAfter;
  if (!hasResume) {
    // A redirected hand-off session subscribing fresh adopts the transferred
    // cursor as its resume floor, so the backfill starts exactly at the
    // ownership boundary (consumed once per topic).
    const auto idIt = clientIds_.find(client);
    if (idIt != clientIds_.end()) {
      const auto attachIt = pendingAttach_.find(idIt->second);
      if (attachIt != pendingAttach_.end()) {
        auto& cursors = attachIt->second;
        for (auto it = cursors.begin(); it != cursors.end(); ++it) {
          if (it->first != sub.topic) continue;
          hasResume = true;
          resumeAfter = it->second;
          cursors.erase(it);
          break;
        }
        if (cursors.empty()) pendingAttach_.erase(attachIt);
      }
    }
  }
  if (hasResume) {
    // While this topic's group has a cache sync outstanding (or the topic is
    // gap-stalled) the cache may hold interior holes, and the client-side
    // duplicate filter is position-based — once it accepts a message past a
    // hole, the late hole-fill would be dropped as a duplicate. Serve only
    // the provably contiguous prefix of the backfill and let the post-sync
    // DeliverInOrder flush hand over the rest (already-caught-up subscribers
    // filter the overlap).
    const bool suspect = syncing_.contains(GroupOf(sub.topic)) ||
                         gapStalled_.contains(sub.topic);
    StreamPos last = resumeAfter;
    bool truncated = false;
    for (const Message& missed : cache_.GetAfter(sub.topic, resumeAfter)) {
      if (suspect) {
        const StreamPos pos = PosOf(missed);
        if (pos.epoch != last.epoch || pos.seq != last.seq + 1) {
          truncated = true;
          break;
        }
        last = pos;
      }
      cm_.delivered.Inc();
      env_.SendToClient(client, DeliverFrame{missed});
    }
    if (truncated) {
      // Rewind the shared fan-out cursor to the boundary so the post-sync
      // flush re-delivers from there; clients already past it dedup.
      auto [it, inserted] = deliveryCursor_.try_emplace(sub.topic, last);
      if (!inserted && last < it->second) it->second = last;
      StallDelivery(sub.topic);
    }
  }
}

void ClusterNode::HandlePublish(ClientHandle client, const PublishFrame& pub) {
  ParkedPublication p;
  p.topic = pub.topic;
  p.payload = pub.payload;
  p.pubId = pub.pubId;
  p.publishTs = pub.publishTs;
  p.publisher = pub.wantAck ? client : 0;
  RoutePublication(std::move(p));
}

// ---------------------------------------------------------------------------
// Publication routing (paper §5.2.2)
// ---------------------------------------------------------------------------

void ClusterNode::RoutePublication(ParkedPublication pub) {
  if (fenced_) {
    if (!pub.originServerId.empty()) {
      env_.SendToPeer(pub.originServerId, ForwardRejectFrame{pub.pubId, pub.topic});
    } else if (pub.publisher != 0) {
      env_.SendToClient(pub.publisher,
                        PubAckFrame{pub.pubId, PubAckCode::kFailed});
    }
    return;
  }
  if (!HasWriteQuorum()) {
    // Quorum gate (DESIGN.md §12): a partitioned minority must not sequence.
    // Local publishers get the retryable kNoQuorum status; forwarded
    // publications bounce to their contact server, which answers its own
    // publisher.
    cm_.quorumRejects.Inc();
    if (!pub.originServerId.empty()) {
      env_.SendToPeer(pub.originServerId, ForwardRejectFrame{pub.pubId, pub.topic});
    } else if (pub.publisher != 0) {
      if (pendingContact_.contains(pub.pubId)) {
        AckContactPending(pub.pubId, false);
      } else {
        env_.SendToClient(pub.publisher,
                          PubAckFrame{pub.pubId, PubAckCode::kNoQuorum});
      }
    }
    return;
  }
  const std::uint32_t group = GroupOf(pub.topic);

  if (myGroups_.contains(group)) {
    SequenceAndBroadcast(pub);
    return;
  }

  if (electing_.contains(group)) {
    parked_[group].push_back(std::move(pub));  // takeover already running
    return;
  }

  // The contact server remembers the publication until the sequenced
  // broadcast comes back (the signal that two copies exist), then acks.
  if (pub.originServerId.empty() && pub.publisher != 0) {
    PendingContact pending;
    pending.publisher = pub.publisher;
    pending.topic = pub.topic;
    const PublicationId pubId = pub.pubId;
    pending.timeoutTimer = env_.Schedule(cfg_.forwardTimeout, [this, pubId] {
      AckContactPending(pubId, false);  // publisher will republish
    });
    pendingContact_[pub.pubId] = pending;
  }

  const auto it = gossip_.find(group);
  if (it != gossip_.end() && it->second.serverId != cfg_.serverId) {
    // Known coordinator: forward.
    cm_.forwarded.Inc();
    ForwardPubFrame fwd;
    fwd.topic = pub.topic;
    fwd.payload = pub.payload;
    fwd.pubId = pub.pubId;
    fwd.originServerId = cfg_.serverId;
    fwd.publishTs = pub.publishTs;
    fwd.electIfUnassigned = false;
    env_.SendToPeer(it->second.serverId, fwd);
    return;
  }

  // Unassigned group: delegate coordinator acquisition to a random server
  // (avoids a publisher's contact point accumulating every coordinator
  // role — paper footnote 2). The random pick may be ourselves.
  const std::size_t pick = env_.Random() % (peers_.size() + 1);
  if (pick == peers_.size()) {
    parked_[group].push_back(std::move(pub));
    AttemptTakeover(group);
  } else {
    cm_.forwarded.Inc();
    ForwardPubFrame fwd;
    fwd.topic = pub.topic;
    fwd.payload = pub.payload;
    fwd.pubId = pub.pubId;
    fwd.originServerId = cfg_.serverId;
    fwd.publishTs = pub.publishTs;
    fwd.electIfUnassigned = true;
    env_.SendToPeer(peers_[pick], fwd);
  }
}

void ClusterNode::SequenceAndBroadcast(const ParkedPublication& pub) {
  const std::uint32_t group = GroupOf(pub.topic);
  const auto pos = sequencer_.Assign(group, pub.topic);
  if (!pos) {
    // Lost coordination between routing and sequencing; retry routing.
    ParkedPublication copy = pub;
    RoutePublication(std::move(copy));
    return;
  }

  Message msg;
  msg.topic = pub.topic;
  msg.payload = pub.payload;
  msg.epoch = pos->epoch;
  msg.seq = pos->seq;
  msg.pubId = pub.pubId;
  msg.publishTs = pub.publishTs;

  if (!deliveryCursor_.contains(msg.topic)) {
    deliveryCursor_[msg.topic] = cache_.LastPos(msg.topic).value_or(StreamPos{});
  }
  cache_.Append(msg, env_.Now());
  cm_.published.Inc();

  // Track the pending ack. A local publisher is acknowledged after
  // ackCopies-1 replication confirmations. A forwarded publication is
  // acknowledged by its contact server — which, at the default two copies,
  // simply waits for the broadcast to arrive; with more copies it waits for
  // this coordinator's ReplicatedNotice, sent at the same threshold.
  if (pub.originServerId.empty() && pub.publisher != 0) {
    // The contact-side entry (registered before the coordinator was known)
    // is superseded: we became the coordinator ourselves.
    if (auto contact = pendingContact_.extract(pub.pubId); !contact.empty()) {
      env_.Cancel(contact.mapped().timeoutTimer);
    }
    pendingCoord_[{msg.topic, msg.epoch, msg.seq}] =
        PendingCoord{pub.publisher, {}, pub.pubId, 0, env_.Now()};
    cm_.replicationPending.Add(1);
  } else if (!pub.originServerId.empty() && cfg_.ackCopies > 2) {
    pendingCoord_[{msg.topic, msg.epoch, msg.seq}] =
        PendingCoord{0, pub.originServerId, pub.pubId, 0, env_.Now()};
    cm_.replicationPending.Add(1);
  }

  BroadcastFrame bcast;
  bcast.msg = msg;
  bcast.group = group;
  bcast.coordinatorId = cfg_.serverId;
  bcast.fenceEpoch = fenceEpoch_;
  for (const std::string& peer : peers_) env_.SendToPeer(peer, bcast);

  DeliverInOrder(msg.topic);
}

void ClusterNode::AttemptTakeover(std::uint32_t group) {
  // A leaving member must not acquire new coordinator roles — it is about to
  // delete the very group entries a takeover would create.
  if (crashed_ || fenced_ || leaving_ || myGroups_.contains(group) ||
      electing_.contains(group)) {
    return;
  }
  electing_.insert(group);
  // Atomic create in MiniZK: at most one server wins (paper §5.2.1).
  coord_.CreateEphemeral(
      GroupKey(group), cfg_.serverId, [this, group](Status s, std::uint64_t) {
        if (crashed_ || !started_) return;
        if (!s.ok()) {
          // Lost the race (or no quorum): unpark with a reject so
          // publishers republish toward the actual winner.
          electing_.erase(group);
          RejectParked(group);
          return;
        }
        // Won: derive the new epoch from a linearized counter — the version
        // of a persistent per-group key is strictly increasing across
        // takeovers, so each coordinator epoch supersedes its predecessors.
        coord_.Put(EpochKey(group), cfg_.serverId,
                   [this, group](Status ps, std::uint64_t version) {
                     if (crashed_ || !started_) return;
                     electing_.erase(group);
                     if (!ps.ok()) {
                       coord_.Delete(GroupKey(group), {});
                       RejectParked(group);
                       return;
                     }
                     FinishTakeover(group, static_cast<std::uint32_t>(version));
                   });
      });
}

void ClusterNode::FinishTakeover(std::uint32_t group, std::uint32_t epoch) {
  cm_.takeovers.Inc();
  myGroups_.insert(group);
  sequencer_.BeginEpoch(group, epoch);
  // Never reissue sequence numbers for positions already cached.
  for (const auto& [topic, pos] : cache_.GroupPositions(group)) {
    sequencer_.PrimeTopic(group, topic, pos);
  }
  gossip_[group] = {cfg_.serverId, epoch};
  MD_DEBUG("%s: coordinating group %u at epoch %u", cfg_.serverId.c_str(), group,
           epoch);

  // Populate peers' gossip maps (paper §5.2.1).
  const GossipAnnounceFrame announce{group, epoch, cfg_.serverId};
  for (const std::string& peer : peers_) env_.SendToPeer(peer, announce);

  DrainParked(group);
}

void ClusterNode::DrainParked(std::uint32_t group) {
  auto node = parked_.extract(group);
  if (node.empty()) return;
  for (ParkedPublication& pub : node.mapped()) {
    RoutePublication(std::move(pub));
  }
}

void ClusterNode::RejectParked(std::uint32_t group) {
  auto node = parked_.extract(group);
  if (node.empty()) return;
  for (const ParkedPublication& pub : node.mapped()) {
    cm_.rejects.Inc();
    if (!pub.originServerId.empty()) {
      env_.SendToPeer(pub.originServerId, ForwardRejectFrame{pub.pubId, pub.topic});
    } else if (pub.publisher != 0) {
      if (pendingContact_.contains(pub.pubId)) {
        AckContactPending(pub.pubId, false);
      } else {
        env_.SendToClient(pub.publisher,
                          PubAckFrame{pub.pubId, PubAckCode::kFailed});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Peer events
// ---------------------------------------------------------------------------

void ClusterNode::OnPeerFrame(const std::string& from, const Frame& frame) {
  if (crashed_ || !started_) return;
  if (const auto* bcast = std::get_if<BroadcastFrame>(&frame)) {
    OnBroadcast(from, *bcast);
    return;
  }
  if (const auto* ack = std::get_if<BroadcastAckFrame>(&frame)) {
    OnBroadcastAck(from, *ack);
    return;
  }
  if (const auto* fwd = std::get_if<ForwardPubFrame>(&frame)) {
    OnForwardPub(from, *fwd);
    return;
  }
  if (const auto* reject = std::get_if<ForwardRejectFrame>(&frame)) {
    OnForwardReject(*reject);
    return;
  }
  if (const auto* notice = std::get_if<ReplicatedNoticeFrame>(&frame)) {
    OnReplicatedNotice(*notice);
    return;
  }
  if (const auto* announce = std::get_if<GossipAnnounceFrame>(&frame)) {
    OnGossipAnnounce(*announce);
    return;
  }
  if (const auto* req = std::get_if<CacheSyncReqFrame>(&frame)) {
    OnCacheSyncReq(from, *req);
    return;
  }
  if (const auto* resp = std::get_if<CacheSyncRespFrame>(&frame)) {
    OnCacheSyncResp(*resp);
    return;
  }
  if (const auto* begin = std::get_if<HandoffBeginFrame>(&frame)) {
    OnHandoffBegin(from, *begin);
    return;
  }
  if (const auto* ack = std::get_if<HandoffAckFrame>(&frame)) {
    OnHandoffAck(*ack);
    return;
  }
}

void ClusterNode::OnBroadcast(const std::string& from, const BroadcastFrame& bcast) {
  // Epoch fencing (DESIGN.md §12): a broadcast stamped with an incarnation
  // below the sender's announced fence floor comes from an evicted node
  // replaying buffered writes — refuse it (and send no ack, so the stale
  // sender cannot complete replication either). Epoch 0 marks a sender not
  // running elastic membership and is always accepted.
  if (RefuseStaleEpoch(from, bcast.fenceEpoch)) return;
  // Refresh gossip from live traffic: broadcasts carry the coordinator.
  auto& entry = gossip_[bcast.group];
  if (bcast.msg.epoch >= entry.epoch) {
    entry = {bcast.coordinatorId, bcast.msg.epoch};
  }

  // The transport is FIFO, so a sequence gap means broadcasts were lost to a
  // connection break (partition, link fault). Appending past the gap would
  // bake a hole into the cache that reconstruction can no longer see — the
  // sync "have" positions report only the newest entry — so ask the
  // coordinator to backfill first (§5.2.2: "ask from the cache of the peer
  // the messages after the last sequence number it previously received").
  // An epoch jump is indistinguishable from a gap locally; sync then too
  // (the response is empty when nothing was missed).
  const auto last = cache_.LastPos(bcast.msg.topic);
  if (last && PosOf(bcast.msg) > *last &&
      (bcast.msg.epoch > last->epoch || bcast.msg.seq > last->seq + 1)) {
    CacheSyncReqFrame req;
    req.group = bcast.group;
    req.have = cache_.GroupPositions(bcast.group);
    env_.SendToPeer(from, req);
    // Local fan-out stalls until the backfill lands: subscribers must see the
    // hole's messages before anything sequenced after them. Replication and
    // publisher acks are not held up.
    StallDelivery(bcast.msg.topic);
  }
  if (!deliveryCursor_.contains(bcast.msg.topic)) {
    deliveryCursor_[bcast.msg.topic] = last.value_or(StreamPos{});
  }

  cache_.Append(bcast.msg, env_.Now());
  env_.SendToPeer(from, BroadcastAckFrame{bcast.group, bcast.msg.epoch,
                                          bcast.msg.seq, bcast.msg.topic});

  // If we forwarded this publication, the broadcast's arrival means two
  // copies exist (coordinator + us). At the default replication degree that
  // is the ack condition; with more copies we wait for the coordinator's
  // ReplicatedNotice instead.
  if (cfg_.ackCopies <= 2) AckContactPending(bcast.msg.pubId, true);

  DeliverInOrder(bcast.msg.topic);
}

void ClusterNode::OnBroadcastAck(const std::string&, const BroadcastAckFrame& ack) {
  // Replication confirmation for a message we sequenced. At the default
  // configuration one confirmation suffices (paper §5.2.2: "As soon as a
  // single confirmation is received, it can acknowledge the publisher");
  // with a higher replication degree we wait for ackCopies-1 distinct
  // confirmations before acknowledging or notifying the contact server.
  const auto it = pendingCoord_.find(CoordAckKey{ack.topic, ack.epoch, ack.seq});
  if (it == pendingCoord_.end()) return;
  PendingCoord& pending = it->second;
  ++pending.acksReceived;
  if (pending.acksReceived + 1 < cfg_.ackCopies) return;  // self counts as one

  if (pending.publisher != 0) {
    env_.SendToClient(pending.publisher,
                      PubAckFrame{pending.pubId, PubAckCode::kOk});
  } else if (!pending.originServerId.empty()) {
    env_.SendToPeer(pending.originServerId,
                    ReplicatedNoticeFrame{pending.pubId, ack.topic});
  }
  cm_.replicationAckNs.Record(env_.Now() - pending.start);
  cm_.replicationPending.Add(-1);
  pendingCoord_.erase(it);
}

void ClusterNode::OnReplicatedNotice(const ReplicatedNoticeFrame& notice) {
  // The coordinator confirms the configured replication degree was reached.
  AckContactPending(notice.pubId, true);
}

void ClusterNode::OnForwardPub(const std::string& from, const ForwardPubFrame& fwd) {
  if (fenced_) {
    // A fenced node cannot win elections or replicate; bounce immediately so
    // the publisher retries toward a healthy server.
    const std::string origin = fwd.originServerId.empty() ? from : fwd.originServerId;
    env_.SendToPeer(origin, ForwardRejectFrame{fwd.pubId, fwd.topic});
    return;
  }
  ParkedPublication pub;
  pub.topic = fwd.topic;
  pub.payload = fwd.payload;
  pub.pubId = fwd.pubId;
  pub.publishTs = fwd.publishTs;
  pub.originServerId = fwd.originServerId.empty() ? from : fwd.originServerId;

  const std::uint32_t group = GroupOf(pub.topic);
  if (myGroups_.contains(group)) {
    SequenceAndBroadcast(pub);
    return;
  }
  if (electing_.contains(group)) {
    parked_[group].push_back(std::move(pub));
    return;
  }
  // Not the coordinator. Whether designated for election or holding stale
  // gossip at the sender, the right move is to run for coordinator: the
  // MiniZK create arbitrates.
  parked_[group].push_back(std::move(pub));
  AttemptTakeover(group);
}

void ClusterNode::OnForwardReject(const ForwardRejectFrame& reject) {
  // Paper footnote 3: the designated node lost the race; tell the publisher
  // the publication failed so it republishes (by then gossip has the
  // winner).
  AckContactPending(reject.pubId, false);
  cm_.rejects.Inc();
}

void ClusterNode::OnGossipAnnounce(const GossipAnnounceFrame& announce) {
  auto& entry = gossip_[announce.group];
  if (announce.epoch >= entry.epoch) {
    entry = {announce.serverId, announce.epoch};
    if (announce.serverId != cfg_.serverId) {
      myGroups_.erase(announce.group);
      sequencer_.EndEpoch(announce.group);
    }
    DrainParked(announce.group);
  }
}

void ClusterNode::OnCacheSyncReq(const std::string& from, const CacheSyncReqFrame& req) {
  // Serve everything we hold for the group outside the requester's covered
  // span [head, have]: newer than its cursor, or older than its earliest
  // surviving record (head-hole backfill).
  std::map<std::string, StreamPos> have(req.have.begin(), req.have.end());
  std::map<std::string, StreamPos> head(req.head.begin(), req.head.end());
  CacheSyncRespFrame resp;
  resp.group = req.group;
  for (const Message& msg : cache_.GroupSnapshot(req.group)) {
    const auto it = have.find(msg.topic);
    if (it != have.end() && PosOf(msg) <= it->second) {
      const auto h = head.find(msg.topic);
      if (h == head.end() || PosOf(msg) >= h->second) continue;
    }
    resp.messages.push_back(msg);
    if (resp.messages.size() >= cfg_.cacheSyncChunk) {
      resp.done = false;
      env_.SendToPeer(from, resp);
      resp.messages.clear();
      resp.done = true;
    }
  }
  env_.SendToPeer(from, resp);
}

void ClusterNode::OnCacheSyncResp(const CacheSyncRespFrame& resp) {
  for (const Message& msg : resp.messages) {
    if (cache_.Insert(msg, env_.Now())) cm_.backfilled.Inc();
  }
  if (!resp.done) return;
  syncing_.erase(resp.group);
  // A completed sync is the release condition for topics stalled behind a
  // sequence gap in this group.
  for (auto it = gapStalled_.begin(); it != gapStalled_.end();) {
    if (GroupOf(it->first) != resp.group) {
      ++it;
      continue;
    }
    env_.Cancel(it->second);
    it = gapStalled_.erase(it);
  }
  // Flush every live stream in the group past the backfill. This also covers
  // holes no broadcast ever exposed — a stream's tail lost to a link fault is
  // recovered by the reconnection sync, and subscribers must still see it.
  for (const auto& [topic, cursor] : deliveryCursor_) {
    if (GroupOf(topic) == resp.group) DeliverInOrder(topic);
  }
}

// ---------------------------------------------------------------------------
// Replication-confirmation bookkeeping
// ---------------------------------------------------------------------------

void ClusterNode::AckContactPending(const PublicationId& pubId, bool ok) {
  auto node = pendingContact_.extract(pubId);
  if (node.empty()) return;
  env_.Cancel(node.mapped().timeoutTimer);
  env_.SendToClient(
      node.mapped().publisher,
      PubAckFrame{pubId, ok ? PubAckCode::kOk : PubAckCode::kFailed});
}

// ---------------------------------------------------------------------------
// Fan-out
// ---------------------------------------------------------------------------

void ClusterNode::DeliverToLocalSubscribers(const Message& msg) {
  if (deliveryHook_) deliveryHook_(msg);
  // CoW snapshot + batched host delivery: the registry lock is held only for
  // a shared_ptr copy, and the env encodes the frame once for all targets.
  const core::SubscriberSnapshot subs = registry_.Snapshot(msg.topic);
  if (!subs || subs->empty()) return;
  cm_.delivered.Inc(subs->size());
  env_.SendToClients(*subs, DeliverFrame{msg});
}

void ClusterNode::DeliverInOrder(const std::string& topic) {
  if (gapStalled_.contains(topic)) return;
  StreamPos& cursor = deliveryCursor_[topic];
  for (const Message& msg : cache_.GetAfter(topic, cursor)) {
    cursor = PosOf(msg);
    DeliverToLocalSubscribers(msg);
  }
}

void ClusterNode::StallDelivery(const std::string& topic) {
  if (gapStalled_.contains(topic)) return;
  gapStalled_[topic] = env_.Schedule(cfg_.gapSyncTimeout, [this, topic] {
    // The backfill never completed (peer gone mid-sync). Resume with what the
    // cache holds rather than stalling the stream forever.
    gapStalled_.erase(topic);
    DeliverInOrder(topic);
  });
}

// ---------------------------------------------------------------------------
// Partition self-fencing (paper §5.2.2)
// ---------------------------------------------------------------------------

void ClusterNode::CheckFence() {
  if (crashed_ || !started_) return;
  fenceTimer_ = env_.Schedule(cfg_.fenceCheckInterval, [this] { CheckFence(); });

  const bool quorum = coord_.HasQuorumContact();
  if (!quorum && !fenced_) {
    Fence();
  } else if (quorum && fenced_) {
    Unfence();
  }
}

void ClusterNode::Fence() {
  // "The disconnected cluster member preventively closes the connections to
  // its local clients, and lets them reconnect to the other cluster
  // members."
  fenced_ = true;
  fenceStart_ = env_.Now();
  cm_.fences.Inc();
  MD_INFO("%s: lost quorum contact — fencing, closing %zu clients",
          cfg_.serverId.c_str(), clients_.size());
  const auto clients = clients_;  // CloseClient may reenter OnClientDisconnect
  for (const ClientHandle client : clients) {
    env_.SendToClient(client, DisconnectFrame{"server fenced: lost cluster quorum"});
    env_.CloseClient(client);
    registry_.DropClient(client);
  }
  clients_.clear();
  clientIds_.clear();
  // In-flight hand-offs cannot complete without the peers; their sessions are
  // among the connections just closed.
  for (auto& [id, handoff] : outHandoffs_) env_.Cancel(handoff.timeoutTimer);
  outHandoffs_.clear();
  env_.Cancel(rebalanceTimer_);
  rebalanceTimer_ = 0;
  env_.Cancel(joinTimer_);
  joinTimer_ = 0;
  leaving_ = false;
  leaveDone_ = nullptr;
  // Coordination roles are forfeited: the ephemerals will expire server-side.
  for (const std::uint32_t g : myGroups_) sequencer_.EndEpoch(g);
  myGroups_.clear();
  electing_.clear();
  // Parked and pending publications cannot complete.
  for (auto& [group, queue] : parked_) {
    for (const auto& pub : queue) {
      if (!pub.originServerId.empty()) continue;  // origin will time out
      if (pub.publisher != 0) cm_.rejects.Inc();
    }
  }
  parked_.clear();
  cm_.replicationPending.Add(-static_cast<std::int64_t>(pendingCoord_.size()));
  pendingCoord_.clear();
}

void ClusterNode::Unfence() {
  MD_INFO("%s: quorum contact restored — recovering", cfg_.serverId.c_str());
  fenced_ = false;
  cm_.unfences.Inc();
  if (fenceStart_ >= 0) {
    const Duration span = env_.Now() - fenceStart_;
    cm_.failoverLastNs.Set(span);
    cm_.failoverNs.Record(span);
    fenceStart_ = -1;
  }
  gossip_.clear();  // stale after the partition
  // "When the partition is restored, the server can recover following the
  // same procedure as for a crash failure."
  StartCacheReconstruction();
  // Rejoin the elastic membership under a fresh fence epoch: the eviction may
  // have expired our ephemeral and bumped every peer's floor against the old
  // incarnation, so any writes we buffered while partitioned stay refused.
  if (cfg_.elastic) JoinMembership();
}

void ClusterNode::StartCacheReconstruction() {
  if (peers_.empty()) return;
  for (std::uint32_t g = 0; g < cfg_.topicGroups; ++g) {
    syncing_.insert(g);
    CacheSyncReqFrame req;
    req.group = g;
    // Contiguous-prefix cursors, not newest positions: a WAL-recovered
    // history can have interior holes (corrupt records skipped, ENOSPC
    // windows) and a cursor past a hole would hide it from peers forever.
    // Peers resend the suspicious span; Insert dedups the overlap.
    req.have = cache_.GroupContiguousPositions(g);
    // The cursor can only prove "nothing missing AFTER it". A hole BEFORE
    // the first surviving record — a bit flip or ENOSPC window that took a
    // topic's head — looks identical to a history that simply started
    // later, so also tell peers where our history begins and let them
    // resend anything older they still hold.
    req.head = cache_.GroupEarliestPositions(g);
    for (const std::string& peer : peers_) env_.SendToPeer(peer, req);
  }
}

// ---------------------------------------------------------------------------
// Elastic membership, rebalancing, hand-off (DESIGN.md §12)
// ---------------------------------------------------------------------------

void ClusterNode::JoinMembership() {
  if (!cfg_.elastic || crashed_ || !started_) return;
  // Clear any stale incarnation's znode first (rejoin where the coordination
  // session survived), then bump the fence key — the linearized version the
  // Put commits at *is* this incarnation's epoch — and announce it in the
  // ephemeral member entry.
  coord_.Delete(coord::MemberKey(cfg_.serverId), [this](Status, std::uint64_t) {
    if (crashed_ || !started_) return;
    coord_.Put(
        coord::FenceKey(cfg_.serverId), cfg_.serverId,
        [this](Status s, std::uint64_t version) {
          if (crashed_ || !started_) return;
          if (!s.ok()) {
            RetryJoin();
            return;
          }
          fenceEpoch_ = static_cast<std::uint32_t>(version);
          coord_.CreateEphemeral(
              coord::MemberKey(cfg_.serverId), std::to_string(fenceEpoch_),
              [this](Status cs, std::uint64_t) {
                if (crashed_ || !started_) return;
                if (!cs.ok()) {
                  RetryJoin();
                  return;
                }
                MD_DEBUG("%s: joined membership at fence epoch %u",
                         cfg_.serverId.c_str(), fenceEpoch_);
                quorum_.SetOnline(cfg_.serverId, true);
                RefreshMembershipFromStore();
                ScheduleRebalance();
              });
        });
  });
}

void ClusterNode::RetryJoin() {
  env_.Cancel(joinTimer_);
  joinTimer_ = env_.Schedule(cfg_.fenceCheckInterval, [this] {
    joinTimer_ = 0;
    JoinMembership();
  });
}

void ClusterNode::RefreshMembershipFromStore() {
  // Rebuild the live view from the local replica: watches only narrate
  // changes from now on, and a rejoining node missed the ones before it.
  for (const std::string& id : memberUniverse_) {
    const auto kv = coord_.Read(coord::MemberKey(id));
    if (kv) {
      if (const auto epoch = coord::ParseMemberEpoch(kv->value)) {
        memberEpoch_[id] = *epoch;
        auto& floor = peerEpochFloor_[id];
        if (*epoch > floor) floor = *epoch;
      }
      quorum_.SetOnline(id, true);
    } else if (id != cfg_.serverId) {
      quorum_.SetOnline(id, false);
    }
  }
}

void ClusterNode::OnMemberEvent(const std::string& memberId,
                                const coord::WatchEvent& event) {
  switch (event.type) {
    case coord::WatchEventType::kCreated:
    case coord::WatchEventType::kChanged: {
      if (const auto epoch = coord::ParseMemberEpoch(event.value)) {
        memberEpoch_[memberId] = *epoch;
        // Floor rises to the announced incarnation: anything the previous
        // incarnation still has buffered is refused from here on.
        auto& floor = peerEpochFloor_[memberId];
        if (*epoch > floor) floor = *epoch;
      }
      quorum_.SetOnline(memberId, true);
      break;
    }
    case coord::WatchEventType::kDeleted:
      quorum_.SetOnline(memberId, false);
      // The departed incarnation must never write again (fencing): even its
      // exact last epoch is now stale.
      if (const auto it = memberEpoch_.find(memberId); it != memberEpoch_.end()) {
        auto& floor = peerEpochFloor_[memberId];
        floor = std::max(floor, it->second + 1);
      }
      break;
  }
  ScheduleRebalance();
}

bool ClusterNode::RefuseStaleEpoch(const std::string& senderId,
                                   std::uint32_t epoch) {
  if (epoch == 0) return false;  // legacy / non-elastic sender
  const auto it = peerEpochFloor_.find(senderId);
  if (it == peerEpochFloor_.end() || epoch >= it->second) return false;
  cm_.fenceRefusals.Inc();
  MD_DEBUG("%s: refused write from %s at stale epoch %u (floor %u)",
           cfg_.serverId.c_str(), senderId.c_str(), epoch, it->second);
  return true;
}

void ClusterNode::ScheduleRebalance() {
  if (!cfg_.elastic || leaving_) return;
  env_.Cancel(rebalanceTimer_);
  rebalanceTimer_ = env_.Schedule(cfg_.rebalanceDebounce, [this] {
    rebalanceTimer_ = 0;
    if (crashed_ || !started_ || fenced_ || leaving_) return;
    Rebalance();
  });
}

void ClusterNode::Rebalance() {
  std::vector<std::string> members;
  for (const std::string& id : memberUniverse_) {
    if (quorum_.IsOnline(id)) members.push_back(id);
  }
  cm_.activeMembers.Set(static_cast<std::int64_t>(members.size()));
  if (members.empty()) return;
  const Assignment next =
      Rebalancer::Compute(cfg_.subscriberPartitions, members);
  if (next == assignment_) return;
  assignment_ = next;
  cm_.rebalances.Inc();

  // Every subscriber partition hosted here whose sessions now belong to a
  // different owner starts a hand-off (at most one in flight per partition).
  std::set<std::uint32_t> hosted;
  for (const ClientHandle client : clients_) {
    const auto it = clientIds_.find(client);
    if (it != clientIds_.end()) hosted.insert(PartitionOfClient(it->second));
  }
  std::set<std::uint32_t> inFlight;
  for (const auto& [id, handoff] : outHandoffs_) inFlight.insert(handoff.partition);
  for (const std::uint32_t partition : hosted) {
    const std::string& owner = next.OwnerOf(partition);
    if (owner.empty() || owner == cfg_.serverId) continue;
    if (!inFlight.contains(partition)) StartHandoff(partition, owner);
  }
}

void ClusterNode::StartHandoff(std::uint32_t partition, const std::string& target) {
  // Freeze the slice: the registry excludes frozen sessions from fan-out
  // snapshots, so the per-topic delivery cursors captured right here are the
  // exact delivered-through boundary of every migrating session.
  HandoffBeginFrame begin;
  begin.partition = partition;
  begin.fenceEpoch = fenceEpoch_;
  begin.fromServerId = cfg_.serverId;
  PendingHandoff handoff;
  handoff.partition = partition;
  handoff.target = target;
  for (const ClientHandle client : clients_) {
    const auto it = clientIds_.find(client);
    if (it == clientIds_.end() || PartitionOfClient(it->second) != partition) {
      continue;
    }
    HandoffSession session;
    session.clientId = it->second;
    for (const std::string& topic : registry_.SetFrozen(client, true)) {
      const auto cur = deliveryCursor_.find(topic);
      const StreamPos pos = cur != deliveryCursor_.end()
                                ? cur->second
                                : cache_.LastPos(topic).value_or(StreamPos{});
      session.cursors.emplace_back(topic, pos);
    }
    begin.sessions.push_back(session);
    handoff.sessions.emplace_back(client, std::move(session));
  }
  if (handoff.sessions.empty()) return;

  const std::uint64_t id = nextHandoffId_++;
  begin.handoffId = id;
  cm_.handoffs.Inc();
  cm_.handoffSessions.Inc(handoff.sessions.size());
  MD_DEBUG("%s: hand-off %llu of partition %u (%zu sessions) -> %s",
           cfg_.serverId.c_str(), static_cast<unsigned long long>(id),
           partition, handoff.sessions.size(), target.c_str());
  handoff.timeoutTimer =
      env_.Schedule(cfg_.handoffAckTimeout, [this, id] { AbortHandoff(id); });
  outHandoffs_[id] = std::move(handoff);
  env_.SendToPeer(target, begin);
}

void ClusterNode::OnHandoffBegin(const std::string& from,
                                 const HandoffBeginFrame& begin) {
  HandoffAckFrame ack;
  ack.handoffId = begin.handoffId;
  ack.partition = begin.partition;
  ack.fenceEpoch = fenceEpoch_;
  // A fenced-out incarnation pushing a buffered Begin is refused exactly like
  // a stale broadcast; likewise a node that cannot itself see quorum must not
  // adopt sessions.
  if (RefuseStaleEpoch(begin.fromServerId, begin.fenceEpoch) || fenced_ ||
      !HasWriteQuorum()) {
    ack.ok = false;
    env_.SendToPeer(from, ack);
    return;
  }
  // Idempotent adopt: a re-sent Begin overwrites the held cursors and is
  // re-acked, so a lost ack only costs a retry, never a divergent state.
  for (const HandoffSession& session : begin.sessions) {
    pendingAttach_[session.clientId] = session.cursors;
  }
  // Record the ownership move durably; routing layers and tests watch it.
  coord_.Put(coord::AssignKey(begin.partition),
             coord::EncodeAssignment({cfg_.serverId, fenceEpoch_}), {});
  ack.ok = true;
  env_.SendToPeer(from, ack);
}

void ClusterNode::OnHandoffAck(const HandoffAckFrame& ack) {
  auto node = outHandoffs_.extract(ack.handoffId);
  if (node.empty()) return;  // duplicate ack, or already aborted: ignore
  PendingHandoff& handoff = node.mapped();
  env_.Cancel(handoff.timeoutTimer);
  if (!ack.ok) {
    outHandoffs_.insert(std::move(node));
    AbortHandoff(ack.handoffId);
    return;
  }
  // Release phase: redirect each frozen session to the new owner with its
  // freeze-point cursors, then close. The transport flushes in-flight bytes
  // before the close, so the client sees backlog, redirect, EOF — in order.
  for (const auto& [client, session] : handoff.sessions) {
    if (!clients_.contains(client)) continue;
    HandoffFrame redirect;
    redirect.targetServerId = handoff.target;
    redirect.partition = handoff.partition;
    redirect.rebalanceEpoch = fenceEpoch_;
    redirect.cursors = session.cursors;
    env_.SendToClient(client, redirect);
    env_.CloseClient(client);
    OnClientDisconnect(client);
  }
  MaybeFinishLeave();
}

void ClusterNode::AbortHandoff(std::uint64_t handoffId) {
  auto node = outHandoffs_.extract(handoffId);
  if (node.empty()) return;
  PendingHandoff& handoff = node.mapped();
  env_.Cancel(handoff.timeoutTimer);
  cm_.handoffAborts.Inc();
  // Unfreeze-and-catch-up: replay from the cache exactly the window each
  // session missed while frozen (freeze cursor -> current delivery cursor),
  // then thaw it back into fan-out. No gap, no duplicate.
  for (const auto& [client, session] : handoff.sessions) {
    if (!clients_.contains(client)) continue;
    for (const auto& [topic, frozenAt] : session.cursors) {
      const auto cur = deliveryCursor_.find(topic);
      if (cur == deliveryCursor_.end()) continue;
      for (const Message& missed : cache_.GetAfter(topic, frozenAt)) {
        if (cur->second < PosOf(missed)) break;
        cm_.delivered.Inc();
        env_.SendToClient(client, DeliverFrame{missed});
      }
    }
    registry_.SetFrozen(client, false);
  }
  MaybeFinishLeave();
}

void ClusterNode::Leave(std::function<void()> done) {
  if (!cfg_.elastic || crashed_ || !started_) {
    if (done) done();
    return;
  }
  leaving_ = true;
  env_.Cancel(rebalanceTimer_);
  rebalanceTimer_ = 0;
  leaveDone_ = std::move(done);
  quorum_.SetOnline(cfg_.serverId, false);

  std::vector<std::string> rest;
  for (const std::string& id : memberUniverse_) {
    if (id != cfg_.serverId && quorum_.IsOnline(id)) rest.push_back(id);
  }
  if (!rest.empty()) {
    assignment_ = Rebalancer::Compute(cfg_.subscriberPartitions, rest);
    std::set<std::uint32_t> hosted;
    for (const ClientHandle client : clients_) {
      const auto it = clientIds_.find(client);
      if (it != clientIds_.end()) hosted.insert(PartitionOfClient(it->second));
    }
    std::set<std::uint32_t> inFlight;
    for (const auto& [id, handoff] : outHandoffs_) {
      inFlight.insert(handoff.partition);
    }
    for (const std::uint32_t partition : hosted) {
      const std::string& owner = assignment_.OwnerOf(partition);
      if (owner.empty() || owner == cfg_.serverId) continue;
      if (!inFlight.contains(partition)) StartHandoff(partition, owner);
    }
  }
  MaybeFinishLeave();
}

void ClusterNode::MaybeFinishLeave() {
  if (!leaving_ || !outHandoffs_.empty()) return;
  leaving_ = false;
  // Shed coordinator roles before deregistering: the group deletions fire
  // peers' watches and whoever holds replicated state races to take over
  // (§5.2.1). Without this, publications for our groups would keep routing
  // to a member that no longer exists.
  for (const std::uint32_t g : myGroups_) {
    sequencer_.EndEpoch(g);
    gossip_.erase(g);
    coord_.Delete(GroupKey(g), {});
  }
  myGroups_.clear();
  // The ephemeral delete is the leave event peers observe; their floors rise
  // past this incarnation so nothing it still has buffered can land.
  coord_.Delete(coord::MemberKey(cfg_.serverId), {});
  // A departed member is inert until Restart(): it must not accept clients,
  // serve frames, or retake the groups its own deletions just freed.
  started_ = false;
  env_.Cancel(fenceTimer_);
  MD_DEBUG("%s: left membership (epoch %u retired)", cfg_.serverId.c_str(),
           fenceEpoch_);
  if (auto done = std::exchange(leaveDone_, nullptr)) done();
}

void ClusterNode::SyncFromPeer(const std::string& peerId) {
  // Paper §5.2.2: after an inter-server connection recovers, "it is
  // sufficient for the current member to ask from the cache of the peer the
  // messages after the last sequence number it previously received".
  if (crashed_ || !started_) return;
  for (std::uint32_t g = 0; g < cfg_.topicGroups; ++g) {
    CacheSyncReqFrame req;
    req.group = g;
    req.have = cache_.GroupContiguousPositions(g);
    env_.SendToPeer(peerId, req);
  }
}

}  // namespace md::cluster
