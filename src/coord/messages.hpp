// Messages of the MiniZK replication protocol (a simplified Raft).
//
// MiniZK replaces ZooKeeper in this reproduction (DESIGN.md §1). It provides
// exactly the contract the MigratoryData cluster protocol needs:
// linearizable writes with atomic create, sequentially-consistent local
// reads, ephemeral entries bound to node sessions, and watches.
//
// Messages are plain structs; the simulation bus passes them directly (the
// deterministic harness needs no byte codec — delivery order and timing are
// controlled by SimNetwork).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace md::coord {

using NodeId = std::uint32_t;
using Term = std::uint64_t;
using LogIndex = std::uint64_t;

// --- replicated commands ----------------------------------------------------

/// Create key iff absent. `ephemeralOwner != 0` binds the entry to a session
/// (it is deleted when that session expires) — the ZK ephemeral-znode
/// equivalent, used for coordinator election (paper §5.2.1).
struct CreateCmd {
  std::string key;
  std::string value;
  NodeId ephemeralOwner = 0;
};

/// Unconditional set (creates if absent, persistent).
struct PutCmd {
  std::string key;
  std::string value;
};

/// Delete. `expectedVersion != 0` makes it conditional.
struct DeleteCmd {
  std::string key;
  std::uint64_t expectedVersion = 0;
};

/// Expire a session: every ephemeral entry it owns is deleted atomically.
/// Appended by the leader's failure detector (ZK session expiry equivalent).
struct ExpireSessionCmd {
  NodeId session = 0;
};

/// Leader no-op appended on election to commit entries from prior terms.
struct NoopCmd {};

using Command = std::variant<CreateCmd, PutCmd, DeleteCmd, ExpireSessionCmd, NoopCmd>;

struct LogEntry {
  Term term = 0;
  Command cmd;
  // Id of the client request that produced this entry (0 for internal), used
  // to route the reply back through the node that accepted the request.
  std::uint64_t requestId = 0;
  NodeId requestOrigin = 0;
};

// --- consensus messages -----------------------------------------------------

struct RequestVote {
  Term term = 0;
  NodeId candidate = 0;
  LogIndex lastLogIndex = 0;
  Term lastLogTerm = 0;
};

struct VoteReply {
  Term term = 0;
  bool granted = false;
};

struct AppendEntries {
  Term term = 0;
  NodeId leader = 0;
  LogIndex prevLogIndex = 0;
  Term prevLogTerm = 0;
  std::vector<LogEntry> entries;
  LogIndex leaderCommit = 0;
};

struct AppendReply {
  Term term = 0;
  bool success = false;
  LogIndex matchIndex = 0;
};

/// Write request forwarded from a non-leader node to the leader.
struct ClientRequest {
  std::uint64_t requestId = 0;
  NodeId origin = 0;
  Command cmd;
};

/// Result routed back to the origin node once the command commits (or fails).
struct ClientReply {
  std::uint64_t requestId = 0;
  std::uint8_t errorCode = 0;  // md::ErrorCode numeric value; 0 = OK
  std::uint64_t version = 0;   // resulting version for successful writes
};

using CoordMsg = std::variant<RequestVote, VoteReply, AppendEntries, AppendReply,
                              ClientRequest, ClientReply>;

}  // namespace md::coord
