#include "coord/codec.hpp"

namespace md::coord {

namespace {

enum class MsgTag : std::uint8_t {
  kRequestVote = 1,
  kVoteReply = 2,
  kAppendEntries = 3,
  kAppendReply = 4,
  kClientRequest = 5,
  kClientReply = 6,
};

enum class CmdTag : std::uint8_t {
  kCreate = 1,
  kPut = 2,
  kDelete = 3,
  kExpireSession = 4,
  kNoop = 5,
};

void WriteCommand(ByteWriter& w, const Command& cmd) {
  if (const auto* create = std::get_if<CreateCmd>(&cmd)) {
    w.WriteU8(static_cast<std::uint8_t>(CmdTag::kCreate));
    w.WriteString(create->key);
    w.WriteString(create->value);
    w.WriteVarint(create->ephemeralOwner);
    return;
  }
  if (const auto* put = std::get_if<PutCmd>(&cmd)) {
    w.WriteU8(static_cast<std::uint8_t>(CmdTag::kPut));
    w.WriteString(put->key);
    w.WriteString(put->value);
    return;
  }
  if (const auto* del = std::get_if<DeleteCmd>(&cmd)) {
    w.WriteU8(static_cast<std::uint8_t>(CmdTag::kDelete));
    w.WriteString(del->key);
    w.WriteVarint(del->expectedVersion);
    return;
  }
  if (const auto* expire = std::get_if<ExpireSessionCmd>(&cmd)) {
    w.WriteU8(static_cast<std::uint8_t>(CmdTag::kExpireSession));
    w.WriteVarint(expire->session);
    return;
  }
  w.WriteU8(static_cast<std::uint8_t>(CmdTag::kNoop));
}

Status ReadCommand(ByteReader& r, Command& cmd) {
  std::uint8_t tag = 0;
  if (Status s = r.ReadU8(tag); !s.ok()) return s;
  switch (static_cast<CmdTag>(tag)) {
    case CmdTag::kCreate: {
      CreateCmd c;
      if (Status s = r.ReadString(c.key); !s.ok()) return s;
      if (Status s = r.ReadString(c.value); !s.ok()) return s;
      std::uint64_t owner = 0;
      if (Status s = r.ReadVarint(owner); !s.ok()) return s;
      c.ephemeralOwner = static_cast<NodeId>(owner);
      cmd = std::move(c);
      return OkStatus();
    }
    case CmdTag::kPut: {
      PutCmd c;
      if (Status s = r.ReadString(c.key); !s.ok()) return s;
      if (Status s = r.ReadString(c.value); !s.ok()) return s;
      cmd = std::move(c);
      return OkStatus();
    }
    case CmdTag::kDelete: {
      DeleteCmd c;
      if (Status s = r.ReadString(c.key); !s.ok()) return s;
      if (Status s = r.ReadVarint(c.expectedVersion); !s.ok()) return s;
      cmd = std::move(c);
      return OkStatus();
    }
    case CmdTag::kExpireSession: {
      ExpireSessionCmd c;
      std::uint64_t session = 0;
      if (Status s = r.ReadVarint(session); !s.ok()) return s;
      c.session = static_cast<NodeId>(session);
      cmd = c;
      return OkStatus();
    }
    case CmdTag::kNoop:
      cmd = NoopCmd{};
      return OkStatus();
  }
  return Err(ErrorCode::kProtocol, "unknown command tag");
}

void WriteEntry(ByteWriter& w, const LogEntry& entry) {
  w.WriteVarint(entry.term);
  WriteCommand(w, entry.cmd);
  w.WriteVarint(entry.requestId);
  w.WriteVarint(entry.requestOrigin);
}

Status ReadEntry(ByteReader& r, LogEntry& entry) {
  if (Status s = r.ReadVarint(entry.term); !s.ok()) return s;
  if (Status s = ReadCommand(r, entry.cmd); !s.ok()) return s;
  if (Status s = r.ReadVarint(entry.requestId); !s.ok()) return s;
  std::uint64_t origin = 0;
  if (Status s = r.ReadVarint(origin); !s.ok()) return s;
  entry.requestOrigin = static_cast<NodeId>(origin);
  return OkStatus();
}

}  // namespace

void EncodeCoordMsg(const CoordMsg& msg, Bytes& out) {
  ByteWriter w(out);
  if (const auto* rv = std::get_if<RequestVote>(&msg)) {
    w.WriteU8(static_cast<std::uint8_t>(MsgTag::kRequestVote));
    w.WriteVarint(rv->term);
    w.WriteVarint(rv->candidate);
    w.WriteVarint(rv->lastLogIndex);
    w.WriteVarint(rv->lastLogTerm);
    return;
  }
  if (const auto* vr = std::get_if<VoteReply>(&msg)) {
    w.WriteU8(static_cast<std::uint8_t>(MsgTag::kVoteReply));
    w.WriteVarint(vr->term);
    w.WriteU8(vr->granted ? 1 : 0);
    return;
  }
  if (const auto* ae = std::get_if<AppendEntries>(&msg)) {
    w.WriteU8(static_cast<std::uint8_t>(MsgTag::kAppendEntries));
    w.WriteVarint(ae->term);
    w.WriteVarint(ae->leader);
    w.WriteVarint(ae->prevLogIndex);
    w.WriteVarint(ae->prevLogTerm);
    w.WriteVarint(ae->leaderCommit);
    w.WriteVarint(ae->entries.size());
    for (const auto& entry : ae->entries) WriteEntry(w, entry);
    return;
  }
  if (const auto* ar = std::get_if<AppendReply>(&msg)) {
    w.WriteU8(static_cast<std::uint8_t>(MsgTag::kAppendReply));
    w.WriteVarint(ar->term);
    w.WriteU8(ar->success ? 1 : 0);
    w.WriteVarint(ar->matchIndex);
    return;
  }
  if (const auto* cr = std::get_if<ClientRequest>(&msg)) {
    w.WriteU8(static_cast<std::uint8_t>(MsgTag::kClientRequest));
    w.WriteVarint(cr->requestId);
    w.WriteVarint(cr->origin);
    WriteCommand(w, cr->cmd);
    return;
  }
  const auto& reply = std::get<ClientReply>(msg);
  w.WriteU8(static_cast<std::uint8_t>(MsgTag::kClientReply));
  w.WriteVarint(reply.requestId);
  w.WriteU8(reply.errorCode);
  w.WriteVarint(reply.version);
}

Result<CoordMsg> DecodeCoordMsg(BytesView data) {
  ByteReader r(data);
  std::uint8_t tag = 0;
  if (Status s = r.ReadU8(tag); !s.ok()) return s;

  auto finish = [&r](CoordMsg msg) -> Result<CoordMsg> {
    if (!r.AtEnd()) return Err(ErrorCode::kProtocol, "trailing bytes");
    return msg;
  };

  switch (static_cast<MsgTag>(tag)) {
    case MsgTag::kRequestVote: {
      RequestVote m;
      std::uint64_t candidate = 0;
      if (Status s = r.ReadVarint(m.term); !s.ok()) return s;
      if (Status s = r.ReadVarint(candidate); !s.ok()) return s;
      m.candidate = static_cast<NodeId>(candidate);
      if (Status s = r.ReadVarint(m.lastLogIndex); !s.ok()) return s;
      if (Status s = r.ReadVarint(m.lastLogTerm); !s.ok()) return s;
      return finish(m);
    }
    case MsgTag::kVoteReply: {
      VoteReply m;
      if (Status s = r.ReadVarint(m.term); !s.ok()) return s;
      std::uint8_t granted = 0;
      if (Status s = r.ReadU8(granted); !s.ok()) return s;
      m.granted = granted != 0;
      return finish(m);
    }
    case MsgTag::kAppendEntries: {
      AppendEntries m;
      std::uint64_t leader = 0;
      if (Status s = r.ReadVarint(m.term); !s.ok()) return s;
      if (Status s = r.ReadVarint(leader); !s.ok()) return s;
      m.leader = static_cast<NodeId>(leader);
      if (Status s = r.ReadVarint(m.prevLogIndex); !s.ok()) return s;
      if (Status s = r.ReadVarint(m.prevLogTerm); !s.ok()) return s;
      if (Status s = r.ReadVarint(m.leaderCommit); !s.ok()) return s;
      std::uint64_t count = 0;
      if (Status s = r.ReadVarint(count); !s.ok()) return s;
      if (count > 100'000) return Err(ErrorCode::kProtocol, "absurd entry count");
      m.entries.resize(static_cast<std::size_t>(count));
      for (auto& entry : m.entries) {
        if (Status s = ReadEntry(r, entry); !s.ok()) return s;
      }
      return finish(std::move(m));
    }
    case MsgTag::kAppendReply: {
      AppendReply m;
      if (Status s = r.ReadVarint(m.term); !s.ok()) return s;
      std::uint8_t success = 0;
      if (Status s = r.ReadU8(success); !s.ok()) return s;
      m.success = success != 0;
      if (Status s = r.ReadVarint(m.matchIndex); !s.ok()) return s;
      return finish(m);
    }
    case MsgTag::kClientRequest: {
      ClientRequest m;
      if (Status s = r.ReadVarint(m.requestId); !s.ok()) return s;
      std::uint64_t origin = 0;
      if (Status s = r.ReadVarint(origin); !s.ok()) return s;
      m.origin = static_cast<NodeId>(origin);
      if (Status s = ReadCommand(r, m.cmd); !s.ok()) return s;
      return finish(std::move(m));
    }
    case MsgTag::kClientReply: {
      ClientReply m;
      if (Status s = r.ReadVarint(m.requestId); !s.ok()) return s;
      if (Status s = r.ReadU8(m.errorCode); !s.ok()) return s;
      if (Status s = r.ReadVarint(m.version); !s.ok()) return s;
      return finish(m);
    }
  }
  return Err(ErrorCode::kProtocol, "unknown coord message tag");
}

void EncodeCoordFramed(const CoordMsg& msg, Bytes& out) {
  Bytes body;
  EncodeCoordMsg(msg, body);
  ByteWriter w(out);
  w.WriteVarint(body.size());
  w.WriteBytes(body);
}

CoordExtractResult ExtractCoordMsg(ByteQueue& in, std::size_t maxSize) {
  CoordExtractResult result;
  const BytesView avail = in.Peek();
  ByteReader r(avail);
  std::uint64_t len = 0;
  if (Status s = r.ReadVarint(len); !s.ok()) {
    if (avail.size() >= 10) result.status = s;
    return result;
  }
  if (len > maxSize) {
    result.status = Err(ErrorCode::kProtocol, "coord message exceeds maximum");
    return result;
  }
  if (r.remaining() < len) return result;
  BytesView body;
  (void)r.ReadBytes(static_cast<std::size_t>(len), body);
  Result<CoordMsg> msg = DecodeCoordMsg(body);
  if (!msg.ok()) {
    result.status = msg.status();
    return result;
  }
  in.Consume(r.position());
  result.msg = std::move(msg).value();
  return result;
}

}  // namespace md::coord
