// Znode schema for elastic membership and partition assignment (DESIGN.md
// §12). Pure key/value helpers shared by ClusterNode and tests — the actual
// watches and writes go through coord::CoordNode.
//
//   members/<serverId>   ephemeral; value = the member's fence epoch. Created
//                        on join after the fence key is bumped; vanishes on
//                        session expiry (crash) or graceful leave.
//   fence/<serverId>     persistent; every (re)join Puts it and the linearized
//                        version returned by the Raft commit *is* the member's
//                        fence epoch — monotone across incarnations for free.
//   assign/<partition>   persistent ownership record "owner@epoch", written by
//                        the new owner once a hand-off slice is durable.
//                        Watchable by anyone routing around a move.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace md::coord {

inline constexpr std::string_view kMemberPrefix = "members/";
inline constexpr std::string_view kFencePrefix = "fence/";
inline constexpr std::string_view kAssignPrefix = "assign/";

[[nodiscard]] inline std::string MemberKey(std::string_view serverId) {
  return std::string(kMemberPrefix) + std::string(serverId);
}

[[nodiscard]] inline std::string FenceKey(std::string_view serverId) {
  return std::string(kFencePrefix) + std::string(serverId);
}

[[nodiscard]] inline std::string AssignKey(std::uint32_t partition) {
  return std::string(kAssignPrefix) + std::to_string(partition);
}

/// The serverId inside a members/... key, or nullopt for foreign keys.
[[nodiscard]] inline std::optional<std::string> MemberOfKey(
    std::string_view key) {
  if (key.size() <= kMemberPrefix.size() ||
      key.substr(0, kMemberPrefix.size()) != kMemberPrefix) {
    return std::nullopt;
  }
  return std::string(key.substr(kMemberPrefix.size()));
}

/// Value of an assign/<p> znode: which server owns the partition, sealed at
/// which fence epoch.
struct AssignmentRecord {
  std::string owner;
  std::uint32_t epoch = 0;
  friend bool operator==(const AssignmentRecord&,
                         const AssignmentRecord&) = default;
};

[[nodiscard]] inline std::string EncodeAssignment(const AssignmentRecord& rec) {
  return rec.owner + "@" + std::to_string(rec.epoch);
}

[[nodiscard]] inline std::optional<AssignmentRecord> ParseAssignment(
    std::string_view value) {
  const std::size_t at = value.rfind('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= value.size()) {
    return std::nullopt;
  }
  AssignmentRecord rec;
  rec.owner = std::string(value.substr(0, at));
  std::uint64_t epoch = 0;
  for (const char c : value.substr(at + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
    if (epoch > 0xFFFFFFFFULL) return std::nullopt;
  }
  rec.epoch = static_cast<std::uint32_t>(epoch);
  return rec;
}

/// Value of a members/<id> znode (the member's fence epoch), or nullopt if
/// malformed.
[[nodiscard]] inline std::optional<std::uint32_t> ParseMemberEpoch(
    std::string_view value) {
  if (value.empty()) return std::nullopt;
  std::uint64_t epoch = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
    if (epoch > 0xFFFFFFFFULL) return std::nullopt;
  }
  return static_cast<std::uint32_t>(epoch);
}

}  // namespace md::coord
