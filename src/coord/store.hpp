// The replicated key/value state machine with ephemeral ownership and
// watches. Every MiniZK node applies the same committed command sequence to
// its local KvStore, so watch notifications fire locally on each node —
// matching ZooKeeper's model where each server notifies its own clients.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "coord/messages.hpp"
#include "obs/metrics.hpp"

namespace md::coord {

struct KeyValue {
  std::string value;
  std::uint64_t version = 0;  // starts at 1 on create, bumps on every change
  NodeId ephemeralOwner = 0;  // 0 = persistent
};

enum class WatchEventType : std::uint8_t { kCreated, kChanged, kDeleted };

struct WatchEvent {
  WatchEventType type;
  std::string key;
  std::string value;          // empty for deletions
  std::uint64_t version = 0;  // version after the event (0 for deletions)
};

/// Persistent (non-one-shot) watch; fires for every event on its key.
using WatchFn = std::function<void(const WatchEvent&)>;

/// Result of applying one command (also routed back to the write's origin).
struct ApplyResult {
  std::uint8_t errorCode = 0;  // md::ErrorCode numeric; 0 = OK
  std::uint64_t version = 0;
};

class KvStore {
 public:
  /// Applies a committed command; fires watches for resulting mutations.
  ApplyResult Apply(const Command& cmd);

  [[nodiscard]] std::optional<KeyValue> Get(const std::string& key) const {
    const auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool Contains(const std::string& key) const {
    return data_.contains(key);
  }

  [[nodiscard]] std::size_t Size() const noexcept { return data_.size(); }

  /// Keys with the given prefix (for listing group assignments).
  [[nodiscard]] std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  void Watch(const std::string& key, WatchFn fn) {
    watches_[key].push_back(std::move(fn));
  }

  /// Rebuild from scratch (restart): clears data and keeps watches.
  void Reset() { data_.clear(); }

  /// Counts every watch-callback invocation; nullptr disables. The counter
  /// must outlive the store.
  void SetFireCounter(obs::Counter* counter) noexcept { fireCounter_ = counter; }

 private:
  void Fire(const WatchEvent& event);

  std::map<std::string, KeyValue> data_;
  std::map<std::string, std::vector<WatchFn>> watches_;
  obs::Counter* fireCounter_ = nullptr;
};

}  // namespace md::coord
