// Wire codec for MiniZK protocol messages.
//
// The simulation harness passes CoordMsg structs directly; the real-network
// cluster host (src/cluster/tcp_host.hpp) serializes them with this codec
// and carries them over TCP with the same varint length-prefix stream
// framing as the client protocol.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "coord/messages.hpp"

namespace md::coord {

/// Serializes `msg` (tag + body, no stream length prefix) into `out`.
void EncodeCoordMsg(const CoordMsg& msg, Bytes& out);

/// Parses one message from exactly `data`.
Result<CoordMsg> DecodeCoordMsg(BytesView data);

/// Appends a stream-framed (varint length + body) message to `out`.
void EncodeCoordFramed(const CoordMsg& msg, Bytes& out);

/// Incremental extractor over a ByteQueue (mirrors proto/codec.hpp).
struct CoordExtractResult {
  std::optional<CoordMsg> msg;
  Status status;
};
CoordExtractResult ExtractCoordMsg(ByteQueue& in,
                                   std::size_t maxSize = 16 * 1024 * 1024);

}  // namespace md::coord
