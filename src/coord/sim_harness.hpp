// Wires a MiniZK cluster over the simulated network: one CoordNode per
// SimNetwork host, messages travel as sized packets over host links (so
// partitions and crashes cut coordination traffic exactly like real traffic).
// Used by tests, property tests and the failover benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "coord/node.hpp"
#include "simnet/network.hpp"
#include "simnet/scheduler.hpp"

namespace md::coord {

/// Rough wire size of a message, for the bandwidth model.
inline std::size_t EstimateSize(const CoordMsg& msg) {
  std::size_t size = 64;  // headers and fixed fields
  if (const auto* append = std::get_if<AppendEntries>(&msg)) {
    for (const LogEntry& e : append->entries) {
      size += 32;
      if (const auto* c = std::get_if<CreateCmd>(&e.cmd)) {
        size += c->key.size() + c->value.size();
      } else if (const auto* p = std::get_if<PutCmd>(&e.cmd)) {
        size += p->key.size() + p->value.size();
      } else if (const auto* d = std::get_if<DeleteCmd>(&e.cmd)) {
        size += d->key.size();
      }
    }
  }
  return size;
}

class SimCoordCluster {
 public:
  /// `hosts[i]` is the SimNetwork host the i-th node lives on. Node ids are
  /// 1..n (0 is reserved as "no node").
  SimCoordCluster(sim::Scheduler& sched, sim::SimNetwork& net,
                  std::vector<sim::HostId> hosts, CoordConfig cfg = {},
                  std::uint64_t seed = 42)
      : sched_(sched), net_(net), hosts_(std::move(hosts)) {
    std::vector<NodeId> members;
    members.reserve(hosts_.size());
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      members.push_back(static_cast<NodeId>(i + 1));
    }
    Rng seeder(seed);
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      envs_.push_back(std::make_unique<NodeEnv>(*this, static_cast<NodeId>(i + 1),
                                                seeder.Next()));
      nodes_.push_back(std::make_unique<CoordNode>(static_cast<NodeId>(i + 1),
                                                   members, *envs_.back(), cfg));
    }
  }

  void StartAll() {
    for (auto& node : nodes_) node->Start();
  }

  [[nodiscard]] CoordNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] sim::HostId HostOf(std::size_t i) const { return hosts_.at(i); }

  /// The current leader node index, if exactly one node believes it leads.
  [[nodiscard]] std::optional<std::size_t> LeaderIndex() const {
    std::optional<std::size_t> leader;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i]->IsCrashed() && nodes_[i]->IsLeader()) {
        if (leader) return std::nullopt;  // split view
        leader = i;
      }
    }
    return leader;
  }

  /// Crash node i (fail-stop): node state machine + host marked down.
  void CrashNode(std::size_t i) {
    nodes_.at(i)->Crash();
    net_.SetHostUp(hosts_.at(i), false);
  }

  void RestartNode(std::size_t i) {
    net_.SetHostUp(hosts_.at(i), true);
    nodes_.at(i)->Restart();
  }

 private:
  class NodeEnv final : public Env {
   public:
    NodeEnv(SimCoordCluster& cluster, NodeId self, std::uint64_t seed)
        : cluster_(cluster), self_(self), rng_(seed) {}

    void Send(NodeId to, const CoordMsg& msg) override {
      const auto fromIdx = static_cast<std::size_t>(self_ - 1);
      const auto toIdx = static_cast<std::size_t>(to - 1);
      cluster_.net_.Send(
          cluster_.hosts_[fromIdx], cluster_.hosts_[toIdx], EstimateSize(msg),
          [&cluster = cluster_, toIdx, from = self_, msg] {
            cluster.nodes_[toIdx]->HandleMessage(from, msg);
          });
    }

    std::uint64_t Schedule(Duration delay, std::function<void()> fn) override {
      return cluster_.sched_.Schedule(delay, std::move(fn));
    }
    void Cancel(std::uint64_t timerId) override { cluster_.sched_.Cancel(timerId); }
    [[nodiscard]] TimePoint Now() const override { return cluster_.sched_.Now(); }
    std::uint64_t Random() override { return rng_.Next(); }

   private:
    SimCoordCluster& cluster_;
    NodeId self_;
    Rng rng_;
  };

  sim::Scheduler& sched_;
  sim::SimNetwork& net_;
  std::vector<sim::HostId> hosts_;
  std::vector<std::unique_ptr<NodeEnv>> envs_;
  std::vector<std::unique_ptr<CoordNode>> nodes_;
};

}  // namespace md::coord
