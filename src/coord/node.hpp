// MiniZK node: leader-based replicated KV (simplified Raft) with sessions,
// ephemeral entries and watches — the ZooKeeper stand-in (DESIGN.md §1).
//
// One CoordNode runs alongside each MigratoryData server (paper §5.2.1: "We
// deploy an instance of the ZooKeeper coordination service alongside each
// MigratoryData server"). The co-located server is the node's only client:
//   - writes (atomic create / put / delete) are linearized through the
//     leader's replicated log; callbacks fire once the command commits,
//   - reads are served from the local replica (sequentially consistent),
//   - entries created with an ephemeral owner disappear when the owner's
//     session expires (leader-side failure detection),
//   - watches fire locally as committed commands are applied.
//
// The node is a deterministic state machine: all I/O goes through Env
// (message send, timers, randomness), so it runs identically under the
// simulation scheduler and under a real event loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "obs/families.hpp"
#include "coord/messages.hpp"
#include "coord/store.hpp"

namespace md::coord {

/// Environment a node runs in: messaging, timers, randomness.
class Env {
 public:
  virtual ~Env() = default;
  virtual void Send(NodeId to, const CoordMsg& msg) = 0;
  virtual std::uint64_t Schedule(Duration delay, std::function<void()> fn) = 0;
  virtual void Cancel(std::uint64_t timerId) = 0;
  [[nodiscard]] virtual TimePoint Now() const = 0;
  virtual std::uint64_t Random() = 0;
};

struct CoordConfig {
  Duration electionTimeoutMin = 150 * kMillisecond;
  Duration electionTimeoutMax = 300 * kMillisecond;
  Duration heartbeatInterval = 50 * kMillisecond;
  Duration tickInterval = 10 * kMillisecond;
  /// Leader expires a member's session after this much silence.
  Duration sessionTimeout = 2 * kSecond;
  /// A node reports loss of quorum contact after this much silence
  /// (drives the MigratoryData partition self-fencing, paper §5.2.2).
  Duration quorumLossThreshold = 1 * kSecond;
  /// Origin-side timeout for forwarded writes.
  Duration requestTimeout = 1 * kSecond;
  /// Metrics destination; nullptr uses the process-wide default registry.
  /// The registry must outlive the node.
  obs::MetricsRegistry* metrics = nullptr;
};

enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };

class CoordNode {
 public:
  using WriteCallback = std::function<void(Status, std::uint64_t version)>;

  CoordNode(NodeId id, std::vector<NodeId> members, Env& env, CoordConfig cfg = {});

  // --- lifecycle -------------------------------------------------------------
  void Start();
  /// Fail-stop: stops processing; volatile state (role, commit progress,
  /// store) is lost; durable state (term, votedFor, log) survives.
  void Crash();
  /// Come back after a Crash with durable state intact.
  void Restart();
  [[nodiscard]] bool IsCrashed() const noexcept { return crashed_; }

  /// Deliver a protocol message from a peer (wired up by the harness).
  void HandleMessage(NodeId from, const CoordMsg& msg);

  // --- client API (used by the co-located MigratoryData server) -------------
  void CreateEphemeral(const std::string& key, const std::string& value,
                       WriteCallback cb);
  void Put(const std::string& key, const std::string& value, WriteCallback cb);
  void Delete(const std::string& key, WriteCallback cb);
  [[nodiscard]] std::optional<KeyValue> Read(const std::string& key) const {
    return store_.Get(key);
  }
  void Watch(const std::string& key, WatchFn fn) { store_.Watch(key, std::move(fn)); }
  [[nodiscard]] std::vector<std::string> KeysWithPrefix(const std::string& p) const {
    return store_.KeysWithPrefix(p);
  }

  /// False when this node has not heard from a quorum recently — the signal
  /// MigratoryData uses to preventively close client connections.
  [[nodiscard]] bool HasQuorumContact() const;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] bool IsLeader() const noexcept { return role_ == Role::kLeader; }
  [[nodiscard]] Term term() const noexcept { return currentTerm_; }
  [[nodiscard]] LogIndex CommitIndex() const noexcept { return commitIndex_; }
  [[nodiscard]] const KvStore& store() const noexcept { return store_; }
  [[nodiscard]] std::optional<NodeId> KnownLeader() const noexcept { return leaderHint_; }

 private:
  // Consensus internals.
  void Tick();
  void StartElection();
  void BecomeFollower(Term term);
  void BecomeLeader();
  void BroadcastHeartbeats();
  void SendAppend(NodeId peer);
  void AdvanceCommit();
  void ApplyCommitted();
  void CheckSessions();
  void CheckLeaderLease();
  void ResetElectionDeadline();

  void OnRequestVote(NodeId from, const RequestVote& msg);
  void OnVoteReply(NodeId from, const VoteReply& msg);
  void OnAppendEntries(NodeId from, const AppendEntries& msg);
  void OnAppendReply(NodeId from, const AppendReply& msg);
  void OnClientRequest(NodeId from, const ClientRequest& msg);
  void OnClientReply(const ClientReply& msg);

  // Write-path internals.
  void SubmitWrite(Command cmd, WriteCallback cb);
  void LeaderAccept(Command cmd, std::uint64_t requestId, NodeId origin);
  void FailPending(const Status& status);

  [[nodiscard]] LogIndex LastLogIndex() const noexcept { return log_.size(); }
  [[nodiscard]] Term LastLogTerm() const noexcept {
    return log_.empty() ? 0 : log_.back().term;
  }
  [[nodiscard]] Term TermAt(LogIndex idx) const noexcept {
    return idx == 0 || idx > log_.size() ? 0 : log_[idx - 1].term;
  }
  [[nodiscard]] std::size_t Majority() const noexcept {
    return members_.size() / 2 + 1;
  }

  const NodeId id_;
  const std::vector<NodeId> members_;  // includes self
  Env& env_;
  const CoordConfig cfg_;

  // Durable state (survives Crash/Restart).
  Term currentTerm_ = 0;
  std::optional<NodeId> votedFor_;
  std::vector<LogEntry> log_;  // log_[i] holds index i+1

  // Volatile state.
  bool started_ = false;
  bool crashed_ = false;
  Role role_ = Role::kFollower;
  std::optional<NodeId> leaderHint_;
  LogIndex commitIndex_ = 0;
  LogIndex lastApplied_ = 0;
  KvStore store_;
  TimePoint electionDeadline_ = 0;
  TimePoint lastQuorumEvidence_ = 0;
  std::uint64_t tickTimer_ = 0;

  // Candidate state.
  std::set<NodeId> votesGranted_;

  // Leader state.
  std::map<NodeId, LogIndex> nextIndex_;
  std::map<NodeId, LogIndex> matchIndex_;
  std::map<NodeId, TimePoint> lastAck_;
  std::set<NodeId> expiredSessions_;
  TimePoint lastHeartbeat_ = 0;

  // Client write tracking.
  std::uint64_t nextRequestId_ = 1;
  struct PendingLocal {
    WriteCallback cb;
    std::uint64_t timeoutTimer = 0;
  };
  std::map<std::uint64_t, PendingLocal> pendingLocal_;  // requests I originated

  obs::CoordMetrics om_;
};

}  // namespace md::coord
