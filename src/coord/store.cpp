#include "coord/store.hpp"

#include "common/status.hpp"

namespace md::coord {

namespace {

constexpr std::uint8_t Code(ErrorCode c) noexcept {
  return static_cast<std::uint8_t>(c);
}

}  // namespace

ApplyResult KvStore::Apply(const Command& cmd) {
  ApplyResult result;

  if (const auto* create = std::get_if<CreateCmd>(&cmd)) {
    auto [it, inserted] = data_.try_emplace(
        create->key, KeyValue{create->value, 1, create->ephemeralOwner});
    if (!inserted) {
      result.errorCode = Code(ErrorCode::kConflict);
      return result;
    }
    result.version = 1;
    Fire({WatchEventType::kCreated, create->key, create->value, 1});
    return result;
  }

  if (const auto* put = std::get_if<PutCmd>(&cmd)) {
    auto it = data_.find(put->key);
    if (it == data_.end()) {
      data_.emplace(put->key, KeyValue{put->value, 1, 0});
      result.version = 1;
      Fire({WatchEventType::kCreated, put->key, put->value, 1});
    } else {
      it->second.value = put->value;
      it->second.version += 1;
      result.version = it->second.version;
      Fire({WatchEventType::kChanged, put->key, put->value, it->second.version});
    }
    return result;
  }

  if (const auto* del = std::get_if<DeleteCmd>(&cmd)) {
    auto it = data_.find(del->key);
    if (it == data_.end()) {
      result.errorCode = Code(ErrorCode::kNotFound);
      return result;
    }
    if (del->expectedVersion != 0 && it->second.version != del->expectedVersion) {
      result.errorCode = Code(ErrorCode::kConflict);
      return result;
    }
    data_.erase(it);
    Fire({WatchEventType::kDeleted, del->key, {}, 0});
    return result;
  }

  if (const auto* expire = std::get_if<ExpireSessionCmd>(&cmd)) {
    // Collect first: firing watches while erasing would invalidate iterators.
    std::vector<std::string> doomed;
    for (const auto& [key, kv] : data_) {
      if (kv.ephemeralOwner == expire->session) doomed.push_back(key);
    }
    for (const auto& key : doomed) {
      data_.erase(key);
      Fire({WatchEventType::kDeleted, key, {}, 0});
    }
    return result;
  }

  // NoopCmd.
  return result;
}

std::vector<std::string> KvStore::KeysWithPrefix(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = data_.lower_bound(prefix);
       it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

void KvStore::Fire(const WatchEvent& event) {
  const auto it = watches_.find(event.key);
  if (it == watches_.end()) return;
  // Copy: a watch callback may register further watches on the same key.
  const auto fns = it->second;
  for (const auto& fn : fns) {
    if (fireCounter_ != nullptr) fireCounter_->Inc();
    fn(event);
  }
}

}  // namespace md::coord
