#include "coord/node.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace md::coord {

CoordNode::CoordNode(NodeId id, std::vector<NodeId> members, Env& env,
                     CoordConfig cfg)
    : id_(id),
      members_(std::move(members)),
      env_(env),
      cfg_(cfg),
      om_(cfg_.metrics != nullptr ? *cfg_.metrics
                                  : obs::MetricsRegistry::Default(),
          obs::NodeLabel(std::to_string(id_))) {
  store_.SetFireCounter(&om_.watchFires);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void CoordNode::Start() {
  started_ = true;
  crashed_ = false;
  lastQuorumEvidence_ = env_.Now();
  ResetElectionDeadline();
  tickTimer_ = env_.Schedule(cfg_.tickInterval, [this] { Tick(); });
}

void CoordNode::Crash() {
  crashed_ = true;
  started_ = false;
  env_.Cancel(tickTimer_);
  // Volatile state is lost.
  role_ = Role::kFollower;
  leaderHint_.reset();
  commitIndex_ = 0;
  lastApplied_ = 0;
  store_.Reset();
  votesGranted_.clear();
  nextIndex_.clear();
  matchIndex_.clear();
  lastAck_.clear();
  expiredSessions_.clear();
  FailPending(Err(ErrorCode::kUnavailable, "node crashed"));
}

void CoordNode::Restart() {
  // Durable state (currentTerm_, votedFor_, log_) is intact; rejoin as
  // follower and let the leader replay commitment.
  Start();
}

void CoordNode::Tick() {
  if (crashed_) return;
  tickTimer_ = env_.Schedule(cfg_.tickInterval, [this] { Tick(); });
  const TimePoint now = env_.Now();

  if (role_ == Role::kLeader) {
    if (now - lastHeartbeat_ >= cfg_.heartbeatInterval) BroadcastHeartbeats();
    CheckSessions();
    CheckLeaderLease();
    return;
  }

  if (now >= electionDeadline_) StartElection();
}

void CoordNode::ResetElectionDeadline() {
  const auto span = static_cast<std::uint64_t>(cfg_.electionTimeoutMax -
                                               cfg_.electionTimeoutMin);
  electionDeadline_ = env_.Now() + cfg_.electionTimeoutMin +
                      static_cast<Duration>(span ? env_.Random() % span : 0);
}

// ---------------------------------------------------------------------------
// Elections
// ---------------------------------------------------------------------------

void CoordNode::StartElection() {
  om_.elections.Inc();
  role_ = Role::kCandidate;
  currentTerm_ += 1;
  votedFor_ = id_;
  votesGranted_ = {id_};
  leaderHint_.reset();
  ResetElectionDeadline();
  MD_DEBUG("coord %u: starting election for term %llu", id_,
           static_cast<unsigned long long>(currentTerm_));

  const RequestVote req{currentTerm_, id_, LastLogIndex(), LastLogTerm()};
  for (const NodeId peer : members_) {
    if (peer != id_) env_.Send(peer, req);
  }
  if (votesGranted_.size() >= Majority()) BecomeLeader();  // single-node cluster
}

void CoordNode::BecomeFollower(Term term) {
  if (term > currentTerm_) {
    currentTerm_ = term;
    votedFor_.reset();
  }
  if (role_ != Role::kFollower) {
    MD_DEBUG("coord %u: stepping down in term %llu", id_,
             static_cast<unsigned long long>(currentTerm_));
  }
  role_ = Role::kFollower;
  votesGranted_.clear();
  ResetElectionDeadline();
}

void CoordNode::BecomeLeader() {
  role_ = Role::kLeader;
  leaderHint_ = id_;
  const TimePoint now = env_.Now();
  lastQuorumEvidence_ = now;
  nextIndex_.clear();
  matchIndex_.clear();
  lastAck_.clear();
  expiredSessions_.clear();
  for (const NodeId peer : members_) {
    nextIndex_[peer] = LastLogIndex() + 1;
    matchIndex_[peer] = 0;
    lastAck_[peer] = now;  // grace period for session expiry
  }
  MD_INFO("coord %u: elected leader for term %llu", id_,
          static_cast<unsigned long long>(currentTerm_));
  // Commit a no-op to learn the commit point of previous terms (Raft §8).
  log_.push_back(LogEntry{currentTerm_, NoopCmd{}, 0, 0});
  matchIndex_[id_] = LastLogIndex();
  BroadcastHeartbeats();
  AdvanceCommit();
}

void CoordNode::OnRequestVote(NodeId from, const RequestVote& msg) {
  if (msg.term > currentTerm_) BecomeFollower(msg.term);

  bool granted = false;
  if (msg.term == currentTerm_ &&
      (!votedFor_ || *votedFor_ == msg.candidate)) {
    // Candidate's log must be at least as up-to-date as ours.
    const bool upToDate =
        msg.lastLogTerm > LastLogTerm() ||
        (msg.lastLogTerm == LastLogTerm() && msg.lastLogIndex >= LastLogIndex());
    if (upToDate) {
      granted = true;
      votedFor_ = msg.candidate;
      ResetElectionDeadline();
    }
  }
  env_.Send(from, VoteReply{currentTerm_, granted});
}

void CoordNode::OnVoteReply(NodeId from, const VoteReply& msg) {
  if (msg.term > currentTerm_) {
    BecomeFollower(msg.term);
    return;
  }
  if (role_ != Role::kCandidate || msg.term != currentTerm_ || !msg.granted) return;
  votesGranted_.insert(from);
  if (votesGranted_.size() >= Majority()) BecomeLeader();
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

void CoordNode::BroadcastHeartbeats() {
  lastHeartbeat_ = env_.Now();
  for (const NodeId peer : members_) {
    if (peer != id_) SendAppend(peer);
  }
}

void CoordNode::SendAppend(NodeId peer) {
  const LogIndex next = nextIndex_[peer];
  AppendEntries msg;
  msg.term = currentTerm_;
  msg.leader = id_;
  msg.prevLogIndex = next - 1;
  msg.prevLogTerm = TermAt(next - 1);
  msg.leaderCommit = commitIndex_;
  // Bound batch size to keep message sizes sane.
  constexpr std::size_t kMaxBatch = 512;
  for (LogIndex i = next; i <= LastLogIndex() && msg.entries.size() < kMaxBatch; ++i) {
    msg.entries.push_back(log_[i - 1]);
  }
  env_.Send(peer, msg);
}

void CoordNode::OnAppendEntries(NodeId from, const AppendEntries& msg) {
  if (msg.term < currentTerm_) {
    env_.Send(from, AppendReply{currentTerm_, false, 0});
    return;
  }
  if (msg.term > currentTerm_ || role_ != Role::kFollower) BecomeFollower(msg.term);
  leaderHint_ = msg.leader;
  lastQuorumEvidence_ = env_.Now();
  ResetElectionDeadline();

  // Consistency check.
  if (msg.prevLogIndex > LastLogIndex() ||
      TermAt(msg.prevLogIndex) != msg.prevLogTerm) {
    env_.Send(from, AppendReply{currentTerm_, false, 0});
    return;
  }

  // Append / overwrite conflicting suffix.
  LogIndex idx = msg.prevLogIndex;
  for (const LogEntry& entry : msg.entries) {
    ++idx;
    if (idx <= LastLogIndex()) {
      if (TermAt(idx) != entry.term) {
        log_.resize(idx - 1);  // drop conflicting suffix
        log_.push_back(entry);
      }
    } else {
      log_.push_back(entry);
    }
  }

  const LogIndex newCommit = std::min<LogIndex>(msg.leaderCommit, LastLogIndex());
  if (newCommit > commitIndex_) {
    commitIndex_ = newCommit;
    ApplyCommitted();
  }
  env_.Send(from, AppendReply{currentTerm_, true, idx});
}

void CoordNode::OnAppendReply(NodeId from, const AppendReply& msg) {
  if (msg.term > currentTerm_) {
    BecomeFollower(msg.term);
    return;
  }
  if (role_ != Role::kLeader || msg.term != currentTerm_) return;

  lastAck_[from] = env_.Now();
  lastQuorumEvidence_ = env_.Now();
  // A re-acking node is alive again; allow its session to be revived.
  expiredSessions_.erase(from);

  if (msg.success) {
    matchIndex_[from] = std::max(matchIndex_[from], msg.matchIndex);
    nextIndex_[from] = matchIndex_[from] + 1;
    AdvanceCommit();
    if (nextIndex_[from] <= LastLogIndex()) SendAppend(from);
  } else {
    // Back off and retry immediately.
    if (nextIndex_[from] > 1) nextIndex_[from] -= 1;
    SendAppend(from);
  }
}

void CoordNode::AdvanceCommit() {
  matchIndex_[id_] = LastLogIndex();
  for (LogIndex n = LastLogIndex(); n > commitIndex_; --n) {
    if (TermAt(n) != currentTerm_) break;  // only commit own-term entries
    std::size_t count = 0;
    for (const NodeId peer : members_) {
      if (matchIndex_[peer] >= n) ++count;
    }
    if (count >= Majority()) {
      commitIndex_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void CoordNode::ApplyCommitted() {
  while (lastApplied_ < commitIndex_) {
    ++lastApplied_;
    // Copy, do not reference: applying a command fires watches, and a watch
    // callback may submit a new write that appends to (and reallocates)
    // log_, dangling any reference held across the Apply call.
    const LogEntry entry = log_[lastApplied_ - 1];
    const ApplyResult result = store_.Apply(entry.cmd);

    if (entry.requestId == 0) continue;
    if (role_ != Role::kLeader) continue;  // only the leader replies

    const ClientReply reply{entry.requestId, result.errorCode, result.version};
    if (entry.requestOrigin == id_) {
      OnClientReply(reply);
    } else {
      env_.Send(entry.requestOrigin, reply);
    }
  }
}

// ---------------------------------------------------------------------------
// Sessions & leases
// ---------------------------------------------------------------------------

void CoordNode::CheckSessions() {
  const TimePoint now = env_.Now();
  for (const NodeId peer : members_) {
    if (peer == id_) continue;
    if (expiredSessions_.contains(peer)) continue;
    if (now - lastAck_[peer] > cfg_.sessionTimeout) {
      MD_INFO("coord %u: expiring session of node %u", id_, peer);
      om_.sessionExpirations.Inc();
      expiredSessions_.insert(peer);
      log_.push_back(LogEntry{currentTerm_, ExpireSessionCmd{peer}, 0, 0});
      BroadcastHeartbeats();
      AdvanceCommit();
    }
  }
}

void CoordNode::CheckLeaderLease() {
  // Count peers heard from within the quorum-loss threshold (self included).
  const TimePoint now = env_.Now();
  std::size_t fresh = 1;
  for (const NodeId peer : members_) {
    if (peer == id_) continue;
    if (now - lastAck_[peer] <= cfg_.quorumLossThreshold) ++fresh;
  }
  if (fresh >= Majority()) {
    lastQuorumEvidence_ = now;
  } else if (now - lastQuorumEvidence_ > cfg_.quorumLossThreshold) {
    MD_WARN("coord %u: lost quorum contact, stepping down", id_);
    FailPending(Err(ErrorCode::kUnavailable, "leader lost quorum"));
    BecomeFollower(currentTerm_);
  }
}

bool CoordNode::HasQuorumContact() const {
  if (crashed_ || !started_) return false;
  if (members_.size() == 1) return true;
  return env_.Now() - lastQuorumEvidence_ <= cfg_.quorumLossThreshold;
}

// ---------------------------------------------------------------------------
// Client writes
// ---------------------------------------------------------------------------

void CoordNode::CreateEphemeral(const std::string& key, const std::string& value,
                                WriteCallback cb) {
  SubmitWrite(CreateCmd{key, value, id_}, std::move(cb));
}

void CoordNode::Put(const std::string& key, const std::string& value,
                    WriteCallback cb) {
  SubmitWrite(PutCmd{key, value}, std::move(cb));
}

void CoordNode::Delete(const std::string& key, WriteCallback cb) {
  SubmitWrite(DeleteCmd{key, 0}, std::move(cb));
}

void CoordNode::SubmitWrite(Command cmd, WriteCallback cb) {
  if (crashed_ || !started_) {
    if (cb) cb(Err(ErrorCode::kUnavailable, "node down"), 0);
    return;
  }
  const std::uint64_t requestId = nextRequestId_++;

  PendingLocal pending;
  // Wrap the callback so every completion path — commit, timeout, FailPending
  // — lands in the client-visible write-latency histogram.
  pending.cb = [this, start = env_.Now(), cb = std::move(cb)](
                   Status s, std::uint64_t version) {
    om_.writeNs.Record(env_.Now() - start);
    if (cb) cb(std::move(s), version);
  };
  pending.timeoutTimer = env_.Schedule(cfg_.requestTimeout, [this, requestId] {
    auto node = pendingLocal_.extract(requestId);
    if (node.empty()) return;
    if (node.mapped().cb) {
      node.mapped().cb(Err(ErrorCode::kTimeout, "write timed out (no quorum?)"), 0);
    }
  });
  pendingLocal_.emplace(requestId, std::move(pending));

  if (role_ == Role::kLeader) {
    LeaderAccept(std::move(cmd), requestId, id_);
  } else if (leaderHint_ && *leaderHint_ != id_) {
    env_.Send(*leaderHint_, ClientRequest{requestId, id_, std::move(cmd)});
  }
  // No known leader: keep the request pending; it fails via its timeout.
  // (Matches ZK behaviour: writes block while leaderless, then time out.)
}

void CoordNode::LeaderAccept(Command cmd, std::uint64_t requestId, NodeId origin) {
  log_.push_back(LogEntry{currentTerm_, std::move(cmd), requestId, origin});
  BroadcastHeartbeats();
  AdvanceCommit();  // single-node clusters commit immediately
}

void CoordNode::OnClientRequest(NodeId from, const ClientRequest& msg) {
  if (role_ != Role::kLeader) {
    // Bounce with an error so the origin can retry via its new hint.
    env_.Send(from, ClientReply{msg.requestId,
                                static_cast<std::uint8_t>(ErrorCode::kNotLeader), 0});
    return;
  }
  LeaderAccept(msg.cmd, msg.requestId, msg.origin);
}

void CoordNode::OnClientReply(const ClientReply& msg) {
  auto node = pendingLocal_.extract(msg.requestId);
  if (node.empty()) return;  // already timed out
  env_.Cancel(node.mapped().timeoutTimer);
  if (!node.mapped().cb) return;
  if (msg.errorCode == 0) {
    node.mapped().cb(OkStatus(), msg.version);
  } else {
    node.mapped().cb(Status(static_cast<ErrorCode>(msg.errorCode)), msg.version);
  }
}

void CoordNode::FailPending(const Status& status) {
  auto pending = std::move(pendingLocal_);
  pendingLocal_.clear();
  for (auto& [id, p] : pending) {
    env_.Cancel(p.timeoutTimer);
    if (p.cb) p.cb(status, 0);
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void CoordNode::HandleMessage(NodeId from, const CoordMsg& msg) {
  if (crashed_ || !started_) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestVote>) {
          OnRequestVote(from, m);
        } else if constexpr (std::is_same_v<T, VoteReply>) {
          OnVoteReply(from, m);
        } else if constexpr (std::is_same_v<T, AppendEntries>) {
          OnAppendEntries(from, m);
        } else if constexpr (std::is_same_v<T, AppendReply>) {
          OnAppendReply(from, m);
        } else if constexpr (std::is_same_v<T, ClientRequest>) {
          OnClientRequest(from, m);
        } else if constexpr (std::is_same_v<T, ClientReply>) {
          OnClientReply(m);
        }
      },
      msg);
}

}  // namespace md::coord
