#!/usr/bin/env bash
# Regenerates the recorded outputs at the repository root:
#   test_output.txt  — full ctest run
#   bench_output.txt — every bench binary (paper tables/figures + ablations)
# and smoke-checks the reliability tooling: the chaos suite under
# AddressSanitizer plus a 50-seed md_chaos sweep.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt

# Chaos harness under ASan: the fault paths (crash teardown, reconnection
# sync, gap-stall timers) are where lifetime bugs would hide.
cmake -B build-asan -G Ninja -DMD_SANITIZE=address \
  && cmake --build build-asan --target chaos_test md_chaos || exit 1
./build-asan/tests/chaos_test || exit 1
./build-asan/tools/md_chaos --seeds 50 || exit 1

# Slow-consumer leg: an explicit stalled-subscriber fault under ASan (the
# eviction path frees a session with megabytes still parked — exactly where a
# use-after-flush would hide), then the backpressure bench as a bounds smoke
# check: it exits nonzero unless peak pending stays under the hard watermark
# and healthy subscribers lose nothing.
./build-asan/tools/md_chaos --seed 7 --events "slow:0@1500+6000" || exit 1
./build-asan/tools/md_chaos --seed 11 --events "slow:1@2000+5000" || exit 1
MD_BENCH_SLOWCONS_CLIENTS=8 MD_BENCH_SLOWCONS_MSGS=600 \
  MD_BENCH_SLOWCONS_OUT=/dev/null ./build/bench/bench_slow_consumer || exit 1

# Metrics leg: the exposition goldens and live-scrape test, plain and under
# ThreadSanitizer — the sharded counters, tracer in-flight map and registry
# snapshot are the concurrency-bearing surfaces of src/obs.
./build/tests/obs_test || exit 1
cmake -B build-tsan -G Ninja -DMD_SANITIZE=thread \
  && cmake --build build-tsan --target obs_test core_test || exit 1
./build-tsan/tests/obs_test || exit 1

# Fan-out leg: the CoW subscriber-snapshot churn test under TSan (writers
# hammer Subscribe/Unsubscribe/DropClient against concurrent snapshot
# readers), then a small bench_fanout sweep as a delivery smoke check — the
# binary exits nonzero unless delivered == expected on both data paths.
./build-tsan/tests/core_test \
  --gtest_filter='RegistryConcurrencyTest.*:*ServerFanoutTest*' || exit 1
MD_BENCH_FANOUT_CLIENTS=64 MD_BENCH_FANOUT_TOPICS=4 MD_BENCH_FANOUT_BURSTS=10 \
  MD_BENCH_FANOUT_OUT=/dev/null MD_BENCH_MONITOR_OUT=/dev/null \
  ./build/bench/bench_fanout || exit 1

# Egress leg: the zero-copy wire-buffer path (SendQueue refcounting, writev
# scatter-gather, adaptive flush) across both event-loop backends. The
# parity suite in transport_test parameterizes every case over epoll and
# io_uring — on kernels without the required io_uring features the io_uring
# half skips with an explicit capability message rather than failing. The
# same binary then runs under ASan (buffer lifetime: iovec pins must keep
# shared buffers readable across close-mid-flush and Clear) and TSan
# (cross-thread Send against the loop's flush pass). bench_fanout above
# already smoke-checks loss-free delivery on both backends.
./build/tests/transport_test || exit 1
cmake --build build-asan --target transport_test || exit 1
./build-asan/tests/transport_test || exit 1
cmake --build build-tsan --target transport_test || exit 1
./build-tsan/tests/transport_test || exit 1

# Runtime-verification leg: the monitor's own suite under TSan (the sharded
# LRU tables, report buffer and one-shot injection mask are its
# concurrency-bearing surfaces; the chaos-driver-based cases run in the plain
# ctest pass above), a 20-seed monitored chaos sweep (the monitor rides every
# client stream through crashes/partitions/flaps and must stay silent), and a
# live md_server <-> md_monitor smoke: the sidecar must catch the gap it
# injects into itself, report nothing else, and see the server's own
# violation counter move for the duplicate driven through /inject.
cmake --build build-tsan --target verify_test || exit 1
./build-tsan/tests/verify_test \
  --gtest_filter='-*MonitoredChaosSeeds*:*ChaosInjection*' || exit 1
./build/tools/md_chaos --seeds 20 --monitor --quiet || exit 1
./build/tools/md_server --port 18931 --verify --verify-inject &
MD_SERVER_PID=$!
sleep 1
./build/tools/md_monitor --port 18931 --duration-ms 4000 \
  --inject gap --expect gap --server-inject duplicate
MONITOR_RC=$?
kill "$MD_SERVER_PID" 2>/dev/null
wait "$MD_SERVER_PID" 2>/dev/null
[ "$MONITOR_RC" -eq 0 ] || exit 1
# Rebalance leg: the elastic-membership suites (quorum gate, epoch fencing,
# hand-off choreography) under TSan — the monitor rides the elastic sweep's
# delivery streams from the sim threads while its report buffer is read out,
# the same concurrency surface the production embedding has — then a 20-seed
# monitored elastic sweep (join / graceful-leave / minority-partition churn;
# the monitor's [rebalance] continuity rule must stay silent) and the canned
# single-event plans as targeted repro smoke checks.
cmake --build build-tsan --target quorum_test fencing_test rebalance_chaos_test \
  || exit 1
./build-tsan/tests/quorum_test || exit 1
./build-tsan/tests/fencing_test || exit 1
./build-tsan/tests/rebalance_chaos_test || exit 1
./build/tools/md_chaos --seeds 20 --elastic --servers 4 --monitor --quiet || exit 1
./build/tools/md_chaos --seed 3 --plan join --quiet || exit 1
./build/tools/md_chaos --seed 4 --plan leave --quiet || exit 1
./build/tools/md_chaos --seed 6 --plan minority --quiet || exit 1

# Durability leg: the WAL suite under both sanitizers (framing/recovery code
# does byte-level parsing of deliberately damaged input — exactly where an
# out-of-bounds read would hide; the Log is also called from cache shard
# locks on many threads), a 20-seed monitored durability sweep (kill -9 and
# disk-fault plans; the monitor's [durability] exactly-once rule must stay
# silent), the canned crash / disk plans as targeted repros, a monitored
# self-test that must catch exactly the violation it injects, and the
# durability bench as a shape smoke check: it exits nonzero unless the
# local-WAL delta backfill beats full peer reconstruction.
cmake --build build-asan --target wal_test || exit 1
./build-asan/tests/wal_test || exit 1
cmake --build build-tsan --target wal_test || exit 1
./build-tsan/tests/wal_test || exit 1
./build/tools/md_chaos --seeds 20 --durability --monitor --quiet || exit 1
./build/tools/md_chaos --seed 5 --plan crash --quiet || exit 1
./build/tools/md_chaos --seed 9 --plan disk --quiet || exit 1
./build/tools/md_chaos --seed 3 --durability --monitor --inject durability \
  || exit 1
MD_BENCH_DUR_APPENDS=1000 MD_BENCH_DUR_MSGS=200 MD_BENCH_DUR_OUT=/dev/null \
  ./build/bench/bench_durability || exit 1

# Footprint leg (DESIGN.md §15): the slab allocator, flat maps and the
# topic-intern table under ASan (freed-slot poisoning is load-bearing: the
# death test proves a dangling Session pointer faults instead of reading a
# recycled slot) plus the registry churn-residue test; the lock-free
# TopicTable::NameOf publication and slab freelists under TSan; then the C10M
# footprint bench at a 100k-session smoke scale — it exits nonzero unless
# measured engine bytes/session stays within the budget, churn returns slab
# occupancy to baseline, and the live-engine smoke loses nothing.
cmake --build build-asan --target common_test core_test || exit 1
./build-asan/tests/common_test \
  --gtest_filter='Slab*:FlatMap*:SmallVector*:TopicIntern*' || exit 1
./build-asan/tests/core_test \
  --gtest_filter='RegistryTest.ChurnReturnsToBaseline' || exit 1
cmake --build build-tsan --target common_test || exit 1
./build-tsan/tests/common_test --gtest_filter='Slab*:TopicIntern*' || exit 1
MD_BENCH_C10M_SESSIONS=100000 MD_BENCH_C10M_SMOKE=64 \
  MD_BENCH_SECONDS=60 MD_BENCH_WARMUP=10 MD_BENCH_C10M_OUT=/dev/null \
  ./build/bench/bench_c10m || exit 1

# Flake gate: the client/server integration suite must survive repetition on
# a loaded machine — one pass can hide a racy wait, fifteen rarely do.
./build/tests/core_test --gtest_filter='AllTransports/ServerClientTest.*' \
  --gtest_repeat=15 --gtest_brief=1 || exit 1

: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
