#!/usr/bin/env bash
# Regenerates the recorded outputs at the repository root:
#   test_output.txt  — full ctest run
#   bench_output.txt — every bench binary (paper tables/figures + ablations)
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
