// md_monitor — standalone runtime-verification sidecar (DESIGN.md §11).
//
// Attaches to a live server from the outside and checks the delivery
// invariants the chaos harness checks in simulation, with zero server-side
// cooperation beyond the public endpoints:
//
//   - a canary publisher/subscriber pair runs real traffic through the
//     server; every delivery the subscriber's connection emits feeds a
//     verify::Monitor (order / gap / duplicate rules, keyed by connection
//     generation so reconnect backfills re-baseline),
//   - the /metrics endpoint is scraped periodically and every counter series
//     is checked for monotonicity; the scrape also carries the server's own
//     md_invariant_violations_total when it runs an embedded monitor.
//
//   md_monitor --port 8800 [--host 127.0.0.1] [--duration-ms 5000]
//              [--topic monitor/canary] [--canary-ms 200] [--scrape-ms 500]
//              [--inject KIND --expect KIND]   # self-test the sidecar rules
//              [--server-inject KIND]          # drive the server's /inject
//                                              # endpoint (md_server --verify
//                                              # --verify-inject) and require
//                                              # its violation counter to move
//
// Exit code 0: clean run (and every --expect / --server-inject assertion
// held). Non-zero: a violation fired that was not asked for, or an injected
// one failed to fire — either way the monitor/server pair is not telling the
// truth and the run must not be trusted.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "client/client.hpp"
#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "tools/flags.hpp"
#include "transport/epoll_loop.hpp"
#include "verify/monitor.hpp"

namespace {

/// One-shot blocking HTTP GET (the scrape loop runs off the event loop, so
/// plain sockets keep it simple).
std::string HttpGet(const std::string& host, std::uint16_t port,
                    const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto headerEnd = response.find("\r\n\r\n");
  return headerEnd == std::string::npos ? std::string{}
                                        : response.substr(headerEnd + 4);
}

/// Feeds every counter sample of a Prometheus text exposition into the
/// monitor and returns the summed value of `watchFamily` (for the
/// --server-inject assertion). Counter families are identified by their
/// preceding "# TYPE <name> counter" line.
double FeedExposition(md::verify::Monitor& monitor, const std::string& body,
                      const std::string& watchFamily) {
  double watched = 0;
  std::string counterFamily;
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string_view line{body.data() + start, end - start};
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      counterFamily.clear();
      if (line.rfind("# TYPE ", 0) == 0) {
        const auto rest = line.substr(7);
        const auto space = rest.find(' ');
        if (space != std::string_view::npos &&
            rest.substr(space + 1) == "counter") {
          counterFamily.assign(rest.substr(0, space));
        }
      }
      continue;
    }
    if (counterFamily.empty()) continue;
    // "name{labels} value" or "name value"; series key = everything before
    // the final space, which is unique per (family, labels).
    const auto valueAt = line.rfind(' ');
    if (valueAt == std::string_view::npos) continue;
    const auto series = line.substr(0, valueAt);
    if (series.substr(0, counterFamily.size()) != counterFamily) continue;
    const double value = std::atof(std::string(line.substr(valueAt + 1)).c_str());
    monitor.OnCounterSample(series, value);
    if (!watchFamily.empty() &&
        series.substr(0, watchFamily.size()) == watchFamily) {
      watched += value;
    }
  }
  return watched;
}

}  // namespace

int main(int argc, char** argv) {
  const md::tools::Flags flags(argc, argv);
  const std::string host = flags.Get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.GetInt("port", 8800));
  const std::string topic = flags.Get("topic", "monitor/canary");
  const long durationMs = flags.GetInt("duration-ms", 5000);
  const long canaryMs = flags.GetInt("canary-ms", 200);
  const long scrapeMs = flags.GetInt("scrape-ms", 500);

  std::optional<md::verify::ViolationKind> inject, expect, serverInject;
  if (flags.Has("inject")) inject = md::verify::ParseViolationKind(flags.Get("inject"));
  if (flags.Has("expect")) expect = md::verify::ParseViolationKind(flags.Get("expect"));
  if (flags.Has("server-inject")) {
    serverInject = md::verify::ParseViolationKind(flags.Get("server-inject"));
  }
  if ((flags.Has("inject") && !inject) || (flags.Has("expect") && !expect) ||
      (flags.Has("server-inject") && !serverInject)) {
    std::fprintf(stderr, "md_monitor: bad violation kind (want "
                         "order|gap|duplicate|backpressure|metrics)\n");
    return 2;
  }

  md::obs::MetricsRegistry registry;
  md::verify::MonitorConfig mcfg;
  mcfg.scope = "sidecar";
  md::verify::Monitor monitor(registry, mcfg);

  md::EpollLoop loop;
  std::thread loopThread([&loop] { loop.Run(); });

  // Canary subscriber: its pre-filter delivery stream (keyed by connection
  // generation) is exactly what the monitor's rules are sound against.
  md::client::ClientConfig subCfg;
  subCfg.servers = {{host, port, 1.0}};
  subCfg.clientId = "md-monitor-sub";
  subCfg.seed = 0x5EEDF00DULL;
  md::client::Client sub(loop, subCfg);
  auto generation = std::make_shared<std::uint64_t>(0);
  std::atomic<std::uint64_t> received{0};
  loop.Post([&] {
    sub.SetConnectionListener([generation](bool up) {
      if (up) ++*generation;
    });
    sub.SetDeliveryObserver([&monitor, generation, &received](
                                const md::Message& m, bool /*duplicate*/) {
      received.fetch_add(1, std::memory_order_relaxed);
      monitor.OnDelivery(
          md::MixU64(md::Fnv1a64("md-monitor-sub") ^
                     (*generation * 0x9E3779B97F4A7C15ULL)),
          m.topic, md::PosOf(m), m.pubId);
    });
    sub.Subscribe(topic, [](const md::Message&) {});
    sub.Start();
  });

  // Canary publisher: steady low-rate traffic so the delivery rules always
  // have a live stream to judge.
  md::client::ClientConfig pubCfg;
  pubCfg.servers = {{host, port, 1.0}};
  pubCfg.clientId = "md-monitor-pub";
  pubCfg.seed = 0xCAFEF00DULL;
  md::client::Client pub(loop, pubCfg);
  auto tick = std::make_shared<std::function<void()>>();
  loop.Post([&, tick] {
    pub.Start();
    *tick = [&, weak = std::weak_ptr<std::function<void()>>(tick)] {
      pub.Publish(topic, md::Bytes{0xCA, 0x9A});
      if (auto self = weak.lock()) {
        loop.ScheduleTimer(canaryMs * md::kMillisecond, *self);
      }
    };
    loop.ScheduleTimer(canaryMs * md::kMillisecond, *tick);
  });

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(durationMs);
  const auto half = start + std::chrono::milliseconds(durationMs / 2);
  bool armed = false;
  double serverViolations = 0;
  const std::string watch = serverInject ? "md_invariant_violations_total"
                                         : std::string{};
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(scrapeMs));
    const std::string body = HttpGet(host, port, "/metrics");
    if (!body.empty()) {
      serverViolations = FeedExposition(monitor, body, watch);
    }
    if (!armed && std::chrono::steady_clock::now() >= half) {
      armed = true;
      if (inject) {
        std::printf("md_monitor: arming %s fault on the sidecar monitor\n",
                    md::verify::ViolationKindName(*inject));
        monitor.InjectFault(*inject);
      }
      if (serverInject) {
        const std::string path =
            std::string("/inject?kind=") +
            md::verify::ViolationKindName(*serverInject);
        std::printf("md_monitor: GET %s\n", path.c_str());
        (void)HttpGet(host, port, path);
      }
    }
  }

  loop.Post([&] {
    pub.Stop();
    sub.Stop();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  loop.Stop();
  loopThread.join();

  int rc = 0;
  std::printf("md_monitor: %llu deliveries observed, %llu violation(s)\n",
              static_cast<unsigned long long>(received.load()),
              static_cast<unsigned long long>(monitor.ViolationCount()));
  for (const auto& v : monitor.Reports()) {
    std::printf("  %s\n", v.detail.c_str());
  }
  if (expect) {
    const std::uint64_t hits = monitor.ViolationCount(*expect);
    if (hits != 1 || monitor.ViolationCount() != 1) {
      std::printf("md_monitor: FAIL expected exactly one %s violation, saw "
                  "%llu (of %llu total)\n",
                  md::verify::ViolationKindName(*expect),
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(monitor.ViolationCount()));
      rc = 1;
    } else {
      std::printf("md_monitor: OK injected %s was caught\n",
                  md::verify::ViolationKindName(*expect));
    }
  } else if (monitor.ViolationCount() != 0) {
    std::printf("md_monitor: FAIL unexpected violation(s)\n");
    rc = 1;
  }
  if (serverInject) {
    if (serverViolations < 1.0) {
      std::printf("md_monitor: FAIL server did not report the injected %s "
                  "violation (md_invariant_violations_total=%g)\n",
                  md::verify::ViolationKindName(*serverInject),
                  serverViolations);
      rc = 1;
    } else {
      std::printf("md_monitor: OK server reported injected %s "
                  "(md_invariant_violations_total=%g)\n",
                  md::verify::ViolationKindName(*serverInject),
                  serverViolations);
    }
  }
  return rc;
}
